// Always-on runtime metrics for the POC backbone (DESIGN.md §5a): the
// substrate a transparent, break-even operator needs to account for
// what every auction epoch, recovery action, and flow actually did.
//
// Three primitives, all wait-free on the hot path (plain relaxed
// fetch_add, no CAS loops, no locks):
//
//  * Counter   - monotonic event count, sharded across cache lines so
//    concurrent writers (pivot threads, pool workers) do not bounce one
//    line; reads sum the shards.
//  * Gauge     - signed instantaneous level (queue depth and the like).
//  * Histogram - fixed-bucket distribution with underflow/overflow bins
//    (same bucket semantics as util::Histogram) plus a fixed-point sum
//    at 1e-3 resolution, so mean latency survives snapshotting without
//    a non-wait-free atomic<double>.
//
// Metrics are owned by the process-wide MetricsRegistry and looked up
// by dot-separated name ("layer.component.metric", units as a suffix:
// `_ms`, `_microusd`). Registration takes a mutex; instrument sites go
// through the POC_OBS_* macros below, which cache the registry lookup
// in a function-local static so the steady state is one fetch_add.
//
// This header is deliberately header-only and free of link
// dependencies (util/contracts.hpp is inline) so that poc_util itself
// — the bottom of the dependency order — can be instrumented without a
// library cycle. The snapshot/export layer (obs/snapshot.hpp) is the
// part that links against poc_util.
//
// Compile-out: configuring with -DPOC_OBS_DISABLED=ON defines
// POC_OBS_DISABLED everywhere, which turns every POC_OBS_* macro into
// a no-op (arguments are not evaluated) for a zero-cost build. The
// registry API itself stays available so snapshot-consuming code
// compiles unchanged; it just sees no metrics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/contracts.hpp"

#if defined(POC_OBS_DISABLED)
#define POC_OBS_ENABLED 0
#else
#define POC_OBS_ENABLED 1
#endif

namespace poc::obs {

namespace detail {

/// Stable per-thread shard index: threads round-robin onto shards once
/// at first use, so a thread's increments always land on "its" line.
inline std::size_t shard_index() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
    return idx;
}

}  // namespace detail

/// Monotonic counter, sharded to keep concurrent writers off a single
/// cache line. add() is wait-free; value() is a relaxed sum (exact once
/// writers quiesce, e.g. at snapshot points between epochs).
class Counter {
public:
    static constexpr std::size_t kShards = 8;  // power of two

    void add(std::uint64_t n = 1) noexcept {
        shards_[detail::shard_index() & (kShards - 1)].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t value() const noexcept {
        std::uint64_t sum = 0;
        for (const Shard& s : shards_) sum += s.value.load(std::memory_order_relaxed);
        return sum;
    }

    void reset() noexcept {
        for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> value{0};
    };
    Shard shards_[kShards];
};

/// Signed instantaneous level (queue depth, in-flight work). All
/// operations are single relaxed atomics: wait-free, last-writer-wins
/// for set().
class Gauge {
public:
    void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    void sub(std::int64_t n) noexcept { value_.fetch_sub(n, std::memory_order_relaxed); }
    std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
    void reset() noexcept { set(0); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-width histogram over [lo, hi) with underflow/overflow bins —
/// util::Histogram's bucket semantics, made concurrent. record() is
/// wait-free: per-bucket counts and the fixed-point sum are plain
/// fetch_adds. The sum is kept in milli-units (1e-3 resolution), which
/// is ample for the ms-scale latencies and Gbps-scale volumes recorded
/// here; sum() converts back to double.
class Histogram {
public:
    /// Requires lo < hi and bins >= 1.
    Histogram(double lo, double hi, std::size_t bins)
        : lo_(lo), hi_(hi), inv_width_(static_cast<double>(bins) / (hi - lo)), counts_(bins) {
        POC_EXPECTS(lo < hi);
        POC_EXPECTS(bins >= 1);
    }

    void record(double x) noexcept {
        total_.fetch_add(1, std::memory_order_relaxed);
        sum_milli_.fetch_add(static_cast<std::int64_t>(std::llround(x * 1e3)),
                             std::memory_order_relaxed);
        if (x < lo_) {
            underflow_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (x >= hi_) {
            overflow_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        auto bin = static_cast<std::size_t>((x - lo_) * inv_width_);
        if (bin >= counts_.size()) bin = counts_.size() - 1;  // FP edge
        counts_[bin].fetch_add(1, std::memory_order_relaxed);
    }

    std::size_t bin_count() const noexcept { return counts_.size(); }
    double lo() const noexcept { return lo_; }
    double hi() const noexcept { return hi_; }

    std::uint64_t count_in_bin(std::size_t bin) const {
        POC_EXPECTS(bin < counts_.size());
        return counts_[bin].load(std::memory_order_relaxed);
    }
    std::uint64_t underflow() const noexcept {
        return underflow_.load(std::memory_order_relaxed);
    }
    std::uint64_t overflow() const noexcept { return overflow_.load(std::memory_order_relaxed); }
    /// Every record() call, including under/overflow.
    std::uint64_t total() const noexcept { return total_.load(std::memory_order_relaxed); }
    /// Sum of recorded values at 1e-3 resolution.
    double sum() const noexcept {
        return static_cast<double>(sum_milli_.load(std::memory_order_relaxed)) * 1e-3;
    }

    /// Left edge of the given bin.
    double bin_lo(std::size_t bin) const {
        POC_EXPECTS(bin < counts_.size());
        return lo_ + static_cast<double>(bin) * (hi_ - lo_) / static_cast<double>(counts_.size());
    }

    void reset() noexcept {
        for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
        underflow_.store(0, std::memory_order_relaxed);
        overflow_.store(0, std::memory_order_relaxed);
        total_.store(0, std::memory_order_relaxed);
        sum_milli_.store(0, std::memory_order_relaxed);
    }

private:
    double lo_;
    double hi_;
    double inv_width_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> underflow_{0};
    std::atomic<std::uint64_t> overflow_{0};
    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::int64_t> sum_milli_{0};
};

/// Point-in-time sample types, consumed by obs/snapshot.hpp. Defined
/// here so sampling needs no dependency beyond this header.
struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
};
struct GaugeSample {
    std::string name;
    std::int64_t value = 0;
};
struct HistogramSample {
    std::string name;
    double lo = 0.0;
    double hi = 0.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    double sum = 0.0;
};

/// Process-wide metric namespace. Lookup-or-create takes a mutex (cold:
/// instrument sites cache the returned reference); the returned metric
/// objects are address-stable for the registry's lifetime. Iteration
/// for snapshots is in name order, so exports are deterministic.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto& slot = counters_[name];
        if (!slot) slot = std::make_unique<Counter>();
        return *slot;
    }

    Gauge& gauge(const std::string& name) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto& slot = gauges_[name];
        if (!slot) slot = std::make_unique<Gauge>();
        return *slot;
    }

    /// Lookup-or-create; re-requesting an existing histogram requires
    /// the identical bucket layout (one name, one schema).
    Histogram& histogram(const std::string& name, double lo, double hi, std::size_t bins) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto& slot = histograms_[name];
        if (!slot) {
            slot = std::make_unique<Histogram>(lo, hi, bins);
        } else {
            POC_EXPECTS(slot->lo() == lo && slot->hi() == hi && slot->bin_count() == bins);
        }
        return *slot;
    }

    std::vector<CounterSample> counter_samples() const {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<CounterSample> out;
        out.reserve(counters_.size());
        for (const auto& [name, c] : counters_) out.push_back({name, c->value()});
        return out;
    }

    std::vector<GaugeSample> gauge_samples() const {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<GaugeSample> out;
        out.reserve(gauges_.size());
        for (const auto& [name, g] : gauges_) out.push_back({name, g->value()});
        return out;
    }

    std::vector<HistogramSample> histogram_samples() const {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<HistogramSample> out;
        out.reserve(histograms_.size());
        for (const auto& [name, h] : histograms_) {
            HistogramSample s;
            s.name = name;
            s.lo = h->lo();
            s.hi = h->hi();
            s.counts.reserve(h->bin_count());
            for (std::size_t b = 0; b < h->bin_count(); ++b) {
                s.counts.push_back(h->count_in_bin(b));
            }
            s.underflow = h->underflow();
            s.overflow = h->overflow();
            s.total = h->total();
            s.sum = h->sum();
            out.push_back(std::move(s));
        }
        return out;
    }

    /// Zero every metric (tests and per-run benches; not a hot path).
    void reset() {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [name, c] : counters_) c->reset();
        for (auto& [name, g] : gauges_) g->reset();
        for (auto& [name, h] : histograms_) h->reset();
    }

private:
    mutable std::mutex mutex_;
    // std::map: deterministic name-ordered iteration for snapshots.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every POC_OBS_* macro records into.
inline MetricsRegistry& registry() {
    static MetricsRegistry instance;
    return instance;
}

}  // namespace poc::obs

#define POC_OBS_CONCAT_INNER(a, b) a##b
#define POC_OBS_CONCAT(a, b) POC_OBS_CONCAT_INNER(a, b)

#if POC_OBS_ENABLED

/// Add `n` to the named counter. Steady-state cost: one relaxed
/// fetch_add (the registry lookup is a function-local static).
#define POC_OBS_COUNT(name, n)                                                        \
    do {                                                                              \
        static ::poc::obs::Counter& poc_obs_counter_ = ::poc::obs::registry().counter(name); \
        poc_obs_counter_.add(static_cast<std::uint64_t>(n));                          \
    } while (false)

#define POC_OBS_INC(name) POC_OBS_COUNT(name, 1)

#define POC_OBS_GAUGE_SET(name, v)                                                    \
    do {                                                                              \
        static ::poc::obs::Gauge& poc_obs_gauge_ = ::poc::obs::registry().gauge(name); \
        poc_obs_gauge_.set(static_cast<std::int64_t>(v));                             \
    } while (false)

#define POC_OBS_GAUGE_ADD(name, v)                                                    \
    do {                                                                              \
        static ::poc::obs::Gauge& poc_obs_gauge_ = ::poc::obs::registry().gauge(name); \
        poc_obs_gauge_.add(static_cast<std::int64_t>(v));                             \
    } while (false)

#define POC_OBS_GAUGE_SUB(name, v)                                                    \
    do {                                                                              \
        static ::poc::obs::Gauge& poc_obs_gauge_ = ::poc::obs::registry().gauge(name); \
        poc_obs_gauge_.sub(static_cast<std::int64_t>(v));                             \
    } while (false)

/// Record `value` into the named fixed-bucket histogram.
#define POC_OBS_HISTOGRAM(name, lo, hi, bins, value)                                  \
    do {                                                                              \
        static ::poc::obs::Histogram& poc_obs_hist_ =                                 \
            ::poc::obs::registry().histogram(name, lo, hi, bins);                     \
        poc_obs_hist_.record(static_cast<double>(value));                             \
    } while (false)

#else  // POC_OBS_DISABLED: compile everything out; arguments are not
       // evaluated (sizeof keeps them type-checked without side effects).

#define POC_OBS_COUNT(name, n) \
    do {                       \
        (void)sizeof(n);       \
    } while (false)
#define POC_OBS_INC(name) \
    do {                  \
    } while (false)
#define POC_OBS_GAUGE_SET(name, v) \
    do {                           \
        (void)sizeof(v);           \
    } while (false)
#define POC_OBS_GAUGE_ADD(name, v) \
    do {                           \
        (void)sizeof(v);           \
    } while (false)
#define POC_OBS_GAUGE_SUB(name, v) \
    do {                           \
        (void)sizeof(v);           \
    } while (false)
#define POC_OBS_HISTOGRAM(name, lo, hi, bins, value) \
    do {                                             \
        (void)sizeof(value);                         \
    } while (false)

#endif  // POC_OBS_ENABLED
