#include "obs/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/csv_export.hpp"

namespace poc::obs {

namespace {

/// JSON string escaping for metric names (dot-separated ASCII in
/// practice; escape defensively anyway).
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string num(double v) {
    std::ostringstream oss;
    oss << v;
    return oss.str();
}

}  // namespace

Snapshot Snapshot::capture(bool drain_spans) {
    Snapshot snap;
    MetricsRegistry& reg = registry();
    snap.counters = reg.counter_samples();
    snap.gauges = reg.gauge_samples();
    snap.histograms = reg.histogram_samples();
    snap.spans_dropped = traces().dropped();
    if (drain_spans) {
        for (const SpanRecord& rec : traces().drain()) {
            snap.spans.push_back(
                {std::string(rec.name), rec.thread, rec.start_ns, rec.dur_ns});
        }
    }
    return snap;
}

Snapshot Snapshot::delta_since(const Snapshot& base) const {
    Snapshot out = *this;
    for (CounterSample& c : out.counters) {
        c.value -= base.counter_or(c.name, 0);
    }
    for (HistogramSample& h : out.histograms) {
        const HistogramSample* b = base.histogram(h.name);
        if (b == nullptr || b->counts.size() != h.counts.size()) continue;
        for (std::size_t i = 0; i < h.counts.size(); ++i) h.counts[i] -= b->counts[i];
        h.underflow -= b->underflow;
        h.overflow -= b->overflow;
        h.total -= b->total;
        h.sum -= b->sum;
    }
    out.spans_dropped -= base.spans_dropped;
    return out;
}

std::uint64_t Snapshot::counter_or(const std::string& name, std::uint64_t fallback) const {
    // Counters are in name order (registry iterates a std::map).
    const auto it = std::lower_bound(
        counters.begin(), counters.end(), name,
        [](const CounterSample& c, const std::string& n) { return c.name < n; });
    if (it != counters.end() && it->name == name) return it->value;
    return fallback;
}

const HistogramSample* Snapshot::histogram(const std::string& name) const {
    const auto it = std::lower_bound(
        histograms.begin(), histograms.end(), name,
        [](const HistogramSample& h, const std::string& n) { return h.name < n; });
    if (it != histograms.end() && it->name == name) return &*it;
    return nullptr;
}

std::string Snapshot::json() const {
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(counters[i].name)
            << "\": " << counters[i].value;
    }
    out << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(gauges[i].name)
            << "\": " << gauges[i].value;
    }
    out << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const HistogramSample& h = histograms[i];
        out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(h.name) << "\": {\"lo\": "
            << num(h.lo) << ", \"hi\": " << num(h.hi) << ", \"total\": " << h.total
            << ", \"sum\": " << num(h.sum) << ", \"underflow\": " << h.underflow
            << ", \"overflow\": " << h.overflow << ", \"counts\": [";
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            out << (b == 0 ? "" : ", ") << h.counts[b];
        }
        out << "]}";
    }
    out << (histograms.empty() ? "" : "\n  ") << "},\n  \"spans_dropped\": " << spans_dropped
        << ",\n  \"spans\": [";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanSample& s = spans[i];
        out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << json_escape(s.name)
            << "\", \"thread\": " << s.thread << ", \"start_ns\": " << s.start_ns
            << ", \"dur_ns\": " << s.dur_ns << "}";
    }
    out << (spans.empty() ? "" : "\n  ") << "]\n}\n";
    return out.str();
}

util::Table Snapshot::metrics_table() const {
    util::Table table(
        {"kind", "name", "value", "count", "sum", "mean", "underflow", "overflow"});
    for (const CounterSample& c : counters) {
        table.add_row({"counter", c.name, std::to_string(c.value), "", "", "", "", ""});
    }
    for (const GaugeSample& g : gauges) {
        table.add_row({"gauge", g.name, std::to_string(g.value), "", "", "", "", ""});
    }
    for (const HistogramSample& h : histograms) {
        const double mean = h.total > 0 ? h.sum / static_cast<double>(h.total) : 0.0;
        table.add_row({"histogram", h.name, "", std::to_string(h.total), util::cell(h.sum, 3),
                       util::cell(mean, 3), std::to_string(h.underflow),
                       std::to_string(h.overflow)});
    }
    return table;
}

util::Table Snapshot::spans_table() const {
    util::Table table({"name", "thread", "start_ms", "dur_ms"});
    for (const SpanSample& s : spans) {
        table.add_row({s.name, std::to_string(s.thread),
                       util::cell(static_cast<double>(s.start_ns) * 1e-6, 3),
                       util::cell(static_cast<double>(s.dur_ns) * 1e-6, 3)});
    }
    return table;
}

std::optional<std::string> Snapshot::export_csv(const std::string& name) const {
    const auto path = util::maybe_export_csv(metrics_table(), name);
    if (path && !spans.empty()) {
        util::maybe_export_csv(spans_table(), name + "_spans");
    }
    return path;
}

}  // namespace poc::obs
