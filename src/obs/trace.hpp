// Scoped-span tracing for the POC backbone (DESIGN.md §5a). A Span is
// an RAII scoped timer: construction stamps a steady-clock start, the
// destructor pushes a {name, thread, start_ns, dur_ns} record into the
// calling thread's ring buffer. Rings are fixed-capacity (oldest
// records are overwritten and counted as dropped, never blocking the
// hot path) and are drained on demand into one start-ordered epoch
// timeline — benches and the chaos engine attach that timeline to their
// per-epoch snapshots.
//
// Costs and contracts:
//  * A span records ~two steady_clock reads plus one push under the
//    ring's own mutex. The mutex is per-thread, so it is uncontended
//    except against a concurrent drain; nothing on the metrics hot
//    path waits on it.
//  * Span names must be string literals (or otherwise outlive the
//    trace registry): records store the pointer, not a copy.
//  * Tracing never feeds back into simulation state: clocks are read
//    for telemetry only, so instrumented runs stay bit-identical to
//    uninstrumented ones.
//
// Ring buffers are owned by the TraceRegistry and live until process
// exit; a thread that exits releases its ring for reuse by the next
// new thread (undrained records survive the handoff), so churning
// thread pools do not grow the registry without bound.
//
// Lifetime contract: a TraceRegistry must outlive every thread that
// records into it — thread exit hands the ring back to the owning
// registry. The process-wide traces() singleton satisfies this
// trivially; tests that construct local registries must record only
// from threads joined before the registry dies.
//
// Header-only for the same reason as obs/metrics.hpp: poc_util's
// thread pool must be traceable without a library cycle. With
// POC_OBS_DISABLED the Span type and macros compile to nothing.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace poc::obs {

/// One completed span.
struct SpanRecord {
    const char* name = nullptr;  // string literal; not owned
    std::uint32_t thread = 0;    // registry-assigned dense thread index
    std::uint64_t start_ns = 0;  // steady-clock, process-relative
    std::uint64_t dur_ns = 0;

    friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// Steady-clock nanoseconds. Telemetry only — never simulation state.
inline std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Owns every thread's span ring; drains them into one timeline.
class TraceRegistry {
public:
    /// Per-thread ring capacity (records). Oldest records are
    /// overwritten once full; overwrites are tallied in dropped().
    static constexpr std::size_t kRingCapacity = 4096;

    void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns) {
#if POC_OBS_ENABLED
        Ring& ring = local_ring();
        std::lock_guard<std::mutex> lock(ring.mutex);
        SpanRecord rec{name, ring.thread, start_ns, dur_ns};
        if (ring.records.size() < kRingCapacity) {
            ring.records.push_back(rec);
        } else {
            ring.records[ring.next_overwrite] = rec;
            ring.next_overwrite = (ring.next_overwrite + 1) % kRingCapacity;
            dropped_.fetch_add(1, std::memory_order_relaxed);
        }
#else
        (void)name;
        (void)start_ns;
        (void)dur_ns;
#endif
    }

    /// Collect-and-clear every ring into one timeline ordered by start
    /// time (ties broken by thread index then name, so the order is
    /// deterministic for identical timestamp sets).
    std::vector<SpanRecord> drain() {
        std::vector<SpanRecord> out;
        std::lock_guard<std::mutex> registry_lock(mutex_);
        for (const auto& ring : rings_) {
            std::lock_guard<std::mutex> ring_lock(ring->mutex);
            // Oldest-first within the ring: [next_overwrite, end) then
            // [0, next_overwrite) once it has wrapped.
            const std::size_t n = ring->records.size();
            for (std::size_t i = 0; i < n; ++i) {
                out.push_back(ring->records[(ring->next_overwrite + i) % n]);
            }
            ring->records.clear();
            ring->next_overwrite = 0;
        }
        std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
            if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
            if (a.thread != b.thread) return a.thread < b.thread;
            return std::strcmp(a.name, b.name) < 0;
        });
        return out;
    }

    /// Records overwritten (ring full) since process start.
    std::uint64_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }

    /// Rings ever allocated (reuse keeps this bounded by peak thread
    /// count, not total threads created).
    std::size_t ring_count() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return rings_.size();
    }

private:
    struct Ring {
        std::mutex mutex;
        std::vector<SpanRecord> records;
        std::size_t next_overwrite = 0;  // overwrite cursor once full
        std::uint32_t thread = 0;
    };

    /// Thread-exit hook: hand the ring back for reuse. Records stay
    /// until the next drain.
    struct ThreadSlot {
        TraceRegistry* owner = nullptr;
        Ring* ring = nullptr;
        ~ThreadSlot() {
            if (owner != nullptr && ring != nullptr) owner->release(ring);
        }
    };

    Ring& local_ring() {
        thread_local ThreadSlot slot;
        if (slot.ring == nullptr || slot.owner != this) {
            slot.owner = this;
            slot.ring = &acquire();
        }
        return *slot.ring;
    }

    Ring& acquire() {
        std::lock_guard<std::mutex> lock(mutex_);
        Ring* ring = nullptr;
        if (!free_.empty()) {
            ring = free_.back();
            free_.pop_back();
        } else {
            rings_.push_back(std::make_unique<Ring>());
            ring = rings_.back().get();
        }
        {
            // A fresh (or recycled) ring gets a fresh thread index; any
            // undrained records keep the index of the thread that wrote
            // them only until the ring wraps, which is the documented
            // best-effort semantics of ring reuse.
            std::lock_guard<std::mutex> ring_lock(ring->mutex);
            ring->thread = next_thread_++;
        }
        return *ring;
    }

    void release(Ring* ring) {
        std::lock_guard<std::mutex> lock(mutex_);
        free_.push_back(ring);
    }

    mutable std::mutex mutex_;
    std::deque<std::unique_ptr<Ring>> rings_;
    std::vector<Ring*> free_;
    std::uint32_t next_thread_ = 0;
    std::atomic<std::uint64_t> dropped_{0};
};

/// The process-wide trace sink, sibling of obs::registry().
inline TraceRegistry& traces() {
    static TraceRegistry instance;
    return instance;
}

#if POC_OBS_ENABLED

/// RAII scoped timer; emits one SpanRecord on destruction. `name` must
/// be a string literal (stored by pointer).
class Span {
public:
    explicit Span(const char* name) noexcept : name_(name), start_ns_(now_ns()) {}
    ~Span() {
        const std::uint64_t end = now_ns();
        traces().record(name_, start_ns_, end - start_ns_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_;
    std::uint64_t start_ns_;
};

/// RAII timer recording elapsed milliseconds into a histogram.
class ScopedTimerMs {
public:
    explicit ScopedTimerMs(Histogram& hist) noexcept : hist_(hist), start_ns_(now_ns()) {}
    ~ScopedTimerMs() {
        hist_.record(static_cast<double>(now_ns() - start_ns_) * 1e-6);
    }
    ScopedTimerMs(const ScopedTimerMs&) = delete;
    ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

private:
    Histogram& hist_;
    std::uint64_t start_ns_;
};

/// Open a span covering the rest of the enclosing scope.
#define POC_OBS_SPAN(name) ::poc::obs::Span POC_OBS_CONCAT(poc_obs_span_, __LINE__)(name)

/// Time the rest of the enclosing scope into a latency histogram
/// (milliseconds, fixed buckets).
#define POC_OBS_TIMER_MS(name, lo, hi, bins)                              \
    static ::poc::obs::Histogram& POC_OBS_CONCAT(poc_obs_timer_hist_, __LINE__) = \
        ::poc::obs::registry().histogram(name, lo, hi, bins);             \
    ::poc::obs::ScopedTimerMs POC_OBS_CONCAT(poc_obs_timer_, __LINE__)(   \
        POC_OBS_CONCAT(poc_obs_timer_hist_, __LINE__))

#else  // POC_OBS_DISABLED

#define POC_OBS_SPAN(name) \
    do {                   \
    } while (false)
#define POC_OBS_TIMER_MS(name, lo, hi, bins) \
    do {                                     \
    } while (false)

#endif  // POC_OBS_ENABLED

}  // namespace poc::obs
