// Epoch snapshot exporter for the observability layer (DESIGN.md §5a):
// capture the full metric namespace (and optionally the span timeline)
// at a point in time, diff snapshots across epochs, and emit JSON or
// CSV — the CSV path reuses util::Table / util::maybe_export_csv so
// benches can attach telemetry next to their existing CSV artifacts
// under the same POC_CSV_DIR contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace poc::obs {

/// A drained span with the name copied out of the ring, so snapshots
/// are self-contained values (SpanRecord stores a borrowed pointer).
struct SpanSample {
    std::string name;
    std::uint32_t thread = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
};

/// Point-in-time view of the registry. Counters and histograms are
/// cumulative since process start (or the last registry reset);
/// delta_since() turns two cumulative snapshots into a per-epoch view.
struct Snapshot {
    std::vector<CounterSample> counters;      // name order
    std::vector<GaugeSample> gauges;          // name order
    std::vector<HistogramSample> histograms;  // name order
    std::vector<SpanSample> spans;            // start-time order
    std::uint64_t spans_dropped = 0;          // ring overwrites (cumulative)

    /// Capture the registry. With drain_spans the span rings are
    /// drained into `spans` (draining consumes the records: spans
    /// appear in exactly one snapshot).
    static Snapshot capture(bool drain_spans = false);

    /// This snapshot minus `base`: counter values and histogram
    /// counts/sums subtract (a metric absent from `base` keeps its full
    /// value); gauges are levels and keep the current value; spans are
    /// already per-drain and pass through unchanged.
    Snapshot delta_since(const Snapshot& base) const;

    /// Counter value by name; `fallback` when absent.
    std::uint64_t counter_or(const std::string& name, std::uint64_t fallback = 0) const;
    /// Histogram sample by name; nullptr when absent.
    const HistogramSample* histogram(const std::string& name) const;

    /// The whole snapshot as a JSON object (stable key order).
    std::string json() const;

    /// All metrics as one table: kind, name, value, count, sum, mean,
    /// underflow, overflow (histogram columns empty for counters and
    /// gauges). Feed to util::maybe_export_csv or render directly.
    util::Table metrics_table() const;

    /// The span timeline as a table: name, thread, start_ms, dur_ms.
    util::Table spans_table() const;

    /// Export metrics_table() (and spans_table() when spans were
    /// captured) via util::maybe_export_csv as <name>.csv and
    /// <name>_spans.csv. Returns the metrics CSV path, or nullopt when
    /// POC_CSV_DIR is unset.
    std::optional<std::string> export_csv(const std::string& name) const;
};

}  // namespace poc::obs
