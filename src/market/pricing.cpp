#include "market/pricing.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace poc::market {

namespace {

double base_price_usd(const PricingOptions& opt, double km, double capacity_gbps) {
    return (opt.fixed_usd + opt.per_km_usd * km) *
           std::pow(capacity_gbps / 100.0, opt.capacity_exponent);
}

}  // namespace

std::vector<BpBid> make_bp_bids(const topo::PocTopology& topo, const PricingOptions& opt) {
    POC_EXPECTS(opt.fixed_usd >= 0.0 && opt.per_km_usd >= 0.0);
    POC_EXPECTS(opt.link_noise >= 0.0 && opt.link_noise < 1.0);
    POC_EXPECTS(opt.discount_fraction >= 0.0 && opt.discount_fraction < 1.0);

    util::Rng rng(opt.seed);
    std::vector<double> bp_multiplier(topo.bp_count);
    for (double& m : bp_multiplier) m = rng.lognormal(0.0, opt.bp_cost_sigma);

    std::vector<BpBid> bids;
    bids.reserve(topo.bp_count);
    for (std::size_t b = 0; b < topo.bp_count; ++b) {
        bids.emplace_back(BpId{b}, "BP" + std::to_string(b + 1));
    }

    for (std::size_t li = 0; li < topo.link_owner.size(); ++li) {
        const std::uint32_t owner = topo.link_owner[li];
        if (owner == topo::kVirtualOwner) continue;
        POC_EXPECTS(owner < topo.bp_count);
        const net::Link& link = topo.graph.link(net::LinkId{li});
        const double noise = rng.uniform(1.0 - opt.link_noise, 1.0 + opt.link_noise);
        const double usd =
            base_price_usd(opt, link.length_km, link.capacity_gbps) * bp_multiplier[owner] * noise;
        bids[owner].offer(net::LinkId{li}, util::Money::from_dollars(std::max(usd, 1.0)));
    }

    if (opt.discount_fraction > 0.0) {
        for (BpBid& bid : bids) {
            if (bid.offered_links().size() >= opt.discount_threshold) {
                bid.add_discount(DiscountTier{opt.discount_threshold, opt.discount_fraction});
            }
        }
    }
    return bids;
}

VirtualLinkContract add_virtual_links(topo::PocTopology& topo, const PricingOptions& pricing,
                                      const VirtualLinkOptions& opt) {
    POC_EXPECTS(opt.attach_count >= 2);
    POC_EXPECTS(opt.capacity_gbps > 0.0);
    POC_EXPECTS(opt.price_multiplier >= 1.0);
    const std::size_t n = topo.graph.node_count();
    POC_EXPECTS(opt.attach_count <= n);

    // Attachment points: the routers with the most offered links.
    std::vector<std::size_t> degree(n, 0);
    for (std::size_t li = 0; li < topo.graph.link_count(); ++li) {
        const net::Link& l = topo.graph.link(net::LinkId{li});
        ++degree[l.a.index()];
        ++degree[l.b.index()];
    }
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return degree[a] > degree[b]; });
    order.resize(opt.attach_count);

    const auto& cities = topo::world_cities();
    VirtualLinkContract contract;
    for (std::size_t i = 0; i < order.size(); ++i) {
        for (std::size_t j = i + 1; j < order.size(); ++j) {
            const double km = topo::haversine_km(cities[topo.router_city[order[i]]].location,
                                                 cities[topo.router_city[order[j]]].location);
            const net::LinkId lid = topo.graph.add_link(
                net::NodeId{order[i]}, net::NodeId{order[j]}, opt.capacity_gbps, km);
            topo.link_owner.push_back(topo::kVirtualOwner);
            const double usd =
                base_price_usd(pricing, km, opt.capacity_gbps) * opt.price_multiplier;
            contract.add(lid, util::Money::from_dollars(std::max(usd, 1.0)));
        }
    }
    POC_ENSURES(topo.link_owner.size() == topo.graph.link_count());
    return contract;
}

OfferPool make_offer_pool(topo::PocTopology& topo, const PricingOptions& pricing,
                          const VirtualLinkOptions& vopt) {
    auto bids = make_bp_bids(topo, pricing);
    auto contract = add_virtual_links(topo, pricing, vopt);
    return OfferPool(std::move(bids), std::move(contract), topo.graph);
}

}  // namespace poc::market
