// The acceptability oracle A(OL) of the paper's auction (section 3.3):
// a set of links is acceptable when it "provides enough bandwidth to
// handle the traffic matrix and obeys whatever other constraints the POC
// desires". We implement the paper's three evaluated constraints plus a
// fidelity knob: the exhaustive checks are exact but expensive, so the
// winner-determination search can run against cheaper conservative
// surrogates and validate the final selection exhaustively.
#pragma once

#include <cstddef>

#include "net/failure.hpp"
#include "net/graph.hpp"

namespace poc::market {

/// The paper's Figure 2 constraint scenarios.
enum class ConstraintKind {
    /// #1: the selected links carry the offered traffic matrix.
    kLoad,
    /// #2: ... even after any single link failure.
    kSingleFailure,
    /// #3: ... with each pair's primary path failed simultaneously.
    kPerPairFailure,
};

const char* constraint_name(ConstraintKind kind);

/// How thoroughly acceptability is checked.
enum class OracleFidelity {
    /// Full semantics: exhaustive failure re-checks (net/failure.hpp).
    kExact,
    /// Conservative surrogate for the search loop: greedy-routability
    /// with derated capacity plus 2-edge-connectivity between demand
    /// endpoints for kSingleFailure; greedy-only checks elsewhere.
    kFast,
};

struct OracleOptions {
    OracleFidelity fidelity = OracleFidelity::kExact;
    /// Capacity derate used by the kFast single-failure surrogate: the
    /// matrix must fit when every link carries at most this fraction.
    double fast_failure_derate = 0.65;
    /// FPTAS epsilon for exact-mode fallbacks.
    double fptas_eps = 0.15;
    /// Count of oracle invocations (diagnostics; mutated by accepts()).
    mutable std::size_t query_count = 0;
};

/// Stateless functor: does the active link set satisfy the constraint
/// for the given traffic matrix?
class AcceptabilityOracle {
public:
    AcceptabilityOracle(const net::Graph& graph, net::TrafficMatrix tm, ConstraintKind kind,
                        OracleOptions opt = {});

    bool accepts(const net::Subgraph& sg) const;

    ConstraintKind kind() const noexcept { return kind_; }
    const net::TrafficMatrix& traffic() const noexcept { return tm_; }
    const net::Graph& graph() const noexcept { return *graph_; }
    std::size_t query_count() const noexcept { return opt_.query_count; }

private:
    bool accepts_fast(const net::Subgraph& sg) const;
    bool accepts_exact(const net::Subgraph& sg) const;

    const net::Graph* graph_;
    net::TrafficMatrix tm_;
    ConstraintKind kind_;
    OracleOptions opt_;
};

}  // namespace poc::market
