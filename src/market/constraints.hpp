// The acceptability oracle A(OL) of the paper's auction (section 3.3):
// a set of links is acceptable when it "provides enough bandwidth to
// handle the traffic matrix and obeys whatever other constraints the POC
// desires". We implement the paper's three evaluated constraints plus a
// fidelity knob: the exhaustive checks are exact but expensive, so the
// winner-determination search can run against cheaper conservative
// surrogates and validate the final selection exhaustively.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "net/failure.hpp"
#include "net/graph.hpp"
#include "util/retry.hpp"

namespace poc::market {

/// The paper's Figure 2 constraint scenarios.
enum class ConstraintKind {
    /// #1: the selected links carry the offered traffic matrix.
    kLoad,
    /// #2: ... even after any single link failure.
    kSingleFailure,
    /// #3: ... with each pair's primary path failed simultaneously.
    kPerPairFailure,
};

const char* constraint_name(ConstraintKind kind);

/// How thoroughly acceptability is checked.
enum class OracleFidelity {
    /// Full semantics: exhaustive failure re-checks (net/failure.hpp).
    kExact,
    /// Conservative surrogate for the search loop: greedy-routability
    /// with derated capacity plus 2-edge-connectivity between demand
    /// endpoints for kSingleFailure; greedy-only checks elsewhere.
    kFast,
};

struct OracleOptions {
    OracleFidelity fidelity = OracleFidelity::kExact;
    /// Capacity derate used by the kFast single-failure surrogate: the
    /// matrix must fit when every link carries at most this fraction.
    double fast_failure_derate = 0.65;
    /// FPTAS epsilon for exact-mode fallbacks.
    double fptas_eps = 0.15;
    /// Optional shared shortest-path-tree cache (net/path_cache.hpp)
    /// for the per-pair constraint's primary-path computation. Clarke
    /// pivots evaluate near-identical masks, so one cache across an
    /// auction turns most of those SSSPs into lookups. Must outlive
    /// the oracle; thread-safe; null disables caching. Results are
    /// identical either way.
    net::PathCache* path_cache = nullptr;
};

/// The interface the winner-determination search drives: is the active
/// link set acceptable? `accepts()` funnels every query through an
/// atomic counter so the `oracle_queries` diagnostic stays exact when
/// the auction engine fans Clarke-pivot re-solves across a thread pool.
/// Implementations provide accepts_impl(), which must be a pure
/// function of the active link set and safe to call concurrently.
class Oracle {
public:
    virtual ~Oracle() = default;

    bool accepts(const net::Subgraph& sg) const {
        queries_.fetch_add(1, std::memory_order_relaxed);
        return accepts_impl(sg);
    }

    /// Total accepts() calls over this oracle's lifetime.
    std::size_t query_count() const noexcept {
        return queries_.load(std::memory_order_relaxed);
    }

    /// A 64-bit digest of everything a verdict depends on *besides* the
    /// active link set itself: two oracles with equal fingerprints
    /// answer every query identically. This is the purity certificate
    /// cross-auction memoization needs (market/delta_reclear.hpp): a
    /// verdict cached under one fingerprint may be replayed in a later
    /// auction with the same fingerprint. Returning nullopt (the
    /// default) opts out — the oracle cannot certify that its answers
    /// are a pure function of the link set across runs (e.g. a fault
    /// hook is installed), so delta re-clearing falls back to cold.
    virtual std::optional<std::uint64_t> verdict_fingerprint() const { return std::nullopt; }

protected:
    Oracle() = default;
    // Copies carry the count, not the atomic (atomics are not copyable).
    Oracle(const Oracle& other) noexcept : queries_(other.query_count()) {}
    Oracle& operator=(const Oracle& other) noexcept {
        queries_.store(other.query_count(), std::memory_order_relaxed);
        return *this;
    }

private:
    virtual bool accepts_impl(const net::Subgraph& sg) const = 0;

    mutable std::atomic<std::size_t> queries_{0};
};

/// Stateless functor: does the active link set satisfy the constraint
/// for the given traffic matrix?
class AcceptabilityOracle final : public Oracle {
public:
    AcceptabilityOracle(const net::Graph& graph, net::TrafficMatrix tm, ConstraintKind kind,
                        OracleOptions opt = {});

    ConstraintKind kind() const noexcept { return kind_; }
    const net::TrafficMatrix& traffic() const noexcept { return tm_; }
    const net::Graph& graph() const noexcept { return *graph_; }

    /// Digest of (constraint, fidelity knobs, graph content, traffic
    /// matrix) — everything accepts_impl reads. The path_cache pointer
    /// is deliberately excluded: cached trees only change the work, not
    /// the verdicts.
    std::optional<std::uint64_t> verdict_fingerprint() const override;

private:
    bool accepts_impl(const net::Subgraph& sg) const override;
    bool accepts_fast(const net::Subgraph& sg) const;
    bool accepts_exact(const net::Subgraph& sg) const;

    const net::Graph* graph_;
    net::TrafficMatrix tm_;
    ConstraintKind kind_;
    OracleOptions opt_;
};

/// Decorator that makes any oracle *fallible*: before each query it
/// invokes an optional fault hook — which may throw
/// util::TransientError to model a failed or degraded upstream — and
/// polls an optional cooperative deadline (util::Deadline), so a slow
/// oracle aborts with DeadlineExceeded at its next query boundary
/// instead of stalling the auction. The durable epoch runtime
/// (sim/runtime.hpp) wraps its clearing oracle in this to give the
/// retry/breaker layer something to catch; with no hook and no
/// deadline set it is a transparent pass-through.
///
/// Thread-safety: set_deadline() must be called only while no auction
/// is in flight (the runtime sets it around each run_auction call);
/// the fault hook must itself be safe to invoke from pivot worker
/// threads when AuctionOptions::threads > 1.
class FallibleOracle final : public Oracle {
public:
    using FaultHook = std::function<void()>;

    explicit FallibleOracle(const Oracle& inner, FaultHook fault = {})
        : inner_(&inner), fault_(std::move(fault)) {}

    void set_deadline(const util::Deadline* deadline) noexcept { deadline_ = deadline; }

    /// Transparent pass-throughs stay pure; with a fault hook installed
    /// the query *schedule* is observable (the hook may throw on the
    /// Nth query), so memoizing across runs would change which queries
    /// reach it — opt out. A deadline alone does not affect verdicts,
    /// only liveness, so it does not break purity.
    std::optional<std::uint64_t> verdict_fingerprint() const override {
        if (fault_) return std::nullopt;
        return inner_->verdict_fingerprint();
    }

private:
    bool accepts_impl(const net::Subgraph& sg) const override {
        if (fault_) fault_();
        if (deadline_ != nullptr) deadline_->check();
        return inner_->accepts(sg);
    }

    const Oracle* inner_;
    FaultHook fault_;
    const util::Deadline* deadline_ = nullptr;
};

}  // namespace poc::market
