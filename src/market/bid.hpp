// The auction's bid language (paper section 3.3): each bandwidth
// provider alpha offers a set of links L_alpha and a cost function
// C_alpha mapping subsets of L_alpha to a minimal acceptable monthly
// price. We support the non-additive pricing the paper calls out
// ("discounts for multiple links") through volume-discount tiers and
// explicit bundle overrides; any subset containing a link the BP did
// not offer prices to infinity (represented as std::nullopt).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"
#include "util/ids.hpp"
#include "util/money.hpp"

namespace poc::market {

using BpId = util::Id<struct BpTag>;

/// Volume discount: subsets with at least `min_links` links get
/// `fraction` off the additive total. The largest applicable tier wins.
struct DiscountTier {
    std::size_t min_links = 0;
    double fraction = 0.0;  // in [0, 1)
};

/// One BP's sealed bid.
class BpBid {
public:
    BpBid(BpId bp, std::string name) : bp_(bp), name_(std::move(name)) {}

    BpId bp() const noexcept { return bp_; }
    const std::string& name() const noexcept { return name_; }

    /// Offer a link at the given monthly base price. A link may be
    /// offered at most once per BP. Price must be positive.
    void offer(net::LinkId link, util::Money base_price);

    /// Add a volume-discount tier. Fractions must lie in [0, 1).
    void add_discount(DiscountTier tier);

    /// Override the price of one exact bundle (subset given in sorted
    /// link-id order). Takes precedence over additive+tier pricing.
    void override_bundle(std::vector<net::LinkId> bundle, util::Money price);

    bool offers(net::LinkId link) const { return base_price_.contains(link); }
    const std::vector<net::LinkId>& offered_links() const noexcept { return links_; }

    /// Base (additive, undiscounted) price of one offered link.
    util::Money base_price(net::LinkId link) const;

    /// C_alpha(subset): minimal acceptable price for leasing exactly
    /// `subset`, or nullopt (infinite) if the subset contains a link the
    /// BP does not offer. The empty subset costs zero. `subset` need not
    /// be sorted.
    std::optional<util::Money> cost(const std::vector<net::LinkId>& subset) const;

    bool has_bundle_overrides() const noexcept { return !bundle_overrides_.empty(); }
    const std::vector<DiscountTier>& discounts() const noexcept { return tiers_; }
    /// The largest volume-discount fraction across all tiers (0 if none).
    double max_discount_fraction() const noexcept;

private:
    BpId bp_;
    std::string name_;
    std::vector<net::LinkId> links_;
    std::unordered_map<net::LinkId, util::Money> base_price_;
    std::vector<DiscountTier> tiers_;
    // Key: sorted bundle; linear scan is fine (few overrides per bid).
    std::vector<std::pair<std::vector<net::LinkId>, util::Money>> bundle_overrides_;
};

/// The external ISPs' virtual links (paper: set VL). Their cost is set
/// by long-term contract, not by the auction: a fixed price per link,
/// purely additive, never removed from the offer pool, and the external
/// ISPs are never VCG participants.
class VirtualLinkContract {
public:
    /// Register a virtual link at a contracted monthly price (> 0).
    void add(net::LinkId link, util::Money price);

    bool contains(net::LinkId link) const { return price_.contains(link); }
    const std::vector<net::LinkId>& links() const noexcept { return links_; }

    /// C_v(subset): additive contract cost. Requires every element to be
    /// a registered virtual link.
    util::Money cost(const std::vector<net::LinkId>& subset) const;

    util::Money price(net::LinkId link) const;

private:
    std::vector<net::LinkId> links_;
    std::unordered_map<net::LinkId, util::Money> price_;
};

/// The complete offer pool OL = VL u (union of L_alpha), with an owner
/// lookup per link. Construction validates that every offered link is
/// offered by exactly one party; graph links nobody offers are simply
/// absent from OL (e.g. links a colluding BP withholds).
class OfferPool {
public:
    OfferPool(std::vector<BpBid> bids, VirtualLinkContract virtual_links,
              const net::Graph& graph);

    const std::vector<BpBid>& bids() const noexcept { return bids_; }
    const BpBid& bid(BpId bp) const;
    const VirtualLinkContract& virtual_links() const noexcept { return virtual_links_; }
    const net::Graph& graph() const noexcept { return *graph_; }

    /// All offered links in id order (a subset of the graph's links).
    const std::vector<net::LinkId>& offered_links() const noexcept { return offered_; }

    /// Offered links not owned by `bp`: the Clarke-pivot availability
    /// set OL - L_alpha, in id order (the engine's canonical form).
    std::vector<net::LinkId> offered_links_without(BpId bp) const;

    bool is_offered(net::LinkId link) const;

    /// Owner of an offered link: the BP id, or an invalid id for
    /// virtual links. Requires the link to be offered.
    BpId owner(net::LinkId link) const;
    bool is_virtual(net::LinkId link) const { return !owner(link).valid(); }

    /// Total cost C(L) of an arbitrary link set: sum over BPs of
    /// C_alpha(L intersect L_alpha) plus C_v(L intersect VL). Returns
    /// nullopt if any BP prices its share to infinity.
    std::optional<util::Money> total_cost(const std::vector<net::LinkId>& links) const;

    /// The subset of `links` owned by `bp`.
    std::vector<net::LinkId> owned_subset(const std::vector<net::LinkId>& links, BpId bp) const;

private:
    std::vector<BpBid> bids_;
    VirtualLinkContract virtual_links_;
    const net::Graph* graph_;
    std::vector<net::LinkId> offered_;
    std::vector<BpId> owner_by_link_;  // indexed by link id
    std::vector<char> covered_;        // 1 where the link is offered
};

}  // namespace poc::market
