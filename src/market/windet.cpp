#include "market/windet.hpp"

#include <algorithm>
#include <limits>

namespace poc::market {

namespace {

/// Price of one link as offered (base price for BP links, contract
/// price for virtual links), used for removal ordering.
util::Money unit_price(const OfferPool& pool, net::LinkId link) {
    const BpId owner = pool.owner(link);
    if (owner.valid()) return pool.bid(owner).base_price(link);
    return pool.virtual_links().price(link);
}

/// Expensive-per-gbps links are removal candidates first.
std::vector<net::LinkId> removal_order(const OfferPool& pool,
                                       const std::vector<net::LinkId>& links) {
    std::vector<net::LinkId> order = links;
    std::sort(order.begin(), order.end(), [&](net::LinkId a, net::LinkId b) {
        const double pa = unit_price(pool, a).dollars() / pool.graph().link(a).capacity_gbps;
        const double pb = unit_price(pool, b).dollars() / pool.graph().link(b).capacity_gbps;
        if (pa != pb) return pa > pb;
        return a < b;  // deterministic tie break
    });
    return order;
}

/// State for the batched reverse deletion: active set + its cost.
class DeletionPass {
public:
    DeletionPass(const OfferPool& pool, const Oracle& oracle, net::Subgraph& sg,
                 util::Money current_cost)
        : pool_(pool), oracle_(oracle), sg_(sg), cost_(current_cost) {}

    util::Money cost() const noexcept { return cost_; }

    /// Try removing `batch` (all currently active). Commits when the
    /// result stays acceptable and does not cost more (tier discounts
    /// can make deletions *raise* C). On rejection, bisects.
    void try_remove(const std::vector<net::LinkId>& batch) {
        if (batch.empty()) return;
        for (const net::LinkId l : batch) sg_.set_active(l, false);
        const auto new_cost = pool_.total_cost(sg_.active_links());
        if (new_cost && *new_cost <= cost_ && oracle_.accepts(sg_)) {
            cost_ = *new_cost;
            return;  // committed
        }
        for (const net::LinkId l : batch) sg_.set_active(l, true);
        if (batch.size() == 1) return;  // this link stays
        const auto mid = batch.begin() + static_cast<std::ptrdiff_t>(batch.size() / 2);
        try_remove({batch.begin(), mid});
        try_remove({mid, batch.end()});
    }

private:
    const OfferPool& pool_;
    const Oracle& oracle_;
    net::Subgraph& sg_;
    util::Money cost_;
};

}  // namespace

std::optional<Selection> select_links(const OfferPool& pool, const Oracle& oracle,
                                      const std::vector<net::LinkId>& available,
                                      const WinnerDeterminationOptions& opt) {
    POC_EXPECTS(opt.batch_size >= 1);
    net::Subgraph sg(pool.graph(), available);
    if (!oracle.accepts(sg)) return std::nullopt;

    const auto full_cost = pool.total_cost(available);
    POC_EXPECTS(full_cost.has_value());  // offered sets are always priced

    DeletionPass pass(pool, oracle, sg, *full_cost);
    const std::vector<net::LinkId> order = removal_order(pool, available);

    std::size_t i = 0;
    while (i < order.size()) {
        std::vector<net::LinkId> batch;
        while (i < order.size() && batch.size() < opt.batch_size) {
            if (sg.is_active(order[i])) batch.push_back(order[i]);
            ++i;
        }
        pass.try_remove(batch);
    }

    if (opt.polish_pass) {
        // Marginal costs shifted as the set shrank; one more single-link
        // sweep in refreshed order catches stragglers.
        for (const net::LinkId l : removal_order(pool, sg.active_links())) {
            if (sg.is_active(l)) pass.try_remove({l});
        }
    }

    Selection sel;
    sel.links = sg.active_links();
    sel.cost = pass.cost();
    POC_ENSURES(oracle.accepts(net::Subgraph(pool.graph(), sel.links)));
    return sel;
}

namespace {

/// Branch-and-bound engine for the exact solver.
class ExactSearch {
public:
    ExactSearch(const OfferPool& pool, const Oracle& oracle,
                std::vector<net::LinkId> order)
        : pool_(pool), oracle_(oracle), order_(std::move(order)), sg_(pool.graph(), order_) {}

    std::optional<Selection> run() {
        if (!oracle_.accepts(sg_)) return std::nullopt;
        // Seed the incumbent with the heuristic so pruning bites early.
        if (const auto seed = select_links(pool_, oracle_, order_)) {
            best_cost_ = seed->cost;
            best_links_ = seed->links;
        }
        dfs(0);
        if (best_cost_ == util::Money::from_micros(std::numeric_limits<std::int64_t>::max())) {
            return std::nullopt;
        }
        return Selection{best_links_, best_cost_};
    }

private:
    /// Admissible lower bound on the final cost given the links fixed-in
    /// so far: additive price with each BP's best tier discount applied
    /// (valid because discounts only shrink additive totals and bundle
    /// overrides are excluded by precondition).
    util::Money fixed_lower_bound() const {
        util::Money lb{};
        for (const BpBid& bid : pool_.bids()) {
            util::Money additive{};
            for (const net::LinkId l : fixed_in_) {
                if (pool_.owner(l) == bid.bp()) additive += bid.base_price(l);
            }
            lb += additive.scaled(1.0 - bid.max_discount_fraction());
        }
        for (const net::LinkId l : fixed_in_) {
            if (pool_.is_virtual(l)) lb += pool_.virtual_links().price(l);
        }
        return lb;
    }

    void dfs(std::size_t depth) {
        // Monotone acceptability: if even keeping every undecided link
        // fails, no completion can succeed.
        if (!oracle_.accepts(sg_)) return;
        if (fixed_lower_bound() >= best_cost_) return;

        if (depth == order_.size()) {
            const auto cost = pool_.total_cost(fixed_in_);
            POC_ASSERT(cost.has_value());
            if (*cost < best_cost_) {
                best_cost_ = *cost;
                best_links_ = fixed_in_;
                std::sort(best_links_.begin(), best_links_.end());
            }
            return;
        }

        const net::LinkId link = order_[depth];
        // Branch 1: exclude (cheaper subtree first).
        sg_.set_active(link, false);
        dfs(depth + 1);
        sg_.set_active(link, true);
        // Branch 2: include.
        fixed_in_.push_back(link);
        dfs(depth + 1);
        fixed_in_.pop_back();
    }

    const OfferPool& pool_;
    const Oracle& oracle_;
    std::vector<net::LinkId> order_;
    net::Subgraph sg_;
    std::vector<net::LinkId> fixed_in_;
    util::Money best_cost_ = util::Money::from_micros(std::numeric_limits<std::int64_t>::max());
    std::vector<net::LinkId> best_links_;
};

}  // namespace

std::optional<Selection> select_links_exact(const OfferPool& pool,
                                            const Oracle& oracle,
                                            const std::vector<net::LinkId>& available) {
    for (const BpBid& bid : pool.bids()) {
        POC_EXPECTS(!bid.has_bundle_overrides());
    }
    // Expensive links first: excluding them early finds cheap incumbents
    // sooner and tightens the bound.
    ExactSearch search(pool, oracle, removal_order(pool, available));
    return search.run();
}

}  // namespace poc::market
