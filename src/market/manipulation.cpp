#include "market/manipulation.hpp"

#include <algorithm>

namespace poc::market {

namespace {

/// Copy a bid, optionally scaling prices and dropping withheld links.
BpBid transform_bid(const BpBid& src, double price_factor,
                    const std::vector<net::LinkId>* withheld) {
    POC_EXPECTS(!src.has_bundle_overrides());
    BpBid out(src.bp(), src.name());
    for (const net::LinkId l : src.offered_links()) {
        if (withheld != nullptr &&
            std::find(withheld->begin(), withheld->end(), l) != withheld->end()) {
            continue;
        }
        out.offer(l, src.base_price(l).scaled(price_factor));
    }
    for (const DiscountTier& t : src.discounts()) out.add_discount(t);
    return out;
}

OfferPool rebuild(const OfferPool& pool, BpId target, double price_factor,
                  const std::vector<net::LinkId>* withheld) {
    std::vector<BpBid> bids;
    bids.reserve(pool.bids().size());
    for (const BpBid& b : pool.bids()) {
        if (b.bp() == target) {
            bids.push_back(transform_bid(b, price_factor, withheld));
        } else {
            bids.push_back(transform_bid(b, 1.0, nullptr));
        }
    }
    return OfferPool(std::move(bids), pool.virtual_links(), pool.graph());
}

}  // namespace

std::optional<WithholdingAnalysis> analyze_joint_withholding(const OfferPool& pool,
                                                             const AcceptabilityOracle& oracle,
                                                             const AuctionOptions& opt) {
    auto baseline = run_auction(pool, oracle, opt);
    if (!baseline) return std::nullopt;

    // Each BP keeps only the links it won in the baseline.
    std::vector<BpBid> bids;
    for (const BpBid& b : pool.bids()) {
        const auto& won = baseline->outcome(b.bp()).selected_links;
        std::vector<net::LinkId> withheld;
        for (const net::LinkId l : b.offered_links()) {
            if (std::find(won.begin(), won.end(), l) == won.end()) withheld.push_back(l);
        }
        bids.push_back(transform_bid(b, 1.0, &withheld));
    }
    OfferPool colluding(std::move(bids), pool.virtual_links(), pool.graph());

    auto withheld_result = run_auction(colluding, oracle, opt);
    if (!withheld_result) return std::nullopt;

    WithholdingAnalysis analysis;
    analysis.payment_delta.reserve(pool.bids().size());
    for (const BpBid& b : pool.bids()) {
        analysis.payment_delta.push_back(withheld_result->outcome(b.bp()).payment -
                                         baseline->outcome(b.bp()).payment);
    }
    analysis.outlay_delta = withheld_result->total_outlay - baseline->total_outlay;
    analysis.baseline = std::move(*baseline);
    analysis.withheld = std::move(*withheld_result);
    return analysis;
}

util::Money bp_utility(const AuctionResult& result, BpId bp,
                       const std::function<util::Money(const std::vector<net::LinkId>&)>&
                           true_cost) {
    const BpOutcome& out = result.outcome(bp);
    return out.payment - true_cost(out.selected_links);
}

OfferPool with_scaled_bid(const OfferPool& pool, BpId bp, double factor) {
    POC_EXPECTS(factor > 0.0);
    return rebuild(pool, bp, factor, nullptr);
}

OfferPool with_withheld_links(const OfferPool& pool, BpId bp,
                              const std::vector<net::LinkId>& withheld) {
    return rebuild(pool, bp, 1.0, &withheld);
}

}  // namespace poc::market
