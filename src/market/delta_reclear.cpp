#include "market/delta_reclear.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/hash.hpp"

namespace poc::market {

bool DeltaReclearState::begin_run(std::uint64_t context, std::vector<OfferDigest> offered,
                                  std::size_t max_links) {
    ++stats_.runs;
    bool warm = primed_ && context == context_;
    std::size_t delta = 0;
    if (warm) {
        // Merge-walk the two id-ordered digest lists: count links on
        // one side only (the delta), and require byte-equal digests on
        // links present in both epochs.
        std::size_t i = 0;
        std::size_t j = 0;
        while (warm && (i < prev_.size() || j < offered.size())) {
            if (j == offered.size() || (i < prev_.size() && prev_[i].link < offered[j].link)) {
                ++delta;
                ++i;
            } else if (i == prev_.size() || offered[j].link < prev_[i].link) {
                ++delta;
                ++j;
            } else {
                if (prev_[i].digest != offered[j].digest) warm = false;
                ++i;
                ++j;
            }
            if (delta > max_links) warm = false;
        }
    }
    if (warm) {
        ++stats_.warm;
        stats_.delta_links += delta;
        POC_OBS_INC("market.delta.warm_runs");
        POC_OBS_COUNT("market.delta.delta_links", delta);
    } else {
        cache_.clear();
        ++stats_.cold;
        POC_OBS_INC("market.delta.cold_runs");
    }
    context_ = context;
    prev_ = std::move(offered);
    primed_ = true;
    return warm;
}

void DeltaReclearState::reset() {
    cache_.clear();
    primed_ = false;
    context_ = 0;
    prev_.clear();
}

std::optional<std::uint64_t> delta_context(const OfferPool& pool, const Oracle& oracle,
                                           const AuctionOptions& opt) {
    const auto oracle_fp = oracle.verdict_fingerprint();
    if (!oracle_fp) return std::nullopt;
    for (const BpBid& b : pool.bids()) {
        if (b.has_bundle_overrides()) return std::nullopt;
    }
    util::Fnv64 h;
    h.add(*oracle_fp);
    h.add(opt.exact ? 1u : 0u);
    h.add(opt.windet.batch_size);
    h.add(opt.windet.polish_pass ? 1u : 0u);
    return h.value();
}

std::vector<OfferDigest> delta_offer_digests(const OfferPool& pool) {
    std::vector<OfferDigest> out;
    out.reserve(pool.offered_links().size());
    for (const net::LinkId l : pool.offered_links()) {
        util::Fnv64 h;
        const BpId bp = pool.owner(l);
        if (bp.valid()) {
            const BpBid& b = pool.bid(bp);
            h.add(bp.value());
            h.add_i64(b.base_price(l).micros());
            // The whole tier schedule folds into every owned link:
            // C_alpha of any subset containing the link reads it.
            h.add(b.discounts().size());
            for (const DiscountTier& t : b.discounts()) {
                h.add(t.min_links);
                h.add_f64(t.fraction);
            }
        } else {
            h.add(~std::uint64_t{0});
            h.add_i64(pool.virtual_links().price(l).micros());
        }
        out.push_back({l, h.value()});
    }
    return out;
}

}  // namespace poc::market
