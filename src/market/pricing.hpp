// Lease-price model and the bridge from a generated POC topology to an
// auction offer pool. Substitutes for real leased-line price sheets
// (see DESIGN.md): price grows affinely with distance and capacity,
// modulated by a per-BP cost multiplier (carriers have different cost
// bases) and idiosyncratic per-link noise. Because the auction is
// strategy-proof, BPs bid these costs truthfully; only relative costs
// shape the payment-over-bid margins.
#pragma once

#include <cstdint>

#include "market/bid.hpp"
#include "topo/poc_topology.hpp"
#include "util/rng.hpp"

namespace poc::market {

struct PricingOptions {
    /// Monthly price = (fixed + per_km * km) * (capacity/100G)^cap_exp
    ///                 * bp_multiplier * noise.
    double fixed_usd = 2000.0;
    double per_km_usd = 4.0;
    double capacity_exponent = 0.6;  // economies of scale in capacity
    /// Per-BP multiplier drawn log-normally around 1 with this sigma.
    double bp_cost_sigma = 0.25;
    /// Per-link multiplicative noise drawn uniformly from
    /// [1-noise, 1+noise].
    double link_noise = 0.15;
    /// Volume discount granted by every BP for >= threshold links.
    std::size_t discount_threshold = 8;
    double discount_fraction = 0.08;
    /// Set to 0 to disable discounts (required by the exact solver's
    /// strategyproofness tests only insofar as bundle overrides are
    /// concerned; tier discounts are fine).
    std::uint64_t seed = 7;
};

/// Build the BP bids for every logical link of the topology.
std::vector<BpBid> make_bp_bids(const topo::PocTopology& topo, const PricingOptions& opt = {});

struct VirtualLinkOptions {
    /// The external ISPs attach at the `attach_count` most-connected
    /// routers and provide a full mesh of virtual links between those
    /// attachment points (paper section 3.3: virtual links through the
    /// external ISPs between their POC attachment points).
    std::size_t attach_count = 4;
    /// Virtual capacity per link (transit contracts are elastic; this
    /// caps how much the POC may shift onto the external ISPs).
    double capacity_gbps = 800.0;
    /// Contract price multiplier relative to the equivalent leased
    /// line: transit fallback is intentionally more expensive, which is
    /// also what bounds collusion gains (paper section 3.3).
    double price_multiplier = 3.0;
};

/// Extend the topology graph with external-ISP virtual links and return
/// their contract. Mutates `topo.graph` (adds links) and appends
/// matching entries to `topo.link_owner` marked as virtual.
VirtualLinkContract add_virtual_links(topo::PocTopology& topo, const PricingOptions& pricing,
                                      const VirtualLinkOptions& opt = {});

/// Convenience: bids + virtual links + offer pool in one call.
OfferPool make_offer_pool(topo::PocTopology& topo, const PricingOptions& pricing = {},
                          const VirtualLinkOptions& vopt = {});

}  // namespace poc::market
