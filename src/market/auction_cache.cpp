#include "market/auction_cache.hpp"

namespace poc::market {

std::size_t AuctionCache::LinkSetHash::operator()(
    const std::vector<net::LinkId>& key) const noexcept {
    // FNV-1a over the id values; the key is canonical (ascending ids),
    // so equal sets hash equally by construction.
    std::uint64_t h = 1469598103934665603ull;
    for (const net::LinkId l : key) {
        h ^= l.value();
        h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
}

AuctionCache::Shard& AuctionCache::shard_for(const std::vector<net::LinkId>& key) const {
    return shards_[LinkSetHash{}(key) % kShards];
}

std::optional<bool> AuctionCache::find_verdict(const std::vector<net::LinkId>& key) const {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.verdicts.find(key);
    if (it == shard.verdicts.end()) {
        verdict_misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    verdict_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void AuctionCache::store_verdict(const std::vector<net::LinkId>& key, bool verdict) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Concurrent re-evaluations of the same set store the same pure
    // verdict; first writer wins and the others are no-ops.
    shard.verdicts.emplace(key, verdict);
}

std::optional<std::optional<Selection>> AuctionCache::find_solve(
    const std::vector<net::LinkId>& key) const {
    std::lock_guard<std::mutex> lock(solve_mutex_);
    const auto it = solves_.find(key);
    if (it == solves_.end()) {
        solve_misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    solve_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void AuctionCache::store_solve(const std::vector<net::LinkId>& key,
                               const std::optional<Selection>& result) {
    std::lock_guard<std::mutex> lock(solve_mutex_);
    solves_.emplace(key, result);
}

void AuctionCache::clear() {
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.verdicts.clear();
    }
    std::lock_guard<std::mutex> lock(solve_mutex_);
    solves_.clear();
}

AuctionCache::Stats AuctionCache::stats() const {
    Stats s;
    s.verdict_hits = verdict_hits_.load(std::memory_order_relaxed);
    s.verdict_misses = verdict_misses_.load(std::memory_order_relaxed);
    s.solve_hits = solve_hits_.load(std::memory_order_relaxed);
    s.solve_misses = solve_misses_.load(std::memory_order_relaxed);
    return s;
}

bool CachingOracle::accepts_impl(const net::Subgraph& sg) const {
    const std::vector<net::LinkId> key = sg.active_links();  // canonical: id order
    if (const auto cached = cache_->find_verdict(key)) return *cached;
    const bool verdict = inner_->accepts(sg);
    cache_->store_verdict(key, verdict);
    return verdict;
}

}  // namespace poc::market
