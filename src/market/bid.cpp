#include "market/bid.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace poc::market {

void BpBid::offer(net::LinkId link, util::Money base_price) {
    POC_EXPECTS(link.valid());
    POC_EXPECTS(base_price > util::Money{});
    POC_EXPECTS(!offers(link));
    links_.push_back(link);
    base_price_.emplace(link, base_price);
}

void BpBid::add_discount(DiscountTier tier) {
    POC_EXPECTS(tier.fraction >= 0.0 && tier.fraction < 1.0);
    POC_EXPECTS(tier.min_links >= 2);
    tiers_.push_back(tier);
}

void BpBid::override_bundle(std::vector<net::LinkId> bundle, util::Money price) {
    POC_EXPECTS(!bundle.empty());
    POC_EXPECTS(price >= util::Money{});
    std::sort(bundle.begin(), bundle.end());
    POC_EXPECTS(std::adjacent_find(bundle.begin(), bundle.end()) == bundle.end());
    for (const net::LinkId l : bundle) POC_EXPECTS(offers(l));
    bundle_overrides_.emplace_back(std::move(bundle), price);
}

util::Money BpBid::base_price(net::LinkId link) const {
    const auto it = base_price_.find(link);
    POC_EXPECTS(it != base_price_.end());
    return it->second;
}

std::optional<util::Money> BpBid::cost(const std::vector<net::LinkId>& subset) const {
    if (subset.empty()) return util::Money{};

    util::Money additive{};
    for (const net::LinkId l : subset) {
        const auto it = base_price_.find(l);
        if (it == base_price_.end()) return std::nullopt;  // not offered: infinite
        additive += it->second;
    }

    // Exact bundle override?
    std::vector<net::LinkId> sorted = subset;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [bundle, price] : bundle_overrides_) {
        if (bundle == sorted) return price;
    }

    // Largest applicable volume tier.
    double best_fraction = 0.0;
    for (const DiscountTier& t : tiers_) {
        if (subset.size() >= t.min_links) best_fraction = std::max(best_fraction, t.fraction);
    }
    return additive.scaled(1.0 - best_fraction);
}

double BpBid::max_discount_fraction() const noexcept {
    double best = 0.0;
    for (const DiscountTier& t : tiers_) best = std::max(best, t.fraction);
    return best;
}

void VirtualLinkContract::add(net::LinkId link, util::Money price) {
    POC_EXPECTS(link.valid());
    POC_EXPECTS(price > util::Money{});
    POC_EXPECTS(!contains(link));
    links_.push_back(link);
    price_.emplace(link, price);
}

util::Money VirtualLinkContract::cost(const std::vector<net::LinkId>& subset) const {
    util::Money total{};
    for (const net::LinkId l : subset) total += price(l);
    return total;
}

util::Money VirtualLinkContract::price(net::LinkId link) const {
    const auto it = price_.find(link);
    POC_EXPECTS(it != price_.end());
    return it->second;
}

OfferPool::OfferPool(std::vector<BpBid> bids, VirtualLinkContract virtual_links,
                     const net::Graph& graph)
    : bids_(std::move(bids)), virtual_links_(std::move(virtual_links)), graph_(&graph) {
    owner_by_link_.assign(graph.link_count(), BpId{});
    std::vector<char> covered(graph.link_count(), 0);

    for (const BpBid& bid : bids_) {
        for (const net::LinkId l : bid.offered_links()) {
            POC_EXPECTS(l.index() < graph.link_count());
            POC_EXPECTS(covered[l.index()] == 0);  // one owner per link
            covered[l.index()] = 1;
            owner_by_link_[l.index()] = bid.bp();
        }
    }
    for (const net::LinkId l : virtual_links_.links()) {
        POC_EXPECTS(l.index() < graph.link_count());
        POC_EXPECTS(covered[l.index()] == 0);
        covered[l.index()] = 1;
        // owner stays invalid: virtual link.
    }
    for (std::size_t i = 0; i < covered.size(); ++i) {
        if (covered[i] == 1) offered_.emplace_back(i);
    }
    covered_ = std::move(covered);
}

bool OfferPool::is_offered(net::LinkId link) const {
    POC_EXPECTS(link.index() < covered_.size());
    return covered_[link.index()] == 1;
}

const BpBid& OfferPool::bid(BpId bp) const {
    for (const BpBid& b : bids_) {
        if (b.bp() == bp) return b;
    }
    POC_EXPECTS(false && "unknown BP id");
    // Unreachable; silences missing-return warnings.
    return bids_.front();
}

BpId OfferPool::owner(net::LinkId link) const {
    POC_EXPECTS(is_offered(link));
    return owner_by_link_[link.index()];
}

std::optional<util::Money> OfferPool::total_cost(const std::vector<net::LinkId>& links) const {
    util::Money total{};
    std::vector<net::LinkId> virtual_share;
    for (const BpBid& bid : bids_) {
        const auto share = owned_subset(links, bid.bp());
        const auto c = bid.cost(share);
        if (!c) return std::nullopt;
        total += *c;
    }
    for (const net::LinkId l : links) {
        if (is_virtual(l)) virtual_share.push_back(l);
    }
    total += virtual_links_.cost(virtual_share);
    return total;
}

std::vector<net::LinkId> OfferPool::offered_links_without(BpId bp) const {
    std::vector<net::LinkId> links;
    links.reserve(offered_.size());
    for (const net::LinkId l : offered_) {
        if (owner(l) != bp) links.push_back(l);
    }
    return links;
}

std::vector<net::LinkId> OfferPool::owned_subset(const std::vector<net::LinkId>& links,
                                                 BpId bp) const {
    std::vector<net::LinkId> out;
    for (const net::LinkId l : links) {
        if (owner(l) == bp) out.push_back(l);
    }
    return out;
}

}  // namespace poc::market
