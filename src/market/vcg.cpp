#include "market/vcg.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "market/auction_cache.hpp"
#include "market/delta_reclear.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace poc::market {

const BpOutcome& AuctionResult::outcome(BpId bp) const {
    const auto it = outcome_index.find(bp);
    POC_EXPECTS(it != outcome_index.end());
    return outcomes[it->second];
}

namespace {

/// One winner-determination solve, optionally memoized. The cache key
/// is the canonical available set: offered_links() and
/// offered_links_without() both produce ascending id order.
std::optional<Selection> solve(const OfferPool& pool, const Oracle& oracle,
                               const std::vector<net::LinkId>& available,
                               const AuctionOptions& opt, AuctionCache* cache) {
    if (cache) {
        if (const auto hit = cache->find_solve(available)) return *hit;
    }
    auto result = opt.exact ? select_links_exact(pool, oracle, available)
                            : select_links(pool, oracle, available, opt.windet);
    if (cache) cache->store_solve(available, result);
    return result;
}

/// One BP's Clarke pivot. Reads only shared-const state (pool, oracle,
/// SL) plus the thread-safe cache, and touches no other BP's outcome —
/// pivots are independent by construction, so the engine may run them
/// concurrently and the results cannot depend on scheduling.
BpOutcome clarke_pivot(const OfferPool& pool, const Oracle& oracle, const Selection& sl,
                       const BpBid& bid, const AuctionOptions& opt, AuctionCache* cache) {
    // Telemetry only (obs is a pure side channel): per-pivot latency
    // histogram plus a span in the epoch timeline.
    POC_OBS_SPAN("market.auction.pivot");
    POC_OBS_TIMER_MS("market.auction.pivot_ms", 0.0, 500.0, 50);
    POC_OBS_INC("market.auction.pivots");
    BpOutcome out;
    out.bp = bid.bp();
    out.name = bid.name();
    out.selected_links = pool.owned_subset(sl.links, bid.bp());
    const auto own_cost = bid.cost(out.selected_links);
    POC_ASSERT(own_cost.has_value());  // winners are always priced
    out.bid_cost = *own_cost;

    // Clarke pivot: re-solve with this BP's offers withdrawn.
    const auto sl_without = solve(pool, oracle, pool.offered_links_without(bid.bp()), opt, cache);
    if (!sl_without) {
        // A(OL - L_alpha) empty: the paper's assumption is violated;
        // the pivot term is undefined. Pay the declared cost and
        // flag it.
        out.pivot_defined = false;
        out.payment = out.bid_cost;
    } else {
        out.cost_without = sl_without->cost;
        // The heuristic solver can return SL_-alpha worse than it
        // found SL (or, rarely, slightly better); clamp the
        // externality at zero so payments respect the VCG lower
        // bound P_alpha >= C_alpha(SL_alpha). With the exact solver
        // the externality is non-negative by optimality.
        const util::Money externality = std::max(util::Money{}, sl_without->cost - sl.cost);
        out.payment = out.bid_cost + externality;
    }
    out.pob =
        out.bid_cost.is_zero() ? 0.0 : util::ratio(out.payment - out.bid_cost, out.bid_cost);
    return out;
}

}  // namespace

bool parallel_pivots_engaged(const AuctionOptions& opt, std::size_t pivot_count) {
    return opt.threads > 1 && pivot_count > 1 && pivot_count >= opt.parallel_min_pivots;
}

std::optional<AuctionResult> run_auction(const OfferPool& pool, const Oracle& oracle,
                                         const AuctionOptions& opt) {
    POC_OBS_SPAN("market.run_auction");
    POC_OBS_INC("market.auction.runs");
    const std::size_t queries_before = oracle.query_count();
    // The memoization layer: per-auction by default (verdicts and
    // solves are pure functions of the link set only for a fixed pool,
    // oracle, and option set); carried across auctions when a delta
    // re-clearing state is attached and the context certifies the
    // carried entries stay exact (market/delta_reclear.hpp). Either
    // way the engine's control flow is untouched — memo replay is the
    // only difference — so results are bit-identical to cold solves.
    AuctionCache* cache_ptr = nullptr;
    if (opt.delta != nullptr) {
        if (const auto context = delta_context(pool, oracle, opt)) {
            opt.delta->begin_run(*context, delta_offer_digests(pool), opt.delta_max_links);
            cache_ptr = &opt.delta->cache();
        }
    }
    std::optional<AuctionCache> cache;
    if (cache_ptr == nullptr && opt.cache) {
        cache.emplace();
        cache_ptr = &*cache;
    }
    std::optional<CachingOracle> caching_oracle;
    const Oracle* engine_oracle = &oracle;
    if (cache_ptr != nullptr) {
        caching_oracle.emplace(oracle, *cache_ptr);
        engine_oracle = &*caching_oracle;
    }
    // Carried caches have lifetime tallies; difference them so the
    // result's diagnostics stay per-auction.
    const AuctionCache::Stats cache_before =
        cache_ptr != nullptr ? cache_ptr->stats() : AuctionCache::Stats{};

    const auto sl = solve(pool, *engine_oracle, pool.offered_links(), opt, cache_ptr);
    if (!sl) {
        POC_OBS_INC("market.auction.infeasible");
        POC_OBS_COUNT("market.auction.oracle_queries", oracle.query_count() - queries_before);
        return std::nullopt;
    }

    AuctionResult result;
    result.selection = *sl;

    std::vector<net::LinkId> selected_virtual;
    for (const net::LinkId l : sl->links) {
        if (pool.is_virtual(l)) selected_virtual.push_back(l);
    }
    result.virtual_cost = pool.virtual_links().cost(selected_virtual);
    result.total_outlay = result.virtual_cost;

    const std::vector<BpBid>& bids = pool.bids();
    result.outcomes.resize(bids.size());
    if (parallel_pivots_engaged(opt, bids.size())) {
        // The graph's adjacency index builds lazily on first use; warm
        // it before concurrent readers race to be that first use.
        pool.graph().warm_adjacency();
        std::vector<std::exception_ptr> errors(bids.size());
        util::ThreadPool threads(opt.threads);
        threads.parallel_for(bids.size(), [&](std::size_t i) {
            try {
                result.outcomes[i] =
                    clarke_pivot(pool, *engine_oracle, *sl, bids[i], opt, cache_ptr);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
        // Rethrow the first error in bid order, so failures too are
        // deterministic under concurrency.
        for (const std::exception_ptr& error : errors) {
            if (error) std::rethrow_exception(error);
        }
    } else {
        for (std::size_t i = 0; i < bids.size(); ++i) {
            result.outcomes[i] = clarke_pivot(pool, *engine_oracle, *sl, bids[i], opt, cache_ptr);
        }
    }

    // Serial assembly in bid order: the totals and the lookup index do
    // not depend on pivot completion order.
    result.outcome_index.reserve(result.outcomes.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
        result.total_outlay += result.outcomes[i].payment;
        result.outcome_index.emplace(result.outcomes[i].bp, i);
    }
    result.oracle_queries = oracle.query_count();
    if (cache_ptr) {
        const AuctionCache::Stats stats = cache_ptr->stats();
        result.oracle_cache_hits = stats.verdict_hits - cache_before.verdict_hits;
        result.solve_cache_hits = stats.solve_hits - cache_before.solve_hits;
        POC_OBS_COUNT("market.auction.oracle_cache_hits", result.oracle_cache_hits);
        POC_OBS_COUNT("market.auction.solve_cache_hits", result.solve_cache_hits);
    }
    // Real oracle evaluations attributable to this auction (exact: the
    // atomic lifetime count is differenced around the run).
    POC_OBS_COUNT("market.auction.oracle_queries", oracle.query_count() - queries_before);
    POC_OBS_COUNT("market.auction.outlay_microusd", result.total_outlay.micros());
    return result;
}

namespace {

void write_links(util::BinaryWriter& w, const std::vector<net::LinkId>& links) {
    w.u64(links.size());
    for (const net::LinkId l : links) w.u32(l.value());
}

std::vector<net::LinkId> read_links(util::BinaryReader& r) {
    const std::uint64_t n = r.u64();
    std::vector<net::LinkId> links;
    links.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) links.push_back(net::LinkId{r.u32()});
    return links;
}

}  // namespace

void write_auction_result(util::BinaryWriter& w, const AuctionResult& result) {
    write_links(w, result.selection.links);
    w.i64(result.selection.cost.micros());
    w.i64(result.virtual_cost.micros());
    w.u64(result.outcomes.size());
    for (const BpOutcome& o : result.outcomes) {
        w.u32(o.bp.value());
        w.str(o.name);
        write_links(w, o.selected_links);
        w.i64(o.bid_cost.micros());
        w.i64(o.cost_without.micros());
        w.i64(o.payment.micros());
        w.f64(o.pob);
        w.boolean(o.pivot_defined);
    }
    w.i64(result.total_outlay.micros());
    w.u64(result.oracle_queries);
    w.u64(result.oracle_cache_hits);
    w.u64(result.solve_cache_hits);
}

AuctionResult read_auction_result(util::BinaryReader& r) {
    AuctionResult result;
    result.selection.links = read_links(r);
    result.selection.cost = util::Money::from_micros(r.i64());
    result.virtual_cost = util::Money::from_micros(r.i64());
    const std::uint64_t n = r.u64();
    result.outcomes.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        BpOutcome& o = result.outcomes[i];
        o.bp = BpId{r.u32()};
        o.name = r.str();
        o.selected_links = read_links(r);
        o.bid_cost = util::Money::from_micros(r.i64());
        o.cost_without = util::Money::from_micros(r.i64());
        o.payment = util::Money::from_micros(r.i64());
        o.pob = r.f64();
        o.pivot_defined = r.boolean();
    }
    result.total_outlay = util::Money::from_micros(r.i64());
    result.oracle_queries = r.u64();
    result.oracle_cache_hits = r.u64();
    result.solve_cache_hits = r.u64();
    result.outcome_index.reserve(result.outcomes.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
        result.outcome_index.emplace(result.outcomes[i].bp, i);
    }
    return result;
}

}  // namespace poc::market
