#include "market/vcg.hpp"

#include <algorithm>

namespace poc::market {

const BpOutcome& AuctionResult::outcome(BpId bp) const {
    const auto it = std::find_if(outcomes.begin(), outcomes.end(),
                                 [bp](const BpOutcome& o) { return o.bp == bp; });
    POC_EXPECTS(it != outcomes.end());
    return *it;
}

namespace {

std::optional<Selection> solve(const OfferPool& pool, const AcceptabilityOracle& oracle,
                               const std::vector<net::LinkId>& available,
                               const AuctionOptions& opt) {
    return opt.exact ? select_links_exact(pool, oracle, available)
                     : select_links(pool, oracle, available, opt.windet);
}

}  // namespace

std::optional<AuctionResult> run_auction(const OfferPool& pool,
                                         const AcceptabilityOracle& oracle,
                                         const AuctionOptions& opt) {
    const auto sl = solve(pool, oracle, pool.offered_links(), opt);
    if (!sl) return std::nullopt;

    AuctionResult result;
    result.selection = *sl;

    std::vector<net::LinkId> selected_virtual;
    for (const net::LinkId l : sl->links) {
        if (pool.is_virtual(l)) selected_virtual.push_back(l);
    }
    result.virtual_cost = pool.virtual_links().cost(selected_virtual);
    result.total_outlay = result.virtual_cost;

    for (const BpBid& bid : pool.bids()) {
        BpOutcome out;
        out.bp = bid.bp();
        out.name = bid.name();
        out.selected_links = pool.owned_subset(sl->links, bid.bp());
        const auto own_cost = bid.cost(out.selected_links);
        POC_ASSERT(own_cost.has_value());  // winners are always priced
        out.bid_cost = *own_cost;

        // Clarke pivot: re-solve with this BP's offers withdrawn.
        std::vector<net::LinkId> without;
        without.reserve(pool.offered_links().size());
        for (const net::LinkId l : pool.offered_links()) {
            if (pool.owner(l) != bid.bp()) without.push_back(l);
        }
        const auto sl_without = solve(pool, oracle, without, opt);
        if (!sl_without) {
            // A(OL - L_alpha) empty: the paper's assumption is violated;
            // the pivot term is undefined. Pay the declared cost and
            // flag it.
            out.pivot_defined = false;
            out.payment = out.bid_cost;
        } else {
            out.cost_without = sl_without->cost;
            // The heuristic solver can return SL_-alpha worse than it
            // found SL (or, rarely, slightly better); clamp the
            // externality at zero so payments respect the VCG lower
            // bound P_alpha >= C_alpha(SL_alpha). With the exact solver
            // the externality is non-negative by optimality.
            const util::Money externality =
                std::max(util::Money{}, sl_without->cost - sl->cost);
            out.payment = out.bid_cost + externality;
        }
        out.pob = out.bid_cost.is_zero() ? 0.0
                                         : util::ratio(out.payment - out.bid_cost, out.bid_cost);
        result.total_outlay += out.payment;
        result.outcomes.push_back(std::move(out));
    }
    result.oracle_queries = oracle.query_count();
    return result;
}

}  // namespace poc::market
