// Manipulation analysis for the auction (paper section 3.3, collusion
// paragraph): "If the BPs can guess in advance what the set SL is, they
// can decide to not offer any links not in this set without changing
// their own payoff, but possibly changing that of others ... the
// presence of the connections to external ISPs sets an upper bound on
// the costs of alternate paths, so any of the manipulations ... can
// only have limited impact."
//
// This module reproduces that reasoning quantitatively: re-run the
// auction with every BP withholding its non-selected links and measure
// the payment inflation, plus a misreporting probe used by the
// strategyproofness property tests.
#pragma once

#include <functional>
#include <optional>

#include "market/vcg.hpp"

namespace poc::market {

/// Joint-withholding experiment result.
struct WithholdingAnalysis {
    AuctionResult baseline;
    /// Auction re-run where each BP offers only its baseline-selected
    /// links (the best-case collusion the paper describes).
    AuctionResult withheld;
    /// Per-BP payment change (withheld - baseline), in bid order.
    std::vector<util::Money> payment_delta;
    /// Total outlay change: the cost of the collusion to the POC,
    /// bounded above by rerouting everything onto virtual links.
    util::Money outlay_delta;
};

/// Run the joint link-withholding scenario. Returns nullopt when either
/// auction is infeasible.
std::optional<WithholdingAnalysis> analyze_joint_withholding(const OfferPool& pool,
                                                             const AcceptabilityOracle& oracle,
                                                             const AuctionOptions& opt = {});

/// Utility of BP `bp` under a (possibly misreported) pool: payment
/// received minus *true* cost of the links it wins, where the true cost
/// function is supplied separately. Used by strategyproofness tests:
/// truthful utility >= misreported utility for every probe.
util::Money bp_utility(const AuctionResult& result, BpId bp,
                       const std::function<util::Money(const std::vector<net::LinkId>&)>&
                           true_cost);

/// Rebuild a pool with one BP's base prices scaled by `factor`
/// (uniform over- or under-bidding probe). Discount tiers are copied
/// unchanged; requires no bundle overrides.
OfferPool with_scaled_bid(const OfferPool& pool, BpId bp, double factor);

/// Rebuild a pool with one BP withholding the given links.
OfferPool with_withheld_links(const OfferPool& pool, BpId bp,
                              const std::vector<net::LinkId>& withheld);

}  // namespace poc::market
