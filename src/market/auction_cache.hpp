// Memoization for the auction engine (DESIGN.md §5). Two tables, both
// keyed by the *canonicalized* link set — link ids in ascending order,
// which is exactly what Subgraph::active_links() and the OfferPool
// availability accessors already produce:
//
//  * verdict cache - AcceptabilityOracle answers. A verdict is a pure
//    function of the active set (for a fixed oracle), so a hit is an
//    exact replay, never an approximation: cached auction paths stay
//    bit-identical to the serial uncached path.
//  * solve memo    - whole winner-determination results keyed by the
//    available set, so a Clarke-pivot re-solve whose availability
//    coincides with an earlier solve (e.g. a BP that offered nothing)
//    reuses it outright.
//
// Thread-safe: the pivot re-solves of run_auction share one cache
// across the work-stealing pool. The verdict table is sharded to keep
// lock contention off the hot path; hit/miss tallies are atomics so the
// accounting stays exact under concurrency.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "market/windet.hpp"

namespace poc::market {

class AuctionCache {
public:
    struct Stats {
        std::size_t verdict_hits = 0;
        std::size_t verdict_misses = 0;
        std::size_t solve_hits = 0;
        std::size_t solve_misses = 0;
    };

    /// Cached oracle verdict for the canonical link set, if any.
    std::optional<bool> find_verdict(const std::vector<net::LinkId>& key) const;
    void store_verdict(const std::vector<net::LinkId>& key, bool verdict);

    /// Cached winner-determination result for the canonical available
    /// set. The outer optional distinguishes "not cached" from a cached
    /// infeasible solve (inner nullopt).
    std::optional<std::optional<Selection>> find_solve(
        const std::vector<net::LinkId>& key) const;
    void store_solve(const std::vector<net::LinkId>& key, const std::optional<Selection>& result);

    Stats stats() const;

    /// Drop every memoized verdict and solve. The hit/miss tallies are
    /// lifetime counters and survive (callers difference them around a
    /// run). Used by delta re-clearing (market/delta_reclear.hpp) when
    /// the cross-epoch context changes and carried entries would be
    /// unsound.
    void clear();

private:
    struct LinkSetHash {
        std::size_t operator()(const std::vector<net::LinkId>& key) const noexcept;
    };
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::vector<net::LinkId>, bool, LinkSetHash> verdicts;
    };
    static constexpr std::size_t kShards = 16;

    Shard& shard_for(const std::vector<net::LinkId>& key) const;

    mutable Shard shards_[kShards];
    mutable std::mutex solve_mutex_;
    std::unordered_map<std::vector<net::LinkId>, std::optional<Selection>, LinkSetHash> solves_;

    mutable std::atomic<std::size_t> verdict_hits_{0};
    mutable std::atomic<std::size_t> verdict_misses_{0};
    mutable std::atomic<std::size_t> solve_hits_{0};
    mutable std::atomic<std::size_t> solve_misses_{0};
};

/// Oracle decorator that answers from an AuctionCache and delegates to
/// the wrapped oracle on a miss. The wrapped oracle's query_count()
/// keeps counting only real evaluations, which is what
/// AuctionResult::oracle_queries reports — exact with caching on.
class CachingOracle final : public Oracle {
public:
    CachingOracle(const Oracle& inner, AuctionCache& cache) : inner_(&inner), cache_(&cache) {}

    /// The decorator adds memoization, not semantics: purity is the
    /// wrapped oracle's to certify.
    std::optional<std::uint64_t> verdict_fingerprint() const override {
        return inner_->verdict_fingerprint();
    }

private:
    bool accepts_impl(const net::Subgraph& sg) const override;

    const Oracle* inner_;
    AuctionCache* cache_;
};

}  // namespace poc::market
