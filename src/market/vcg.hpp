// The strategy-proof bandwidth auction (paper section 3.3): a VCG
// mechanism with the Clarke pivot rule.
//
//   SL     = argmin { C(L) : L in A(OL) }
//   SL_-a  = argmin { C(L) : L in A(OL - L_a) }
//   P_a    = C_a(SL_a) + ( C(SL_-a) - C(SL) )
//
// Payments never fall below the BP's declared cost C_a(SL_a) because
// removing links cannot lower the optimum; the payment-over-bid margin
// PoB = (P_a - C_a) / C_a is the quantity plotted in Figure 2.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "market/windet.hpp"
#include "util/journal.hpp"

namespace poc::market {

class DeltaReclearState;

/// Per-BP auction outcome.
struct BpOutcome {
    BpId bp;
    std::string name;
    /// SL_alpha: this BP's links in the winning set.
    std::vector<net::LinkId> selected_links;
    /// C_alpha(SL_alpha): the BP's declared cost of its winning links.
    util::Money bid_cost;
    /// C(SL_-alpha): optimum cost with this BP absent.
    util::Money cost_without;
    /// P_alpha: VCG payment to this BP.
    util::Money payment;
    /// Payment-over-bid margin (P-C)/C; zero when the BP won nothing.
    double pob = 0.0;
    /// False when A(OL - L_alpha) was empty, so the Clarke term is
    /// undefined (the paper assumes this never happens; we surface it).
    bool pivot_defined = true;
};

struct AuctionResult {
    /// SL and C(SL).
    Selection selection;
    /// C_v(SL intersect VL): contract cost of selected virtual links.
    util::Money virtual_cost;
    /// Per-BP outcomes, in bid order.
    std::vector<BpOutcome> outcomes;
    /// Sum of all P_alpha plus the virtual-link contract cost: the
    /// POC's total monthly outlay, which its LMP charges must recoup.
    util::Money total_outlay;
    /// Real acceptability-oracle evaluations over the oracle's lifetime
    /// (diagnostics). Exact under concurrency (atomic counting) and
    /// with caching on: memoized answers are *not* re-counted here.
    std::size_t oracle_queries = 0;
    /// Oracle verdicts answered from the memoization layer instead of
    /// re-evaluated (zero when AuctionOptions::cache is off).
    std::size_t oracle_cache_hits = 0;
    /// Whole pivot re-solves reused from the solve memo (zero when
    /// AuctionOptions::cache is off).
    std::size_t solve_cache_hits = 0;
    /// Position of each BP's outcome in `outcomes`; built by
    /// run_auction so outcome() is an O(1) lookup.
    std::unordered_map<BpId, std::size_t> outcome_index;

    /// Outcome lookup by BP id.
    const BpOutcome& outcome(BpId bp) const;
};

struct AuctionOptions {
    /// Use the exact branch-and-bound winner determination (small
    /// instances only); the heuristic otherwise.
    bool exact = false;
    WinnerDeterminationOptions windet;
    /// Worker threads for the per-BP Clarke-pivot re-solves, which are
    /// independent by construction. 0 or 1 = serial (the reproducible
    /// default); any value produces bit-identical results.
    std::size_t threads = 1;
    /// Minimum number of pivot re-solves (= bids) before the thread
    /// pool is engaged at all. Below it the auction runs serially even
    /// with threads > 1: pool spin-up/teardown costs more than a
    /// handful of pivots (the BENCH_auction.json small-instance rows
    /// sat at 0.75-0.99x serial before this gate). Identical results
    /// on both sides of the cutover.
    std::size_t parallel_min_pivots = 8;
    /// Memoize oracle verdicts and whole pivot solves within this
    /// auction (see market/auction_cache.hpp). Results are
    /// bit-identical to the uncached path; only the work is shared.
    bool cache = false;
    /// Cross-epoch warm start (market/delta_reclear.hpp): when set and
    /// the oracle certifies purity (Oracle::verdict_fingerprint), this
    /// auction reuses the previous run's verdict/solve memo whenever
    /// the offered pool differs by at most `delta_max_links` links
    /// under an unchanged context, and solves cold (dropping the memo)
    /// otherwise. Supersedes `cache` when engaged. Results are
    /// bit-identical to cold solves either way; the threshold bounds
    /// memory and staleness, not correctness. The pointed-to state must
    /// outlive every auction using it, and auctions sharing one state
    /// must not run concurrently with each other.
    DeltaReclearState* delta = nullptr;
    /// The k-link cutover: offered-set symmetric differences larger
    /// than this fall back to a cold solve.
    std::size_t delta_max_links = 8;
};

/// Run the full auction. Returns nullopt when OL itself is unacceptable
/// (no backbone can be provisioned from the offers).
std::optional<AuctionResult> run_auction(const OfferPool& pool, const Oracle& oracle,
                                         const AuctionOptions& opt = {});

/// Whether run_auction would fan `pivot_count` Clarke pivots across a
/// pool under `opt` (exposed so tests can pin the cutover exactly).
bool parallel_pivots_engaged(const AuctionOptions& opt, std::size_t pivot_count);

/// Binary (de)serialization of a full AuctionResult for the durable
/// epoch runtime's write-ahead journal: byte-exact round trip of every
/// field (the O(1) outcome_index is rebuilt on read, exactly as
/// run_auction builds it).
void write_auction_result(util::BinaryWriter& w, const AuctionResult& result);
AuctionResult read_auction_result(util::BinaryReader& r);

}  // namespace poc::market
