// Winner determination: SL = argmin C(L) over L in A(OL), the lowest-
// cost acceptable link set (paper section 3.3). The problem generalizes
// weighted set cover, so we provide:
//
//  * select_links        - scalable heuristic: batched reverse deletion
//                          with bisection, ordered by price-per-gbps,
//                          optionally followed by a single-link polish
//                          pass. Used at Figure 2 scale (thousands of
//                          offered links).
//  * select_links_exact  - branch-and-bound over subsets with monotone
//                          acceptability pruning and additive cost lower
//                          bounds. Exponential; for instances up to ~20
//                          links, and for the strategyproofness property
//                          tests (exact optimality is what VCG's
//                          incentive guarantee relies on).
#pragma once

#include <optional>
#include <vector>

#include "market/bid.hpp"
#include "market/constraints.hpp"

namespace poc::market {

/// A selected link set with its total cost C(SL).
struct Selection {
    std::vector<net::LinkId> links;
    util::Money cost;
};

struct WinnerDeterminationOptions {
    /// Initial reverse-deletion batch size; halves on rejection.
    std::size_t batch_size = 64;
    /// Run a final pass attempting each retained link individually.
    bool polish_pass = true;
};

/// Heuristic minimum-cost acceptable subset of `available`. Returns
/// nullopt when even the full available set is unacceptable.
std::optional<Selection> select_links(const OfferPool& pool, const Oracle& oracle,
                                      const std::vector<net::LinkId>& available,
                                      const WinnerDeterminationOptions& opt = {});

/// Exact minimum-cost acceptable subset (branch and bound). Requires no
/// bundle overrides in any bid (the cost lower bound assumes additive-
/// with-tier pricing). Intended for small instances.
std::optional<Selection> select_links_exact(const OfferPool& pool,
                                            const Oracle& oracle,
                                            const std::vector<net::LinkId>& available);

}  // namespace poc::market
