// Warm-started winner determination across epochs (DESIGN.md §7).
//
// The per-auction AuctionCache memoizes oracle verdicts and whole pivot
// solves *within* one run_auction call. Between epochs the offered pool
// usually changes by a handful of links (faults, withdrawals, repairs)
// while everything else — graph weights, traffic matrix, constraint,
// per-link pricing — stays put. Under those conditions every cached
// entry remains exactly valid:
//
//  * a verdict is a pure function of (active set, oracle fingerprint);
//    the pool is not involved at all, so verdicts survive any pool
//    reshaping as long as the oracle fingerprints match;
//  * a solve keyed by an availability set depends, beyond the oracle,
//    only on the pricing of links *inside* that set (reverse deletion
//    orders and prices members of the set; C_alpha(L cap L_alpha) reads
//    the owner's base prices and discount tiers for those links only).
//    Entries therefore survive link withdrawals and additions, provided
//    every link present in both epochs kept its owner, base price, and
//    owner tier schedule.
//
// DeltaReclearState carries one AuctionCache across run_auction calls
// and enforces exactly those conditions at each run boundary: when the
// context digest matches, every common link's pricing digest matches,
// and the offered sets differ by at most `max_links` links, the carried
// memo is kept (warm run); otherwise it is dropped and the run solves
// cold. Warm and cold runs are bit-identical by construction — the
// delta path never alters the engine's control flow, it only replays
// memoized pure sub-results — so the threshold is purely a
// performance/memory knob, never a correctness one.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "market/auction_cache.hpp"
#include "market/vcg.hpp"

namespace poc::market {

/// One offered link's cross-epoch pricing identity: owner, base price,
/// and the owner's discount-tier schedule, digested. Two epochs may
/// share memo entries only where the digests of their common links
/// agree (see delta_offer_digests).
struct OfferDigest {
    net::LinkId link;
    std::uint64_t digest = 0;
};

/// The carried warm-start state. One instance per auction *sequence*
/// (a chaos run, a scenario, an epoch runtime); run_auction consults it
/// through AuctionOptions::delta. Not itself thread-safe — begin_run
/// happens serially at each auction boundary — but the cache it hands
/// out is, exactly as in the per-auction case.
class DeltaReclearState {
public:
    struct Stats {
        /// begin_run calls (= auctions that engaged the delta path).
        std::uint64_t runs = 0;
        /// Runs that kept the carried memo.
        std::uint64_t warm = 0;
        /// Runs that dropped it (first run, context change, pricing
        /// change on a common link, or delta above the threshold).
        std::uint64_t cold = 0;
        /// Sum of offered-set symmetric differences over warm runs.
        std::uint64_t delta_links = 0;
    };

    /// Decide warm vs cold for the coming auction and install its
    /// offered-set digests as the new baseline. Warm requires: a prior
    /// run, an equal context digest, pricing digests equal on every
    /// common link, and a symmetric difference of at most `max_links`
    /// links. A cold decision clears the carried cache. Returns warm.
    bool begin_run(std::uint64_t context, std::vector<OfferDigest> offered,
                   std::size_t max_links);

    /// The carried memo, for run_auction to use as its cache.
    AuctionCache& cache() noexcept { return cache_; }

    const Stats& stats() const noexcept { return stats_; }

    /// Forget everything (next run is cold).
    void reset();

private:
    AuctionCache cache_;
    bool primed_ = false;
    std::uint64_t context_ = 0;
    std::vector<OfferDigest> prev_;
    Stats stats_;
};

/// The context digest for a (pool, oracle, options) triple: the oracle's
/// purity fingerprint plus every engine knob that shapes solve results.
/// nullopt when cross-run reuse cannot be certified — the oracle opted
/// out (no fingerprint), or a bid carries bundle overrides (their exact
/// subset pricing cannot be attributed to individual links, so the
/// per-link digest compatibility check below would be unsound).
std::optional<std::uint64_t> delta_context(const OfferPool& pool, const Oracle& oracle,
                                           const AuctionOptions& opt);

/// Per-link pricing digests of the pool's offered set, in id order
/// (the canonical form everything in the engine uses).
std::vector<OfferDigest> delta_offer_digests(const OfferPool& pool);

}  // namespace poc::market
