#include "market/constraints.hpp"

#include "net/connectivity.hpp"
#include "net/mcf.hpp"
#include "util/hash.hpp"

namespace poc::market {

const char* constraint_name(ConstraintKind kind) {
    switch (kind) {
        case ConstraintKind::kLoad:
            return "#1 load";
        case ConstraintKind::kSingleFailure:
            return "#2 single-failure";
        case ConstraintKind::kPerPairFailure:
            return "#3 per-pair-failure";
    }
    return "?";
}

AcceptabilityOracle::AcceptabilityOracle(const net::Graph& graph, net::TrafficMatrix tm,
                                         ConstraintKind kind, OracleOptions opt)
    : graph_(&graph), tm_(std::move(tm)), kind_(kind), opt_(opt) {
    POC_EXPECTS(opt_.fast_failure_derate > 0.0 && opt_.fast_failure_derate <= 1.0);
}

bool AcceptabilityOracle::accepts_impl(const net::Subgraph& sg) const {
    POC_EXPECTS(&sg.graph() == graph_);
    return opt_.fidelity == OracleFidelity::kExact ? accepts_exact(sg) : accepts_fast(sg);
}

std::optional<std::uint64_t> AcceptabilityOracle::verdict_fingerprint() const {
    // Content digest, not address: chaos rebuilds equal-content graph
    // copies per re-auction, and those must fingerprint equal.
    util::Fnv64 h;
    h.add(static_cast<std::uint64_t>(kind_));
    h.add(static_cast<std::uint64_t>(opt_.fidelity));
    h.add_f64(opt_.fast_failure_derate);
    h.add_f64(opt_.fptas_eps);
    h.add(graph_->node_count());
    h.add(graph_->link_count());
    for (std::size_t i = 0; i < graph_->link_count(); ++i) {
        const net::Link& l = graph_->link(net::LinkId{i});
        h.add(l.a.value());
        h.add(l.b.value());
        h.add_f64(l.capacity_gbps);
        h.add_f64(l.length_km);
    }
    h.add(tm_.size());
    for (const net::Demand& d : tm_) {
        h.add(d.src.value());
        h.add(d.dst.value());
        h.add_f64(d.gbps);
    }
    return h.value();
}

bool AcceptabilityOracle::accepts_exact(const net::Subgraph& sg) const {
    net::ResilienceOptions ropt;
    ropt.fptas_eps = opt_.fptas_eps;
    ropt.path_cache = opt_.path_cache;
    switch (kind_) {
        case ConstraintKind::kLoad:
            return net::satisfies_load(sg, tm_, opt_.fptas_eps);
        case ConstraintKind::kSingleFailure:
            return net::satisfies_single_failure(sg, tm_, ropt);
        case ConstraintKind::kPerPairFailure:
            return net::satisfies_per_pair_failure(sg, tm_, ropt);
    }
    return false;
}

bool AcceptabilityOracle::accepts_fast(const net::Subgraph& sg) const {
    if (!net::all_pairs_connected(sg, tm_)) return false;
    switch (kind_) {
        case ConstraintKind::kLoad: {
            return net::greedy_path_routing(sg, tm_).has_value();
        }
        case ConstraintKind::kSingleFailure: {
            // (a) Demand endpoints must be 2-edge-connected: connected
            //     even with every bridge removed.
            net::Subgraph no_bridges = sg;
            for (const net::LinkId b : net::find_bridges(sg)) no_bridges.set_active(b, false);
            if (!net::all_pairs_connected(no_bridges, tm_)) return false;
            // (b) The matrix must fit with protection headroom: every
            //     link derated to `fast_failure_derate` of capacity.
            net::GreedyRoutingOptions gopt;
            gopt.utilization_cap = opt_.fast_failure_derate;
            return net::greedy_path_routing(sg, tm_, gopt).has_value();
        }
        case ConstraintKind::kPerPairFailure: {
            const auto primaries = net::primary_paths(sg, tm_, opt_.path_cache);
            if (!net::greedy_path_routing(sg, tm_).has_value()) return false;
            net::GreedyRoutingOptions gopt;
            gopt.exclusions = &primaries;
            return net::greedy_path_routing(sg, tm_, gopt).has_value();
        }
    }
    return false;
}

}  // namespace poc::market
