// Flow-level simulation of the provisioned backbone: route the actual
// traffic, report utilization, path stretch, and how much rides the
// external-ISP virtual links (the fallback of section 3.3). The paper
// leaves packet-level operation to "industry best practices"; flow
// granularity is sufficient for every quantity it discusses.
#pragma once

#include <vector>

#include "net/mcf.hpp"

namespace poc::core {

struct FlowReport {
    double total_offered_gbps = 0.0;
    double total_routed_gbps = 0.0;
    bool fully_routed = false;

    /// Utilization = load / capacity over links that carry traffic.
    double max_utilization = 0.0;
    double mean_utilization = 0.0;
    /// Per-link load (indexed by link id; zero for inactive links).
    std::vector<double> link_load_gbps;

    /// Demand-weighted mean routed path length (km) and the mean
    /// shortest-possible length (stretch = routed / shortest).
    double mean_path_km = 0.0;
    double mean_shortest_km = 0.0;
    double stretch = 1.0;

    /// Share of total gbps-km carried on virtual (external-ISP) links.
    double virtual_share = 0.0;
};

/// Route `tm` over the backbone and measure. `is_virtual` flags links
/// that are external-ISP virtual links (may be empty if none).
FlowReport simulate_flows(const net::Subgraph& backbone, const net::TrafficMatrix& tm,
                          const std::vector<bool>& is_virtual = {});

}  // namespace poc::core
