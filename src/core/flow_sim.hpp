// Flow-level simulation of the provisioned backbone: route the actual
// traffic, report utilization, path stretch, and how much rides the
// external-ISP virtual links (the fallback of section 3.3). The paper
// leaves packet-level operation to "industry best practices"; flow
// granularity is sufficient for every quantity it discusses.
#pragma once

#include <vector>

#include "net/mcf.hpp"
#include "net/path_cache.hpp"

namespace poc::core {

/// Data-plane fast-path knobs (DESIGN.md §6). The defaults reproduce
/// the plain serial behavior; every setting is bit-identical to it.
struct FlowSimOptions {
    /// Shared shortest-path-tree cache for the stretch metric's
    /// per-demand shortest-distance pass (one tree per distinct demand
    /// source). Null computes the trees locally.
    net::PathCache* path_cache = nullptr;
    /// Threads for the per-source SSSP fan-out (1 = serial).
    std::size_t sssp_threads = 1;
};

struct FlowReport {
    double total_offered_gbps = 0.0;
    double total_routed_gbps = 0.0;
    bool fully_routed = false;

    /// Utilization = load / capacity over links that carry traffic.
    double max_utilization = 0.0;
    double mean_utilization = 0.0;
    /// Per-link load (indexed by link id; zero for inactive links).
    std::vector<double> link_load_gbps;

    /// Demand-weighted mean routed path length (km) and the mean
    /// shortest-possible length (stretch = routed / shortest).
    double mean_path_km = 0.0;
    double mean_shortest_km = 0.0;
    double stretch = 1.0;

    /// Share of total gbps-km carried on virtual (external-ISP) links.
    double virtual_share = 0.0;
};

/// Route `tm` over the backbone and measure. `is_virtual` flags links
/// that are external-ISP virtual links (may be empty if none).
FlowReport simulate_flows(const net::Subgraph& backbone, const net::TrafficMatrix& tm,
                          const std::vector<bool>& is_virtual = {},
                          const FlowSimOptions& opt = {});

}  // namespace poc::core
