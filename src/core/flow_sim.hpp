// Flow-level simulation of the provisioned backbone: route the actual
// traffic, report utilization, path stretch, and how much rides the
// external-ISP virtual links (the fallback of section 3.3). The paper
// leaves packet-level operation to "industry best practices"; flow
// granularity is sufficient for every quantity it discusses.
#pragma once

#include <vector>

#include "net/mcf.hpp"
#include "net/path_cache.hpp"
#include "net/shard.hpp"

namespace poc::core {

/// Which data plane routes an epoch's traffic. This is a *semantic*
/// choice — the two modes route demands differently and produce
/// different reports — so unlike the engine knobs below it is part of
/// the journal meta fingerprint (sim/replay.cpp).
enum class FlowRouting : std::uint8_t {
    /// The seed behavior: greedy capacity-aware water-filling with a
    /// concurrent-flow fallback when the matrix does not fit. Serial
    /// by nature (each admission sees the loads of all earlier ones).
    kGreedy = 0,
    /// Sharded shared-nothing primary-path routing (net/shard.hpp,
    /// DESIGN.md §9): every demand rides its shortest-by-length path
    /// capacity-obliviously. Scales to 10^5 nodes / 10^6 demands and
    /// is bit-identical for every shard/thread count.
    kPrimary = 1,
};

/// Data-plane fast-path knobs (DESIGN.md §6/§9). The defaults
/// reproduce the plain serial behavior; every setting other than
/// `routing` is bit-identical to it.
struct FlowSimOptions {
    /// Shared shortest-path-tree cache for the per-source SSSP passes
    /// (stretch metric under kGreedy, the routing itself under
    /// kPrimary). Null computes the trees locally.
    net::PathCache* path_cache = nullptr;
    /// Threads for the per-source SSSP fan-out (1 = serial).
    std::size_t sssp_threads = 1;
    /// Data-plane selection (semantic; fingerprinted).
    FlowRouting routing = FlowRouting::kGreedy;
    /// Shard tasks for the kPrimary partition (engine knob: results
    /// are bit-identical for every value; ignored under kGreedy).
    std::size_t flow_shards = 1;
};

struct FlowReport {
    double total_offered_gbps = 0.0;
    double total_routed_gbps = 0.0;
    bool fully_routed = false;

    /// Utilization = load / capacity over links that carry traffic.
    double max_utilization = 0.0;
    double mean_utilization = 0.0;
    /// Per-link load (indexed by link id; zero for inactive links).
    std::vector<double> link_load_gbps;

    /// Demand-weighted mean routed path length (km) and the mean
    /// shortest-possible length (stretch = routed / shortest).
    double mean_path_km = 0.0;
    double mean_shortest_km = 0.0;
    double stretch = 1.0;

    /// Share of total gbps-km carried on virtual (external-ISP) links.
    double virtual_share = 0.0;
};

/// Route `tm` over the backbone and measure. `is_virtual` flags links
/// that are external-ISP virtual links (may be empty if none).
FlowReport simulate_flows(const net::Subgraph& backbone, const net::TrafficMatrix& tm,
                          const std::vector<bool>& is_virtual = {},
                          const FlowSimOptions& opt = {});

/// The kPrimary data plane with caller-owned storage: `tm_soa` is the
/// source-sorted matrix (rebuild only when the matrix changes) and
/// `ws` the per-shard buffers, so repeated epochs reuse the sort
/// permutation and every per-shard buffer (the routing core itself is
/// allocation-free past warm-up; only the returned report allocates).
/// `total_offered_gbps` must be total_demand() of the
/// original matrix (computed in AoS order so the report matches
/// simulate_flows bit for bit). simulate_flows with routing=kPrimary
/// delegates here with temporary storage.
FlowReport simulate_flows_primary(const net::Subgraph& backbone,
                                  const net::TrafficMatrixSoA& tm_soa,
                                  double total_offered_gbps,
                                  const std::vector<bool>& is_virtual,
                                  const FlowSimOptions& opt, net::ShardWorkspace& ws);

}  // namespace poc::core
