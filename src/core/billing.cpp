#include "core/billing.hpp"

#include <algorithm>
#include <cmath>

namespace poc::core {

namespace {

constexpr Party kPoc{PartyKind::kPoc, 0};

/// Per-entity sent/received volumes implied by the roster.
struct Usage {
    std::vector<double> lmp_sent, lmp_recv;  // indexed by LMP
    std::vector<double> csp_sent, csp_recv;  // direct CSPs only
    double total = 0.0;                      // sum of sent+received
};

Usage compute_usage(const EntityRoster& roster, double reverse_fraction) {
    Usage u;
    u.lmp_sent.assign(roster.lmps.size(), 0.0);
    u.lmp_recv.assign(roster.lmps.size(), 0.0);
    u.csp_sent.assign(roster.csps.size(), 0.0);
    u.csp_recv.assign(roster.csps.size(), 0.0);

    for (std::size_t ci = 0; ci < roster.csps.size(); ++ci) {
        const CspInfo& csp = roster.csps[ci];
        for (std::size_t li = 0; li < roster.lmps.size(); ++li) {
            const LmpInfo& lmp = roster.lmps[li];
            const double subscribers = lmp.customers * csp.take_rate;
            const double down = subscribers / 1000.0 * csp.gbps_per_1k_subscribers;
            const double up = down * reverse_fraction;
            if (down <= 0.0) continue;

            // Eyeball side always bills to the subscriber LMP.
            u.lmp_recv[li] += down;
            u.lmp_sent[li] += up;

            // Content side bills to the CSP if directly attached, else
            // to its hosting LMP.
            if (csp.attachment == CspAttachment::kDirectToPoc) {
                u.csp_sent[ci] += down;
                u.csp_recv[ci] += up;
            } else {
                u.lmp_sent[csp.via_lmp.index()] += down;
                u.lmp_recv[csp.via_lmp.index()] += up;
            }
        }
    }
    for (const double v : u.lmp_sent) u.total += v;
    for (const double v : u.lmp_recv) u.total += v;
    for (const double v : u.csp_sent) u.total += v;
    for (const double v : u.csp_recv) u.total += v;
    return u;
}

}  // namespace

EpochReport run_billing_epoch(const ProvisionedBackbone& backbone, const EntityRoster& roster,
                              const market::OfferPool& pool, const BillingOptions& opt,
                              const ServiceBilling* services) {
    POC_EXPECTS(opt.reverse_fraction >= 0.0 && opt.reverse_fraction <= 1.0);
    POC_EXPECTS(opt.poc_margin >= 0.0);
    POC_EXPECTS(services == nullptr ||
                (services->qos_fees_by_lmp.size() == roster.lmps.size() &&
                 services->cdn_fees_by_csp.size() == roster.csps.size()));
    roster.validate(pool.graph());

    EpochReport report;

    // --- POC side: pay the BPs (auction) and external ISPs. ---------
    for (const market::BpOutcome& out : backbone.auction.outcomes) {
        report.ledger.record(kPoc, Party{PartyKind::kBandwidthProvider, out.bp.value()},
                             TransferKind::kLinkLease, out.payment, out.name + " lease");
    }
    // Virtual-link contract cost plus general-access contracts go to
    // the external ISPs (index 0 collects virtual-link fees when the
    // roster has ISPs; the split across ISPs is contract detail).
    util::Money isp_total = backbone.auction.virtual_cost;
    for (std::size_t i = 0; i < roster.external_isps.size(); ++i) {
        util::Money amount = roster.external_isps[i].access_contract;
        if (i == 0) amount += backbone.auction.virtual_cost, isp_total = util::Money{};
        report.ledger.record(kPoc, Party{PartyKind::kExternalIsp, static_cast<std::uint32_t>(i)},
                             TransferKind::kIspContract, amount,
                             roster.external_isps[i].name + " contract");
    }
    if (!isp_total.is_zero()) {
        // No external ISPs in the roster but virtual links were bought:
        // book them to a synthetic ISP party.
        report.ledger.record(kPoc, Party{PartyKind::kExternalIsp, 0},
                             TransferKind::kIspContract, isp_total, "virtual links");
    }

    util::Money outlay{};
    for (const Transfer& t : report.ledger.transfers()) outlay += t.amount;
    report.poc_outlay = outlay;

    // --- Section 3.1 service fees: booked first, credited against the
    //     outlay (the nonprofit passes service income back through
    //     lower access prices). ------------------------------------------
    if (services != nullptr) {
        for (std::size_t li = 0; li < roster.lmps.size(); ++li) {
            report.ledger.record(Party{PartyKind::kLmp, static_cast<std::uint32_t>(li)}, kPoc,
                                 TransferKind::kServiceFees, services->qos_fees_by_lmp[li],
                                 "QoS tier fees");
            report.service_revenue += services->qos_fees_by_lmp[li];
        }
        for (std::size_t ci = 0; ci < roster.csps.size(); ++ci) {
            report.ledger.record(Party{PartyKind::kCsp, static_cast<std::uint32_t>(ci)}, kPoc,
                                 TransferKind::kServiceFees, services->cdn_fees_by_csp[ci],
                                 "open CDN fees");
            report.service_revenue += services->cdn_fees_by_csp[ci];
        }
    }

    // --- Usage-based access charges that exactly recoup the remaining
    //     outlay. ---------------------------------------------------------
    const Usage usage = compute_usage(roster, opt.reverse_fraction);
    POC_EXPECTS(usage.total > 0.0);
    const util::Money target =
        std::max(util::Money{}, outlay.scaled(1.0 + opt.poc_margin) - report.service_revenue);
    report.usage_price_per_gbps = target.dollars() / usage.total;

    // Round each charge; track the residual and add it to the largest
    // payer so the POC nets exactly its margin.
    std::vector<UsageCharge> charges;
    for (std::size_t li = 0; li < roster.lmps.size(); ++li) {
        const double vol = usage.lmp_sent[li] + usage.lmp_recv[li];
        if (vol <= 0.0) continue;
        UsageCharge c;
        c.payer = Party{PartyKind::kLmp, static_cast<std::uint32_t>(li)};
        c.sent_gbps = usage.lmp_sent[li];
        c.received_gbps = usage.lmp_recv[li];
        c.amount = util::Money::from_dollars(vol * report.usage_price_per_gbps);
        charges.push_back(c);
    }
    for (std::size_t ci = 0; ci < roster.csps.size(); ++ci) {
        const double vol = usage.csp_sent[ci] + usage.csp_recv[ci];
        if (vol <= 0.0) continue;
        UsageCharge c;
        c.payer = Party{PartyKind::kCsp, static_cast<std::uint32_t>(ci)};
        c.sent_gbps = usage.csp_sent[ci];
        c.received_gbps = usage.csp_recv[ci];
        c.amount = util::Money::from_dollars(vol * report.usage_price_per_gbps);
        charges.push_back(c);
    }
    POC_ASSERT(!charges.empty());

    util::Money charged{};
    for (const UsageCharge& c : charges) charged += c.amount;
    const util::Money residual = target - charged;
    auto largest = std::max_element(
        charges.begin(), charges.end(),
        [](const UsageCharge& a, const UsageCharge& b) { return a.amount < b.amount; });
    largest->amount += residual;  // exact break-even true-up

    for (const UsageCharge& c : charges) {
        report.ledger.record(c.payer, kPoc, TransferKind::kPocAccess, c.amount,
                             "POC access (usage-based)");
    }
    report.poc_revenue = report.ledger.total(TransferKind::kPocAccess);
    report.charges = std::move(charges);

    // --- Customer-side flows (section 3.2's remaining bullets). ------
    for (std::size_t li = 0; li < roster.lmps.size(); ++li) {
        const LmpInfo& lmp = roster.lmps[li];
        const Party customers{PartyKind::kCustomers, static_cast<std::uint32_t>(li)};
        report.ledger.record(customers, Party{PartyKind::kLmp, static_cast<std::uint32_t>(li)},
                             TransferKind::kCustomerAccess,
                             lmp.access_charge.scaled(lmp.customers), "access subscriptions");
        for (std::size_t ci = 0; ci < roster.csps.size(); ++ci) {
            const CspInfo& csp = roster.csps[ci];
            const double subscribers = lmp.customers * csp.take_rate;
            report.ledger.record(customers, Party{PartyKind::kCsp, static_cast<std::uint32_t>(ci)},
                                 TransferKind::kCspSubscription,
                                 csp.subscription_price.scaled(subscribers),
                                 csp.name + " subscriptions");
        }
    }

    // Hosted CSPs reimburse their hosting LMP for the POC traffic they
    // cause (pass-through; the LMP already paid the POC above).
    for (std::size_t ci = 0; ci < roster.csps.size(); ++ci) {
        const CspInfo& csp = roster.csps[ci];
        if (csp.attachment != CspAttachment::kViaLmp) continue;
        double vol = 0.0;
        for (const LmpInfo& lmp : roster.lmps) {
            const double down = lmp.customers * csp.take_rate / 1000.0 *
                                csp.gbps_per_1k_subscribers;
            vol += down * (1.0 + opt.reverse_fraction);
        }
        report.ledger.record(Party{PartyKind::kCsp, static_cast<std::uint32_t>(ci)},
                             Party{PartyKind::kLmp, csp.via_lmp.value()},
                             TransferKind::kLmpHosting,
                             util::Money::from_dollars(vol * report.usage_price_per_gbps),
                             csp.name + " hosting pass-through");
    }

    POC_ENSURES(report.ledger.conserves());
    return report;
}

}  // namespace poc::core
