#include "core/entities.hpp"

#include <unordered_map>

namespace poc::core {

void EntityRoster::validate(const net::Graph& poc_graph) const {
    POC_EXPECTS(!lmps.empty());
    for (const LmpInfo& l : lmps) {
        POC_EXPECTS(l.attachment.valid());
        POC_EXPECTS(l.attachment.index() < poc_graph.node_count());
        POC_EXPECTS(l.customers >= 0.0);
    }
    for (const CspInfo& c : csps) {
        POC_EXPECTS(c.take_rate >= 0.0 && c.take_rate <= 1.0);
        POC_EXPECTS(c.gbps_per_1k_subscribers >= 0.0);
        if (c.attachment == CspAttachment::kDirectToPoc) {
            POC_EXPECTS(c.poc_router.valid());
            POC_EXPECTS(c.poc_router.index() < poc_graph.node_count());
        } else {
            POC_EXPECTS(c.via_lmp.valid());
            POC_EXPECTS(c.via_lmp.index() < lmps.size());
        }
    }
    for (const ExternalIspInfo& isp : external_isps) {
        for (const net::NodeId n : isp.attachments) {
            POC_EXPECTS(n.valid());
            POC_EXPECTS(n.index() < poc_graph.node_count());
        }
    }
}

net::TrafficMatrix roster_traffic(const EntityRoster& roster, double reverse_fraction) {
    POC_EXPECTS(reverse_fraction >= 0.0 && reverse_fraction <= 1.0);

    // Aggregate by (src router, dst router); the POC sees routers, not
    // individual subscribers.
    std::unordered_map<std::uint64_t, double> agg;
    auto key = [](net::NodeId a, net::NodeId b) {
        return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
    };
    auto add = [&](net::NodeId src, net::NodeId dst, double gbps) {
        if (src == dst || gbps <= 0.0) return;
        agg[key(src, dst)] += gbps;
    };

    for (const CspInfo& csp : roster.csps) {
        const net::NodeId origin = csp.attachment == CspAttachment::kDirectToPoc
                                       ? csp.poc_router
                                       : roster.lmp(csp.via_lmp).attachment;
        for (const LmpInfo& lmp : roster.lmps) {
            const double subscribers = lmp.customers * csp.take_rate;
            const double down = subscribers / 1000.0 * csp.gbps_per_1k_subscribers;
            add(origin, lmp.attachment, down);
            add(lmp.attachment, origin, down * reverse_fraction);
        }
    }

    net::TrafficMatrix tm;
    tm.reserve(agg.size());
    for (const auto& [k, gbps] : agg) {
        tm.push_back(net::Demand{net::NodeId{static_cast<std::uint32_t>(k >> 32)},
                                 net::NodeId{static_cast<std::uint32_t>(k & 0xffffffffu)}, gbps});
    }
    return tm;
}

}  // namespace poc::core
