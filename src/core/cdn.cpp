#include "core/cdn.hpp"

#include <algorithm>

namespace poc::core {

double HitCurve::hit_ratio(double units) const {
    POC_EXPECTS(half_units > 0.0);
    POC_EXPECTS(units >= 0.0);
    return units / (units + half_units);
}

CdnEffect apply_cdn(const net::TrafficMatrix& tm, const std::vector<CdnDeployment>& deployments,
                    const CdnOffer& offer, double cacheable_fraction, const HitCurve& curve) {
    POC_EXPECTS(cacheable_fraction >= 0.0 && cacheable_fraction <= 1.0);
    POC_EXPECTS(audit_offer(offer) == Verdict::kCompliant);

    // Units per router (several deployments may stack at one site).
    std::size_t max_router = 0;
    for (const net::Demand& d : tm) {
        max_router = std::max({max_router, d.src.index() + 1, d.dst.index() + 1});
    }
    double total_units = 0.0;
    std::vector<double> units_at;
    for (const CdnDeployment& dep : deployments) {
        POC_EXPECTS(dep.router.valid());
        POC_EXPECTS(dep.units >= 0.0);
        max_router = std::max(max_router, dep.router.index() + 1);
        if (units_at.size() < max_router) units_at.resize(max_router, 0.0);
        units_at[dep.router.index()] += dep.units;
        total_units += dep.units;
    }
    units_at.resize(max_router, 0.0);

    CdnEffect effect;
    effect.served_at_router.assign(max_router, 0.0);
    effect.reduced.reserve(tm.size());

    double offered = 0.0;
    double served = 0.0;
    for (const net::Demand& d : tm) {
        offered += d.gbps;
        const double hit = curve.hit_ratio(units_at[d.dst.index()]);
        const double from_cache = d.gbps * cacheable_fraction * hit;
        served += from_cache;
        effect.served_at_router[d.dst.index()] += from_cache;
        effect.reduced.push_back(net::Demand{d.src, d.dst, d.gbps - from_cache});
    }
    effect.offload_fraction = offered > 0.0 ? served / offered : 0.0;
    effect.monthly_fees = offer.fee_per_unit.scaled(total_units);
    return effect;
}

Verdict audit_offer(const CdnOffer& offer) {
    PolicyRule rule;
    rule.description = "CDN service offer";
    rule.action = PolicyAction::kProvideCdn;
    rule.selector = offer.open_to_all ? TrafficSelector::kAll : TrafficSelector::kBySource;
    rule.openly_priced = true;
    return audit_rule(rule);
}

}  // namespace poc::core
