// Coexisting POCs (paper section 1.2): "there could be several
// coexisting (and interconnected) POCs, run by different entities but
// adopting the same basic principles". This module models a federation
// of regional POCs over one offered-link pool:
//
//  * routers are partitioned into regions (assignment supplied by the
//    caller, e.g. longitude clustering);
//  * each regional POC auctions only the links internal to its region,
//    against the intra-region slice of the traffic matrix plus its
//    share of cross-region traffic hauled to/from a gateway router;
//  * cross-region traffic rides dedicated inter-POC circuits between
//    gateways, provisioned at contract (virtual-link-style) prices.
//
// compare_federation() runs the federated provisioning next to the
// single-POC baseline, quantifying the cost of fragmenting the market.
#pragma once

#include <optional>
#include <vector>

#include "market/vcg.hpp"

namespace poc::core {

struct FederationOptions {
    market::ConstraintKind constraint = market::ConstraintKind::kLoad;
    market::OracleOptions oracle;
    market::AuctionOptions auction;
    /// Inter-POC circuit pricing: fixed + per-km, times capacity blocks.
    double interconnect_fixed_usd = 4000.0;
    double interconnect_per_km_usd = 8.0;
    /// Inter-POC circuits come in blocks of this capacity.
    double interconnect_block_gbps = 400.0;
};

/// One regional POC's outcome.
struct RegionalOutcome {
    std::uint32_t region = 0;
    std::vector<net::NodeId> routers;
    net::NodeId gateway;  // carries this region's cross traffic
    std::size_t offered_links = 0;
    bool provisioned = false;
    util::Money outlay;
    double internal_gbps = 0.0;
};

struct FederationResult {
    std::vector<RegionalOutcome> regions;
    /// Cross-region traffic and the interconnect circuits carrying it.
    double cross_region_gbps = 0.0;
    util::Money interconnect_cost;
    /// Sum of regional outlays + interconnect.
    util::Money federated_outlay;
    /// The single-POC baseline on the same pool and matrix.
    std::optional<util::Money> single_poc_outlay;
    bool all_provisioned = false;
};

/// Run the comparison. `region_of_router` assigns every router (node)
/// of the pool's graph to a region id in [0, region_count).
FederationResult compare_federation(const market::OfferPool& pool,
                                    const net::TrafficMatrix& tm,
                                    const std::vector<std::uint32_t>& region_of_router,
                                    std::uint32_t region_count,
                                    const FederationOptions& opt = {});

}  // namespace poc::core
