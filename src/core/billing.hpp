// One billing epoch of the POC (paper section 3.2): usage-based POC
// access charges sized to exactly recoup the leasing outlay (the
// nonprofit break-even requirement), plus the customer-side payment
// flows. Produces a Ledger whose conservation and break-even properties
// are exact.
#pragma once

#include "core/entities.hpp"
#include "core/ledger.hpp"
#include "core/provisioning.hpp"

namespace poc::core {

struct BillingOptions {
    /// Fraction of content volume flowing upstream (acks, uploads).
    double reverse_fraction = 0.08;
    /// Margin the POC adds on top of break-even (0 = exact nonprofit
    /// break-even; small positive values build a capacity reserve).
    double poc_margin = 0.0;
};

/// One LMP's (or direct CSP's) usage-based POC invoice.
struct UsageCharge {
    Party payer;
    double sent_gbps = 0.0;
    double received_gbps = 0.0;
    util::Money amount;
};

/// Optional section-3.1 service fees flowing to the POC this epoch.
/// As a nonprofit the POC credits service revenue against its leasing
/// outlay, lowering the usage-based access price for everyone.
struct ServiceBilling {
    /// QoS tier fees payable by each LMP (aligned with roster.lmps).
    std::vector<util::Money> qos_fees_by_lmp;
    /// Open-CDN fees payable by each CSP (aligned with roster.csps).
    std::vector<util::Money> cdn_fees_by_csp;
};

struct EpochReport {
    Ledger ledger;
    /// $/Gbps (sent+received) rate that recovers the outlay.
    double usage_price_per_gbps = 0.0;
    util::Money poc_outlay;       // lease payments + ISP contracts
    util::Money poc_revenue;      // access charges collected
    util::Money service_revenue;  // QoS/CDN fees collected
    std::vector<UsageCharge> charges;
};

/// Run the payment flows for one month. The backbone must have been
/// provisioned against (a superset of) the roster's traffic. Optional
/// `services` books QoS/CDN fees and credits them against the outlay.
EpochReport run_billing_epoch(const ProvisionedBackbone& backbone, const EntityRoster& roster,
                              const market::OfferPool& pool, const BillingOptions& opt = {},
                              const ServiceBilling* services = nullptr);

}  // namespace poc::core
