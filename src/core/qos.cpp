#include "core/qos.hpp"

#include <algorithm>
#include <numeric>

namespace poc::core {

std::size_t QosCatalog::add_tier(QosTier tier) {
    POC_EXPECTS(!tier.price_per_gbps.is_negative());
    for (const QosTier& t : tiers_) {
        POC_EXPECTS(t.priority != tier.priority);
    }
    tiers_.push_back(std::move(tier));
    return tiers_.size() - 1;
}

void QosCatalog::subscribe(std::size_t tier_index, double gbps) {
    POC_EXPECTS(tier_index < tiers_.size());
    POC_EXPECTS(gbps > 0.0);
    subscriptions_.push_back(QosSubscription{tier_index, gbps});
}

std::vector<double> QosCatalog::volume_by_tier() const {
    std::vector<double> volume(tiers_.size(), 0.0);
    for (const QosSubscription& s : subscriptions_) volume[s.tier_index] += s.gbps;
    return volume;
}

util::Money QosCatalog::monthly_revenue() const {
    util::Money total{};
    for (const QosSubscription& s : subscriptions_) {
        total += tiers_[s.tier_index].price_per_gbps.scaled(s.gbps);
    }
    return total;
}

PolicyRule QosCatalog::as_policy_rule() const {
    PolicyRule rule;
    rule.description = "QoS catalog (" + std::to_string(tiers_.size()) +
                       " tiers, posted prices, open to all)";
    rule.action = PolicyAction::kPrioritize;
    rule.selector = TrafficSelector::kAll;
    rule.openly_priced = true;
    return rule;
}

std::vector<double> QosCatalog::delay_factors(double capacity_gbps) const {
    POC_EXPECTS(capacity_gbps > 0.0);
    const std::vector<double> volume = volume_by_tier();
    const double total = std::accumulate(volume.begin(), volume.end(), 0.0);
    POC_EXPECTS(total < capacity_gbps);

    // Order tiers by priority (smaller first).
    std::vector<std::size_t> order(tiers_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return tiers_[a].priority < tiers_[b].priority; });

    std::vector<double> factors(tiers_.size(), 1.0);
    double rho_above = 0.0;  // utilization of strictly higher tiers
    for (const std::size_t t : order) {
        const double rho_k = volume[t] / capacity_gbps;
        factors[t] = 1.0 / ((1.0 - rho_above) * (1.0 - rho_above - rho_k));
        rho_above += rho_k;
    }
    return factors;
}

}  // namespace poc::core
