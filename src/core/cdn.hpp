// Open CDN service model. The paper discusses CDNs in two places:
// section 2.4 (most content traffic is served from caches at the edge,
// shrinking public transit) and section 3.4 (LMPs and the POC may offer
// CDN/enhancement services, but only *openly* - per-source cache
// deployment is a peering-condition violation).
//
// This module models the open variant: cache capacity deployed at POC
// edge routers, a concave hit-ratio curve, the resulting reduction of
// the backbone traffic matrix, and the fee-for-service revenue. The
// ablation bench uses it to reproduce the section-2.4 dynamic: as edge
// caches grow, transit demand and the auction outlay fall.
#pragma once

#include <vector>

#include "core/entities.hpp"
#include "core/tos.hpp"
#include "net/graph.hpp"
#include "util/money.hpp"

namespace poc::core {

/// Cache capacity placed at one POC router.
struct CdnDeployment {
    net::NodeId router;
    /// Deployed cache size in abstract units (1 unit ~ one rack).
    double units = 0.0;
};

/// Terms under which the CDN service is offered.
struct CdnOffer {
    /// Monthly fee per deployed unit, posted openly.
    util::Money fee_per_unit;
    /// True if any CSP may buy at the posted price. A closed offer is
    /// exactly condition (iii) of the peering rules; audit_offer()
    /// rejects it.
    bool open_to_all = true;
};

/// Concave hit-ratio curve: hit(units) = units / (units + half_units).
/// half_units is the deployment at which half of cacheable bytes hit.
struct HitCurve {
    double half_units = 4.0;

    double hit_ratio(double units) const;
};

struct CdnEffect {
    /// The backbone matrix after cache offload (same order as input).
    net::TrafficMatrix reduced;
    /// Fraction of total offered gbps served from caches.
    double offload_fraction = 0.0;
    /// Gbps served from caches per router (indexed by node id).
    std::vector<double> served_at_router;
    /// Monthly service fees collected by the CDN operator.
    util::Money monthly_fees;
};

/// Apply edge caching to a traffic matrix: for every demand, the share
/// `cacheable_fraction` can be served from a cache at the *destination*
/// router (content flows toward eyeballs; a cache helps where the bytes
/// land), reduced by that router's hit ratio. Deployments at routers
/// not appearing as destinations simply idle.
CdnEffect apply_cdn(const net::TrafficMatrix& tm, const std::vector<CdnDeployment>& deployments,
                    const CdnOffer& offer, double cacheable_fraction,
                    const HitCurve& curve = {});

/// Check an offer against the peering conditions: open offers are
/// compliant; closed offers violate condition (iii).
Verdict audit_offer(const CdnOffer& offer);

}  // namespace poc::core
