// The provisioning pipeline: traffic-matrix upper bound -> constraint
// -> auction -> selected backbone. This is the operational loop the POC
// nonprofit runs each leasing period (paper section 3.3).
#pragma once

#include <optional>

#include "market/vcg.hpp"

namespace poc::core {

struct ProvisioningRequest {
    market::ConstraintKind constraint = market::ConstraintKind::kLoad;
    market::OracleOptions oracle;
    market::AuctionOptions auction;
};

/// A provisioned backbone: the auction outcome plus the selected links
/// as a routable subgraph view (valid as long as the pool's graph
/// lives).
struct ProvisionedBackbone {
    net::Subgraph selected;
    market::AuctionResult auction;

    /// The POC's monthly leasing outlay (VCG payments + virtual-link
    /// contracts).
    util::Money monthly_outlay() const { return auction.total_outlay; }
};

/// Provision a backbone for the given traffic-matrix upper bound.
/// Returns nullopt when the offers cannot satisfy the constraint.
std::optional<ProvisionedBackbone> provision(const market::OfferPool& pool,
                                             const net::TrafficMatrix& tm,
                                             const ProvisioningRequest& request);

}  // namespace poc::core
