#include "core/ledger.hpp"

#include <map>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace poc::core {

std::string party_label(Party party) {
    switch (party.kind) {
        case PartyKind::kPoc:
            return "POC";
        case PartyKind::kBandwidthProvider:
            return "BP" + std::to_string(party.index + 1);
        case PartyKind::kLmp:
            return "LMP" + std::to_string(party.index + 1);
        case PartyKind::kCsp:
            return "CSP" + std::to_string(party.index + 1);
        case PartyKind::kExternalIsp:
            return "ISP" + std::to_string(party.index + 1);
        case PartyKind::kCustomers:
            return "Customers(LMP" + std::to_string(party.index + 1) + ")";
    }
    return "?";
}

std::string transfer_label(TransferKind kind) {
    switch (kind) {
        case TransferKind::kLinkLease:
            return "link lease (POC->BP)";
        case TransferKind::kIspContract:
            return "ISP contract (POC->ISP)";
        case TransferKind::kPocAccess:
            return "POC access (LMP/CSP->POC)";
        case TransferKind::kLmpHosting:
            return "LMP hosting (CSP->LMP)";
        case TransferKind::kCustomerAccess:
            return "customer access (users->LMP)";
        case TransferKind::kCspSubscription:
            return "CSP subscription (users->CSP)";
        case TransferKind::kServiceFees:
            return "service fees (QoS/CDN->POC)";
    }
    return "?";
}

void Ledger::record(Party from, Party to, TransferKind kind, util::Money amount,
                    std::string memo) {
    POC_EXPECTS(!amount.is_negative());
    POC_EXPECTS(!(from == to));
    if (amount.is_zero()) return;
    // Settlement telemetry: every recorded transfer and the exact
    // micro-dollar volume (Money is integer micros, so the counter sum
    // is lossless).
    POC_OBS_INC("core.ledger.transfers");
    POC_OBS_COUNT("core.ledger.settled_microusd", amount.micros());
    transfers_.push_back(Transfer{from, to, kind, amount, std::move(memo)});
}

util::Money Ledger::balance(Party party) const {
    // Accumulate with overflow checking: a settlement path that sums
    // near-int64 amounts must fail loudly, never wrap (util::money).
    util::Money net{};
    for (const Transfer& t : transfers_) {
        if (t.to == party) net = util::Money::checked_sum(net, t.amount);
        if (t.from == party) net = util::Money::checked_sum(net, -t.amount);
    }
    return net;
}

util::Money Ledger::total(TransferKind kind) const {
    util::Money sum{};
    for (const Transfer& t : transfers_) {
        if (t.kind == kind) sum = util::Money::checked_sum(sum, t.amount);
    }
    return sum;
}

bool Ledger::conserves() const {
    // Group by party and sum; zero-sum by construction, but we verify
    // against the actual records.
    std::map<std::pair<int, std::uint32_t>, util::Money> balances;
    for (const Transfer& t : transfers_) {
        balances[{static_cast<int>(t.from.kind), t.from.index}] -= t.amount;
        balances[{static_cast<int>(t.to.kind), t.to.index}] += t.amount;
    }
    util::Money total{};
    for (const auto& [party, bal] : balances) total += bal;
    return total.is_zero();
}

std::string Ledger::statement() const {
    std::map<std::pair<int, std::uint32_t>, util::Money> balances;
    for (const Transfer& t : transfers_) {
        balances[{static_cast<int>(t.from.kind), t.from.index}] -= t.amount;
        balances[{static_cast<int>(t.to.kind), t.to.index}] += t.amount;
    }
    std::ostringstream os;
    os << "== balances ==\n";
    for (const auto& [key, bal] : balances) {
        const Party p{static_cast<PartyKind>(key.first), key.second};
        os << "  " << party_label(p) << ": " << bal << "\n";
    }
    os << "== category totals ==\n";
    for (const TransferKind k :
         {TransferKind::kLinkLease, TransferKind::kIspContract, TransferKind::kPocAccess,
          TransferKind::kLmpHosting, TransferKind::kCustomerAccess,
          TransferKind::kCspSubscription, TransferKind::kServiceFees}) {
        os << "  " << transfer_label(k) << ": " << total(k) << "\n";
    }
    return os.str();
}

void write_transfer(util::BinaryWriter& w, const Transfer& t) {
    w.u8(static_cast<std::uint8_t>(t.from.kind));
    w.u32(t.from.index);
    w.u8(static_cast<std::uint8_t>(t.to.kind));
    w.u32(t.to.index);
    w.u8(static_cast<std::uint8_t>(t.kind));
    w.i64(t.amount.micros());
    w.str(t.memo);
}

Transfer read_transfer(util::BinaryReader& r) {
    Transfer t;
    t.from.kind = static_cast<PartyKind>(r.u8());
    t.from.index = r.u32();
    t.to.kind = static_cast<PartyKind>(r.u8());
    t.to.index = r.u32();
    t.kind = static_cast<TransferKind>(r.u8());
    t.amount = util::Money::from_micros(r.i64());
    t.memo = r.str();
    return t;
}

void Ledger::serialize(util::BinaryWriter& w) const {
    w.u64(transfers_.size());
    for (const Transfer& t : transfers_) write_transfer(w, t);
}

Ledger Ledger::deserialize(util::BinaryReader& r) {
    Ledger ledger;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Transfer t = read_transfer(r);
        ledger.record(t.from, t.to, t.kind, t.amount, std::move(t.memo));
    }
    return ledger;
}

}  // namespace poc::core
