#include "core/provisioning.hpp"

namespace poc::core {

std::optional<ProvisionedBackbone> provision(const market::OfferPool& pool,
                                             const net::TrafficMatrix& tm,
                                             const ProvisioningRequest& request) {
    const market::AcceptabilityOracle oracle(pool.graph(), tm, request.constraint,
                                             request.oracle);
    auto auction = market::run_auction(pool, oracle, request.auction);
    if (!auction) return std::nullopt;
    net::Subgraph selected(pool.graph(), auction->selection.links);
    return ProvisionedBackbone{std::move(selected), std::move(*auction)};
}

}  // namespace poc::core
