// The entity model of the proposal (paper sections 1.2 and 3.2): the
// POC, bandwidth providers, last-mile providers, content/service
// providers, external ISPs, and customer populations, with the
// attachment relationships of Figure 1.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "util/ids.hpp"
#include "util/money.hpp"

namespace poc::core {

using LmpId = util::Id<struct LmpTag>;
using CspId = util::Id<struct CspTag>;
using IspId = util::Id<struct IspTag>;

/// A last-mile provider attached to the POC.
struct LmpInfo {
    std::string name;
    /// POC router where this LMP attaches.
    net::NodeId attachment;
    /// Subscriber count (drives traffic and access revenue).
    double customers = 0.0;
    /// Monthly access charge collected from each customer.
    util::Money access_charge;
};

/// How a CSP reaches the POC (Figure 1: large CSPs attach directly,
/// others connect through an LMP).
enum class CspAttachment { kDirectToPoc, kViaLmp };

/// A content/service provider.
struct CspInfo {
    std::string name;
    CspAttachment attachment = CspAttachment::kDirectToPoc;
    /// POC router (direct attachment) ...
    net::NodeId poc_router;
    /// ... or the hosting LMP (kViaLmp).
    LmpId via_lmp;
    /// Monthly subscription price charged to its users.
    util::Money subscription_price;
    /// Fraction of each LMP's customers subscribing to this CSP.
    double take_rate = 0.0;
    /// Traffic generated toward one subscriber (content is pushed
    /// CSP -> eyeball; the reverse direction is a small fraction).
    double gbps_per_1k_subscribers = 0.0;
};

/// An external (traditional) ISP the POC interconnects with.
struct ExternalIspInfo {
    std::string name;
    /// POC routers where this ISP attaches (>= 2 enables virtual links).
    std::vector<net::NodeId> attachments;
    /// Contracted monthly price for general Internet access via this ISP.
    util::Money access_contract;
};

/// The complete cast around one POC.
struct EntityRoster {
    std::vector<LmpInfo> lmps;
    std::vector<CspInfo> csps;
    std::vector<ExternalIspInfo> external_isps;

    const LmpInfo& lmp(LmpId id) const {
        POC_EXPECTS(id.index() < lmps.size());
        return lmps[id.index()];
    }
    const CspInfo& csp(CspId id) const {
        POC_EXPECTS(id.index() < csps.size());
        return csps[id.index()];
    }

    /// Validate cross-references (LMP attachment routers within the
    /// graph, CSP via_lmp ids valid, ...).
    void validate(const net::Graph& poc_graph) const;
};

/// Build the LMP-to-LMP / CSP-to-LMP traffic matrix implied by the
/// roster: each CSP pushes `gbps_per_1k_subscribers` per 1000 of its
/// subscribers in every LMP, from its attachment router toward the
/// subscriber LMP's router, plus `reverse_fraction` of that volume
/// upstream.
net::TrafficMatrix roster_traffic(const EntityRoster& roster, double reverse_fraction = 0.08);

}  // namespace poc::core
