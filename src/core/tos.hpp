// Terms-of-service engine: the POC's contractual network-neutrality
// conditions (paper section 3.4). A POC-connected LMP must not
//
//   (i)   differentially treat incoming traffic based on source or
//         application, nor outgoing traffic based on destination or
//         application (priorities or blocking);
//   (ii)  differentially provide CDN or other application-enhancement
//         services based on source/destination;
//   (iii) differentially allow third parties to provide such services
//         targeting only a subset of traffic;
//
// and may not charge termination fees. Exceptions: security blocking
// and internal-maintenance handling. QoS and enhancement services *are*
// allowed when openly offered at posted prices to all comers - the
// paper's key distinction between service discrimination and QoS.
#pragma once

#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace poc::core {

/// What a policy rule keys on.
enum class TrafficSelector {
    kAll,            // applies uniformly to everyone / whoever pays
    kBySource,       // keyed on origin network or CSP
    kByDestination,  // keyed on destination network or CSP
    kByApplication,  // keyed on application/protocol
};

/// What the rule does.
enum class PolicyAction {
    kPrioritize,
    kDeprioritize,
    kBlock,
    kProvideCdn,          // the LMP's own CDN / enhancement service
    kAllowThirdPartyCdn,  // permitting an outside party to deploy one
    kChargeTerminationFee,
};

/// One line of an LMP's traffic policy.
struct PolicyRule {
    std::string description;
    PolicyAction action{};
    TrafficSelector selector = TrafficSelector::kAll;
    /// Openly offered at a posted price to any customer (QoS-for-fee).
    bool openly_priced = false;
    /// Security exception (e.g. DDoS blocking).
    bool security_exception = false;
    /// Internal maintenance traffic handling.
    bool maintenance_exception = false;
};

/// Audit verdict for one rule.
enum class Verdict {
    kCompliant,
    kViolatesConditionI,    // differential treatment of traffic
    kViolatesConditionII,   // differential own-CDN provision
    kViolatesConditionIII,  // differential third-party CDN access
    kViolatesNoTerminationFee,
};

const char* verdict_name(Verdict verdict);

/// Classify one rule against the peering conditions.
Verdict audit_rule(const PolicyRule& rule);

/// An LMP's declared policy set.
struct LmpPolicy {
    std::string lmp_name;
    std::vector<PolicyRule> rules;
};

struct RuleFinding {
    PolicyRule rule;
    Verdict verdict{};
};

struct AuditReport {
    std::string lmp_name;
    std::vector<RuleFinding> findings;
    bool compliant = true;

    std::size_t violation_count() const;
};

/// Audit a full policy; `compliant` is true iff every rule passes.
AuditReport audit_lmp(const LmpPolicy& policy);

}  // namespace poc::core
