// Double-entry ledger for the payment structure of section 3.2:
//
//   * the POC pays the BPs (auction payments) and external ISPs;
//   * each LMP and directly-attached CSP pays the POC for access;
//   * each customer pays their LMP for access and their CSPs for
//     services; CSPs hosted by an LMP pay that LMP.
//
// Every transfer is recorded once with a debit and credit party, so
// conservation (sum of balances == 0) and the POC's break-even
// requirement are exact integer checks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/journal.hpp"
#include "util/money.hpp"

namespace poc::core {

/// Ledger party kinds (parties are (kind, index) pairs; index is the
/// entity's id within its kind, 0 for singletons like the POC).
enum class PartyKind : std::uint8_t {
    kPoc,
    kBandwidthProvider,
    kLmp,
    kCsp,
    kExternalIsp,
    /// The aggregate customer population of one LMP.
    kCustomers,
};

struct Party {
    PartyKind kind{};
    std::uint32_t index = 0;

    friend bool operator==(const Party&, const Party&) = default;
};

std::string party_label(Party party);

/// Transfer categories, mirroring section 3.2's bullet list plus the
/// optional section 3.1 services.
enum class TransferKind : std::uint8_t {
    kLinkLease,          // POC -> BP (auction payment)
    kIspContract,        // POC -> external ISP
    kPocAccess,          // LMP or direct CSP -> POC
    kLmpHosting,         // LMP-hosted CSP -> LMP
    kCustomerAccess,     // customers -> LMP
    kCspSubscription,    // customers -> CSP
    kServiceFees,        // QoS / CDN service fees -> POC
};

std::string transfer_label(TransferKind kind);

struct Transfer {
    Party from;
    Party to;
    TransferKind kind{};
    util::Money amount;
    std::string memo;

    friend bool operator==(const Transfer&, const Transfer&) = default;
};

/// Binary (de)serialization of one transfer, for the durable epoch
/// runtime's write-ahead journal. Byte-exact round trip.
void write_transfer(util::BinaryWriter& w, const Transfer& t);
Transfer read_transfer(util::BinaryReader& r);

/// Append-only ledger with exact integer accounting.
class Ledger {
public:
    /// Record a transfer. Amounts must be non-negative; zero transfers
    /// are dropped silently (convenience for generated flows).
    void record(Party from, Party to, TransferKind kind, util::Money amount,
                std::string memo = {});

    const std::vector<Transfer>& transfers() const noexcept { return transfers_; }

    /// Net balance of a party: credits minus debits.
    util::Money balance(Party party) const;

    /// Sum of all amounts in a category.
    util::Money total(TransferKind kind) const;

    /// Conservation: the sum of all balances is exactly zero (holds by
    /// construction; exposed for tests and audits).
    bool conserves() const;

    /// The POC's net position; a nonprofit targets >= 0 with ~0 margin.
    util::Money poc_net() const { return balance(Party{PartyKind::kPoc, 0}); }

    /// Human-readable statement (per party, then per category).
    std::string statement() const;

    /// Serialize every transfer in append order (journal snapshot).
    void serialize(util::BinaryWriter& w) const;
    /// Rebuild a ledger from serialize()'s bytes: replaying the
    /// transfers through record() reproduces the exact same state.
    static Ledger deserialize(util::BinaryReader& r);

private:
    std::vector<Transfer> transfers_;
};

}  // namespace poc::core
