#include "core/federation.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "net/shortest_path.hpp"

namespace poc::core {

namespace {

/// Rebuild a bid keeping only the given links (tier discounts copied).
market::BpBid restrict_bid(const market::BpBid& src, const std::vector<char>& keep) {
    POC_EXPECTS(!src.has_bundle_overrides());
    market::BpBid out(src.bp(), src.name());
    for (const net::LinkId l : src.offered_links()) {
        if (keep[l.index()] != 0) out.offer(l, src.base_price(l));
    }
    for (const market::DiscountTier& t : src.discounts()) out.add_discount(t);
    return out;
}

/// Offer pool restricted to links whose mask entry is set.
market::OfferPool restrict_pool(const market::OfferPool& pool, const std::vector<char>& keep) {
    std::vector<market::BpBid> bids;
    bids.reserve(pool.bids().size());
    for (const market::BpBid& b : pool.bids()) bids.push_back(restrict_bid(b, keep));
    market::VirtualLinkContract contract;
    for (const net::LinkId l : pool.virtual_links().links()) {
        if (keep[l.index()] != 0) contract.add(l, pool.virtual_links().price(l));
    }
    return market::OfferPool(std::move(bids), std::move(contract), pool.graph());
}

}  // namespace

FederationResult compare_federation(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                                    const std::vector<std::uint32_t>& region_of_router,
                                    std::uint32_t region_count, const FederationOptions& opt) {
    const net::Graph& g = pool.graph();
    POC_EXPECTS(region_count >= 2);
    POC_EXPECTS(region_of_router.size() == g.node_count());
    for (const std::uint32_t r : region_of_router) POC_EXPECTS(r < region_count);

    FederationResult result;

    // --- Single-POC baseline. ----------------------------------------
    {
        const market::AcceptabilityOracle oracle(g, tm, opt.constraint, opt.oracle);
        if (const auto auction = market::run_auction(pool, oracle, opt.auction)) {
            result.single_poc_outlay = auction->total_outlay;
        }
    }

    // --- Region bookkeeping. -------------------------------------------
    // Gateways: the highest-degree router of each region (counting only
    // offered links).
    std::vector<std::size_t> degree(g.node_count(), 0);
    for (const net::LinkId l : pool.offered_links()) {
        ++degree[g.link(l).a.index()];
        ++degree[g.link(l).b.index()];
    }
    std::vector<net::NodeId> gateway(region_count);
    std::vector<std::vector<net::NodeId>> routers(region_count);
    for (std::size_t n = 0; n < g.node_count(); ++n) {
        const std::uint32_t r = region_of_router[n];
        routers[r].emplace_back(n);
        if (!gateway[r].valid() || degree[n] > degree[gateway[r].index()]) {
            gateway[r] = net::NodeId{n};
        }
    }
    for (std::uint32_t r = 0; r < region_count; ++r) POC_EXPECTS(!routers[r].empty());

    // --- Split the traffic matrix. ------------------------------------
    // Internal demands stay; a cross demand a->b becomes a->gateway(A)
    // in region A and gateway(B)->b in region B, plus interconnect load
    // between the two gateways.
    std::vector<net::TrafficMatrix> regional_tm(region_count);
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> interconnect_load;
    auto add_demand = [&](std::uint32_t region, net::NodeId src, net::NodeId dst, double gbps) {
        if (src == dst || gbps <= 0.0) return;
        // Merge into an existing identical pair if present.
        for (net::Demand& d : regional_tm[region]) {
            if (d.src == src && d.dst == dst) {
                d.gbps += gbps;
                return;
            }
        }
        regional_tm[region].push_back(net::Demand{src, dst, gbps});
    };
    for (const net::Demand& d : tm) {
        const std::uint32_t ra = region_of_router[d.src.index()];
        const std::uint32_t rb = region_of_router[d.dst.index()];
        if (ra == rb) {
            add_demand(ra, d.src, d.dst, d.gbps);
        } else {
            result.cross_region_gbps += d.gbps;
            add_demand(ra, d.src, gateway[ra], d.gbps);
            add_demand(rb, gateway[rb], d.dst, d.gbps);
            const auto key = std::minmax(ra, rb);
            interconnect_load[{key.first, key.second}] += d.gbps;
        }
    }

    // --- Interconnect circuits at contract prices. ----------------------
    const net::Subgraph full(g);
    const net::LinkWeight by_len = net::weight_by_length(g);
    for (const auto& [pair, gbps] : interconnect_load) {
        const net::NodeId ga = gateway[pair.first];
        const net::NodeId gb = gateway[pair.second];
        double km = 5000.0;  // fallback when gateways are disconnected
        if (const auto sp = net::shortest_path(full, ga, gb, by_len)) km = sp->weight;
        const double blocks = std::ceil(gbps / opt.interconnect_block_gbps);
        const double usd =
            blocks * (opt.interconnect_fixed_usd + opt.interconnect_per_km_usd * km);
        result.interconnect_cost += util::Money::from_dollars(usd);
    }

    // --- Regional auctions. ---------------------------------------------
    result.all_provisioned = true;
    for (std::uint32_t r = 0; r < region_count; ++r) {
        RegionalOutcome out;
        out.region = r;
        out.routers = routers[r];
        out.gateway = gateway[r];
        out.internal_gbps = net::total_demand(regional_tm[r]);

        std::vector<char> keep(g.link_count(), 0);
        for (const net::LinkId l : pool.offered_links()) {
            const net::Link& link = g.link(l);
            if (region_of_router[link.a.index()] == r &&
                region_of_router[link.b.index()] == r) {
                keep[l.index()] = 1;
            }
        }
        const market::OfferPool regional_pool = restrict_pool(pool, keep);
        out.offered_links = regional_pool.offered_links().size();

        if (regional_tm[r].empty()) {
            out.provisioned = true;  // nothing to carry
        } else {
            const market::AcceptabilityOracle oracle(g, regional_tm[r], opt.constraint,
                                                     opt.oracle);
            if (const auto auction = market::run_auction(regional_pool, oracle, opt.auction)) {
                out.provisioned = true;
                out.outlay = auction->total_outlay;
            }
        }
        result.all_provisioned = result.all_provisioned && out.provisioned;
        result.federated_outlay += out.outlay;
        result.regions.push_back(std::move(out));
    }
    result.federated_outlay += result.interconnect_cost;
    return result;
}

}  // namespace poc::core
