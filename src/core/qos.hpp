// Quality-of-service offerings (paper section 3.1). The POC and LMPs
// may offer different service levels "openly ... so that users could
// choose their desired level of service and pay the resulting price";
// what they may not do is unilaterally favor traffic (service
// discrimination). This module models the allowed variant: a catalog of
// priority tiers at posted prices, subscription accounting, and a
// strict-priority queueing model that quantifies what each tier buys as
// utilization grows.
#pragma once

#include <string>
#include <vector>

#include "core/tos.hpp"
#include "util/money.hpp"

namespace poc::core {

/// One openly-offered service tier.
struct QosTier {
    std::string name;
    /// Smaller = served first. Must be unique within a catalog.
    int priority = 0;
    /// Posted price per Gbps-month, identical for every buyer.
    util::Money price_per_gbps;
};

/// A subscription to a tier by some (unnamed) customer.
struct QosSubscription {
    std::size_t tier_index = 0;
    double gbps = 0.0;
};

/// An open catalog of QoS tiers with subscriptions.
class QosCatalog {
public:
    /// Add a tier. Priorities must be unique; prices non-negative.
    /// Returns the tier index.
    std::size_t add_tier(QosTier tier);

    const std::vector<QosTier>& tiers() const noexcept { return tiers_; }

    /// Subscribe `gbps` at a tier (anyone may; that is the point).
    void subscribe(std::size_t tier_index, double gbps);

    const std::vector<QosSubscription>& subscriptions() const noexcept {
        return subscriptions_;
    }

    /// Total subscribed volume per tier (indexed by tier).
    std::vector<double> volume_by_tier() const;

    /// Monthly revenue across all subscriptions.
    util::Money monthly_revenue() const;

    /// The catalog expressed as a policy rule: openly priced,
    /// selector-free priority - compliant by construction. Exposed so
    /// audits can include QoS catalogs alongside ad-hoc rules.
    PolicyRule as_policy_rule() const;

    /// Mean queueing delay factor for each tier under strict priority
    /// service, normalized to 1.0 for an empty system, at total
    /// utilization implied by the subscriptions against `capacity_gbps`
    /// (M/M/1 priority approximation:
    ///   W_k ~ 1 / ((1 - rho_{<k}) (1 - rho_{<=k})) ).
    /// Requires the subscribed volume to fit: sum < capacity.
    std::vector<double> delay_factors(double capacity_gbps) const;

private:
    std::vector<QosTier> tiers_;
    std::vector<QosSubscription> subscriptions_;
};

}  // namespace poc::core
