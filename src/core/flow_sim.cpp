#include "core/flow_sim.hpp"

#include <algorithm>
#include <limits>

#include "net/sssp.hpp"
#include "obs/trace.hpp"

namespace poc::core {

FlowReport simulate_flows_primary(const net::Subgraph& backbone,
                                  const net::TrafficMatrixSoA& tm_soa,
                                  double total_offered_gbps,
                                  const std::vector<bool>& is_virtual,
                                  const FlowSimOptions& opt, net::ShardWorkspace& ws) {
    const net::Graph& g = backbone.graph();
    POC_EXPECTS(is_virtual.empty() || is_virtual.size() == g.link_count());

    POC_OBS_SPAN("core.simulate_flows");
    POC_OBS_INC("core.flows.runs");

    net::ShardOptions shard_opt;
    shard_opt.metric = net::SsspMetric::kLength;
    shard_opt.shards = opt.flow_shards;
    shard_opt.threads = opt.sssp_threads;
    shard_opt.cache = opt.path_cache;
    shard_opt.is_virtual = is_virtual.empty() ? nullptr : &is_virtual;

    net::ShardFlowResult flows;
    net::sharded_primary_flow(backbone, tm_soa, shard_opt, ws, flows);

    FlowReport report;
    report.total_offered_gbps = total_offered_gbps;
    report.total_routed_gbps = flows.routed_gbps;
    // Under primary-path routing a demand either rides its shortest
    // path whole or (disconnected) not at all, so "fully routed" is
    // the integer condition that nothing was left unrouted.
    report.fully_routed = flows.unrouted == 0;
    report.link_load_gbps = std::move(flows.link_load_gbps);

    POC_OBS_COUNT("core.flows.demands_offered", tm_soa.size());
    POC_OBS_COUNT("core.flows.demands_admitted", flows.admitted);
    if (report.fully_routed) POC_OBS_INC("core.flows.fully_routed");
    POC_OBS_HISTOGRAM("core.flows.routed_gbps", 0.0, 10000.0, 50, report.total_routed_gbps);

    const net::LinkSoa soa = g.link_soa();
    double util_sum = 0.0;
    std::size_t loaded = 0;
    for (const net::LinkId l : backbone.active_links()) {
        const double load = report.link_load_gbps[l.index()];
        if (load <= 0.0) continue;
        const double u = load / soa.capacity_gbps[l.index()];
        report.max_utilization = std::max(report.max_utilization, u);
        util_sum += u;
        ++loaded;
    }
    report.mean_utilization = loaded > 0 ? util_sum / static_cast<double>(loaded) : 0.0;

    if (report.total_routed_gbps > 0.0) {
        // The routed path *is* the shortest path, and the per-path km
        // fold is bit-for-bit the Dijkstra distance fold, so the
        // weighted routed and weighted shortest sums are the same
        // doubles: stretch is exactly 1.0 by construction.
        report.mean_path_km = flows.weighted_km / report.total_routed_gbps;
        report.mean_shortest_km = report.mean_path_km;
        report.stretch = 1.0;
    }
    report.virtual_share =
        flows.total_gbps_km > 0.0 ? flows.virtual_gbps_km / flows.total_gbps_km : 0.0;
    return report;
}

FlowReport simulate_flows(const net::Subgraph& backbone, const net::TrafficMatrix& tm,
                          const std::vector<bool>& is_virtual, const FlowSimOptions& opt) {
    const net::Graph& g = backbone.graph();
    POC_EXPECTS(is_virtual.empty() || is_virtual.size() == g.link_count());

    if (opt.routing == FlowRouting::kPrimary) {
        const net::TrafficMatrixSoA tm_soa(tm);
        net::ShardWorkspace ws;
        return simulate_flows_primary(backbone, tm_soa, net::total_demand(tm), is_virtual, opt,
                                      ws);
    }

    POC_OBS_SPAN("core.simulate_flows");
    POC_OBS_INC("core.flows.runs");
    FlowReport report;
    report.total_offered_gbps = net::total_demand(tm);
    report.link_load_gbps.assign(g.link_count(), 0.0);

    auto routing = net::greedy_path_routing(backbone, tm);
    if (!routing) {
        // Fall back to the concurrent-flow routing. Its routes carry
        // lambda_j * d_j per demand; cap each demand at its offered
        // volume so the report never counts over-routing.
        auto cf = net::max_concurrent_flow(backbone, tm, 0.1);
        for (std::size_t j = 0; j < tm.size(); ++j) {
            double carried = 0.0;
            for (const auto& [path, rate] : cf.routing.routes[j]) carried += rate;
            if (carried > tm[j].gbps && carried > 0.0) {
                const double f = tm[j].gbps / carried;
                for (auto& [path, rate] : cf.routing.routes[j]) rate *= f;
            }
        }
        report.fully_routed = cf.lambda >= 1.0;
        routing = std::move(cf.routing);
    } else {
        report.fully_routed = true;
    }

    // Shortest-possible distance per demand for the stretch metric:
    // one SSSP per distinct source (optionally cached / parallel)
    // instead of one per demand. The accumulation below stays in j
    // order, so the sum is bit-identical to per-demand shortest_path
    // calls.
    net::SsspBatchOptions batch_opt;
    batch_opt.metric = net::SsspMetric::kLength;
    batch_opt.threads = opt.sssp_threads;
    batch_opt.cache = opt.path_cache;
    const std::vector<double> shortest_km = net::batched_demand_distances(backbone, tm, batch_opt);

    double weighted_km = 0.0;
    double weighted_shortest_km = 0.0;
    double virtual_gbps_km = 0.0;
    double total_gbps_km = 0.0;

    std::size_t admitted = 0;  // demands with any routed volume
    for (std::size_t j = 0; j < tm.size(); ++j) {
        double routed_j = 0.0;
        for (const auto& [path, rate] : routing->routes[j]) {
            double km = 0.0;
            for (const net::LinkId l : path) {
                report.link_load_gbps[l.index()] += rate;
                km += g.link(l).length_km;
                const double gkm = rate * g.link(l).length_km;
                total_gbps_km += gkm;
                if (!is_virtual.empty() && is_virtual[l.index()]) virtual_gbps_km += gkm;
            }
            weighted_km += rate * km;
            routed_j += rate;
        }
        report.total_routed_gbps += routed_j;
        if (routed_j > 0.0) {
            ++admitted;
            if (shortest_km[j] < std::numeric_limits<double>::infinity()) {
                weighted_shortest_km += routed_j * shortest_km[j];
            }
        }
    }
    // Flow-admission telemetry: how many demands got any capacity, and
    // whether the whole matrix was carried.
    POC_OBS_COUNT("core.flows.demands_offered", tm.size());
    POC_OBS_COUNT("core.flows.demands_admitted", admitted);
    if (report.fully_routed) POC_OBS_INC("core.flows.fully_routed");
    POC_OBS_HISTOGRAM("core.flows.routed_gbps", 0.0, 10000.0, 50, report.total_routed_gbps);

    double util_sum = 0.0;
    std::size_t loaded = 0;
    for (const net::LinkId l : backbone.active_links()) {
        const double load = report.link_load_gbps[l.index()];
        if (load <= 0.0) continue;
        const double u = load / g.link(l).capacity_gbps;
        report.max_utilization = std::max(report.max_utilization, u);
        util_sum += u;
        ++loaded;
    }
    report.mean_utilization = loaded > 0 ? util_sum / static_cast<double>(loaded) : 0.0;

    if (report.total_routed_gbps > 0.0) {
        report.mean_path_km = weighted_km / report.total_routed_gbps;
        report.mean_shortest_km = weighted_shortest_km / report.total_routed_gbps;
        report.stretch = report.mean_shortest_km > 0.0
                             ? report.mean_path_km / report.mean_shortest_km
                             : 1.0;
    }
    report.virtual_share = total_gbps_km > 0.0 ? virtual_gbps_km / total_gbps_km : 0.0;
    return report;
}

}  // namespace poc::core
