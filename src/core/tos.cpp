#include "core/tos.hpp"

#include <algorithm>

namespace poc::core {

const char* verdict_name(Verdict verdict) {
    switch (verdict) {
        case Verdict::kCompliant:
            return "compliant";
        case Verdict::kViolatesConditionI:
            return "violates (i) differential traffic treatment";
        case Verdict::kViolatesConditionII:
            return "violates (ii) differential CDN provision";
        case Verdict::kViolatesConditionIII:
            return "violates (iii) differential third-party access";
        case Verdict::kViolatesNoTerminationFee:
            return "violates no-termination-fee";
    }
    return "?";
}

Verdict audit_rule(const PolicyRule& rule) {
    const bool selective = rule.selector != TrafficSelector::kAll;

    switch (rule.action) {
        case PolicyAction::kChargeTerminationFee:
            // Categorically prohibited, however it is keyed or priced.
            return Verdict::kViolatesNoTerminationFee;

        case PolicyAction::kPrioritize:
        case PolicyAction::kDeprioritize:
        case PolicyAction::kBlock: {
            if (rule.action == PolicyAction::kBlock && rule.security_exception) {
                return Verdict::kCompliant;  // explicit carve-out
            }
            if (rule.maintenance_exception) return Verdict::kCompliant;
            if (!selective) {
                // Uniform treatment, or QoS sold at a posted price to
                // whoever pays: allowed.
                return Verdict::kCompliant;
            }
            // Keyed on source/destination/application: discrimination,
            // even if money changes hands (a "paid fast lane" for one
            // CSP is exactly what condition (i) forbids).
            return Verdict::kViolatesConditionI;
        }

        case PolicyAction::kProvideCdn: {
            if (!selective) return Verdict::kCompliant;  // open CDN service
            // CDN offered only for certain sources/destinations.
            return Verdict::kViolatesConditionII;
        }

        case PolicyAction::kAllowThirdPartyCdn: {
            if (!selective && rule.openly_priced) return Verdict::kCompliant;
            if (!selective) return Verdict::kCompliant;  // open even if free
            // Only some parties may deploy (e.g. allow Netflix's boxes
            // but nobody else's).
            return Verdict::kViolatesConditionIII;
        }
    }
    return Verdict::kCompliant;
}

std::size_t AuditReport::violation_count() const {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [](const RuleFinding& f) { return f.verdict != Verdict::kCompliant; }));
}

AuditReport audit_lmp(const LmpPolicy& policy) {
    AuditReport report;
    report.lmp_name = policy.lmp_name;
    for (const PolicyRule& rule : policy.rules) {
        const Verdict v = audit_rule(rule);
        report.compliant = report.compliant && v == Verdict::kCompliant;
        report.findings.push_back(RuleFinding{rule, v});
    }
    return report;
}

}  // namespace poc::core
