#include "net/shard.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace poc::net {

namespace {

/// Shared by plan_shards and the engine so the engine can plan into a
/// reused workspace buffer (the public wrapper allocates, the engine's
/// steady state must not). Boundaries are block indices into
/// tm.sources(); block_begin doubles as the cumulative demand count, so
/// lower_bound on it lands each cut at the demand-balanced target while
/// the clamp keeps cuts strictly increasing with >= 1 block per
/// remaining shard.
void plan_into(const TrafficMatrixSoA& tm, std::size_t shards,
               std::vector<std::uint32_t>& begin) {
    begin.clear();
    begin.push_back(0);
    const std::size_t blocks = tm.sources().size();
    if (blocks == 0) {
        begin.clear();
        begin.push_back(0);
        return;
    }
    const std::size_t t = std::clamp<std::size_t>(shards == 0 ? 1 : shards, 1, blocks);
    const auto bb = tm.block_begin();
    const std::uint64_t total = bb[blocks];
    std::uint32_t prev = 0;
    for (std::size_t s = 1; s < t; ++s) {
        const auto target = static_cast<std::uint32_t>(total * s / t);
        const auto found = std::lower_bound(bb.begin(), bb.end(), target) - bb.begin();
        const auto lo = prev + 1;
        const auto hi = static_cast<std::uint32_t>(blocks - (t - s));
        const auto cut = std::clamp(static_cast<std::uint32_t>(found), lo, hi);
        begin.push_back(cut);
        prev = cut;
    }
    begin.push_back(static_cast<std::uint32_t>(blocks));
}

/// Reconstruct src->dst link order from a cached tree into `out` — the
/// same walk-then-reverse as SsspWorkspace::append_path_to, so the
/// per-path fold order (and thus every accumulated bit) is identical
/// whether the tree came from the cache or a local Dijkstra.
void append_tree_path(const ShortestPathTree& tree, NodeId target, std::vector<LinkId>& out) {
    out.clear();
    NodeId v = target;
    while (v != tree.source) {
        const LinkId pl = tree.parent_link[v.index()];
        POC_ASSERT(pl.valid());
        out.push_back(pl);
        v = tree.pred_node_[v.index()];
    }
    std::reverse(out.begin(), out.end());
}

}  // namespace

ShardPlan plan_shards(const TrafficMatrixSoA& tm, std::size_t shards) {
    ShardPlan plan;
    plan_into(tm, shards, plan.source_begin);
    return plan;
}

void sharded_primary_flow(const Subgraph& sg, const TrafficMatrixSoA& tm,
                          const ShardOptions& opt, ShardWorkspace& ws, ShardFlowResult& out) {
    POC_OBS_SPAN("net.shard.run");
    const Graph& g = sg.graph();
    POC_EXPECTS(opt.is_virtual == nullptr || opt.is_virtual->size() == g.link_count());
    // Build the lazy adjacency + SoA index before fanning out; shard
    // tasks may only read it.
    g.warm_adjacency();
    const LinkSoa soa = g.link_soa();
    const std::size_t link_count = g.link_count();

    out.link_load_gbps.assign(link_count, 0.0);
    out.routed_gbps = 0.0;
    out.weighted_km = 0.0;
    out.total_gbps_km = 0.0;
    out.virtual_gbps_km = 0.0;
    out.admitted = 0;
    out.unrouted = 0;

    plan_into(tm, opt.shards, ws.plan_);
    const std::size_t shard_count = ws.plan_.empty() ? 0 : ws.plan_.size() - 1;
    if (ws.shards_.size() != shard_count) ws.shards_.resize(shard_count);

    POC_OBS_INC("net.shard.runs");
    POC_OBS_COUNT("net.shard.demands", tm.size());
    POC_OBS_COUNT("net.shard.tasks", shard_count);

    const auto src = tm.src();
    const auto dst = tm.dst();
    const auto gbps = tm.gbps();
    const auto sources = tm.sources();
    const auto block_begin = tm.block_begin();
    const std::vector<bool>* is_virtual = opt.is_virtual;

    // Phase 1 — shared-nothing shard tasks. Each task writes only its
    // own ShardWorkspace::Shard; the graph, matrix, and plan are read
    // shared. All floating-point work here is per-source: one source's
    // tree plus folds over that source's demand block in sorted order,
    // independent of shard boundaries and schedule.
    const auto run_shard = [&](std::size_t s) {
        POC_OBS_SPAN("net.shard.task");
#if POC_OBS_ENABLED
        const auto t0 = std::chrono::steady_clock::now();
#endif
        ShardWorkspace::Shard& sh = ws.shards_[s];
        sh.partials.clear();
        sh.touched_links.clear();
        sh.touched_delta.clear();
        if (sh.scratch.size() != link_count) {
            sh.scratch.assign(link_count, 0.0);
            sh.stamp.assign(link_count, 0);
            sh.generation = 0;
        }

        for (std::uint32_t k = ws.plan_[s]; k < ws.plan_[s + 1]; ++k) {
            const NodeId source{sources[k]};

            // One tree per source: cache-served (bit-identical to cold,
            // incl. repaired trees) or a local workspace Dijkstra.
            std::shared_ptr<const ShortestPathTree> cached;
            if (opt.cache != nullptr) {
                cached = opt.cache->tree(sg, source, opt.metric);
            } else {
                dijkstra_metric_into(sg, source, opt.metric, sh.sssp);
            }

            if (++sh.generation == 0) {
                std::fill(sh.stamp.begin(), sh.stamp.end(), 0);
                sh.generation = 1;
            }
            ShardWorkspace::SourcePartial p;
            p.touched_begin = static_cast<std::uint32_t>(sh.touched_links.size());

            for (std::uint32_t j = block_begin[k]; j < block_begin[k + 1]; ++j) {
                const double d = gbps[j];
                if (d <= 0.0) continue;
                const NodeId target{dst[j]};
                POC_ASSERT(src[j] == sources[k]);
                const bool reachable = cached ? cached->reachable(target)
                                              : sh.sssp.reachable(target);
                if (!reachable) {
                    ++p.unrouted;
                    continue;
                }
                ++p.admitted;
                p.routed += d;
                const double km = cached ? cached->dist[target.index()]
                                         : sh.sssp.dist(target);
                p.weighted_km += d * km;
                if (cached) {
                    append_tree_path(*cached, target, sh.path);
                } else {
                    sh.sssp.append_path_to(target, sh.path);
                }
                for (const LinkId lid : sh.path) {
                    const std::size_t l = lid.index();
                    const double gkm = d * soa.length_km[l];
                    p.gbps_km += gkm;
                    if (is_virtual != nullptr && (*is_virtual)[l]) p.virtual_gbps_km += gkm;
                    if (sh.stamp[l] != sh.generation) {
                        sh.stamp[l] = sh.generation;
                        sh.scratch[l] = 0.0;
                        sh.touched_links.push_back(static_cast<std::uint32_t>(l));
                    }
                    sh.scratch[l] += d;
                }
            }

            // Freeze this source's sparse link deltas. Each delta is a
            // fold of the block's demand volumes in sorted order — the
            // same doubles whatever shard the source landed in.
            p.touched_end = static_cast<std::uint32_t>(sh.touched_links.size());
            for (std::uint32_t i = p.touched_begin; i < p.touched_end; ++i) {
                sh.touched_delta.push_back(sh.scratch[sh.touched_links[i]]);
            }
            sh.partials.push_back(p);
        }
#if POC_OBS_ENABLED
        sh.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
#endif
    };

    const std::size_t threads = std::max<std::size_t>(1, opt.threads);
    if (threads <= 1 || shard_count <= 1) {
        for (std::size_t s = 0; s < shard_count; ++s) run_shard(s);
    } else {
        util::ThreadPool pool(threads - 1);  // parallel_for joins the calling thread
        pool.parallel_for(shard_count, run_shard);
    }

#if POC_OBS_ENABLED
    if (shard_count > 0) {
        double max_ms = 0.0;
        double sum_ms = 0.0;
        for (const auto& sh : ws.shards_) {
            max_ms = std::max(max_ms, sh.elapsed_ms);
            sum_ms += sh.elapsed_ms;
        }
        const double mean_ms = sum_ms / static_cast<double>(shard_count);
        // max/mean shard runtime in percent (100 = perfectly balanced).
        POC_OBS_GAUGE_SET("net.shard.imbalance",
                          mean_ms > 0.0 ? std::llround(max_ms / mean_ms * 100.0) : 100);
    }
#endif

    // Phase 2 — deterministic serial merge. Shards hold contiguous
    // ascending source ranges and are visited in shard order, so every
    // fold below runs over per-source partials in ascending source
    // order regardless of how many shards there were.
    {
        POC_OBS_TIMER_MS("net.shard.merge_ms", 0.0, 250.0, 50);
        for (std::size_t s = 0; s < shard_count; ++s) {
            const ShardWorkspace::Shard& sh = ws.shards_[s];
            for (const ShardWorkspace::SourcePartial& p : sh.partials) {
                out.routed_gbps += p.routed;
                out.weighted_km += p.weighted_km;
                out.total_gbps_km += p.gbps_km;
                out.virtual_gbps_km += p.virtual_gbps_km;
                out.admitted += p.admitted;
                out.unrouted += p.unrouted;
                for (std::uint32_t i = p.touched_begin; i < p.touched_end; ++i) {
                    out.link_load_gbps[sh.touched_links[i]] += sh.touched_delta[i];
                }
            }
        }
    }
    POC_OBS_COUNT("net.shard.demands_admitted", out.admitted);
}

}  // namespace poc::net
