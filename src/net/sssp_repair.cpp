#include "net/sssp_repair.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"

namespace poc::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The routing weight the built-in metrics assign to a link — must
/// match the LengthWeight/UnitWeight functors in shortest_path.cpp
/// exactly (same double load, no rounding) for bit-identity.
double metric_weight(const Graph& g, LinkId lid, SsspMetric metric) {
    return metric == SsspMetric::kLength ? g.link(lid).length_km : 1.0;
}

}  // namespace

/// All repair logic. Defined at namespace scope (not anonymous) so the
/// friend declaration in SsspRepairWorkspace resolves to it; it is not
/// declared in any header.
///
/// Bit-identity model (DESIGN.md §7). Cold Dijkstra's outputs decompose
/// into two order-free parts and one order-dependent part:
///  - distances: the unique fixed point D(v) = min over active incident
///    links l (other endpoint u reached) of fl(D(u) + w(l)) — no heap
///    or visit order involved;
///  - parents: the first relaxation event to reach D(v). Events happen
///    at pops; pops are nondecreasing in distance, but among
///    equal-distance nodes (a "plateau") the order is *discovery
///    constrained*: the heap pops the minimum (dist, node id) among
///    entries present, and an entry appears only once some earlier pop
///    set the node's distance. Within a plateau, discovery propagates
///    along "plateau edges" — active links with fl(d + w) == d (weight
///    zero, up to rounding) — so the settle order is: start from the
///    members already discovered by strictly-smaller pops, repeatedly
///    pop the minimum id among discovered members, each pop discovering
///    its plateau-edge neighbors.
/// Repairs therefore (1) recompute exact distances on the affected
/// region, then (2) re-derive parents from final distances as the
/// lexicographically first (settle order of u, link id) achieving
/// candidate, reconstructing settle order locally by simulating just
/// the plateau components containing tied candidates (the pop
/// subsequence of a union of components is independent of how other
/// nodes interleave, because discovery never crosses component
/// boundaries).
class RepairEngine {
public:
    RepairEngine(ShortestPathTree& tree, const Subgraph& sg, SsspMetric metric,
                 SsspRepairWorkspace& ws)
        : tree_(tree), sg_(sg), g_(sg.graph()), metric_(metric), ws_(ws) {
        POC_EXPECTS(tree_.dist.size() == g_.node_count());
        POC_EXPECTS(tree_.source.index() < g_.node_count());
        prepare();
    }

    /// Weight-increase case (a cut is an increase to +inf). Returns
    /// false when the tree is provably bit-unchanged.
    ///
    /// If lid is not a tree edge nothing moves: every settled distance
    /// is realized by its tree path, which avoids lid, and an increase
    /// can only raise candidate values fl(D(u)+w) — it can never create
    /// a new equality with D(v) (IEEE addition is monotone), so no node
    /// gains a candidate. If lid is a tree edge, the affected set is
    /// exactly the subtree below it: outside it the realizing tree path
    /// avoids lid, so distances are bit-unchanged; parents outside
    /// stand because candidates only drop (and a dropped candidate was
    /// never the first achiever of an outside node — that would have
    /// made the node a subtree member), and the within-plateau settle
    /// order of non-subtree members is preserved (their discovery
    /// edges and pre-discovered status are untouched; subtree members
    /// never discover non-subtree members, since discovering a node
    /// makes it your tree child).
    bool repair_increase(LinkId lid) {
        const Link& l = g_.link(lid);
        NodeId child{};
        if (tree_.parent_link[l.a.index()] == lid) {
            child = l.a;
        } else if (tree_.parent_link[l.b.index()] == lid) {
            child = l.b;
        } else {
            return false;
        }

        collect_subtree(child);
        ws_.heap_.clear();
        for (const std::uint32_t ui : ws_.queue_) {
            tree_.dist[ui] = kInf;
            tree_.parent_link[ui] = LinkId{};
            tree_.pred_node_[ui] = NodeId{};
        }
        // Seed every subtree node from its settled outside neighbors
        // with the exact relaxation value cold Dijkstra offers it —
        // fl(dist[u] + w) — then run Dijkstra restricted to the
        // subtree. Distances settle at the cold fixed point; the heap
        // order only affects work, not results, because parents are
        // re-derived from final distances afterwards.
        for (const std::uint32_t ui : ws_.queue_) {
            const NodeId u{ui};
            for (const LinkId in : g_.incident(u)) {
                if (!sg_.is_active(in)) continue;
                const NodeId v = g_.link(in).other(u);
                if (in_affected(v)) continue;
                const double dv = tree_.dist[v.index()];
                if (!(dv < kInf)) continue;
                const double nd = dv + metric_weight(g_, in, metric_);
                if (nd < tree_.dist[ui]) {
                    tree_.dist[ui] = nd;
                    heap_push(nd, ui);
                }
            }
        }
        while (!ws_.heap_.empty()) {
            const auto [d, ui] = heap_pop();
            if (d > tree_.dist[ui]) continue;
            const NodeId u{ui};
            for (const LinkId in : g_.incident(u)) {
                if (!sg_.is_active(in)) continue;
                const NodeId v = g_.link(in).other(u);
                if (!in_affected(v)) continue;
                const double nd = d + metric_weight(g_, in, metric_);
                if (nd < tree_.dist[v.index()]) {
                    tree_.dist[v.index()] = nd;
                    heap_push(nd, v.value());
                }
            }
        }
        ws_.stats_.affected_nodes += ws_.queue_.size();
        for (const std::uint32_t ui : ws_.queue_) {
            if (tree_.dist[ui] < kInf) derive_parent(NodeId{ui});
        }
        return true;
    }

    /// Weight-decrease case (a restore is a decrease from +inf).
    /// Propagates strict improvements outward from lid's endpoints,
    /// then re-derives parents on a conservative superset of the nodes
    /// whose parent can move: the changed set C, its active neighbors
    /// (new or re-keyed candidates), lid's endpoints (a candidate link
    /// appeared outright), the plateau-closure of all of those (settle
    /// order inside a contaminated plateau component can shift), and
    /// one neighbor ring around that closure (a node adjacent to a
    /// shifted candidate). Over-approximation is harmless: derivation
    /// reproduces the cold parent for any node given final distances.
    /// Returns false when the tree is provably bit-unchanged.
    bool repair_decrease(LinkId lid) {
        const Link& l = g_.link(lid);
        const double w = metric_weight(g_, lid, metric_);
        const bool a_reached = tree_.dist[l.a.index()] < kInf;
        const bool b_reached = tree_.dist[l.b.index()] < kInf;
        if (!a_reached && !b_reached) return false;

        ws_.heap_.clear();
        auto seed = [&](NodeId from, NodeId to) {
            const double df = tree_.dist[from.index()];
            if (!(df < kInf)) return;
            const double nd = df + w;
            if (nd < tree_.dist[to.index()]) {
                tree_.dist[to.index()] = nd;
                mark_changed(to);
                heap_push(nd, to.value());
            }
        };
        seed(l.a, l.b);
        seed(l.b, l.a);
        while (!ws_.heap_.empty()) {
            const auto [d, ui] = heap_pop();
            if (d > tree_.dist[ui]) continue;
            const NodeId u{ui};
            for (const LinkId in : g_.incident(u)) {
                if (!sg_.is_active(in)) continue;
                const NodeId v = g_.link(in).other(u);
                const double nd = d + metric_weight(g_, in, metric_);
                if (nd < tree_.dist[v.index()]) {
                    tree_.dist[v.index()] = nd;
                    mark_changed(v);
                    heap_push(nd, v.value());
                }
            }
        }
        ws_.stats_.affected_nodes += ws_.queue_.size();

        // Seeds: C, N(C), and lid's endpoints.
        ws_.derive_.clear();
        for (const std::uint32_t ui : ws_.queue_) {
            const NodeId u{ui};
            add_derive(u);
            for (const LinkId in : g_.incident(u)) {
                if (!sg_.is_active(in)) continue;
                add_derive(g_.link(in).other(u));
            }
        }
        add_derive(l.a);
        add_derive(l.b);
        // Plateau closure: expand across plateau edges (appends while
        // iterating, so closure members expand too).
        for (std::size_t qi = 0; qi < ws_.derive_.size(); ++qi) {
            const NodeId x{ws_.derive_[qi]};
            const double dx = tree_.dist[x.index()];
            if (!(dx < kInf)) continue;
            for (const LinkId in : g_.incident(x)) {
                if (!sg_.is_active(in)) continue;
                const NodeId y = g_.link(in).other(x);
                if (tree_.dist[y.index()] != dx) continue;
                if (dx + metric_weight(g_, in, metric_) != dx) continue;
                add_derive(y);
            }
        }
        // One neighbor ring around the closure (no further expansion).
        const std::size_t closure_size = ws_.derive_.size();
        for (std::size_t qi = 0; qi < closure_size; ++qi) {
            const NodeId x{ws_.derive_[qi]};
            for (const LinkId in : g_.incident(x)) {
                if (!sg_.is_active(in)) continue;
                add_derive(g_.link(in).other(x));
            }
        }

        bool any = !ws_.queue_.empty();
        for (const std::uint32_t ui : ws_.derive_) {
            const NodeId v{ui};
            if (v == tree_.source) continue;
            if (!(tree_.dist[ui] < kInf)) continue;
            const bool changed = derive_parent(v);
            any = any || changed;
        }
        return any;
    }

private:
    void prepare() {
        const std::size_t n = g_.node_count();
        if (ws_.stamp_.size() != n) {
            ws_.stamp_.assign(n, 0);
            ws_.derive_stamp_.assign(n, 0);
            ws_.generation_ = 0;
            ws_.plateau_stamp_.assign(n, 0);
            ws_.plateau_state_.assign(n, 0);
            ws_.plateau_generation_ = 0;
        }
        if (++ws_.generation_ == 0) {
            std::fill(ws_.stamp_.begin(), ws_.stamp_.end(), 0);
            std::fill(ws_.derive_stamp_.begin(), ws_.derive_stamp_.end(), 0);
            ws_.generation_ = 1;
        }
        ws_.queue_.clear();
    }

    bool in_affected(NodeId v) const { return ws_.stamp_[v.index()] == ws_.generation_; }

    void mark_changed(NodeId v) {
        if (ws_.stamp_[v.index()] != ws_.generation_) {
            ws_.stamp_[v.index()] = ws_.generation_;
            ws_.queue_.push_back(v.value());
        }
    }

    void add_derive(NodeId v) {
        if (ws_.derive_stamp_[v.index()] != ws_.generation_) {
            ws_.derive_stamp_[v.index()] = ws_.generation_;
            ws_.derive_.push_back(v.value());
        }
    }

    /// Collect the tree subtree rooted at `child` into ws_.queue_,
    /// stamping membership. The children index is a counting-sort CSR
    /// over predecessor pointers; after the fill pass child_offsets_[p]
    /// is the END of p's bucket (start is the previous bucket's end).
    void collect_subtree(NodeId child) {
        const std::size_t n = g_.node_count();
        ws_.child_offsets_.assign(n + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            if (tree_.parent_link[i].valid()) {
                ++ws_.child_offsets_[tree_.pred_node_[i].index() + 1];
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            ws_.child_offsets_[i + 1] += ws_.child_offsets_[i];
        }
        ws_.child_nodes_.resize(ws_.child_offsets_[n]);
        for (std::size_t i = 0; i < n; ++i) {
            if (tree_.parent_link[i].valid()) {
                const std::size_t p = tree_.pred_node_[i].index();
                ws_.child_nodes_[ws_.child_offsets_[p]++] = static_cast<std::uint32_t>(i);
            }
        }
        ws_.queue_.clear();
        ws_.stamp_[child.index()] = ws_.generation_;
        ws_.queue_.push_back(child.value());
        for (std::size_t qi = 0; qi < ws_.queue_.size(); ++qi) {
            const std::size_t p = ws_.queue_[qi];
            const std::size_t lo = p == 0 ? 0 : ws_.child_offsets_[p - 1];
            const std::size_t hi = ws_.child_offsets_[p];
            for (std::size_t c = lo; c < hi; ++c) {
                const std::uint32_t v = ws_.child_nodes_[c];
                ws_.stamp_[v] = ws_.generation_;
                ws_.queue_.push_back(v);
            }
        }
    }

    static bool heap_greater(SsspRepairWorkspace::HeapItem a,
                             SsspRepairWorkspace::HeapItem b) noexcept {
        return a.dist > b.dist || (a.dist == b.dist && a.node > b.node);
    }

    void heap_push(double d, NodeId::underlying_type node) {
        ws_.heap_.push_back({d, node});
        std::push_heap(ws_.heap_.begin(), ws_.heap_.end(), heap_greater);
    }

    SsspRepairWorkspace::HeapItem heap_pop() {
        std::pop_heap(ws_.heap_.begin(), ws_.heap_.end(), heap_greater);
        const auto item = ws_.heap_.back();
        ws_.heap_.pop_back();
        return item;
    }

    /// Recompute v's parent from final distances: the winner is the
    /// lexicographically first (settle order of u, link id) among
    /// candidates with fl(D(u) + w) == D(v) exactly. Settle order
    /// respects distance strictly, so only the minimum-D(u) group can
    /// win; within it, a single node needs no ordering, multiple nodes
    /// need the plateau simulation. Requires v reachable and != source.
    bool derive_parent(NodeId v) {
        const double dv = tree_.dist[v.index()];
        ws_.cand_nodes_.clear();
        ws_.cand_links_.clear();
        double best_du = kInf;
        for (const LinkId in : g_.incident(v)) {
            if (!sg_.is_active(in)) continue;
            const NodeId u = g_.link(in).other(v);
            const double du = tree_.dist[u.index()];
            if (!(du < kInf)) continue;
            if (du + metric_weight(g_, in, metric_) != dv) continue;
            if (du < best_du) {
                best_du = du;
                ws_.cand_nodes_.clear();
                ws_.cand_links_.clear();
            } else if (du != best_du) {
                continue;
            }
            // Ascending link scan: keep the first link per distinct
            // node (cold Dijkstra scans u's incident list in ascending
            // link id, so among parallel achieving links the lowest id
            // relaxes first).
            bool known = false;
            for (const std::uint32_t seen : ws_.cand_nodes_) {
                if (seen == u.value()) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                ws_.cand_nodes_.push_back(u.value());
                ws_.cand_links_.push_back(in);
            }
        }
        POC_ASSERT(!ws_.cand_nodes_.empty());
        std::size_t win = 0;
        if (ws_.cand_nodes_.size() > 1) {
            const NodeId u = plateau_winner(best_du);
            while (ws_.cand_nodes_[win] != u.value()) ++win;
        }
        const NodeId best_u{ws_.cand_nodes_[win]};
        const LinkId best_l = ws_.cand_links_[win];
        const bool changed =
            tree_.parent_link[v.index()] != best_l || tree_.pred_node_[v.index()] != best_u;
        tree_.parent_link[v.index()] = best_l;
        tree_.pred_node_[v.index()] = best_u;
        return changed;
    }

    /// Which of the (equal-distance) candidate nodes in ws_.cand_nodes_
    /// settles first in cold Dijkstra's pop order. Reconstructs the pop
    /// subsequence of the plateau components containing the candidates:
    /// collect the components via plateau edges (fl(dp + w) == dp,
    /// both endpoints at dp), mark members pre-discovered when some
    /// strictly-closer neighbor achieves dp into them (or they are the
    /// source), then pop minimum node id among discovered, each pop
    /// discovering its plateau-edge neighbors — exactly the heap's
    /// behavior restricted to these components.
    NodeId plateau_winner(double dp) {
        if (++ws_.plateau_generation_ == 0) {
            std::fill(ws_.plateau_stamp_.begin(), ws_.plateau_stamp_.end(), 0);
            ws_.plateau_generation_ = 1;
        }
        const std::uint32_t gen = ws_.plateau_generation_;
        constexpr std::uint8_t kMember = 0, kDiscovered = 1, kPopped = 2;
        ws_.plateau_queue_.clear();
        ws_.plateau_heap_.clear();
        for (const std::uint32_t t : ws_.cand_nodes_) {
            ws_.plateau_stamp_[t] = gen;
            ws_.plateau_state_[t] = kMember;
            ws_.plateau_queue_.push_back(t);
        }
        for (std::size_t qi = 0; qi < ws_.plateau_queue_.size(); ++qi) {
            const NodeId x{ws_.plateau_queue_[qi]};
            for (const LinkId in : g_.incident(x)) {
                if (!sg_.is_active(in)) continue;
                const NodeId y = g_.link(in).other(x);
                if (ws_.plateau_stamp_[y.index()] == gen) continue;
                if (tree_.dist[y.index()] != dp) continue;
                if (dp + metric_weight(g_, in, metric_) != dp) continue;
                ws_.plateau_stamp_[y.index()] = gen;
                ws_.plateau_state_[y.index()] = kMember;
                ws_.plateau_queue_.push_back(y.value());
            }
        }
        for (const std::uint32_t m : ws_.plateau_queue_) {
            const NodeId mn{m};
            bool pre = mn == tree_.source;
            if (!pre) {
                for (const LinkId in : g_.incident(mn)) {
                    if (!sg_.is_active(in)) continue;
                    const NodeId x = g_.link(in).other(mn);
                    const double dx = tree_.dist[x.index()];
                    if (dx < dp && dx + metric_weight(g_, in, metric_) == dp) {
                        pre = true;
                        break;
                    }
                }
            }
            if (pre) {
                ws_.plateau_state_[m] = kDiscovered;
                id_heap_push(m);
            }
        }
        while (!ws_.plateau_heap_.empty()) {
            const std::uint32_t x = id_heap_pop();
            if (ws_.plateau_state_[x] == kPopped) continue;
            ws_.plateau_state_[x] = kPopped;
            for (const std::uint32_t t : ws_.cand_nodes_) {
                if (t == x) return NodeId{x};
            }
            const NodeId xn{x};
            for (const LinkId in : g_.incident(xn)) {
                if (!sg_.is_active(in)) continue;
                const NodeId y = g_.link(in).other(xn);
                if (ws_.plateau_stamp_[y.index()] != gen) continue;
                if (ws_.plateau_state_[y.index()] != kMember) continue;
                if (dp + metric_weight(g_, in, metric_) != dp) continue;
                ws_.plateau_state_[y.index()] = kDiscovered;
                id_heap_push(y.value());
            }
        }
        POC_ASSERT(false);  // every component has a pre-discovered entry point
        return NodeId{};
    }

    void id_heap_push(std::uint32_t id) {
        ws_.plateau_heap_.push_back(id);
        std::push_heap(ws_.plateau_heap_.begin(), ws_.plateau_heap_.end(),
                       std::greater<std::uint32_t>{});
    }

    std::uint32_t id_heap_pop() {
        std::pop_heap(ws_.plateau_heap_.begin(), ws_.plateau_heap_.end(),
                      std::greater<std::uint32_t>{});
        const std::uint32_t id = ws_.plateau_heap_.back();
        ws_.plateau_heap_.pop_back();
        return id;
    }

    ShortestPathTree& tree_;
    const Subgraph& sg_;
    const Graph& g_;
    SsspMetric metric_;
    SsspRepairWorkspace& ws_;
};

void repair_link_cut(ShortestPathTree& tree, const Subgraph& sg, LinkId lid, SsspMetric metric,
                     SsspRepairWorkspace& ws) {
    POC_EXPECTS(lid.index() < sg.graph().link_count());
    POC_EXPECTS(!sg.is_active(lid));
    ++ws.stats_.cuts;
    POC_OBS_INC("net.sssp_repair.cuts");
    RepairEngine eng(tree, sg, metric, ws);
    if (!eng.repair_increase(lid)) ++ws.stats_.noops;
}

void repair_link_restore(ShortestPathTree& tree, const Subgraph& sg, LinkId lid,
                         SsspMetric metric, SsspRepairWorkspace& ws) {
    POC_EXPECTS(lid.index() < sg.graph().link_count());
    POC_EXPECTS(sg.is_active(lid));
    ++ws.stats_.restores;
    POC_OBS_INC("net.sssp_repair.restores");
    RepairEngine eng(tree, sg, metric, ws);
    if (!eng.repair_decrease(lid)) ++ws.stats_.noops;
}

void repair_weight_change(ShortestPathTree& tree, const Subgraph& sg, LinkId lid,
                          double old_weight, SsspMetric metric, SsspRepairWorkspace& ws) {
    POC_EXPECTS(lid.index() < sg.graph().link_count());
    POC_EXPECTS(sg.is_active(lid));
    POC_EXPECTS(old_weight >= 0.0);
    ++ws.stats_.weight_changes;
    POC_OBS_INC("net.sssp_repair.weight_changes");
    const double w_old = metric == SsspMetric::kLength ? old_weight : 1.0;
    const double w_new = metric_weight(sg.graph(), lid, metric);
    if (w_new == w_old) {
        ++ws.stats_.noops;
        return;
    }
    RepairEngine eng(tree, sg, metric, ws);
    const bool acted = w_new > w_old ? eng.repair_increase(lid) : eng.repair_decrease(lid);
    if (!acted) ++ws.stats_.noops;
}

}  // namespace poc::net
