// Multi-commodity flow machinery for the auction's acceptability oracle
// A(OL) (paper section 3.3): given a candidate set of leased links, can
// the POC route its traffic-matrix upper bound?
//
// Exact fractional MCF is an LP; instead we provide two practical
// oracles, both standard in traffic-engineering practice:
//
//  * greedy_path_routing - fast water-filling over k-shortest candidate
//    paths. Sufficient (not necessary): success proves feasibility.
//  * max_concurrent_flow - Fleischer's FPTAS for maximum concurrent
//    flow. Returns a certified-feasible throughput factor lambda such
//    that lambda >= (1-eps)^2 * OPT; lambda >= 1 proves the matrix fits.
//
// The winner-determination search uses the cheap oracle first and falls
// back to the FPTAS.
#pragma once

#include <optional>
#include <vector>

#include "net/graph.hpp"
#include "net/shortest_path.hpp"

namespace poc::net {

/// A fractional routing: per demand, a set of paths with assigned rates.
struct CommodityRouting {
    /// routes[d] lists (path, gbps) pairs for tm[d]; rates sum to at
    /// most tm[d].gbps (equality when the routing is complete).
    std::vector<std::vector<std::pair<std::vector<LinkId>, double>>> routes;

    /// Total gbps placed on each link by this routing.
    std::vector<double> link_load(const Graph& g) const;
};

/// Per-commodity link exclusions: exclusions[d] lists links that demand
/// tm[d] must not traverse (used by the per-pair failure constraint,
/// where each demand avoids its own failed primary path).
using CommodityExclusions = std::vector<std::vector<LinkId>>;

struct GreedyRoutingOptions {
    /// Number of candidate shortest paths per commodity.
    std::size_t k_paths = 4;
    /// Capacity headroom: links are filled only to this fraction.
    double utilization_cap = 1.0;
    /// Optional per-commodity forbidden links (size == tm.size()).
    const CommodityExclusions* exclusions = nullptr;
    /// Optional base routing weight per link (indexed by link id);
    /// defaults to geographic length. Winner determination passes lease
    /// prices here so routing concentrates on cheap links.
    const std::vector<double>* base_weight = nullptr;
};

/// Water-filling over Yen candidate paths, demands placed largest-first.
/// Returns the routing if every demand fits entirely, nullopt otherwise.
std::optional<CommodityRouting> greedy_path_routing(const Subgraph& sg, const TrafficMatrix& tm,
                                                    const GreedyRoutingOptions& opt = {});

struct ConcurrentFlowResult {
    /// Certified feasible throughput: every demand can simultaneously
    /// route lambda * its volume. lambda >= 1 ==> the matrix fits.
    double lambda = 0.0;
    /// The scaled-feasible routing achieving lambda.
    CommodityRouting routing;
};

/// Fleischer's max-concurrent-flow approximation. eps in (0, 0.5].
/// Demands whose endpoints are unreachable (under their exclusions)
/// yield lambda = 0.
ConcurrentFlowResult max_concurrent_flow(const Subgraph& sg, const TrafficMatrix& tm,
                                         double eps = 0.1,
                                         const CommodityExclusions* exclusions = nullptr);

/// Combined feasibility oracle: greedy first, FPTAS fallback.
/// `fptas_eps` controls the fallback's precision/speed trade-off.
bool is_routable(const Subgraph& sg, const TrafficMatrix& tm, double fptas_eps = 0.15,
                 const CommodityExclusions* exclusions = nullptr);

}  // namespace poc::net
