// Failure models for the auction's resilience constraints (paper
// section 3.3):
//
//   Constraint #1 - the selected links can carry the traffic matrix.
//   Constraint #2 - ... even after "any single path between a pair of
//                   routers has failed". We operationalize a failed path
//                   as the failure of any one of its links: the set must
//                   survive every single-link failure.
//   Constraint #3 - ... assuming "a path between each pair of routers
//                   has failed": every demand must be routable while
//                   avoiding the links of its own primary (shortest)
//                   path, i.e. each commodity is rerouted onto backup
//                   capacity simultaneously.
//
// The mapping from the paper's one-sentence definitions to these checks
// is recorded in DESIGN.md.
#pragma once

#include <vector>

#include "net/graph.hpp"
#include "net/mcf.hpp"
#include "net/path_cache.hpp"

namespace poc::net {

struct ResilienceOptions {
    /// FPTAS precision for feasibility fallback checks.
    double fptas_eps = 0.15;
    /// For single-link-failure checking: a link whose nominal-routing
    /// load is at most this fraction of its capacity is not individually
    /// re-checked. The default 0.0 is the safe, exact setting: only
    /// links carrying (numerically) zero flow are skipped, which is
    /// sound because the nominal routing itself stays feasible when an
    /// unloaded link fails. Any positive value is a speed heuristic that
    /// *assumes* lightly-loaded links' traffic fits in the survivors'
    /// headroom, so it can accept sets the exhaustive check would
    /// reject; use it only for coarse search, never final validation.
    double recheck_load_threshold = 0.0;
    /// Optional shared tree cache for the per-pair model's primary-path
    /// computation (keyed on the subgraph mask, so near-identical pivot
    /// masks reuse each other's trees). Null: no caching. Either way
    /// the result is identical.
    PathCache* path_cache = nullptr;
};

/// Constraint #1: the matrix is routable on the active links.
bool satisfies_load(const Subgraph& sg, const TrafficMatrix& tm, double fptas_eps = 0.15);

/// Constraint #2: routable after every possible single-link failure.
/// (Exhaustive over active links above the threshold; see options.)
bool satisfies_single_failure(const Subgraph& sg, const TrafficMatrix& tm,
                              const ResilienceOptions& opt = {});

/// Constraint #3: every demand routable with its primary path's links
/// excluded for that demand, all demands simultaneously.
bool satisfies_per_pair_failure(const Subgraph& sg, const TrafficMatrix& tm,
                                const ResilienceOptions& opt = {});

/// The primary (shortest-by-length) path link set per demand, used by
/// the per-pair failure model. Demands with disconnected endpoints get
/// an empty set.
std::vector<std::vector<LinkId>> primary_paths(const Subgraph& sg, const TrafficMatrix& tm,
                                               PathCache* cache = nullptr);

}  // namespace poc::net
