#include "net/mcf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "net/ksp.hpp"

namespace poc::net {

namespace {
constexpr double kEps = 1e-12;
}

std::vector<double> CommodityRouting::link_load(const Graph& g) const {
    std::vector<double> load(g.link_count(), 0.0);
    for (const auto& demand_routes : routes) {
        for (const auto& [path, rate] : demand_routes) {
            for (const LinkId l : path) load[l.index()] += rate;
        }
    }
    return load;
}

std::optional<CommodityRouting> greedy_path_routing(const Subgraph& sg, const TrafficMatrix& tm,
                                                    const GreedyRoutingOptions& opt) {
    POC_EXPECTS(opt.k_paths >= 1);
    POC_EXPECTS(opt.utilization_cap > 0.0 && opt.utilization_cap <= 1.0);
    POC_EXPECTS(opt.exclusions == nullptr || opt.exclusions->size() == tm.size());
    const Graph& g = sg.graph();

    // Place the biggest demands first: they are the hardest to fit.
    std::vector<std::size_t> order(tm.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return tm[a].gbps > tm[b].gbps; });

    std::vector<double> residual(g.link_count(), 0.0);
    for (const LinkId lid : sg.active_links()) {
        residual[lid.index()] = g.link(lid).capacity_gbps * opt.utilization_cap;
    }

    const LinkWeight base_weight = weight_by_length(g);
    CommodityRouting routing;
    routing.routes.resize(tm.size());

    // The "usable" view — active links with residual capacity — is
    // maintained incrementally across demands instead of being rebuilt
    // from scratch per demand: residual only ever decreases, so the
    // exhausted set grows monotonically and a link deactivated here
    // stays deactivated. This is exactly the set the per-demand rebuild
    // would produce, just without the O(L) sweep. Per-demand exclusions
    // are toggled off around the search and restored via an undo list
    // (an excluded link's residual cannot change while it is excluded,
    // so restoring to active is always correct).
    Subgraph usable = sg;
    for (const LinkId lid : sg.active_links()) {
        if (residual[lid.index()] <= kEps) usable.set_active(lid, false);
    }
    std::vector<LinkId> excluded_undo;
    SsspWorkspace ws;

    for (const std::size_t di : order) {
        const Demand& d = tm[di];
        if (d.gbps <= kEps) continue;
        POC_EXPECTS(d.src != d.dst);

        // Candidate paths under a congestion-aware metric: base weight
        // (length, or caller-supplied, e.g. lease price) scaled up as
        // residual capacity shrinks, so we prefer uncongested routes.
        const LinkWeight congestion_weight = [&](LinkId lid) {
            const double cap = g.link(lid).capacity_gbps * opt.utilization_cap;
            const double used = cap - residual[lid.index()];
            const double frac = cap > 0.0 ? used / cap : 1.0;
            const double base = opt.base_weight != nullptr ? (*opt.base_weight)[lid.index()]
                                                           : g.link(lid).length_km;
            return (base + 1.0) * (1.0 + 4.0 * frac * frac);
        };

        excluded_undo.clear();
        if (opt.exclusions != nullptr) {
            for (const LinkId lid : (*opt.exclusions)[di]) {
                if (usable.is_active(lid)) {
                    usable.set_active(lid, false);
                    excluded_undo.push_back(lid);
                }
            }
        }

        auto candidates =
            yen_k_shortest(usable, d.src, d.dst, congestion_weight, opt.k_paths, ws);
        double remaining = d.gbps;
        bool fits = true;
        for (const WeightedPath& wp : candidates) {
            if (remaining <= kEps) break;
            double bottleneck = remaining;
            for (const LinkId l : wp.links) {
                bottleneck = std::min(bottleneck, residual[l.index()]);
            }
            if (bottleneck <= kEps) continue;
            for (const LinkId l : wp.links) {
                residual[l.index()] -= bottleneck;
                if (residual[l.index()] <= kEps) usable.set_active(l, false);
            }
            routing.routes[di].emplace_back(wp.links, bottleneck);
            remaining -= bottleneck;
        }
        if (remaining > 1e-9 * std::max(1.0, d.gbps)) fits = false;

        for (const LinkId lid : excluded_undo) usable.set_active(lid, true);
        if (!fits) return std::nullopt;
    }
    return routing;
}

ConcurrentFlowResult max_concurrent_flow(const Subgraph& sg, const TrafficMatrix& tm, double eps,
                                         const CommodityExclusions* exclusions) {
    POC_EXPECTS(eps > 0.0 && eps <= 0.5);
    POC_EXPECTS(exclusions == nullptr || exclusions->size() == tm.size());
    const Graph& g = sg.graph();
    const std::size_t m = std::max<std::size_t>(sg.active_count(), 2);

    ConcurrentFlowResult out;
    out.routing.routes.resize(tm.size());
    if (tm.empty()) {
        out.lambda = std::numeric_limits<double>::infinity();
        return out;
    }

    // Fleischer's length-function initialization.
    const double delta = std::pow(static_cast<double>(m) / (1.0 - eps), -1.0 / eps) /
                         1.0;  // delta = (m/(1-eps))^(-1/eps)
    std::vector<double> length(g.link_count(), 0.0);
    const auto active = sg.active_links();
    for (const LinkId lid : active) {
        length[lid.index()] = delta / g.link(lid).capacity_gbps;
    }
    auto dual = [&]() {
        double s = 0.0;
        for (const LinkId lid : active) s += length[lid.index()] * g.link(lid).capacity_gbps;
        return s;
    };

    const LinkWeight len_weight = [&](LinkId lid) { return length[lid.index()]; };

    std::vector<double> routed(tm.size(), 0.0);  // unscaled flow per commodity

    // Per-commodity views honoring exclusions (shared view otherwise).
    std::vector<Subgraph> views;
    if (exclusions != nullptr) {
        views.reserve(tm.size());
        for (std::size_t j = 0; j < tm.size(); ++j) {
            Subgraph v = sg;
            for (const LinkId lid : (*exclusions)[j]) v.set_active(lid, false);
            views.push_back(std::move(v));
        }
    }
    auto view_of = [&](std::size_t j) -> const Subgraph& {
        return exclusions != nullptr ? views[j] : sg;
    };

    // Quick reachability/zero-demand screening. Reachability under the
    // unit metric only depends on the source and the view, so with no
    // exclusions (all views alias sg) one SSSP per distinct source
    // answers every demand from it; the workspace keeps the tree of
    // the most recent source, and demands arrive grouped only by
    // chance, so we re-run when the source (or view) changes.
    SsspWorkspace ws;
    NodeId screened_source{};
    for (std::size_t j = 0; j < tm.size(); ++j) {
        const Demand& d = tm[j];
        POC_EXPECTS(d.gbps >= 0.0);
        if (d.gbps <= kEps) continue;
        if (exclusions != nullptr || d.src != screened_source) {
            dijkstra_metric_into(view_of(j), d.src, SsspMetric::kUnit, ws);
            screened_source = d.src;
        }
        if (!ws.reachable(d.dst)) {
            out.lambda = 0.0;  // some demand cannot be routed at all
            return out;
        }
    }

    double current_dual = dual();
    while (current_dual < 1.0) {
        for (std::size_t j = 0; j < tm.size(); ++j) {
            const Demand& d = tm[j];
            if (d.gbps <= kEps) continue;
            double to_route = d.gbps;
            while (to_route > kEps && current_dual < 1.0) {
                auto sp = shortest_path(view_of(j), d.src, d.dst, len_weight, ws);
                POC_ASSERT(sp.has_value());
                double bottleneck = to_route;
                for (const LinkId l : sp->links) {
                    bottleneck = std::min(bottleneck, g.link(l).capacity_gbps);
                }
                POC_ASSERT(bottleneck > 0.0);
                for (const LinkId l : sp->links) {
                    const double cap = g.link(l).capacity_gbps;
                    const double old_len = length[l.index()];
                    length[l.index()] = old_len * (1.0 + eps * bottleneck / cap);
                    // Incremental dual update: d(sum cap*len) = cap * old_len
                    // * (eps*b/cap) = eps * b * old_len.
                    current_dual += eps * bottleneck * old_len;
                }
                routed[j] += bottleneck;
                to_route -= bottleneck;
                out.routing.routes[j].emplace_back(std::move(sp->links), bottleneck);
            }
        }
    }

    // Scale the accumulated flow down to feasibility: each link carries
    // at most log_{1+eps}((1+eps)/delta) times its capacity.
    const double scale = std::log((1.0 + eps) / delta) / std::log(1.0 + eps);
    POC_ASSERT(scale > 0.0);
    double min_fraction = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < tm.size(); ++j) {
        if (tm[j].gbps <= kEps) continue;
        min_fraction = std::min(min_fraction, routed[j] / tm[j].gbps);
    }
    if (min_fraction == std::numeric_limits<double>::infinity()) min_fraction = 0.0;
    out.lambda = min_fraction / scale;

    for (auto& demand_routes : out.routing.routes) {
        for (auto& [path, rate] : demand_routes) rate /= scale;
    }
    return out;
}

bool is_routable(const Subgraph& sg, const TrafficMatrix& tm, double fptas_eps,
                 const CommodityExclusions* exclusions) {
    if (tm.empty()) return true;
    GreedyRoutingOptions greedy_opt;
    greedy_opt.exclusions = exclusions;
    if (greedy_path_routing(sg, tm, greedy_opt)) return true;
    return max_concurrent_flow(sg, tm, fptas_eps, exclusions).lambda >= 1.0;
}

}  // namespace poc::net
