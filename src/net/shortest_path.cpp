#include "net/shortest_path.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace poc::net {

LinkWeight weight_by_length(const Graph& g) {
    return [&g](LinkId id) { return g.link(id).length_km; };
}

LinkWeight weight_unit() {
    return [](LinkId) { return 1.0; };
}

std::vector<LinkId> ShortestPathTree::path_to(NodeId target) const {
    POC_EXPECTS(target.index() < dist.size());
    POC_EXPECTS(reachable(target));
    std::vector<LinkId> links;
    // Walk parent pointers; needs the graph only implicitly because the
    // parent link's endpoints determine the predecessor. We store just
    // link ids here, so the caller walks with path_nodes() if node order
    // matters. To reconstruct we track the current node via parents.
    // parent_link[v] connects v to its predecessor.
    NodeId v = target;
    while (v != source) {
        const LinkId pl = parent_link[v.index()];
        POC_ASSERT(pl.valid());
        links.push_back(pl);
        // Move to the other endpoint. We cannot consult the Graph here,
        // so ShortestPathTree stores predecessor nodes too; see below.
        v = pred_node_[v.index()];
    }
    std::reverse(links.begin(), links.end());
    return links;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// weight_by_length with the std::function indirection stripped: the
/// batched fast path calls the weight once per scanned edge, and a
/// direct load from the flat SoA length array (8-byte lane instead of
/// a 40-byte Link stride) is measurably cheaper than a type-erased
/// call. Same doubles, so bit-identical.
struct LengthWeight {
    LinkSoa soa;
    double operator()(LinkId id) const { return soa.length_km[id.index()]; }
};

struct UnitWeight {
    double operator()(LinkId) const { return 1.0; }
};

}  // namespace

void SsspWorkspace::prepare(std::size_t node_count) {
    if (dist_.size() != node_count) {
        dist_.assign(node_count, 0.0);
        parent_.assign(node_count, LinkId{});
        pred_.assign(node_count, NodeId{});
        stamp_.assign(node_count, 0);
        generation_ = 0;
    }
    if (++generation_ == 0) {
        // Stamp wraparound after 2^32 runs: every stored stamp is stale
        // by construction, so reset them all once and restart at 1.
        std::fill(stamp_.begin(), stamp_.end(), 0);
        generation_ = 1;
    }
    heap_.clear();
}

void SsspWorkspace::heap_push(HeapItem item) {
    heap_.push_back(item);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t p = (i - 1) / 4;
        if (!heap_less(heap_[i], heap_[p])) break;
        std::swap(heap_[i], heap_[p]);
        i = p;
    }
}

SsspWorkspace::HeapItem SsspWorkspace::heap_pop() {
    POC_ASSERT(!heap_.empty());
    const HeapItem top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (heap_less(heap_[c], heap_[best])) best = c;
        }
        if (!heap_less(heap_[best], heap_[i])) break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
    return top;
}

void SsspWorkspace::append_path_to(NodeId target, std::vector<LinkId>& out) const {
    POC_EXPECTS(target.index() < dist_.size());
    POC_EXPECTS(reachable(target));
    out.clear();
    NodeId v = target;
    while (v != source_) {
        const LinkId pl = parent_[v.index()];
        POC_ASSERT(pl.valid());
        out.push_back(pl);
        v = pred_[v.index()];
    }
    std::reverse(out.begin(), out.end());
}

ShortestPathTree SsspWorkspace::to_tree() const {
    ShortestPathTree tree;
    tree.source = source_;
    const std::size_t n = dist_.size();
    tree.dist.assign(n, kInf);
    tree.parent_link.assign(n, LinkId{});
    tree.pred_node_.assign(n, NodeId{});
    for (std::size_t i = 0; i < n; ++i) {
        if (stamp_[i] == generation_) {
            tree.dist[i] = dist_[i];
            tree.parent_link[i] = parent_[i];
            tree.pred_node_[i] = pred_[i];
        }
    }
    return tree;
}

namespace detail {

// The whole fast path rests on this being bit-identical to the seed
// priority_queue implementation. The argument: a node is pushed only on
// a strict distance decrease, so all heap entries carry distinct
// distances per node, so every (dist, node) key in the heap is unique;
// a min-heap over a set of unique keys pops a uniquely determined
// sequence regardless of arity or internal layout. Identical pop order
// means identical relaxation order, and the arithmetic (nd = d + w) is
// unchanged, so dist/parent/pred match the seed bit for bit.
template <class Weight>
void run_dijkstra(const Subgraph& sg, NodeId source, Weight&& weight, SsspWorkspace& ws) {
    const Graph& g = sg.graph();
    POC_EXPECTS(source.index() < g.node_count());
    POC_OBS_INC("net.sssp.runs");

    // Flat SoA endpoints: the relaxation loop reads two uint32 lanes
    // instead of dereferencing 40-byte Link records. Identical values,
    // so the pop/relax order — and every output bit — is unchanged.
    const LinkSoa soa = g.link_soa();

    ws.prepare(g.node_count());
    ws.source_ = source;
    ws.stamp_[source.index()] = ws.generation_;
    ws.dist_[source.index()] = 0.0;
    ws.parent_[source.index()] = LinkId{};
    ws.pred_[source.index()] = NodeId{};
    ws.heap_push({0.0, source.value()});

    while (!ws.heap_.empty()) {
        const auto [d, u_raw] = ws.heap_pop();
        const NodeId u{u_raw};
        if (d > ws.dist_[u.index()]) continue;  // stale entry (u is always stamped)
        for (const LinkId lid : g.incident(u)) {
            if (!sg.is_active(lid)) continue;
            const double w = weight(lid);
            POC_EXPECTS(w >= 0.0);
            const NodeId v{soa.other(lid.index(), u_raw)};
            const double nd = d + w;
            const bool seen = ws.stamp_[v.index()] == ws.generation_;
            if (!seen || nd < ws.dist_[v.index()]) {
                ws.stamp_[v.index()] = ws.generation_;
                ws.dist_[v.index()] = nd;
                ws.parent_[v.index()] = lid;
                ws.pred_[v.index()] = u;
                ws.heap_push({nd, v.value()});
            }
        }
    }
}

template void run_dijkstra<const LinkWeight&>(const Subgraph&, NodeId, const LinkWeight&,
                                              SsspWorkspace&);

}  // namespace detail

ShortestPathTree dijkstra(const Subgraph& sg, NodeId source, const LinkWeight& weight) {
    SsspWorkspace ws;
    detail::run_dijkstra(sg, source, weight, ws);
    return ws.to_tree();
}

void dijkstra_into(const Subgraph& sg, NodeId source, const LinkWeight& weight,
                   SsspWorkspace& ws) {
    detail::run_dijkstra(sg, source, weight, ws);
}

void dijkstra_metric_into(const Subgraph& sg, NodeId source, SsspMetric metric,
                          SsspWorkspace& ws) {
    switch (metric) {
        case SsspMetric::kLength:
            detail::run_dijkstra(sg, source, LengthWeight{sg.graph().link_soa()}, ws);
            break;
        case SsspMetric::kUnit:
            detail::run_dijkstra(sg, source, UnitWeight{}, ws);
            break;
    }
}

std::optional<ShortestPathTree> bellman_ford(const Subgraph& sg, NodeId source,
                                             const LinkWeight& weight) {
    const Graph& g = sg.graph();
    POC_EXPECTS(source.index() < g.node_count());

    ShortestPathTree tree;
    tree.source = source;
    tree.dist.assign(g.node_count(), kInf);
    tree.parent_link.assign(g.node_count(), LinkId{});
    tree.pred_node_.assign(g.node_count(), NodeId{});
    tree.dist[source.index()] = 0.0;

    const auto links = sg.active_links();
    const std::size_t n = g.node_count();
    bool changed = true;
    for (std::size_t round = 0; round < n && changed; ++round) {
        changed = false;
        for (const LinkId lid : links) {
            const Link& l = g.link(lid);
            const double w = weight(lid);
            auto relax = [&](NodeId from, NodeId to) {
                if (tree.dist[from.index()] == kInf) return;
                const double nd = tree.dist[from.index()] + w;
                if (nd < tree.dist[to.index()] - 1e-15) {
                    tree.dist[to.index()] = nd;
                    tree.parent_link[to.index()] = lid;
                    tree.pred_node_[to.index()] = from;
                    changed = true;
                }
            };
            relax(l.a, l.b);
            relax(l.b, l.a);
        }
        if (round == n - 1 && changed) return std::nullopt;  // negative cycle
    }
    return tree;
}

std::optional<WeightedPath> shortest_path(const Subgraph& sg, NodeId src, NodeId dst,
                                          const LinkWeight& weight) {
    SsspWorkspace ws;
    return shortest_path(sg, src, dst, weight, ws);
}

std::optional<WeightedPath> shortest_path(const Subgraph& sg, NodeId src, NodeId dst,
                                          const LinkWeight& weight, SsspWorkspace& ws) {
    detail::run_dijkstra(sg, src, weight, ws);
    if (!ws.reachable(dst)) return std::nullopt;
    WeightedPath wp;
    ws.append_path_to(dst, wp.links);
    wp.weight = ws.dist(dst);
    return wp;
}

std::vector<NodeId> path_nodes(const Graph& g, NodeId src, const std::vector<LinkId>& links) {
    std::vector<NodeId> nodes{src};
    NodeId cur = src;
    for (const LinkId lid : links) {
        cur = g.link(lid).other(cur);  // throws contract violation if walk breaks
        nodes.push_back(cur);
    }
    return nodes;
}

}  // namespace poc::net
