#include "net/shortest_path.hpp"

#include <algorithm>
#include <queue>

namespace poc::net {

LinkWeight weight_by_length(const Graph& g) {
    return [&g](LinkId id) { return g.link(id).length_km; };
}

LinkWeight weight_unit() {
    return [](LinkId) { return 1.0; };
}

std::vector<LinkId> ShortestPathTree::path_to(NodeId target) const {
    POC_EXPECTS(target.index() < dist.size());
    POC_EXPECTS(reachable(target));
    std::vector<LinkId> links;
    // Walk parent pointers; needs the graph only implicitly because the
    // parent link's endpoints determine the predecessor. We store just
    // link ids here, so the caller walks with path_nodes() if node order
    // matters. To reconstruct we track the current node via parents.
    // parent_link[v] connects v to its predecessor.
    NodeId v = target;
    while (v != source) {
        const LinkId pl = parent_link[v.index()];
        POC_ASSERT(pl.valid());
        links.push_back(pl);
        // Move to the other endpoint. We cannot consult the Graph here,
        // so ShortestPathTree stores predecessor nodes too; see below.
        v = pred_node_[v.index()];
    }
    std::reverse(links.begin(), links.end());
    return links;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ShortestPathTree dijkstra(const Subgraph& sg, NodeId source, const LinkWeight& weight) {
    const Graph& g = sg.graph();
    POC_EXPECTS(source.index() < g.node_count());

    ShortestPathTree tree;
    tree.source = source;
    tree.dist.assign(g.node_count(), kInf);
    tree.parent_link.assign(g.node_count(), LinkId{});
    tree.pred_node_.assign(g.node_count(), NodeId{});
    tree.dist[source.index()] = 0.0;

    using Item = std::pair<double, NodeId::underlying_type>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0.0, source.value());

    while (!heap.empty()) {
        const auto [d, u_raw] = heap.top();
        heap.pop();
        const NodeId u{u_raw};
        if (d > tree.dist[u.index()]) continue;  // stale entry
        for (const LinkId lid : g.incident(u)) {
            if (!sg.is_active(lid)) continue;
            const double w = weight(lid);
            POC_EXPECTS(w >= 0.0);
            const NodeId v = g.link(lid).other(u);
            const double nd = d + w;
            if (nd < tree.dist[v.index()]) {
                tree.dist[v.index()] = nd;
                tree.parent_link[v.index()] = lid;
                tree.pred_node_[v.index()] = u;
                heap.emplace(nd, v.value());
            }
        }
    }
    return tree;
}

std::optional<ShortestPathTree> bellman_ford(const Subgraph& sg, NodeId source,
                                             const LinkWeight& weight) {
    const Graph& g = sg.graph();
    POC_EXPECTS(source.index() < g.node_count());

    ShortestPathTree tree;
    tree.source = source;
    tree.dist.assign(g.node_count(), kInf);
    tree.parent_link.assign(g.node_count(), LinkId{});
    tree.pred_node_.assign(g.node_count(), NodeId{});
    tree.dist[source.index()] = 0.0;

    const auto links = sg.active_links();
    const std::size_t n = g.node_count();
    bool changed = true;
    for (std::size_t round = 0; round < n && changed; ++round) {
        changed = false;
        for (const LinkId lid : links) {
            const Link& l = g.link(lid);
            const double w = weight(lid);
            auto relax = [&](NodeId from, NodeId to) {
                if (tree.dist[from.index()] == kInf) return;
                const double nd = tree.dist[from.index()] + w;
                if (nd < tree.dist[to.index()] - 1e-15) {
                    tree.dist[to.index()] = nd;
                    tree.parent_link[to.index()] = lid;
                    tree.pred_node_[to.index()] = from;
                    changed = true;
                }
            };
            relax(l.a, l.b);
            relax(l.b, l.a);
        }
        if (round == n - 1 && changed) return std::nullopt;  // negative cycle
    }
    return tree;
}

std::optional<WeightedPath> shortest_path(const Subgraph& sg, NodeId src, NodeId dst,
                                          const LinkWeight& weight) {
    const ShortestPathTree tree = dijkstra(sg, src, weight);
    if (!tree.reachable(dst)) return std::nullopt;
    WeightedPath wp;
    wp.links = tree.path_to(dst);
    wp.weight = tree.dist[dst.index()];
    return wp;
}

std::vector<NodeId> path_nodes(const Graph& g, NodeId src, const std::vector<LinkId>& links) {
    std::vector<NodeId> nodes{src};
    NodeId cur = src;
    for (const LinkId lid : links) {
        cur = g.link(lid).other(cur);  // throws contract violation if walk breaks
        nodes.push_back(cur);
    }
    return nodes;
}

}  // namespace poc::net
