// Sharded shared-nothing primary-path data plane (DESIGN.md §9).
//
// One epoch's flow computation — one SSSP per distinct demand source,
// per-demand path resolution, link-load and report accumulation — is
// partitioned into shard tasks that own contiguous ranges of a
// source-sorted TrafficMatrixSoA's source blocks. Shards share nothing
// mutable: each has its own SsspWorkspace, path buffer, dense
// link-load scratch, and staging arrays, so the parallel phase
// performs zero cross-shard writes. A serial merge then folds the
// per-source partials into the global result in ascending source
// order.
//
// Bit-identity across shard and thread counts (the §9 invariant):
// every floating-point operation belongs to one of two classes —
//   (a) per-source work, computed from that source's SSSP tree and its
//       demand block alone (the tree itself is a deterministic
//       Dijkstra, or a cache/repair-served copy proven bit-identical
//       to one), independent of any other source or shard; or
//   (b) the merge's fold over per-source partials, which always runs
//       in ascending source order whatever the shard boundaries were.
// Neither class depends on how source blocks are grouped into shards
// or scheduled onto threads, so the result is bit-identical for every
// `shards`/`threads` setting, including fully serial execution.
#pragma once

#include <cstdint>
#include <vector>

#include "net/path_cache.hpp"
#include "net/shortest_path.hpp"

namespace poc::net {

struct ShardOptions {
    SsspMetric metric = SsspMetric::kLength;
    /// Shard tasks to partition the source blocks into. 0 and 1 both
    /// run one task; values above the source count are clamped down.
    /// Execution granularity only; never affects results.
    std::size_t shards = 1;
    /// Threads executing shard tasks (1 = inline serial execution; a
    /// pool of threads-1 workers is spun up per call and the calling
    /// thread joins it). Schedule only; never affects results.
    std::size_t threads = 1;
    /// Optional shared tree cache (with optional dynamic repair, see
    /// net/path_cache.hpp): per-source trees are looked up there
    /// instead of recomputed. Thread-safe; served trees are
    /// bit-identical to cold Dijkstras, so results are unchanged.
    PathCache* cache = nullptr;
    /// Optional per-link external-ISP flag (indexed by link id) for
    /// the virtual_gbps_km accumulator. Null = no virtual links.
    const std::vector<bool>* is_virtual = nullptr;
};

/// The merged result of one sharded epoch: per-link loads plus the
/// scalar report accumulators, every demand riding its primary
/// (shortest) path capacity-obliviously.
struct ShardFlowResult {
    /// Routed gbps per link (indexed by link id; zero where unloaded).
    std::vector<double> link_load_gbps;
    /// Sum of routed demand volume (a routed demand carries its full
    /// gbps on its primary path; an unreachable one carries nothing).
    double routed_gbps = 0.0;
    /// Demand-volume-weighted path length sum (gbps · km). Under
    /// primary-path routing the routed path *is* the shortest path,
    /// and the per-path km fold reproduces the Dijkstra distance bit
    /// for bit, so this equals the weighted shortest-distance sum.
    double weighted_km = 0.0;
    /// gbps · km summed per traversed link (the virtual-share basis).
    double total_gbps_km = 0.0;
    double virtual_gbps_km = 0.0;
    /// Demands with routed volume / positive demands with no path.
    std::size_t admitted = 0;
    std::size_t unrouted = 0;
};

/// shard s owns source blocks [source_begin[s], source_begin[s+1]).
/// Ranges are contiguous in ascending source order — with region-major
/// node ids (topo/synthetic.hpp) a shard therefore owns geographically
/// contiguous regions — and boundaries balance demand counts.
struct ShardPlan {
    std::vector<std::uint32_t> source_begin;

    std::size_t shard_count() const noexcept {
        return source_begin.empty() ? 0 : source_begin.size() - 1;
    }
};

/// Partition `tm`'s source blocks into at most `shards` demand-balanced
/// contiguous ranges. Deterministic in (tm, shards); every shard is
/// nonempty. `shards` 0 is treated as 1.
ShardPlan plan_shards(const TrafficMatrixSoA& tm, std::size_t shards);

/// Reusable per-shard buffers. One workspace serves any sequence of
/// sharded_primary_flow calls; after the first call on a given
/// graph/matrix shape, subsequent serial cache-less calls perform zero
/// heap allocations (property-tested).
class ShardWorkspace {
public:
    ShardWorkspace() = default;
    ShardWorkspace(const ShardWorkspace&) = delete;
    ShardWorkspace& operator=(const ShardWorkspace&) = delete;

private:
    friend void sharded_primary_flow(const Subgraph&, const TrafficMatrixSoA&,
                                     const ShardOptions&, ShardWorkspace&, ShardFlowResult&);

    /// One source block's accumulators plus its slice of the staging
    /// arrays. All folds inside are over that block's demands in
    /// sorted order — shard-independent by construction.
    struct SourcePartial {
        double routed = 0.0;
        double weighted_km = 0.0;
        double gbps_km = 0.0;
        double virtual_gbps_km = 0.0;
        std::uint32_t admitted = 0;
        std::uint32_t unrouted = 0;
        std::uint32_t touched_begin = 0;
        std::uint32_t touched_end = 0;
    };

    struct Shard {
        SsspWorkspace sssp;
        /// Per-demand path buffer (source->dst link order), reused.
        std::vector<LinkId> path;
        /// One partial per owned source block, in block order.
        std::vector<SourcePartial> partials;
        /// Per-source sparse link-load deltas, concatenated in block
        /// order: links in first-touch order, deltas = fold of the
        /// block's demand volumes in sorted demand order.
        std::vector<std::uint32_t> touched_links;
        std::vector<double> touched_delta;
        /// Dense per-link scratch, generation-stamped so per-source
        /// reset is O(links touched), not O(link count).
        std::vector<double> scratch;
        std::vector<std::uint32_t> stamp;
        std::uint32_t generation = 0;
        /// Wall-clock run time of this shard's task (obs only; feeds
        /// the net.shard.imbalance gauge, never the result).
        double elapsed_ms = 0.0;
    };

    /// The current call's plan boundaries (block indices), reused so
    /// steady-state planning allocates nothing.
    std::vector<std::uint32_t> plan_;
    std::vector<Shard> shards_;
};

/// Run one sharded epoch over the active links of `sg`: per shard,
/// one SSSP per owned source (via `opt.cache` when set) and one path
/// resolution + accumulation pass per demand; then the deterministic
/// ascending-source merge into `out`. `out`'s storage is reused.
void sharded_primary_flow(const Subgraph& sg, const TrafficMatrixSoA& tm,
                          const ShardOptions& opt, ShardWorkspace& ws, ShardFlowResult& out);

}  // namespace poc::net
