// Epoch-keyed shortest-path-tree cache (DESIGN.md §6). The auction's
// Clarke pivots and the chaos re-auction path evaluate many subgraphs
// that differ by a handful of links; their SSSP trees are identical
// whenever the active-link set and the source coincide. PathCache keys
// a computed ShortestPathTree on (source, Subgraph::fingerprint(),
// metric) so that routing state is reused across those near-identical
// masks instead of recomputed.
//
// Incremental repair (DESIGN.md §7): with a nonzero `repair_budget`,
// a miss whose mask differs from the last tree served for the same
// (source, metric) by at most `repair_budget` links is satisfied by
// patching a copy of that base tree with per-link dynamic-SSSP
// repairs (net/sssp_repair.hpp) instead of a full Dijkstra. Repaired
// trees are bit-identical to cold ones, so cache contents are
// indistinguishable either way; repairs count as hits (plus the
// `repairs` counter) and do not refresh the base entry's idle age —
// only direct lookups of a key keep it alive.
//
// Contract: one cache serves one topology family — Graphs whose link
// id space and link lengths (the routing weight) are fixed. Capacity
// changes are fine (capacity is not a routing input for the cached
// metrics); the chaos engine's scaled_copy graphs therefore share a
// cache safely. Reusing a cache across graphs with different lengths
// or link numbering would alias keys; callers own that invariant.
//
// Thread safety: fully thread-safe via sharded mutexes (the same
// pattern as market::AuctionCache). Concurrent misses on one key may
// compute the tree twice; both computations are deterministic and
// identical, the first insert wins, so results never depend on timing.
// Repair adds a per-(source, metric) base index under its own mutex;
// racing threads may pick different bases, but every base is an exact
// cold tree of its mask and repair is bit-identical, so the produced
// trees are identical regardless of which base wins the race.
//
// Invalidation is epoch-based, not size-based: advance_epoch() (called
// once per simulation epoch) drops every entry that was not touched
// within `max_age` epochs, so the footprint tracks the working set of
// the current epoch's masks.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/shortest_path.hpp"

namespace poc::net {

class PathCache {
public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        /// Trees produced by patching a cached base instead of a full
        /// Dijkstra. Every repair is also counted as a hit.
        std::uint64_t repairs = 0;
        std::size_t entries = 0;
    };

    /// `max_age`: number of consecutive epochs an entry may go unused
    /// before advance_epoch() evicts it. 1 keeps only the previous
    /// epoch's working set alive. `repair_budget`: maximum number of
    /// link flips between a missed mask and the last served tree for
    /// the same (source, metric) that will be bridged by dynamic-SSSP
    /// repair instead of a cold Dijkstra; 0 disables repair.
    explicit PathCache(std::uint64_t max_age = 1, std::size_t repair_budget = 0)
        : max_age_(max_age == 0 ? 1 : max_age), repair_budget_(repair_budget) {}

    PathCache(const PathCache&) = delete;
    PathCache& operator=(const PathCache&) = delete;

    /// The SSSP tree for (sg's active set, source, metric): cached,
    /// repaired from a near-identical cached tree, or computed now —
    /// all three bit-identical. The metric is one of the built-in
    /// weights (SsspMetric), so a key can never be paired with the
    /// wrong weight function.
    std::shared_ptr<const ShortestPathTree> tree(const Subgraph& sg, NodeId source,
                                                 SsspMetric metric);

    /// Advance the epoch clock and evict entries unused for `max_age`
    /// epochs. Call between epochs, not concurrently with tree().
    void advance_epoch();

    void clear();

    std::uint64_t epoch() const noexcept { return epoch_.load(std::memory_order_relaxed); }

    std::size_t repair_budget() const noexcept { return repair_budget_; }

    Stats stats() const;

private:
    struct Key {
        std::uint64_t fingerprint = 0;
        NodeId::underlying_type source = 0;
        std::uint8_t metric = 0;

        bool operator==(const Key&) const = default;
    };

    struct KeyHash {
        std::size_t operator()(const Key& k) const noexcept {
            std::uint64_t h = k.fingerprint;
            h ^= (std::uint64_t{k.source} << 8 | k.metric) + 0x9e3779b97f4a7c15ULL +
                 (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    struct Entry {
        std::shared_ptr<const ShortestPathTree> tree;
        std::uint64_t last_used_epoch = 0;
    };

    static constexpr std::size_t kShards = 16;

    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<Key, Entry, KeyHash> map;
    };

    Shard& shard_for(const Key& k) {
        return shards_[KeyHash{}(k) % kShards];
    }

    /// Repair base: the last tree served for a (source, metric) pair,
    /// together with the exact mask it was computed for. Not a cache
    /// entry itself — using it as a repair source does not count as a
    /// use of the corresponding key (idle ages are unaffected).
    struct BaseKey {
        NodeId::underlying_type source = 0;
        std::uint8_t metric = 0;

        bool operator==(const BaseKey&) const = default;
    };

    struct BaseKeyHash {
        std::size_t operator()(const BaseKey& k) const noexcept {
            return (std::size_t{k.source} << 1) ^ k.metric;
        }
    };

    struct BaseEntry {
        std::uint64_t fingerprint = 0;
        std::vector<char> mask;
        std::shared_ptr<const ShortestPathTree> tree;
        std::uint64_t last_update_epoch = 0;
    };

    /// Record `tree` as the repair base for (source, metric). Skips the
    /// mask copy when the base is already current (the steady-state hit
    /// path stays O(1)).
    void update_base(NodeId source, SsspMetric metric, const Subgraph& sg,
                     const std::shared_ptr<const ShortestPathTree>& tree);

    /// Try to satisfy a miss by repairing the base tree. Returns null
    /// when there is no base, the masks are from different families,
    /// or the delta exceeds the budget.
    std::shared_ptr<const ShortestPathTree> try_repair(const Subgraph& sg, NodeId source,
                                                       SsspMetric metric);

    std::uint64_t max_age_;
    std::size_t repair_budget_;
    Shard shards_[kShards];
    mutable std::mutex base_mutex_;
    std::unordered_map<BaseKey, BaseEntry, BaseKeyHash> base_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> repairs_{0};
};

}  // namespace poc::net
