// Dinic's max-flow over a Subgraph. Used for (i) edge-disjoint path
// counting in the resilience constraints, (ii) max-flow/min-cut property
// tests, and (iii) single-commodity feasibility probes inside the
// auction's acceptability oracle.
#pragma once

#include <vector>

#include "net/graph.hpp"

namespace poc::net {

/// Flow assignment on a single link, signed: positive means net flow
/// from link.a to link.b.
struct LinkFlow {
    LinkId link;
    double flow = 0.0;
};

struct MaxFlowResult {
    double value = 0.0;
    /// Net flow per active link (absent links carry zero).
    std::vector<LinkFlow> flows;
    /// Nodes on the source side of the induced min cut.
    std::vector<NodeId> source_side;
};

/// Max flow src->dst where each undirected active link can carry up to
/// its capacity in either direction (net). Requires src != dst.
MaxFlowResult max_flow(const Subgraph& sg, NodeId src, NodeId dst);

/// As max_flow but with every active link given unit capacity: the value
/// is the number of link-disjoint paths between src and dst (Menger).
std::size_t link_disjoint_path_count(const Subgraph& sg, NodeId src, NodeId dst);

/// Total capacity of the min cut separating src from dst (== max flow).
double min_cut_capacity(const Subgraph& sg, NodeId src, NodeId dst);

}  // namespace poc::net
