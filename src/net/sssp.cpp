#include "net/sssp.hpp"

#include <limits>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace poc::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Demands grouped by source, sources in first-appearance order (a
/// deterministic order, so serial processing order is reproducible).
struct SourceGroups {
    std::vector<NodeId> sources;
    std::vector<std::vector<std::size_t>> demand_indices;  // parallel to sources
};

SourceGroups group_by_source(const TrafficMatrix& tm) {
    SourceGroups g;
    std::unordered_map<NodeId, std::size_t> index_of;
    index_of.reserve(tm.size());
    for (std::size_t j = 0; j < tm.size(); ++j) {
        const auto [it, inserted] = index_of.try_emplace(tm[j].src, g.sources.size());
        if (inserted) {
            g.sources.push_back(tm[j].src);
            g.demand_indices.emplace_back();
        }
        g.demand_indices[it->second].push_back(j);
    }
    return g;
}

/// Run fn(group_index) for every group, serially or across a pool.
/// Each invocation touches only its own group's outputs, so the
/// schedule cannot affect results.
template <class Fn>
void for_each_group(std::size_t group_count, std::size_t threads, const Fn& fn) {
    if (threads <= 1 || group_count <= 1) {
        for (std::size_t gi = 0; gi < group_count; ++gi) fn(gi);
        return;
    }
    util::ThreadPool pool(threads - 1);  // parallel_for joins the calling thread
    pool.parallel_for(group_count, fn);
}

}  // namespace

std::vector<NodeId> distinct_sources(const TrafficMatrix& tm) {
    return group_by_source(tm).sources;
}

std::vector<double> batched_demand_distances(const Subgraph& sg, const TrafficMatrix& tm,
                                             const SsspBatchOptions& opt) {
    POC_OBS_TIMER_MS("net.sssp.batch_ms", 0.0, 250.0, 50);
    std::vector<double> out(tm.size(), kInf);
    const SourceGroups groups = group_by_source(tm);
    POC_OBS_COUNT("net.sssp.batch_demands", tm.size());
    POC_OBS_COUNT("net.sssp.batch_sources", groups.sources.size());

    for_each_group(groups.sources.size(), opt.threads, [&](std::size_t gi) {
        if (opt.cache) {
            const auto tree = opt.cache->tree(sg, groups.sources[gi], opt.metric);
            for (const std::size_t j : groups.demand_indices[gi]) {
                out[j] = tree->dist[tm[j].dst.index()];
            }
        } else {
            thread_local SsspWorkspace ws;
            dijkstra_metric_into(sg, groups.sources[gi], opt.metric, ws);
            for (const std::size_t j : groups.demand_indices[gi]) {
                out[j] = ws.dist(tm[j].dst);
            }
        }
    });
    return out;
}

std::vector<std::vector<LinkId>> batched_primary_paths(const Subgraph& sg,
                                                       const TrafficMatrix& tm,
                                                       const SsspBatchOptions& opt) {
    POC_OBS_TIMER_MS("net.sssp.batch_ms", 0.0, 250.0, 50);
    std::vector<std::vector<LinkId>> primaries(tm.size());
    const SourceGroups groups = group_by_source(tm);
    POC_OBS_COUNT("net.sssp.batch_demands", tm.size());
    POC_OBS_COUNT("net.sssp.batch_sources", groups.sources.size());

    for_each_group(groups.sources.size(), opt.threads, [&](std::size_t gi) {
        if (opt.cache) {
            const auto tree = opt.cache->tree(sg, groups.sources[gi], opt.metric);
            for (const std::size_t j : groups.demand_indices[gi]) {
                if (tm[j].gbps <= 0.0) continue;
                if (tree->reachable(tm[j].dst)) primaries[j] = tree->path_to(tm[j].dst);
            }
        } else {
            thread_local SsspWorkspace ws;
            dijkstra_metric_into(sg, groups.sources[gi], opt.metric, ws);
            for (const std::size_t j : groups.demand_indices[gi]) {
                if (tm[j].gbps <= 0.0) continue;
                if (ws.reachable(tm[j].dst)) ws.append_path_to(tm[j].dst, primaries[j]);
            }
        }
    });
    return primaries;
}

}  // namespace poc::net
