#include "net/path_cache.hpp"

#include "obs/metrics.hpp"

namespace poc::net {

std::shared_ptr<const ShortestPathTree> PathCache::tree(const Subgraph& sg, NodeId source,
                                                        SsspMetric metric) {
    POC_EXPECTS(source.index() < sg.graph().node_count());
    const Key key{sg.fingerprint(), source.value(), static_cast<std::uint8_t>(metric)};
    Shard& shard = shard_for(key);
    const std::uint64_t now = epoch_.load(std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            it->second.last_used_epoch = now;
            hits_.fetch_add(1, std::memory_order_relaxed);
            POC_OBS_INC("net.path_cache.hits");
            return it->second.tree;
        }
    }

    // Miss: compute outside the shard lock so concurrent lookups on
    // other keys (and even this one) are never serialized behind an
    // SSSP. A racing miss computes the identical tree; first insert
    // wins and both callers get equivalent results.
    misses_.fetch_add(1, std::memory_order_relaxed);
    POC_OBS_INC("net.path_cache.misses");
    thread_local SsspWorkspace ws;
    dijkstra_metric_into(sg, source, metric, ws);
    auto computed = std::make_shared<const ShortestPathTree>(ws.to_tree());

    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.map.try_emplace(key);
    if (inserted) it->second.tree = std::move(computed);
    it->second.last_used_epoch = now;
    return it->second.tree;
}

void PathCache::advance_epoch() {
    const std::uint64_t now = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t evicted = 0;
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (auto it = shard.map.begin(); it != shard.map.end();) {
            // Strict: an entry last used in epoch now-1 survives a
            // max_age of 1 (it has gone unused for zero full epochs at
            // the moment the boundary is crossed).
            if (it->second.last_used_epoch + max_age_ < now) {
                it = shard.map.erase(it);
                ++evicted;
            } else {
                ++it;
            }
        }
    }
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    POC_OBS_COUNT("net.path_cache.evictions", evicted);
}

void PathCache::clear() {
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.map.clear();
    }
}

PathCache::Stats PathCache::stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        s.entries += shard.map.size();
    }
    return s;
}

}  // namespace poc::net
