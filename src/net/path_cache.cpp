#include "net/path_cache.hpp"

#include <algorithm>

#include "net/sssp_repair.hpp"
#include "obs/metrics.hpp"

namespace poc::net {

std::shared_ptr<const ShortestPathTree> PathCache::tree(const Subgraph& sg, NodeId source,
                                                        SsspMetric metric) {
    POC_EXPECTS(source.index() < sg.graph().node_count());
    const Key key{sg.fingerprint(), source.value(), static_cast<std::uint8_t>(metric)};
    Shard& shard = shard_for(key);
    const std::uint64_t now = epoch_.load(std::memory_order_relaxed);

    std::shared_ptr<const ShortestPathTree> found;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            it->second.last_used_epoch = now;
            found = it->second.tree;
        }
    }
    if (found) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        POC_OBS_INC("net.path_cache.hits");
        // Base refresh happens outside the shard lock (it copies the
        // mask when the base moves) and is a no-op when repair is off.
        update_base(source, metric, sg, found);
        return found;
    }

    // Shard miss: before paying for a full Dijkstra, see whether the
    // last tree served for this (source, metric) is within the repair
    // budget of the requested mask. A repaired tree is bit-identical
    // to the cold one (net/sssp_repair.hpp), so it is inserted and
    // returned exactly as a computed tree would be — but counted as a
    // hit plus a repair, not a miss.
    if (repair_budget_ > 0) {
        if (auto repaired = try_repair(sg, source, metric)) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            POC_OBS_INC("net.path_cache.hits");
            std::shared_ptr<const ShortestPathTree> result;
            {
                std::lock_guard<std::mutex> lock(shard.mutex);
                auto [it, inserted] = shard.map.try_emplace(key);
                if (inserted) it->second.tree = std::move(repaired);
                it->second.last_used_epoch = now;
                result = it->second.tree;
            }
            update_base(source, metric, sg, result);
            return result;
        }
    }

    // Miss: compute outside the shard lock so concurrent lookups on
    // other keys (and even this one) are never serialized behind an
    // SSSP. A racing miss computes the identical tree; first insert
    // wins and both callers get equivalent results.
    misses_.fetch_add(1, std::memory_order_relaxed);
    POC_OBS_INC("net.path_cache.misses");
    thread_local SsspWorkspace ws;
    dijkstra_metric_into(sg, source, metric, ws);
    auto computed = std::make_shared<const ShortestPathTree>(ws.to_tree());

    std::shared_ptr<const ShortestPathTree> result;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto [it, inserted] = shard.map.try_emplace(key);
        if (inserted) it->second.tree = std::move(computed);
        it->second.last_used_epoch = now;
        result = it->second.tree;
    }
    update_base(source, metric, sg, result);
    return result;
}

void PathCache::update_base(NodeId source, SsspMetric metric, const Subgraph& sg,
                            const std::shared_ptr<const ShortestPathTree>& tree) {
    if (repair_budget_ == 0) return;
    const BaseKey bkey{source.value(), static_cast<std::uint8_t>(metric)};
    const std::uint64_t fp = sg.fingerprint();
    std::lock_guard<std::mutex> lock(base_mutex_);
    BaseEntry& base = base_[bkey];
    base.last_update_epoch = epoch_.load(std::memory_order_relaxed);
    if (base.tree && base.fingerprint == fp) return;  // already current; skip the copy
    base.fingerprint = fp;
    base.mask.assign(sg.mask().begin(), sg.mask().end());
    base.tree = tree;
}

std::shared_ptr<const ShortestPathTree> PathCache::try_repair(const Subgraph& sg,
                                                              NodeId source,
                                                              SsspMetric metric) {
    BaseEntry base;
    {
        const BaseKey bkey{source.value(), static_cast<std::uint8_t>(metric)};
        std::lock_guard<std::mutex> lock(base_mutex_);
        auto it = base_.find(bkey);
        if (it == base_.end() || !it->second.tree) return nullptr;
        base = it->second;  // snapshot (mask copy) so repair runs unlocked
    }

    const std::span<const char> want = sg.mask();
    if (base.mask.size() != want.size()) return nullptr;  // different graph family

    // Collect the differing link ids (ascending). Bail as soon as the
    // delta exceeds the budget; a cold solve is cheaper than a long
    // repair chain anyway.
    std::vector<std::uint32_t> delta;
    for (std::size_t i = 0; i < want.size(); ++i) {
        if ((base.mask[i] != 0) != (want[i] != 0)) {
            if (delta.size() == repair_budget_) return nullptr;
            delta.push_back(static_cast<std::uint32_t>(i));
        }
    }
    if (delta.empty()) {
        // Same mask (the shard entry was evicted but the base survived):
        // the base tree is already the exact tree for this request.
        return base.tree;
    }

    // Replay the flips in ascending link-id order, repairing after each
    // one. Each intermediate tree is the exact cold tree of its
    // intermediate mask (DESIGN.md §7), so single-link repairs compose
    // to the cold tree of the final mask.
    ShortestPathTree patched = *base.tree;
    Subgraph cursor(sg.graph());
    for (std::size_t i = 0; i < base.mask.size(); ++i) {
        cursor.set_active(LinkId{static_cast<std::uint32_t>(i)}, base.mask[i] != 0);
    }
    thread_local SsspRepairWorkspace rws;
    for (const std::uint32_t raw : delta) {
        const LinkId lid{raw};
        const bool now_active = sg.is_active(lid);
        cursor.set_active(lid, now_active);
        if (now_active) {
            repair_link_restore(patched, cursor, lid, metric, rws);
        } else {
            repair_link_cut(patched, cursor, lid, metric, rws);
        }
    }
    POC_ASSERT(cursor.fingerprint() == sg.fingerprint());
    repairs_.fetch_add(1, std::memory_order_relaxed);
    POC_OBS_INC("net.path_cache.repairs");
    return std::make_shared<const ShortestPathTree>(std::move(patched));
}

void PathCache::advance_epoch() {
    const std::uint64_t now = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t evicted = 0;
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (auto it = shard.map.begin(); it != shard.map.end();) {
            // Strict: an entry last used in epoch now-1 survives a
            // max_age of 1 (it has gone unused for zero full epochs at
            // the moment the boundary is crossed).
            if (it->second.last_used_epoch + max_age_ < now) {
                it = shard.map.erase(it);
                ++evicted;
            } else {
                ++it;
            }
        }
    }
    {
        // Repair bases age out by the same strict rule, keyed on their
        // last refresh. They are not cache entries, so dropping one is
        // not an eviction for stats purposes.
        std::lock_guard<std::mutex> lock(base_mutex_);
        for (auto it = base_.begin(); it != base_.end();) {
            if (it->second.last_update_epoch + max_age_ < now) {
                it = base_.erase(it);
            } else {
                ++it;
            }
        }
    }
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    POC_OBS_COUNT("net.path_cache.evictions", evicted);
}

void PathCache::clear() {
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.map.clear();
    }
    std::lock_guard<std::mutex> lock(base_mutex_);
    base_.clear();
}

PathCache::Stats PathCache::stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.repairs = repairs_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        s.entries += shard.map.size();
    }
    return s;
}

}  // namespace poc::net
