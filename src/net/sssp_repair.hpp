// Dynamic single-source shortest-path repair (DESIGN.md §7). Between
// epochs — and after a chaos fault — the active-link mask changes by a
// handful of links, yet recomputing a source tree from scratch costs a
// full Dijkstra. These routines patch an existing ShortestPathTree in
// place after one link cut, restore, or weight change, and are
// *bit-identical* to a fresh Dijkstra over the new subgraph: same
// dist doubles, same parent links, same predecessor nodes, including
// every tie-break.
//
// Why bit-identity is achievable at all: Dijkstra's final distances
// are a pure function of the active edge set — each reached node v
// settles at D(v) = min over active incident links l (other endpoint
// u) of fl(D(u) + w(l)), where fl is IEEE double addition; and its
// final parent is the lexicographically first candidate (by popped
// distance, then node id, then link id) achieving that minimum
// exactly. Neither depends on heap internals or visit order, so a
// repair that (a) recomputes exact distances on the affected region
// and (b) re-derives parents from final distances by the same rule
// reproduces the cold tree byte for byte. See DESIGN.md §7 for the
// full argument (increase/decrease case split, affected-set bounds).
//
// The caller owns the delta discipline: the tree passed in must be
// exactly the cold tree of the subgraph that differs from `sg` by the
// single named link. Multi-link deltas compose: apply single-link
// repairs in any deterministic order; each intermediate tree is the
// cold tree of its intermediate mask, so the final tree is the cold
// tree of the final mask.
#pragma once

#include <cstdint>
#include <vector>

#include "net/shortest_path.hpp"

namespace poc::net {

/// Reusable scratch for repairs: stamp arrays, the tree-children CSR,
/// a BFS queue, and a binary heap. Like SsspWorkspace, repeated use on
/// one graph size allocates nothing in the steady state.
class SsspRepairWorkspace {
public:
    struct Stats {
        std::uint64_t cuts = 0;
        std::uint64_t restores = 0;
        std::uint64_t weight_changes = 0;
        /// Repairs that proved the tree unchanged without touching it
        /// (cut/increase of a non-tree edge, restore between two
        /// unreachable nodes, no-op weight change).
        std::uint64_t noops = 0;
        /// Total nodes whose distance was recomputed across all repairs.
        std::uint64_t affected_nodes = 0;
    };

    const Stats& stats() const noexcept { return stats_; }

private:
    friend void repair_link_cut(ShortestPathTree&, const Subgraph&, LinkId, SsspMetric,
                                SsspRepairWorkspace&);
    friend void repair_link_restore(ShortestPathTree&, const Subgraph&, LinkId, SsspMetric,
                                    SsspRepairWorkspace&);
    friend void repair_weight_change(ShortestPathTree&, const Subgraph&, LinkId, double,
                                     SsspMetric, SsspRepairWorkspace&);
    friend class RepairEngine;

    struct HeapItem {
        double dist;
        NodeId::underlying_type node;
    };

    std::vector<std::uint32_t> stamp_;        // affected/changed-set membership
    std::vector<std::uint32_t> derive_stamp_; // parent re-derivation dedupe
    std::uint32_t generation_ = 0;
    std::vector<std::uint32_t> child_offsets_;
    std::vector<std::uint32_t> child_nodes_;
    std::vector<std::uint32_t> queue_;        // BFS queue over the subtree / changed set
    std::vector<std::uint32_t> derive_;       // nodes needing parent re-derivation
    std::vector<HeapItem> heap_;
    // Plateau-order simulation scratch (parent tie-breaks among
    // equal-distance candidates; see RepairEngine::plateau_winner).
    std::vector<std::uint32_t> plateau_stamp_;
    std::vector<std::uint8_t> plateau_state_;
    std::uint32_t plateau_generation_ = 0;
    std::vector<std::uint32_t> plateau_queue_;
    std::vector<std::uint32_t> plateau_heap_;
    std::vector<std::uint32_t> cand_nodes_;   // distinct candidate nodes for one derivation
    std::vector<LinkId> cand_links_;          // first (lowest-id) candidate link per node
    Stats stats_;
};

/// Repair `tree` after deactivating `lid`. Preconditions: `tree` is
/// the exact cold tree of `sg` with `lid` active; `sg` has `lid`
/// inactive now. Postcondition: `tree` is bit-identical to
/// dijkstra over `sg`.
void repair_link_cut(ShortestPathTree& tree, const Subgraph& sg, LinkId lid, SsspMetric metric,
                     SsspRepairWorkspace& ws);

/// Repair `tree` after activating `lid`. Preconditions: `tree` is the
/// exact cold tree of `sg` with `lid` inactive; `sg` has `lid` active
/// now.
void repair_link_restore(ShortestPathTree& tree, const Subgraph& sg, LinkId lid,
                         SsspMetric metric, SsspRepairWorkspace& ws);

/// Repair `tree` after `lid`'s routing weight changed from
/// `old_weight` to its current value in `sg.graph()` (the tree was
/// computed against the old weight; `lid` is active in both views).
/// Under SsspMetric::kUnit the routing weight is 1.0 regardless of
/// length, so length changes are no-ops.
void repair_weight_change(ShortestPathTree& tree, const Subgraph& sg, LinkId lid,
                          double old_weight, SsspMetric metric, SsspRepairWorkspace& ws);

}  // namespace poc::net
