#include "net/connectivity.hpp"

#include <algorithm>
#include <queue>

namespace poc::net {

Components connected_components(const Subgraph& sg) {
    const Graph& g = sg.graph();
    Components comp;
    comp.label.assign(g.node_count(), ~std::uint32_t{0});
    for (std::size_t start = 0; start < g.node_count(); ++start) {
        if (comp.label[start] != ~std::uint32_t{0}) continue;
        const std::uint32_t id = comp.count++;
        std::queue<NodeId> q;
        q.push(NodeId{start});
        comp.label[start] = id;
        while (!q.empty()) {
            const NodeId u = q.front();
            q.pop();
            for (const LinkId lid : g.incident(u)) {
                if (!sg.is_active(lid)) continue;
                const NodeId v = g.link(lid).other(u);
                if (comp.label[v.index()] == ~std::uint32_t{0}) {
                    comp.label[v.index()] = id;
                    q.push(v);
                }
            }
        }
    }
    return comp;
}

bool all_pairs_connected(const Subgraph& sg, const TrafficMatrix& tm) {
    const Components comp = connected_components(sg);
    return std::all_of(tm.begin(), tm.end(), [&](const Demand& d) {
        return d.gbps <= 0.0 || comp.same(d.src, d.dst);
    });
}

bool spanning_connected(const Subgraph& sg) {
    const Graph& g = sg.graph();
    const Components comp = connected_components(sg);
    std::uint32_t touched_component = ~std::uint32_t{0};
    for (std::size_t n = 0; n < g.node_count(); ++n) {
        const NodeId node{n};
        const bool has_active = std::any_of(
            g.incident(node).begin(), g.incident(node).end(),
            [&](LinkId lid) { return sg.is_active(lid); });
        if (!has_active) continue;
        if (touched_component == ~std::uint32_t{0}) {
            touched_component = comp.label[n];
        } else if (comp.label[n] != touched_component) {
            return false;
        }
    }
    return true;
}

namespace {

/// Iterative Tarjan bridge finder (recursion would overflow on long
/// chains in large generated topologies).
class BridgeFinder {
public:
    explicit BridgeFinder(const Subgraph& sg) : sg_(sg), g_(sg.graph()) {
        disc_.assign(g_.node_count(), 0);
        low_.assign(g_.node_count(), 0);
    }

    std::vector<LinkId> run() {
        for (std::size_t n = 0; n < g_.node_count(); ++n) {
            if (disc_[n] == 0) iterate(NodeId{n});
        }
        std::sort(bridges_.begin(), bridges_.end());
        return bridges_;
    }

private:
    struct Frame {
        NodeId node;
        LinkId via;  // link used to enter node (invalid at roots)
        std::size_t next_edge = 0;
    };

    void iterate(NodeId root) {
        std::vector<Frame> stack;
        stack.push_back(Frame{root, LinkId{}, 0});
        disc_[root.index()] = low_[root.index()] = ++timer_;

        while (!stack.empty()) {
            Frame& f = stack.back();
            const auto incident = g_.incident(f.node);
            if (f.next_edge < incident.size()) {
                const LinkId lid = incident[f.next_edge++];
                if (!sg_.is_active(lid)) continue;
                if (lid == f.via) {
                    // Skip the tree edge itself (each link id appears
                    // exactly once in this node's incident list); a
                    // *parallel* link to the parent has a distinct id
                    // and is correctly treated as a back edge below.
                    continue;
                }
                const NodeId v = g_.link(lid).other(f.node);
                if (disc_[v.index()] == 0) {
                    disc_[v.index()] = low_[v.index()] = ++timer_;
                    stack.push_back(Frame{v, lid, 0});
                } else {
                    low_[f.node.index()] = std::min(low_[f.node.index()], disc_[v.index()]);
                }
            } else {
                const Frame finished = f;
                stack.pop_back();
                if (!stack.empty()) {
                    Frame& parent = stack.back();
                    low_[parent.node.index()] =
                        std::min(low_[parent.node.index()], low_[finished.node.index()]);
                    if (low_[finished.node.index()] > disc_[parent.node.index()]) {
                        bridges_.push_back(finished.via);
                    }
                }
            }
        }
    }

    const Subgraph& sg_;
    const Graph& g_;
    std::vector<std::uint32_t> disc_;
    std::vector<std::uint32_t> low_;
    std::uint32_t timer_ = 0;
    std::vector<LinkId> bridges_;
};

}  // namespace

std::vector<LinkId> find_bridges(const Subgraph& sg) { return BridgeFinder(sg).run(); }

}  // namespace poc::net
