// Connectivity analysis over Subgraphs: components, reachability,
// bridges. The topology builder uses components to validate generated
// networks; the resilience constraints use bridges as a fast necessary
// condition (a demand crossing a bridge cannot survive that link's
// failure).
#pragma once

#include <vector>

#include "net/graph.hpp"

namespace poc::net {

/// Component label per node (labels are 0..count-1, dense).
struct Components {
    std::vector<std::uint32_t> label;
    std::uint32_t count = 0;

    bool same(NodeId a, NodeId b) const { return label[a.index()] == label[b.index()]; }
};

/// Connected components over active links.
Components connected_components(const Subgraph& sg);

/// True if every demand's endpoints are in the same component.
bool all_pairs_connected(const Subgraph& sg, const TrafficMatrix& tm);

/// True if all nodes that have at least one active incident link are in
/// one component (isolated nodes are ignored: an un-leased attachment
/// point is not a partition).
bool spanning_connected(const Subgraph& sg);

/// Bridge links (links whose removal disconnects their endpoints),
/// found with Tarjan's low-link algorithm. Parallel links are never
/// bridges.
std::vector<LinkId> find_bridges(const Subgraph& sg);

}  // namespace poc::net
