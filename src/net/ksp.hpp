// Yen's algorithm for the k shortest loopless paths. The multi-commodity
// routing in the feasibility oracle and the per-pair failure model
// (constraint #3 of the auction, paper section 3.3) both work over a
// candidate path set per commodity; Yen provides that set.
#pragma once

#include <vector>

#include "net/shortest_path.hpp"

namespace poc::net {

/// Up to k shortest loopless paths from src to dst over active links,
/// ordered by non-decreasing weight. Fewer than k are returned when the
/// subgraph does not contain k distinct loopless paths. Requires k >= 1
/// and non-negative weights.
std::vector<WeightedPath> yen_k_shortest(const Subgraph& sg, NodeId src, NodeId dst,
                                         const LinkWeight& weight, std::size_t k);

/// yen_k_shortest with every internal SSSP run through a reusable
/// workspace. Identical results; the per-spur tree allocations of the
/// convenience overload disappear.
std::vector<WeightedPath> yen_k_shortest(const Subgraph& sg, NodeId src, NodeId dst,
                                         const LinkWeight& weight, std::size_t k,
                                         SsspWorkspace& ws);

}  // namespace poc::net
