// Graph core for the POC backbone: an undirected multigraph of
// capacitated links between routers. The auction reasons about *subsets*
// of links, so every algorithm in poc::net runs against a Subgraph view
// (graph + active-link mask) rather than a copied graph; toggling a link
// in or out of consideration is O(1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/ids.hpp"

namespace poc::net {

using NodeId = util::Id<struct NodeTag>;
using LinkId = util::Id<struct LinkTag>;

/// An undirected capacitated link. `capacity_gbps` bounds total flow in
/// both directions combined (a leased wavelength is full-duplex, but the
/// auction's traffic matrix is directional; we model the common case of
/// symmetric provisioning by charging both directions against the same
/// capacity, which is conservative).
struct Link {
    NodeId a;
    NodeId b;
    double capacity_gbps = 0.0;
    /// Routing weight; by convention the geographic length in km (so
    /// shortest paths approximate lowest latency).
    double length_km = 0.0;

    /// The endpoint that is not `from`. Requires from ∈ {a, b}.
    NodeId other(NodeId from) const {
        POC_EXPECTS(from == a || from == b);
        return from == a ? b : a;
    }
};

/// Immutable-after-build undirected multigraph.
class Graph {
public:
    Graph() = default;

    /// Create `count` nodes, returning the id of the first. Node labels
    /// are optional and for reporting only.
    NodeId add_node(std::string label = {});
    NodeId add_nodes(std::size_t count);

    /// Add an undirected link. Self-loops are rejected (a leased circuit
    /// connects two distinct routers). Parallel links are allowed: two
    /// BPs may offer circuits between the same city pair.
    LinkId add_link(NodeId a, NodeId b, double capacity_gbps, double length_km);

    std::size_t node_count() const noexcept { return node_labels_.size(); }
    std::size_t link_count() const noexcept { return links_.size(); }

    const Link& link(LinkId id) const {
        POC_EXPECTS(id.index() < links_.size());
        return links_[id.index()];
    }

    const std::string& node_label(NodeId id) const {
        POC_EXPECTS(id.index() < node_labels_.size());
        return node_labels_[id.index()];
    }

    /// Links incident to `node` (both parallel and distinct neighbors).
    std::span<const LinkId> incident(NodeId node) const;

    /// All link ids, in insertion order.
    std::vector<LinkId> all_links() const;

    /// Build the lazy adjacency index now. It is otherwise built on the
    /// first incident() call, which is not safe when concurrent readers
    /// race to be that first call; the parallel auction engine warms it
    /// before fanning out.
    void warm_adjacency() const { ensure_adjacency_current(); }

private:
    void ensure_adjacency_current() const;

    std::vector<std::string> node_labels_;
    std::vector<Link> links_;

    // CSR adjacency, rebuilt lazily after link insertion.
    mutable std::vector<std::uint32_t> adj_offsets_;
    mutable std::vector<LinkId> adj_links_;
    mutable bool adjacency_dirty_ = true;
};

/// A view of a Graph restricted to a subset of its links. Cheap to copy;
/// the mask is a shared-size vector<char> (not vector<bool>, for speed).
class Subgraph {
public:
    /// View with every link active.
    explicit Subgraph(const Graph& graph);

    /// View with exactly the given links active.
    Subgraph(const Graph& graph, const std::vector<LinkId>& active);

    const Graph& graph() const noexcept { return *graph_; }

    bool is_active(LinkId id) const {
        POC_EXPECTS(id.index() < mask_.size());
        return mask_[id.index()] != 0;
    }

    void set_active(LinkId id, bool active) {
        POC_EXPECTS(id.index() < mask_.size());
        const char now = active ? 1 : 0;
        if (mask_[id.index()] != now) {
            mask_[id.index()] = now;
            active_count_ += active ? 1 : static_cast<std::size_t>(-1);
            fingerprint_ ^= link_fingerprint(id.index());
        }
    }

    std::size_t active_count() const noexcept { return active_count_; }

    /// Order-independent hash of the active-link set, maintained
    /// incrementally (XOR of a per-link mix), so two views over the same
    /// graph have equal fingerprints iff — up to 64-bit collisions —
    /// their active sets are equal, no matter in which order the masks
    /// were built. net::PathCache keys routing state on this; see
    /// DESIGN.md §6 for the collision model.
    std::uint64_t fingerprint() const noexcept { return fingerprint_; }

    /// The fingerprint contribution of one link (splitmix64 of its
    /// index), exposed so tests can state collision expectations.
    static std::uint64_t link_fingerprint(std::size_t link_index) noexcept {
        std::uint64_t z = link_index + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Active links in id order.
    std::vector<LinkId> active_links() const;

    /// The raw per-link activity mask (1 byte per link, indexed by link
    /// id). Exposed so net::PathCache can diff two views of the same
    /// graph family link-by-link when deciding whether a cached tree is
    /// repairable (DESIGN.md §7).
    std::span<const char> mask() const noexcept { return mask_; }

    std::size_t node_count() const noexcept { return graph_->node_count(); }

private:
    const Graph* graph_;
    std::vector<char> mask_;
    std::size_t active_count_ = 0;
    std::uint64_t fingerprint_ = 0;
};

/// A directional traffic demand between two routers.
struct Demand {
    NodeId src;
    NodeId dst;
    double gbps = 0.0;
};

/// A point-to-point traffic matrix as a demand list (sparse form).
using TrafficMatrix = std::vector<Demand>;

/// Sum of all demand volumes.
double total_demand(const TrafficMatrix& tm);

}  // namespace poc::net
