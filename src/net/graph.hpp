// Graph core for the POC backbone: an undirected multigraph of
// capacitated links between routers. The auction reasons about *subsets*
// of links, so every algorithm in poc::net runs against a Subgraph view
// (graph + active-link mask) rather than a copied graph; toggling a link
// in or out of consideration is O(1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/ids.hpp"

namespace poc::net {

using NodeId = util::Id<struct NodeTag>;
using LinkId = util::Id<struct LinkTag>;

/// An undirected capacitated link. `capacity_gbps` bounds total flow in
/// both directions combined (a leased wavelength is full-duplex, but the
/// auction's traffic matrix is directional; we model the common case of
/// symmetric provisioning by charging both directions against the same
/// capacity, which is conservative).
struct Link {
    NodeId a;
    NodeId b;
    double capacity_gbps = 0.0;
    /// Routing weight; by convention the geographic length in km (so
    /// shortest paths approximate lowest latency).
    double length_km = 0.0;

    /// The endpoint that is not `from`. Requires from ∈ {a, b}.
    NodeId other(NodeId from) const {
        POC_EXPECTS(from == a || from == b);
        return from == a ? b : a;
    }
};

/// Flat struct-of-arrays view of a Graph's link table (DESIGN.md §9):
/// parallel endpoint/capacity/length arrays indexed by link id, built
/// alongside the CSR adjacency, so data-plane scans (Dijkstra inner
/// loops, shard-local load accumulation) touch contiguous 4/8-byte
/// lanes instead of striding through Link records. Values mirror the
/// AoS `Link` fields exactly; spans are invalidated by the next
/// add_node/add_link.
struct LinkSoa {
    std::span<const NodeId::underlying_type> a;
    std::span<const NodeId::underlying_type> b;
    std::span<const double> capacity_gbps;
    std::span<const double> length_km;

    /// The endpoint of link `l` that is not `from` (raw-id form of
    /// Link::other). Requires from ∈ {a[l], b[l]}.
    NodeId::underlying_type other(std::size_t l, NodeId::underlying_type from) const {
        POC_EXPECTS(from == a[l] || from == b[l]);
        return from == a[l] ? b[l] : a[l];
    }
};

/// Immutable-after-build undirected multigraph.
class Graph {
public:
    Graph() = default;

    /// Pre-size the node and link stores (plus the flat index arrays
    /// warmed later), so building a 10^5-node synthetic topology does
    /// not rehash/realloc its way up. Safe to call at any time.
    void reserve(std::size_t nodes, std::size_t links);

    /// Create `count` nodes, returning the id of the first. Node labels
    /// are optional and for reporting only.
    NodeId add_node(std::string label = {});
    NodeId add_nodes(std::size_t count);

    /// Add an undirected link. Self-loops are rejected (a leased circuit
    /// connects two distinct routers). Parallel links are allowed: two
    /// BPs may offer circuits between the same city pair.
    LinkId add_link(NodeId a, NodeId b, double capacity_gbps, double length_km);

    std::size_t node_count() const noexcept { return node_labels_.size(); }
    std::size_t link_count() const noexcept { return links_.size(); }

    const Link& link(LinkId id) const {
        POC_EXPECTS(id.index() < links_.size());
        return links_[id.index()];
    }

    const std::string& node_label(NodeId id) const {
        POC_EXPECTS(id.index() < node_labels_.size());
        return node_labels_[id.index()];
    }

    /// Links incident to `node` (both parallel and distinct neighbors).
    std::span<const LinkId> incident(NodeId node) const;

    /// All link ids, in insertion order.
    std::vector<LinkId> all_links() const;

    /// The flat SoA link arrays (built lazily with the adjacency).
    LinkSoa link_soa() const {
        ensure_adjacency_current();
        return LinkSoa{soa_a_, soa_b_, soa_capacity_, soa_length_};
    }

    /// Build the lazy adjacency index (and the SoA link arrays) now.
    /// They are otherwise built on the first incident()/link_soa()
    /// call, which is not safe when concurrent readers race to be that
    /// first call; the parallel auction engine and the shard engine
    /// warm them before fanning out.
    void warm_adjacency() const { ensure_adjacency_current(); }

private:
    void ensure_adjacency_current() const;

    std::vector<std::string> node_labels_;
    std::vector<Link> links_;

    // CSR adjacency + SoA link arrays, rebuilt lazily after insertion.
    mutable std::vector<std::uint32_t> adj_offsets_;
    mutable std::vector<LinkId> adj_links_;
    mutable std::vector<NodeId::underlying_type> soa_a_;
    mutable std::vector<NodeId::underlying_type> soa_b_;
    mutable std::vector<double> soa_capacity_;
    mutable std::vector<double> soa_length_;
    mutable bool adjacency_dirty_ = true;
};

/// A view of a Graph restricted to a subset of its links. Cheap to copy;
/// the mask is a shared-size vector<char> (not vector<bool>, for speed).
class Subgraph {
public:
    /// View with every link active.
    explicit Subgraph(const Graph& graph);

    /// View with exactly the given links active.
    Subgraph(const Graph& graph, const std::vector<LinkId>& active);

    const Graph& graph() const noexcept { return *graph_; }

    bool is_active(LinkId id) const {
        POC_EXPECTS(id.index() < mask_.size());
        return mask_[id.index()] != 0;
    }

    void set_active(LinkId id, bool active) {
        POC_EXPECTS(id.index() < mask_.size());
        const char now = active ? 1 : 0;
        if (mask_[id.index()] != now) {
            mask_[id.index()] = now;
            active_count_ += active ? 1 : static_cast<std::size_t>(-1);
            fingerprint_ ^= link_fingerprint(id.index());
        }
    }

    std::size_t active_count() const noexcept { return active_count_; }

    /// Order-independent hash of the active-link set, maintained
    /// incrementally (XOR of a per-link mix), so two views over the same
    /// graph have equal fingerprints iff — up to 64-bit collisions —
    /// their active sets are equal, no matter in which order the masks
    /// were built. net::PathCache keys routing state on this; see
    /// DESIGN.md §6 for the collision model.
    std::uint64_t fingerprint() const noexcept { return fingerprint_; }

    /// The fingerprint contribution of one link (splitmix64 of its
    /// index), exposed so tests can state collision expectations.
    static std::uint64_t link_fingerprint(std::size_t link_index) noexcept {
        std::uint64_t z = link_index + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Active links in id order.
    std::vector<LinkId> active_links() const;

    /// The raw per-link activity mask (1 byte per link, indexed by link
    /// id). Exposed so net::PathCache can diff two views of the same
    /// graph family link-by-link when deciding whether a cached tree is
    /// repairable (DESIGN.md §7).
    std::span<const char> mask() const noexcept { return mask_; }

    std::size_t node_count() const noexcept { return graph_->node_count(); }

private:
    const Graph* graph_;
    std::vector<char> mask_;
    std::size_t active_count_ = 0;
    std::uint64_t fingerprint_ = 0;
};

/// A directional traffic demand between two routers.
struct Demand {
    NodeId src;
    NodeId dst;
    double gbps = 0.0;
};

/// A point-to-point traffic matrix as a demand list (sparse form).
using TrafficMatrix = std::vector<Demand>;

/// Sum of all demand volumes.
double total_demand(const TrafficMatrix& tm);

/// Flat struct-of-arrays traffic matrix, source-sorted (DESIGN.md §9).
/// Demands are held in parallel src/dst/gbps arrays permuted into
/// ascending-source order; ties keep their AoS order, so the
/// permutation is stable and `original_index()` inverts it exactly.
/// Equal-source demands form contiguous *blocks* (`sources()` /
/// `block_begin()`), which is what lets the shard engine hand each
/// shard a contiguous, cache-friendly range of whole source groups.
class TrafficMatrixSoA {
public:
    TrafficMatrixSoA() = default;
    explicit TrafficMatrixSoA(const TrafficMatrix& tm) { assign(tm); }

    /// Rebuild from `tm` (counting sort on the source id: O(D + max
    /// source)). Reuses capacity, so repeated epochs over same-shaped
    /// matrices are allocation-free in the steady state.
    void assign(const TrafficMatrix& tm);

    std::size_t size() const noexcept { return gbps_.size(); }
    bool empty() const noexcept { return gbps_.empty(); }

    /// Sorted-order demand arrays: entry k is demand
    /// (src()[k] -> dst()[k], gbps()[k]).
    std::span<const NodeId::underlying_type> src() const noexcept { return src_; }
    std::span<const NodeId::underlying_type> dst() const noexcept { return dst_; }
    std::span<const double> gbps() const noexcept { return gbps_; }

    /// original_index()[k] = position of sorted entry k in the AoS
    /// list — the stable source-sorted permutation.
    std::span<const std::uint32_t> original_index() const noexcept { return order_; }

    /// Distinct sources in ascending id order; source s =
    /// sources()[k]'s demands occupy sorted positions
    /// [block_begin()[k], block_begin()[k+1]). block_begin() has
    /// sources().size() + 1 entries; block_begin()[k] is also the
    /// cumulative demand count of the first k blocks, which is what
    /// the shard planner balances on.
    std::span<const NodeId::underlying_type> sources() const noexcept { return sources_; }
    std::span<const std::uint32_t> block_begin() const noexcept { return block_begin_; }

    /// Reconstruct the AoS demand list in original order (the SoA↔AoS
    /// round trip is exact: to_aos() == the assign() input).
    TrafficMatrix to_aos() const;

private:
    std::vector<NodeId::underlying_type> src_;
    std::vector<NodeId::underlying_type> dst_;
    std::vector<double> gbps_;
    std::vector<std::uint32_t> order_;
    std::vector<NodeId::underlying_type> sources_;
    std::vector<std::uint32_t> block_begin_;
    std::vector<std::uint32_t> counts_;  // counting-sort scratch
};

}  // namespace poc::net
