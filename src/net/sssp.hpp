// Batched single-source shortest paths over a demand matrix
// (DESIGN.md §6). A traffic matrix with D demands usually has far
// fewer distinct sources than demands, and every built-in routing
// metric here (length, hop count) is independent of which demand is
// being resolved — so one SSSP per distinct source answers every
// demand from that source. These helpers do that grouping, run each
// source's Dijkstra through a reusable SsspWorkspace (allocation-free
// in the steady state), optionally share trees through a PathCache,
// and optionally fan the independent per-source runs across a
// util::ThreadPool.
//
// Every combination (workspace / cache / parallel) is bit-identical to
// resolving each demand with its own shortest_path() call: grouping
// only deduplicates whole SSSP runs, the cache stores complete trees
// from the same deterministic Dijkstra, and parallel runs write
// disjoint per-demand outputs computed from per-source state.
//
// NOT valid for demand-dependent weights (e.g. greedy_path_routing's
// congestion metric, which changes as demands are placed); those call
// sites keep their per-demand SSSPs and reuse only the workspace.
#pragma once

#include <vector>

#include "net/path_cache.hpp"
#include "net/shortest_path.hpp"

namespace poc::net {

struct SsspBatchOptions {
    SsspMetric metric = SsspMetric::kLength;
    /// Total threads to spread per-source SSSPs over (1 = serial; a
    /// pool of threads-1 workers is spun up per call and the calling
    /// thread joins it). Results are identical at any setting.
    std::size_t threads = 1;
    /// Optional tree cache shared across calls/masks/epochs. When set,
    /// trees are looked up by (source, mask fingerprint, metric) and
    /// computed on miss; when null, trees live only in the workspace.
    PathCache* cache = nullptr;
};

/// The distinct demand sources of `tm`, in first-appearance order.
std::vector<NodeId> distinct_sources(const TrafficMatrix& tm);

/// out[j] = weight of the best tm[j].src -> tm[j].dst path under the
/// metric, or +inf when disconnected. One SSSP per distinct source.
std::vector<double> batched_demand_distances(const Subgraph& sg, const TrafficMatrix& tm,
                                             const SsspBatchOptions& opt = {});

/// out[j] = link sequence of the best tm[j].src -> tm[j].dst path, or
/// empty when disconnected or tm[j].gbps <= 0 (the primary_paths
/// convention in net/failure.hpp).
std::vector<std::vector<LinkId>> batched_primary_paths(const Subgraph& sg,
                                                       const TrafficMatrix& tm,
                                                       const SsspBatchOptions& opt = {});

}  // namespace poc::net
