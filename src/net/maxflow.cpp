#include "net/maxflow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace poc::net {

namespace {

/// Internal residual-arc representation for Dinic. Each undirected link
/// becomes one arc pair (u->v, v->u), each initialized with the full
/// link capacity; pushing flow on one direction grows the residual of
/// the other, which correctly models an undirected edge.
struct Arc {
    std::uint32_t to;
    std::uint32_t rev;  // index of the reverse arc in arcs_of[to]
    double residual;
    std::uint32_t link_index;  // originating link, for flow extraction
    bool forward;              // true if this arc goes link.a -> link.b
};

class Dinic {
public:
    Dinic(const Subgraph& sg, bool unit_capacity) : g_(sg.graph()), arcs_of_(g_.node_count()) {
        for (const LinkId lid : sg.active_links()) {
            const Link& l = g_.link(lid);
            const double cap = unit_capacity ? 1.0 : l.capacity_gbps;
            add_pair(l.a.value(), l.b.value(), cap, lid);
        }
    }

    double run(std::uint32_t s, std::uint32_t t) {
        double total = 0.0;
        while (bfs(s, t)) {
            it_.assign(arcs_of_.size(), 0);
            while (true) {
                const double pushed = dfs(s, t, std::numeric_limits<double>::infinity());
                if (pushed <= kEps) break;
                total += pushed;
            }
        }
        return total;
    }

    /// Per-link net a->b flow after run(). Both arcs of a link start at
    /// the full capacity, so net flow = (residual_ba - residual_ab) / 2.
    std::vector<LinkFlow> flows(const Subgraph& sg) const {
        std::vector<LinkFlow> out;
        for (const LinkId lid : sg.active_links()) {
            const Link& l = sg.graph().link(lid);
            double net_ab = 0.0;
            for (const Arc& a : arcs_of_[l.a.index()]) {
                if (a.link_index == lid.value() && a.forward) {
                    const Arc& rev = arcs_of_[a.to][a.rev];
                    net_ab = (rev.residual - a.residual) / 2.0;
                    break;
                }
            }
            if (std::abs(net_ab) > kEps) out.push_back(LinkFlow{lid, net_ab});
        }
        return out;
    }

    std::vector<NodeId> reachable_in_residual(std::uint32_t s) const {
        std::vector<char> seen(arcs_of_.size(), 0);
        std::queue<std::uint32_t> q;
        q.push(s);
        seen[s] = 1;
        std::vector<NodeId> out;
        while (!q.empty()) {
            const std::uint32_t u = q.front();
            q.pop();
            out.push_back(NodeId{u});
            for (const Arc& a : arcs_of_[u]) {
                if (a.residual > kEps && seen[a.to] == 0) {
                    seen[a.to] = 1;
                    q.push(a.to);
                }
            }
        }
        return out;
    }

private:
    static constexpr double kEps = 1e-9;

    void add_pair(std::uint32_t u, std::uint32_t v, double cap, LinkId lid) {
        const auto iu = static_cast<std::uint32_t>(arcs_of_[u].size());
        const auto iv = static_cast<std::uint32_t>(arcs_of_[v].size());
        arcs_of_[u].push_back(Arc{v, iv, cap, lid.value(), true});
        arcs_of_[v].push_back(Arc{u, iu, cap, lid.value(), false});
    }

    bool bfs(std::uint32_t s, std::uint32_t t) {
        level_.assign(arcs_of_.size(), -1);
        std::queue<std::uint32_t> q;
        q.push(s);
        level_[s] = 0;
        while (!q.empty()) {
            const std::uint32_t u = q.front();
            q.pop();
            for (const Arc& a : arcs_of_[u]) {
                if (a.residual > kEps && level_[a.to] < 0) {
                    level_[a.to] = level_[u] + 1;
                    q.push(a.to);
                }
            }
        }
        return level_[t] >= 0;
    }

    double dfs(std::uint32_t u, std::uint32_t t, double limit) {
        if (u == t) return limit;
        for (std::uint32_t& i = it_[u]; i < arcs_of_[u].size(); ++i) {
            Arc& a = arcs_of_[u][i];
            if (a.residual <= kEps || level_[a.to] != level_[u] + 1) continue;
            const double pushed = dfs(a.to, t, std::min(limit, a.residual));
            if (pushed > kEps) {
                a.residual -= pushed;
                arcs_of_[a.to][a.rev].residual += pushed;
                return pushed;
            }
        }
        return 0.0;
    }

    const Graph& g_;
    std::vector<std::vector<Arc>> arcs_of_;
    std::vector<int> level_;
    std::vector<std::uint32_t> it_;
};

}  // namespace

MaxFlowResult max_flow(const Subgraph& sg, NodeId src, NodeId dst) {
    POC_EXPECTS(src != dst);
    POC_EXPECTS(src.index() < sg.node_count());
    POC_EXPECTS(dst.index() < sg.node_count());
    Dinic dinic(sg, /*unit_capacity=*/false);
    MaxFlowResult result;
    result.value = dinic.run(src.value(), dst.value());
    result.flows = dinic.flows(sg);
    result.source_side = dinic.reachable_in_residual(src.value());
    return result;
}

std::size_t link_disjoint_path_count(const Subgraph& sg, NodeId src, NodeId dst) {
    POC_EXPECTS(src != dst);
    Dinic dinic(sg, /*unit_capacity=*/true);
    const double value = dinic.run(src.value(), dst.value());
    return static_cast<std::size_t>(std::llround(value));
}

double min_cut_capacity(const Subgraph& sg, NodeId src, NodeId dst) {
    return max_flow(sg, src, dst).value;
}

}  // namespace poc::net
