// Min-cost single-commodity flow (successive shortest paths with
// Johnson potentials). The flow simulator uses it to route one LMP's
// aggregate traffic at minimum total latency-km over the provisioned
// backbone.
#pragma once

#include <optional>
#include <vector>

#include "net/graph.hpp"
#include "net/maxflow.hpp"
#include "net/shortest_path.hpp"

namespace poc::net {

struct MinCostFlowResult {
    /// Amount actually routed (== requested amount when feasible).
    double routed = 0.0;
    /// Total cost = sum over links of |flow| * cost-per-unit.
    double cost = 0.0;
    /// Net flow per link (positive = a->b).
    std::vector<LinkFlow> flows;
};

/// Route `amount` units src->dst at minimum total cost, where each
/// active link carries at most its capacity and costs `cost_per_unit(l)`
/// per unit of flow (must be >= 0). Returns nullopt when the network
/// cannot carry the full amount.
std::optional<MinCostFlowResult> min_cost_flow(const Subgraph& sg, NodeId src, NodeId dst,
                                               double amount, const LinkWeight& cost_per_unit);

}  // namespace poc::net
