#include "net/ksp.hpp"

#include <algorithm>
#include <set>

namespace poc::net {

namespace {

/// Total weight of a link sequence.
double path_weight(const std::vector<LinkId>& links, const LinkWeight& weight) {
    double w = 0.0;
    for (const LinkId l : links) w += weight(l);
    return w;
}

}  // namespace

std::vector<WeightedPath> yen_k_shortest(const Subgraph& sg, NodeId src, NodeId dst,
                                         const LinkWeight& weight, std::size_t k) {
    SsspWorkspace ws;
    return yen_k_shortest(sg, src, dst, weight, k, ws);
}

std::vector<WeightedPath> yen_k_shortest(const Subgraph& sg, NodeId src, NodeId dst,
                                         const LinkWeight& weight, std::size_t k,
                                         SsspWorkspace& ws) {
    POC_EXPECTS(k >= 1);
    POC_EXPECTS(src != dst);
    const Graph& g = sg.graph();

    std::vector<WeightedPath> result;
    auto first = shortest_path(sg, src, dst, weight, ws);
    if (!first) return result;
    result.push_back(std::move(*first));

    // Candidate set ordered by weight; dedup on link sequence.
    auto cmp = [](const WeightedPath& a, const WeightedPath& b) {
        if (a.weight != b.weight) return a.weight < b.weight;
        return a.links < b.links;
    };
    std::set<WeightedPath, decltype(cmp)> candidates(cmp);

    Subgraph work = sg;  // mutated and restored around each spur search

    while (result.size() < k) {
        const WeightedPath& prev = result.back();
        const std::vector<NodeId> prev_nodes = path_nodes(g, src, prev.links);

        for (std::size_t i = 0; i + 1 < prev_nodes.size(); ++i) {
            const NodeId spur_node = prev_nodes[i];
            // Root: the first i links of the previous path.
            std::vector<LinkId> root(prev.links.begin(),
                                     prev.links.begin() + static_cast<std::ptrdiff_t>(i));
            const double root_weight = path_weight(root, weight);

            // Deactivate the next link of every accepted path sharing
            // this root, so the spur deviates.
            std::vector<LinkId> removed_links;
            for (const WeightedPath& p : result) {
                if (p.links.size() > i &&
                    std::equal(root.begin(), root.end(), p.links.begin())) {
                    const LinkId next = p.links[i];
                    if (work.is_active(next)) {
                        work.set_active(next, false);
                        removed_links.push_back(next);
                    }
                }
            }
            // Deactivate all links incident to root nodes (except the
            // spur node) to keep paths loopless.
            for (std::size_t j = 0; j < i; ++j) {
                for (const LinkId lid : g.incident(prev_nodes[j])) {
                    if (work.is_active(lid)) {
                        work.set_active(lid, false);
                        removed_links.push_back(lid);
                    }
                }
            }

            if (auto spur = shortest_path(work, spur_node, dst, weight, ws)) {
                WeightedPath total;
                total.links = root;
                total.links.insert(total.links.end(), spur->links.begin(), spur->links.end());
                total.weight = root_weight + spur->weight;
                candidates.insert(std::move(total));
            }

            for (const LinkId lid : removed_links) work.set_active(lid, true);
        }

        // Pop candidates until we find one not already accepted.
        bool advanced = false;
        while (!candidates.empty()) {
            WeightedPath best = *candidates.begin();
            candidates.erase(candidates.begin());
            const bool duplicate =
                std::any_of(result.begin(), result.end(),
                            [&](const WeightedPath& p) { return p.links == best.links; });
            if (!duplicate) {
                result.push_back(std::move(best));
                advanced = true;
                break;
            }
        }
        if (!advanced) break;  // path space exhausted
    }
    return result;
}

}  // namespace poc::net
