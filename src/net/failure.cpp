#include "net/failure.hpp"

#include <algorithm>

#include "net/connectivity.hpp"
#include "net/sssp.hpp"

namespace poc::net {

bool satisfies_load(const Subgraph& sg, const TrafficMatrix& tm, double fptas_eps) {
    if (!all_pairs_connected(sg, tm)) return false;
    return is_routable(sg, tm, fptas_eps);
}

bool satisfies_single_failure(const Subgraph& sg, const TrafficMatrix& tm,
                              const ResilienceOptions& opt) {
    if (!satisfies_load(sg, tm, opt.fptas_eps)) return false;

    // Find a nominal feasible routing; links that carry no flow in it
    // can fail without consequence (the same routing remains valid), so
    // only loaded links need exhaustive rechecking.
    auto nominal = greedy_path_routing(sg, tm);
    std::vector<double> load;
    if (nominal) {
        load = nominal->link_load(sg.graph());
    } else {
        const auto cf = max_concurrent_flow(sg, tm, opt.fptas_eps);
        if (cf.lambda < 1.0) return false;
        load = cf.routing.link_load(sg.graph());
    }

    Subgraph work = sg;
    for (const LinkId lid : sg.active_links()) {
        const double cap = sg.graph().link(lid).capacity_gbps;
        if (load[lid.index()] <= opt.recheck_load_threshold * cap ||
            load[lid.index()] <= 1e-9) {
            continue;  // unloaded in the nominal routing: failure is free
        }
        work.set_active(lid, false);
        const bool ok = satisfies_load(work, tm, opt.fptas_eps);
        work.set_active(lid, true);
        if (!ok) return false;
    }
    return true;
}

std::vector<std::vector<LinkId>> primary_paths(const Subgraph& sg, const TrafficMatrix& tm,
                                               PathCache* cache) {
    SsspBatchOptions opt;
    opt.metric = SsspMetric::kLength;
    opt.cache = cache;
    return batched_primary_paths(sg, tm, opt);
}

bool satisfies_per_pair_failure(const Subgraph& sg, const TrafficMatrix& tm,
                                const ResilienceOptions& opt) {
    if (!satisfies_load(sg, tm, opt.fptas_eps)) return false;
    const CommodityExclusions primaries = primary_paths(sg, tm, opt.path_cache);
    // Every demand must still be routable (simultaneously) while its own
    // primary path's links are excluded for it.
    return is_routable(sg, tm, opt.fptas_eps, &primaries);
}

}  // namespace poc::net
