// Single-source shortest paths over a Subgraph with pluggable link
// weights. Dijkstra is the workhorse (all weights in this project are
// non-negative); Bellman-Ford exists as an independent oracle for
// property tests and for min-cost-flow potential initialization.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "net/graph.hpp"

namespace poc::net {

/// Link weight functor: maps a link to its routing cost. Must be
/// non-negative for Dijkstra.
using LinkWeight = std::function<double(LinkId)>;

/// Weight by geographic length (the default routing metric).
LinkWeight weight_by_length(const Graph& g);
/// Unit weight (hop count).
LinkWeight weight_unit();

/// Result of a single-source shortest path computation.
struct ShortestPathTree {
    NodeId source;
    /// dist[v] = cost of the best path source->v, or +inf if unreachable.
    std::vector<double> dist;
    /// parent_link[v] = the link used to enter v on the best path, or an
    /// invalid id for the source / unreachable nodes.
    std::vector<LinkId> parent_link;
    /// pred_node_[v] = the node preceding v on the best path (the other
    /// endpoint of parent_link[v]). Stored so path reconstruction does
    /// not need the graph.
    std::vector<NodeId> pred_node_;

    bool reachable(NodeId v) const {
        return dist[v.index()] < std::numeric_limits<double>::infinity();
    }

    /// Reconstruct the link sequence source->target. Requires target
    /// reachable. Returned links are ordered from source to target.
    std::vector<LinkId> path_to(NodeId target) const;
};

/// Dijkstra over active links. Requires weights >= 0.
ShortestPathTree dijkstra(const Subgraph& sg, NodeId source, const LinkWeight& weight);

/// Bellman-Ford over active links. Supports negative weights; returns
/// std::nullopt if a negative cycle is reachable from the source.
std::optional<ShortestPathTree> bellman_ford(const Subgraph& sg, NodeId source,
                                             const LinkWeight& weight);

/// A path with its total weight.
struct WeightedPath {
    std::vector<LinkId> links;
    double weight = 0.0;
};

/// Convenience: best path between two nodes, or nullopt if disconnected.
std::optional<WeightedPath> shortest_path(const Subgraph& sg, NodeId src, NodeId dst,
                                          const LinkWeight& weight);

/// The node sequence visited by a path starting at `src`. Requires the
/// links to form a connected walk from src.
std::vector<NodeId> path_nodes(const Graph& g, NodeId src, const std::vector<LinkId>& links);

}  // namespace poc::net
