// Single-source shortest paths over a Subgraph with pluggable link
// weights. Dijkstra is the workhorse (all weights in this project are
// non-negative); Bellman-Ford exists as an independent oracle for
// property tests and for min-cost-flow potential initialization.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "net/graph.hpp"

namespace poc::net {

/// Link weight functor: maps a link to its routing cost. Must be
/// non-negative for Dijkstra.
using LinkWeight = std::function<double(LinkId)>;

/// Weight by geographic length (the default routing metric).
LinkWeight weight_by_length(const Graph& g);
/// Unit weight (hop count).
LinkWeight weight_unit();

/// Result of a single-source shortest path computation.
struct ShortestPathTree {
    NodeId source;
    /// dist[v] = cost of the best path source->v, or +inf if unreachable.
    std::vector<double> dist;
    /// parent_link[v] = the link used to enter v on the best path, or an
    /// invalid id for the source / unreachable nodes.
    std::vector<LinkId> parent_link;
    /// pred_node_[v] = the node preceding v on the best path (the other
    /// endpoint of parent_link[v]). Stored so path reconstruction does
    /// not need the graph.
    std::vector<NodeId> pred_node_;

    bool reachable(NodeId v) const {
        return dist[v.index()] < std::numeric_limits<double>::infinity();
    }

    /// Reconstruct the link sequence source->target. Requires target
    /// reachable. Returned links are ordered from source to target.
    std::vector<LinkId> path_to(NodeId target) const;
};

/// Built-in routing metrics with stable identities, so caches
/// (net/path_cache.hpp) can key entries on "which weight function"
/// without hashing a std::function. kLength is weight_by_length,
/// kUnit is weight_unit.
enum class SsspMetric : std::uint8_t { kLength = 0, kUnit = 1 };

class SsspWorkspace;

namespace detail {
template <class Weight>
void run_dijkstra(const Subgraph& sg, NodeId source, Weight&& weight, SsspWorkspace& ws);
}

/// Reusable single-source shortest-path scratch: flat dist/parent/pred
/// arrays plus a 4-ary heap, invalidated by a generation stamp instead
/// of an O(V) clear. After the first run on a graph size, repeated
/// dijkstra_into() calls perform zero allocations (the heap vector
/// keeps its capacity), which is what makes per-demand routing loops
/// allocation-free (DESIGN.md §6).
///
/// Results are bit-identical to the tree-returning dijkstra(): a
/// priority queue with the total order (dist, node id) pops a uniquely
/// determined sequence whatever its arity, so the relaxation order —
/// and therefore every dist/parent/pred value — cannot differ.
class SsspWorkspace {
public:
    /// Source of the last dijkstra_into() run.
    NodeId source() const noexcept { return source_; }

    bool reachable(NodeId v) const {
        POC_EXPECTS(v.index() < dist_.size());
        return stamp_[v.index()] == generation_;
    }

    /// Distance from the source, +inf when unreachable.
    double dist(NodeId v) const {
        POC_EXPECTS(v.index() < dist_.size());
        return stamp_[v.index()] == generation_ ? dist_[v.index()]
                                                : std::numeric_limits<double>::infinity();
    }

    LinkId parent_link(NodeId v) const {
        POC_EXPECTS(v.index() < dist_.size());
        return stamp_[v.index()] == generation_ ? parent_[v.index()] : LinkId{};
    }

    NodeId pred_node(NodeId v) const {
        POC_EXPECTS(v.index() < dist_.size());
        return stamp_[v.index()] == generation_ ? pred_[v.index()] : NodeId{};
    }

    /// Append the link sequence source->target to `out` (cleared
    /// first). Requires target reachable. Allocation-free once `out`
    /// has capacity.
    void append_path_to(NodeId target, std::vector<LinkId>& out) const;

    std::vector<LinkId> path_to(NodeId target) const {
        std::vector<LinkId> out;
        append_path_to(target, out);
        return out;
    }

    /// Export the last run as a standalone ShortestPathTree (allocates;
    /// for callers that outlive the workspace, e.g. the path cache).
    ShortestPathTree to_tree() const;

private:
    template <class Weight>
    friend void detail::run_dijkstra(const Subgraph& sg, NodeId source, Weight&& weight,
                                     SsspWorkspace& ws);

    struct HeapItem {
        double dist;
        NodeId::underlying_type node;
    };

    /// The total order of the seed std::priority_queue<pair<double,
    /// id>, greater<>>: (dist, node id) ascending. Keeping the exact
    /// same order is what makes the 4-ary heap bit-identical.
    static bool heap_less(HeapItem a, HeapItem b) noexcept {
        return a.dist < b.dist || (a.dist == b.dist && a.node < b.node);
    }

    /// Size to the graph and open a fresh generation (O(1) amortized;
    /// O(V) only on first use, graph-size change, or stamp wraparound).
    void prepare(std::size_t node_count);

    void heap_push(HeapItem item);
    HeapItem heap_pop();

    std::vector<double> dist_;
    std::vector<LinkId> parent_;
    std::vector<NodeId> pred_;
    std::vector<std::uint32_t> stamp_;
    std::uint32_t generation_ = 0;
    std::vector<HeapItem> heap_;
    NodeId source_{};
};

/// Dijkstra over active links. Requires weights >= 0.
ShortestPathTree dijkstra(const Subgraph& sg, NodeId source, const LinkWeight& weight);

/// Dijkstra into a reusable workspace: identical results, no
/// allocations in the steady state.
void dijkstra_into(const Subgraph& sg, NodeId source, const LinkWeight& weight,
                   SsspWorkspace& ws);

/// dijkstra_into with the built-in metric inlined (no per-edge
/// std::function indirection); bit-identical to the generic form with
/// weight_by_length / weight_unit.
void dijkstra_metric_into(const Subgraph& sg, NodeId source, SsspMetric metric,
                          SsspWorkspace& ws);

/// Bellman-Ford over active links. Supports negative weights; returns
/// std::nullopt if a negative cycle is reachable from the source.
std::optional<ShortestPathTree> bellman_ford(const Subgraph& sg, NodeId source,
                                             const LinkWeight& weight);

/// A path with its total weight.
struct WeightedPath {
    std::vector<LinkId> links;
    double weight = 0.0;
};

/// Convenience: best path between two nodes, or nullopt if disconnected.
std::optional<WeightedPath> shortest_path(const Subgraph& sg, NodeId src, NodeId dst,
                                          const LinkWeight& weight);

/// shortest_path through a reusable workspace: same result, no
/// per-call tree allocation (the returned path still allocates).
std::optional<WeightedPath> shortest_path(const Subgraph& sg, NodeId src, NodeId dst,
                                          const LinkWeight& weight, SsspWorkspace& ws);

/// The node sequence visited by a path starting at `src`. Requires the
/// links to form a connected walk from src.
std::vector<NodeId> path_nodes(const Graph& g, NodeId src, const std::vector<LinkId>& links);

}  // namespace poc::net
