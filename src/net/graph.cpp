#include "net/graph.hpp"

#include <algorithm>
#include <limits>

namespace poc::net {

namespace {

/// The CSR adjacency stores one uint32 offset per node and two
/// incidence slots per link; node and link ids themselves are uint32
/// (with the top value reserved as the invalid sentinel). Cap both
/// counts so the total incidence 2·L and every id fit without
/// wrapping — at 10^5-node continental scale these are nowhere near
/// binding, but a silent uint32 wrap would corrupt adjacency, not
/// throw.
constexpr std::size_t kMaxNodes = NodeId::kInvalid;          // ids 0 .. kInvalid-1
constexpr std::size_t kMaxLinks =
    std::numeric_limits<std::uint32_t>::max() / 2;           // 2·L fits uint32

}  // namespace

void Graph::reserve(std::size_t nodes, std::size_t links) {
    POC_EXPECTS(nodes <= kMaxNodes);
    POC_EXPECTS(links <= kMaxLinks);
    node_labels_.reserve(nodes);
    links_.reserve(links);
    adj_offsets_.reserve(nodes + 1);
    adj_links_.reserve(links * 2);
    soa_a_.reserve(links);
    soa_b_.reserve(links);
    soa_capacity_.reserve(links);
    soa_length_.reserve(links);
}

NodeId Graph::add_node(std::string label) {
    POC_EXPECTS(node_labels_.size() < kMaxNodes);
    node_labels_.push_back(std::move(label));
    adjacency_dirty_ = true;
    return NodeId{node_labels_.size() - 1};
}

NodeId Graph::add_nodes(std::size_t count) {
    POC_EXPECTS(count > 0);
    POC_EXPECTS(node_labels_.size() + count <= kMaxNodes);
    const NodeId first{node_labels_.size()};
    node_labels_.resize(node_labels_.size() + count);
    adjacency_dirty_ = true;
    return first;
}

LinkId Graph::add_link(NodeId a, NodeId b, double capacity_gbps, double length_km) {
    POC_EXPECTS(a.valid() && a.index() < node_count());
    POC_EXPECTS(b.valid() && b.index() < node_count());
    POC_EXPECTS(a != b);
    POC_EXPECTS(capacity_gbps > 0.0);
    POC_EXPECTS(length_km >= 0.0);
    POC_EXPECTS(links_.size() < kMaxLinks);
    links_.push_back(Link{a, b, capacity_gbps, length_km});
    adjacency_dirty_ = true;
    return LinkId{links_.size() - 1};
}

std::span<const LinkId> Graph::incident(NodeId node) const {
    POC_EXPECTS(node.index() < node_count());
    ensure_adjacency_current();
    const auto lo = adj_offsets_[node.index()];
    const auto hi = adj_offsets_[node.index() + 1];
    return {adj_links_.data() + lo, adj_links_.data() + hi};
}

std::vector<LinkId> Graph::all_links() const {
    std::vector<LinkId> out;
    out.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i) out.emplace_back(i);
    return out;
}

void Graph::ensure_adjacency_current() const {
    if (!adjacency_dirty_) return;
    adj_offsets_.assign(node_count() + 1, 0);
    for (const Link& l : links_) {
        ++adj_offsets_[l.a.index() + 1];
        ++adj_offsets_[l.b.index() + 1];
    }
    for (std::size_t i = 1; i < adj_offsets_.size(); ++i) adj_offsets_[i] += adj_offsets_[i - 1];
    adj_links_.assign(links_.size() * 2, LinkId{});
    std::vector<std::uint32_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
    for (std::size_t i = 0; i < links_.size(); ++i) {
        const Link& l = links_[i];
        adj_links_[cursor[l.a.index()]++] = LinkId{i};
        adj_links_[cursor[l.b.index()]++] = LinkId{i};
    }
    soa_a_.resize(links_.size());
    soa_b_.resize(links_.size());
    soa_capacity_.resize(links_.size());
    soa_length_.resize(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i) {
        const Link& l = links_[i];
        soa_a_[i] = l.a.value();
        soa_b_[i] = l.b.value();
        soa_capacity_[i] = l.capacity_gbps;
        soa_length_[i] = l.length_km;
    }
    adjacency_dirty_ = false;
}

void TrafficMatrixSoA::assign(const TrafficMatrix& tm) {
    POC_EXPECTS(tm.size() <= std::numeric_limits<std::uint32_t>::max());
    const std::size_t n = tm.size();
    src_.resize(n);
    dst_.resize(n);
    gbps_.resize(n);
    order_.resize(n);
    sources_.clear();
    block_begin_.clear();
    if (n == 0) {
        block_begin_.push_back(0);
        return;
    }

    NodeId::underlying_type max_src = 0;
    for (const Demand& d : tm) {
        POC_EXPECTS(d.src.valid() && d.dst.valid());
        max_src = std::max(max_src, d.src.value());
    }

    // Counting sort on the source id: stable (AoS order within a
    // block) and allocation-free once `counts_` has grown to the id
    // range.
    counts_.assign(static_cast<std::size_t>(max_src) + 2, 0);
    for (const Demand& d : tm) ++counts_[d.src.value() + 1];
    for (std::size_t s = 1; s < counts_.size(); ++s) counts_[s] += counts_[s - 1];
    for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t k = counts_[tm[j].src.value()]++;
        src_[k] = tm[j].src.value();
        dst_[k] = tm[j].dst.value();
        gbps_[k] = tm[j].gbps;
        order_[k] = static_cast<std::uint32_t>(j);
    }

    block_begin_.push_back(0);
    for (std::uint32_t k = 0; k < n; ++k) {
        if (k == 0 || src_[k] != src_[k - 1]) {
            sources_.push_back(src_[k]);
            if (k != 0) block_begin_.push_back(k);
        }
    }
    block_begin_.push_back(static_cast<std::uint32_t>(n));
    POC_ENSURES(block_begin_.size() == sources_.size() + 1);
}

TrafficMatrix TrafficMatrixSoA::to_aos() const {
    TrafficMatrix out(size());
    for (std::size_t k = 0; k < size(); ++k) {
        out[order_[k]] = Demand{NodeId{src_[k]}, NodeId{dst_[k]}, gbps_[k]};
    }
    return out;
}

Subgraph::Subgraph(const Graph& graph)
    : graph_(&graph), mask_(graph.link_count(), 1), active_count_(graph.link_count()) {
    for (std::size_t i = 0; i < mask_.size(); ++i) fingerprint_ ^= link_fingerprint(i);
}

Subgraph::Subgraph(const Graph& graph, const std::vector<LinkId>& active)
    : graph_(&graph), mask_(graph.link_count(), 0) {
    for (const LinkId id : active) set_active(id, true);
}

std::vector<LinkId> Subgraph::active_links() const {
    std::vector<LinkId> out;
    out.reserve(active_count_);
    for (std::size_t i = 0; i < mask_.size(); ++i) {
        if (mask_[i] != 0) out.emplace_back(i);
    }
    return out;
}

double total_demand(const TrafficMatrix& tm) {
    double s = 0.0;
    for (const Demand& d : tm) s += d.gbps;
    return s;
}

}  // namespace poc::net
