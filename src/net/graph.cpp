#include "net/graph.hpp"

#include <algorithm>

namespace poc::net {

NodeId Graph::add_node(std::string label) {
    node_labels_.push_back(std::move(label));
    adjacency_dirty_ = true;
    return NodeId{node_labels_.size() - 1};
}

NodeId Graph::add_nodes(std::size_t count) {
    POC_EXPECTS(count > 0);
    const NodeId first{node_labels_.size()};
    node_labels_.resize(node_labels_.size() + count);
    adjacency_dirty_ = true;
    return first;
}

LinkId Graph::add_link(NodeId a, NodeId b, double capacity_gbps, double length_km) {
    POC_EXPECTS(a.valid() && a.index() < node_count());
    POC_EXPECTS(b.valid() && b.index() < node_count());
    POC_EXPECTS(a != b);
    POC_EXPECTS(capacity_gbps > 0.0);
    POC_EXPECTS(length_km >= 0.0);
    links_.push_back(Link{a, b, capacity_gbps, length_km});
    adjacency_dirty_ = true;
    return LinkId{links_.size() - 1};
}

std::span<const LinkId> Graph::incident(NodeId node) const {
    POC_EXPECTS(node.index() < node_count());
    ensure_adjacency_current();
    const auto lo = adj_offsets_[node.index()];
    const auto hi = adj_offsets_[node.index() + 1];
    return {adj_links_.data() + lo, adj_links_.data() + hi};
}

std::vector<LinkId> Graph::all_links() const {
    std::vector<LinkId> out;
    out.reserve(links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i) out.emplace_back(i);
    return out;
}

void Graph::ensure_adjacency_current() const {
    if (!adjacency_dirty_) return;
    adj_offsets_.assign(node_count() + 1, 0);
    for (const Link& l : links_) {
        ++adj_offsets_[l.a.index() + 1];
        ++adj_offsets_[l.b.index() + 1];
    }
    for (std::size_t i = 1; i < adj_offsets_.size(); ++i) adj_offsets_[i] += adj_offsets_[i - 1];
    adj_links_.assign(links_.size() * 2, LinkId{});
    std::vector<std::uint32_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
    for (std::size_t i = 0; i < links_.size(); ++i) {
        const Link& l = links_[i];
        adj_links_[cursor[l.a.index()]++] = LinkId{i};
        adj_links_[cursor[l.b.index()]++] = LinkId{i};
    }
    adjacency_dirty_ = false;
}

Subgraph::Subgraph(const Graph& graph)
    : graph_(&graph), mask_(graph.link_count(), 1), active_count_(graph.link_count()) {
    for (std::size_t i = 0; i < mask_.size(); ++i) fingerprint_ ^= link_fingerprint(i);
}

Subgraph::Subgraph(const Graph& graph, const std::vector<LinkId>& active)
    : graph_(&graph), mask_(graph.link_count(), 0) {
    for (const LinkId id : active) set_active(id, true);
}

std::vector<LinkId> Subgraph::active_links() const {
    std::vector<LinkId> out;
    out.reserve(active_count_);
    for (std::size_t i = 0; i < mask_.size(); ++i) {
        if (mask_[i] != 0) out.emplace_back(i);
    }
    return out;
}

double total_demand(const TrafficMatrix& tm) {
    double s = 0.0;
    for (const Demand& d : tm) s += d.gbps;
    return s;
}

}  // namespace poc::net
