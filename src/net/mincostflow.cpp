#include "net/mincostflow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "net/shortest_path.hpp"

namespace poc::net {

namespace {

constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

struct Arc {
    std::uint32_t to;
    std::uint32_t rev;
    double residual;
    double initial;  // initial residual (capacity for primary arcs, 0 otherwise)
    double cost;     // per unit (negated on reverse arcs)
    std::uint32_t link_index;
    /// True for the capacity-bearing arc created by add_pair; false for
    /// its residual twin. Flow extraction reads only primary arcs.
    bool primary;
    /// For primary arcs: true if the arc runs link.a -> link.b.
    bool along_ab;
};

}  // namespace

std::optional<MinCostFlowResult> min_cost_flow(const Subgraph& sg, NodeId src, NodeId dst,
                                               double amount, const LinkWeight& cost_per_unit) {
    POC_EXPECTS(src != dst);
    POC_EXPECTS(amount >= 0.0);
    const Graph& g = sg.graph();

    std::vector<std::vector<Arc>> arcs(g.node_count());
    auto add_pair = [&](std::uint32_t u, std::uint32_t v, double cap, double cost, LinkId lid,
                        bool along_ab) {
        const auto iu = static_cast<std::uint32_t>(arcs[u].size());
        const auto iv = static_cast<std::uint32_t>(arcs[v].size());
        arcs[u].push_back(Arc{v, iv, cap, cap, cost, lid.value(), true, along_ab});
        arcs[v].push_back(Arc{u, iu, 0.0, 0.0, -cost, lid.value(), false, !along_ab});
    };
    for (const LinkId lid : sg.active_links()) {
        const Link& l = g.link(lid);
        const double cost = cost_per_unit(lid);
        POC_EXPECTS(cost >= 0.0);
        // Undirected link: independent directed capacity each way, with a
        // shared cap would need coupling; we use the conservative model
        // of full capacity per direction (same as max_flow's arc pair).
        add_pair(l.a.value(), l.b.value(), l.capacity_gbps, cost, lid, true);
        add_pair(l.b.value(), l.a.value(), l.capacity_gbps, cost, lid, false);
    }

    const std::size_t n = g.node_count();
    std::vector<double> potential(n, 0.0);  // costs are non-negative, so 0 init works
    MinCostFlowResult result;

    double remaining = amount;
    while (remaining > kEps) {
        // Dijkstra with reduced costs.
        std::vector<double> dist(n, kInf);
        std::vector<std::pair<std::uint32_t, std::uint32_t>> parent(n, {~0u, ~0u});
        using Item = std::pair<double, std::uint32_t>;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
        dist[src.index()] = 0.0;
        heap.emplace(0.0, src.value());
        while (!heap.empty()) {
            const auto [d, u] = heap.top();
            heap.pop();
            if (d > dist[u] + kEps) continue;
            for (std::uint32_t i = 0; i < arcs[u].size(); ++i) {
                const Arc& a = arcs[u][i];
                if (a.residual <= kEps) continue;
                const double rc = a.cost + potential[u] - potential[a.to];
                const double nd = d + std::max(rc, 0.0);
                if (nd < dist[a.to] - kEps) {
                    dist[a.to] = nd;
                    parent[a.to] = {u, i};
                    heap.emplace(nd, a.to);
                }
            }
        }
        if (dist[dst.index()] == kInf) return std::nullopt;  // saturated: cannot route all

        for (std::size_t v = 0; v < n; ++v) {
            if (dist[v] < kInf) potential[v] += dist[v];
        }

        // Bottleneck along the path.
        double push = remaining;
        for (std::uint32_t v = dst.value(); v != src.value();) {
            const auto [u, i] = parent[v];
            push = std::min(push, arcs[u][i].residual);
            v = u;
        }
        POC_ASSERT(push > kEps);

        for (std::uint32_t v = dst.value(); v != src.value();) {
            const auto [u, i] = parent[v];
            Arc& a = arcs[u][i];
            a.residual -= push;
            arcs[a.to][a.rev].residual += push;
            result.cost += push * a.cost;
            v = u;
        }
        remaining -= push;
        result.routed += push;
    }

    // Extract per-link net flows from the primary arcs only.
    std::vector<double> net(g.link_count(), 0.0);
    for (const auto& node_arcs : arcs) {
        for (const Arc& a : node_arcs) {
            if (!a.primary) continue;
            const double used = a.initial - a.residual;
            net[a.link_index] += a.along_ab ? used : -used;
        }
    }
    for (const LinkId lid : sg.active_links()) {
        if (std::abs(net[lid.index()]) > kEps) {
            result.flows.push_back(LinkFlow{lid, net[lid.index()]});
        }
    }
    return result;
}

}  // namespace poc::net
