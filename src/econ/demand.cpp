#include "econ/demand.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace poc::econ {

namespace {

/// Adaptive Simpson quadrature on [a, b].
double simpson(const std::function<double(double)>& f, double a, double b, double fa, double fm,
               double fb, double whole, double tol, int depth) {
    const double m = 0.5 * (a + b);
    const double lm = 0.5 * (a + m);
    const double rm = 0.5 * (m + b);
    const double flm = f(lm);
    const double frm = f(rm);
    const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    if (depth <= 0 || std::abs(left + right - whole) < 15.0 * tol) {
        return left + right + (left + right - whole) / 15.0;
    }
    return simpson(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1) +
           simpson(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1);
}

double integrate(const std::function<double(double)>& f, double a, double b, double tol = 1e-9) {
    if (b <= a) return 0.0;
    const double fa = f(a);
    const double fb = f(b);
    const double fm = f(0.5 * (a + b));
    const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    return simpson(f, a, b, fa, fm, fb, whole, tol, 40);
}

}  // namespace

double DemandCurve::derivative(double price) const {
    const double h = std::max(1e-6, 1e-6 * std::abs(price));
    const double lo = std::max(0.0, price - h);
    return (demand(price + h) - demand(lo)) / (price + h - lo);
}

double DemandCurve::demand_integral(double price) const {
    POC_EXPECTS(price >= 0.0);
    const double hi = upper_support();
    if (price >= hi) return 0.0;
    return integrate([this](double p) { return demand(p); }, price, hi);
}

// ---------------------------------------------------------------- Linear

LinearDemand::LinearDemand(double p_max) : p_max_(p_max) { POC_EXPECTS(p_max > 0.0); }

double LinearDemand::demand(double price) const {
    POC_EXPECTS(price >= 0.0);
    return std::max(0.0, 1.0 - price / p_max_);
}

double LinearDemand::derivative(double price) const {
    return price < p_max_ ? -1.0 / p_max_ : 0.0;
}

double LinearDemand::demand_integral(double price) const {
    POC_EXPECTS(price >= 0.0);
    if (price >= p_max_) return 0.0;
    const double r = p_max_ - price;
    return 0.5 * r * r / p_max_;
}

std::string LinearDemand::name() const {
    return "linear(pmax=" + std::to_string(p_max_) + ")";
}

// ----------------------------------------------------------- Exponential

ExponentialDemand::ExponentialDemand(double theta) : theta_(theta) { POC_EXPECTS(theta > 0.0); }

double ExponentialDemand::demand(double price) const {
    POC_EXPECTS(price >= 0.0);
    return std::exp(-price / theta_);
}

double ExponentialDemand::derivative(double price) const {
    return -std::exp(-price / theta_) / theta_;
}

double ExponentialDemand::demand_integral(double price) const {
    POC_EXPECTS(price >= 0.0);
    return theta_ * std::exp(-price / theta_);
}

double ExponentialDemand::upper_support() const {
    // exp(-40) ~ 4e-18: numerically zero demand.
    return 40.0 * theta_;
}

std::string ExponentialDemand::name() const {
    return "exponential(theta=" + std::to_string(theta_) + ")";
}

// ------------------------------------------------------------ Isoelastic

IsoelasticDemand::IsoelasticDemand(double p_knee, double sigma)
    : p_knee_(p_knee), sigma_(sigma) {
    POC_EXPECTS(p_knee > 0.0);
    POC_EXPECTS(sigma > 1.0);  // sigma <= 1 has divergent surplus
}

double IsoelasticDemand::demand(double price) const {
    POC_EXPECTS(price >= 0.0);
    if (price <= p_knee_) return 1.0;
    return std::pow(price / p_knee_, -sigma_);
}

double IsoelasticDemand::derivative(double price) const {
    if (price <= p_knee_) return 0.0;
    return -sigma_ / p_knee_ * std::pow(price / p_knee_, -sigma_ - 1.0);
}

double IsoelasticDemand::demand_integral(double price) const {
    POC_EXPECTS(price >= 0.0);
    // Integral of (p/k)^-s from x to inf = k/(s-1) * (x/k)^{1-s}, x>=k.
    const double x = std::max(price, p_knee_);
    double tail = p_knee_ / (sigma_ - 1.0) * std::pow(x / p_knee_, 1.0 - sigma_);
    if (price < p_knee_) tail += p_knee_ - price;  // flat region integrates at D=1
    return tail;
}

double IsoelasticDemand::upper_support() const {
    // Demand below 1e-9: (p/k)^-s = 1e-9.
    return p_knee_ * std::pow(1e9, 1.0 / sigma_);
}

std::string IsoelasticDemand::name() const {
    return "isoelastic(knee=" + std::to_string(p_knee_) + ",sigma=" + std::to_string(sigma_) +
           ")";
}

// -------------------------------------------------------------- Logistic

LogisticDemand::LogisticDemand(double mid, double scale) : mid_(mid), scale_(scale) {
    POC_EXPECTS(mid > 0.0);
    POC_EXPECTS(scale > 0.0);
}

double LogisticDemand::demand(double price) const {
    POC_EXPECTS(price >= 0.0);
    return 1.0 / (1.0 + std::exp((price - mid_) / scale_));
}

double LogisticDemand::derivative(double price) const {
    const double d = demand(price);
    return -d * (1.0 - d) / scale_;
}

double LogisticDemand::demand_integral(double price) const {
    POC_EXPECTS(price >= 0.0);
    // Integral of logistic = scale * log(1 + exp(-(p-mid)/scale)),
    // evaluated from price to infinity.
    return scale_ * std::log1p(std::exp(-(price - mid_) / scale_));
}

double LogisticDemand::upper_support() const { return mid_ + 40.0 * scale_; }

std::string LogisticDemand::name() const {
    return "logistic(mid=" + std::to_string(mid_) + ",scale=" + std::to_string(scale_) + ")";
}

// ------------------------------------------------------------- Empirical

EmpiricalDemand::EmpiricalDemand(std::vector<double> willingness_to_pay)
    : sorted_wtp_(std::move(willingness_to_pay)) {
    POC_EXPECTS(!sorted_wtp_.empty());
    std::sort(sorted_wtp_.begin(), sorted_wtp_.end());
    POC_EXPECTS(sorted_wtp_.front() >= 0.0);
}

double EmpiricalDemand::demand(double price) const {
    POC_EXPECTS(price >= 0.0);
    const auto it = std::lower_bound(sorted_wtp_.begin(), sorted_wtp_.end(), price);
    const auto above = static_cast<double>(std::distance(it, sorted_wtp_.end()));
    return above / static_cast<double>(sorted_wtp_.size());
}

double EmpiricalDemand::demand_integral(double price) const {
    POC_EXPECTS(price >= 0.0);
    // Sum of (v - price) over sampled v >= price, normalized: the exact
    // consumer surplus of the empirical population.
    double s = 0.0;
    for (auto it = std::lower_bound(sorted_wtp_.begin(), sorted_wtp_.end(), price);
         it != sorted_wtp_.end(); ++it) {
        s += *it - price;
    }
    return s / static_cast<double>(sorted_wtp_.size());
}

double EmpiricalDemand::upper_support() const { return sorted_wtp_.back() + 1.0; }

std::string EmpiricalDemand::name() const {
    return "empirical(n=" + std::to_string(sorted_wtp_.size()) + ")";
}

}  // namespace poc::econ
