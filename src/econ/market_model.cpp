#include "econ/market_model.hpp"

#include <algorithm>

namespace poc::econ {

const char* regime_name(Regime regime) {
    switch (regime) {
        case Regime::kNetworkNeutrality:
            return "NN";
        case Regime::kUnilateralFees:
            return "UR-unilateral";
        case Regime::kBargainedFees:
            return "UR-bargaining";
    }
    return "?";
}

void validate(const Market& market) {
    POC_EXPECTS(!market.csps.empty());
    POC_EXPECTS(!market.lmps.empty());
    for (const LmpProfile& l : market.lmps) {
        POC_EXPECTS(l.customers > 0.0);
        POC_EXPECTS(l.access_charge >= 0.0);
    }
    for (const CspProfile& s : market.csps) {
        POC_EXPECTS(s.demand != nullptr);
        POC_EXPECTS(s.churn_by_lmp.size() == market.lmps.size());
        for (const double r : s.churn_by_lmp) POC_EXPECTS(r >= 0.0 && r <= 1.0);
    }
}

namespace {

/// LMP profiles specialized to one CSP's churn rates.
std::vector<LmpProfile> lmps_for_csp(const Market& market, const CspProfile& csp) {
    std::vector<LmpProfile> out = market.lmps;
    for (std::size_t l = 0; l < out.size(); ++l) out[l].churn_if_lost = csp.churn_by_lmp[l];
    return out;
}

double total_mass(const std::vector<LmpProfile>& lmps) {
    double m = 0.0;
    for (const LmpProfile& l : lmps) m += l.customers;
    return m;
}

CspOutcome evaluate_csp(const Market& market, const CspProfile& csp, Regime regime) {
    const DemandCurve& d = *csp.demand;
    CspOutcome out;
    out.name = csp.name;

    switch (regime) {
        case Regime::kNetworkNeutrality: {
            out.posted_price = monopoly_price(d).x;
            out.avg_fee = 0.0;
            out.fee_by_lmp.assign(market.lmps.size(), 0.0);
            break;
        }
        case Regime::kUnilateralFees: {
            // Every LMP solves the same maximization (the paper: "they
            // all do the same calculation"), so fees are uniform.
            const double t = lmp_optimal_fee(d).x;
            out.avg_fee = t;
            out.fee_by_lmp.assign(market.lmps.size(), t);
            out.posted_price = csp_price_given_fee(d, t).x;
            break;
        }
        case Regime::kBargainedFees: {
            const auto lmps = lmps_for_csp(market, csp);
            const BargainingEquilibrium eq = bargaining_equilibrium(d, lmps);
            out.avg_fee = eq.avg_fee;
            out.fee_by_lmp = eq.fee_by_lmp;
            out.posted_price = eq.price;
            break;
        }
    }

    out.demand_served = d.demand(out.posted_price);
    out.social_welfare = social_welfare(d, out.posted_price);
    out.consumer_welfare = consumer_welfare(d, out.posted_price);

    // Population-weighted fee actually paid (fee_by_lmp can vary).
    const double mass = total_mass(market.lmps);
    double paid = 0.0;
    for (std::size_t l = 0; l < market.lmps.size(); ++l) {
        paid += market.lmps[l].customers / mass * out.fee_by_lmp[l];
    }
    out.csp_profit = (out.posted_price - paid) * out.demand_served;
    out.lmp_fee_revenue = paid * out.demand_served;
    return out;
}

}  // namespace

RegimeReport evaluate(const Market& market, Regime regime) {
    validate(market);
    RegimeReport report;
    report.regime = regime;
    for (const CspProfile& csp : market.csps) {
        CspOutcome out = evaluate_csp(market, csp, regime);
        report.total_social_welfare += out.social_welfare;
        report.total_consumer_welfare += out.consumer_welfare;
        report.total_csp_profit += out.csp_profit;
        report.total_lmp_fee_revenue += out.lmp_fee_revenue;
        report.csp_outcomes.push_back(std::move(out));
    }
    return report;
}

std::vector<RegimeReport> evaluate_all(const Market& market) {
    return {evaluate(market, Regime::kNetworkNeutrality),
            evaluate(market, Regime::kUnilateralFees),
            evaluate(market, Regime::kBargainedFees)};
}

}  // namespace poc::econ
