// Welfare accounting (sections 4.1 and 4.3): social welfare is total
// user utility gross of payments (payments are transfers); consumer
// welfare nets payments out. Both are per-unit-consumer-mass, per CSP,
// and additive over independent CSPs.
#pragma once

#include "econ/demand.hpp"

namespace poc::econ {

/// Social welfare of one CSP at posted price p:
///   SW(p) = integral_{p}^{inf} v dF(v) = p * D(p) + integral_p^inf D.
double social_welfare(const DemandCurve& d, double price);

/// Consumer welfare (surplus): CS(p) = integral_p^inf D(v) dv.
double consumer_welfare(const DemandCurve& d, double price);

/// CSP gross revenue per unit mass at price p: p * D(p).
double csp_revenue(const DemandCurve& d, double price);

/// Deadweight loss relative to free provision:
///   DWL(p) = SW(0) - SW(p) (the value destroyed by pricing users out).
double deadweight_loss(const DemandCurve& d, double price);

}  // namespace poc::econ
