// The pricing machinery of sections 4.3 and 4.4: monopoly pricing under
// network neutrality, the double-marginalization response to a
// termination fee, and the LMP's unilaterally revenue-maximizing fee.
#pragma once

#include "econ/demand.hpp"
#include "econ/optimize.hpp"

namespace poc::econ {

/// p* = argmax p * D(p): the CSP's revenue-maximizing posted price in
/// the network-neutrality regime (section 4.3).
OptimizeResult monopoly_price(const DemandCurve& d);

/// p*(t) = argmax (p - t) * D(p): the CSP's revenue-maximizing price
/// when each subscriber costs it a termination fee t (equation (1)).
/// Requires t >= 0.
OptimizeResult csp_price_given_fee(const DemandCurve& d, double fee);

/// t* = argmax t * D(p*(t)): the LMP's unilaterally optimal termination
/// fee (section 4.4, "double marginalization").
OptimizeResult lmp_optimal_fee(const DemandCurve& d);

/// Numeric probe of Lemma 1: p*(t) sampled on a fee grid, returned as
/// (t, p*(t)) pairs; the test asserts monotone non-decreasing p.
std::vector<std::pair<double, double>> price_response_curve(const DemandCurve& d, double t_max,
                                                            std::size_t samples);

}  // namespace poc::econ
