// Demand curves for the network-neutrality analysis (paper section 4.2):
// each CSP s faces a consumer population whose willingness-to-pay has
// CDF F_s, giving demand D_s(p) = 1 - F_s(p), monotone decreasing.
// Lemma 1 additionally requires D to be smooth, strictly decreasing,
// strictly convex, and vanishing at infinity; the families here satisfy
// those conditions on their supports (documented per family).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace poc::econ {

/// Interface: demand as a fraction of the unit consumer mass.
class DemandCurve {
public:
    virtual ~DemandCurve() = default;

    /// D(p) in [0, 1] for p >= 0.
    virtual double demand(double price) const = 0;

    /// D'(p); default central difference.
    virtual double derivative(double price) const;

    /// Integral of D from `price` to infinity (== consumer surplus at
    /// posted price `price`); default adaptive Simpson against
    /// `upper_support()`.
    virtual double demand_integral(double price) const;

    /// A price beyond which demand is negligible (used by optimizers
    /// and the default integrator). Must be finite and positive.
    virtual double upper_support() const = 0;

    virtual std::string name() const = 0;
};

/// Linear demand D(p) = max(0, 1 - p / p_max). Weakly convex (affine);
/// the classic textbook case. Willingness to pay ~ Uniform[0, p_max].
class LinearDemand final : public DemandCurve {
public:
    explicit LinearDemand(double p_max);
    double demand(double price) const override;
    double derivative(double price) const override;
    double demand_integral(double price) const override;
    double upper_support() const override { return p_max_; }
    std::string name() const override;

private:
    double p_max_;
};

/// Exponential demand D(p) = exp(-p / theta): strictly decreasing,
/// strictly convex, vanishing - satisfies Lemma 1 everywhere.
class ExponentialDemand final : public DemandCurve {
public:
    explicit ExponentialDemand(double theta);
    double demand(double price) const override;
    double derivative(double price) const override;
    double demand_integral(double price) const override;
    double upper_support() const override;
    std::string name() const override;

private:
    double theta_;
};

/// Isoelastic demand D(p) = min(1, (p / p_knee)^-sigma), sigma > 1:
/// constant price elasticity above the knee (Pareto willingness to
/// pay). Strictly convex and vanishing on (p_knee, inf).
class IsoelasticDemand final : public DemandCurve {
public:
    IsoelasticDemand(double p_knee, double sigma);
    double demand(double price) const override;
    double derivative(double price) const override;
    double demand_integral(double price) const override;
    double upper_support() const override;
    std::string name() const override;

private:
    double p_knee_;
    double sigma_;
};

/// Logistic demand D(p) = 1 / (1 + exp((p - mid) / scale)): smooth
/// S-curve; convex for p > mid. Models a service with a broad mass of
/// moderate-value users.
class LogisticDemand final : public DemandCurve {
public:
    LogisticDemand(double mid, double scale);
    double demand(double price) const override;
    double derivative(double price) const override;
    double demand_integral(double price) const override;
    double upper_support() const override;
    std::string name() const override;

private:
    double mid_;
    double scale_;
};

/// Demand from an empirical willingness-to-pay sample: D(p) = fraction
/// of sampled values >= p, linearly interpolated. Lets experiments use
/// simulated consumer populations directly.
class EmpiricalDemand final : public DemandCurve {
public:
    /// Requires a non-empty sample of non-negative values.
    explicit EmpiricalDemand(std::vector<double> willingness_to_pay);
    double demand(double price) const override;
    double demand_integral(double price) const override;
    double upper_support() const override;
    std::string name() const override;

private:
    std::vector<double> sorted_wtp_;
};

}  // namespace poc::econ
