// The full section-4 market model: S independent CSPs sold to the
// customers of L regional-monopoly LMPs, evaluated under the three
// regimes the paper analyzes:
//
//   NN             - network neutrality: no termination fees (4.3).
//   UR-unilateral  - each LMP unilaterally sets the revenue-maximizing
//                    fee; double marginalization (4.4).
//   UR-bargaining  - fees negotiated via the Nash bargaining solution
//                    with renegotiation to equilibrium (4.5).
//
// The paper's qualitative claims, which the regime report quantifies:
// both UR variants lower social welfare versus NN; bargaining is less
// damaging than unilateral fee setting; and under bargaining, incumbent
// LMPs (low churn) extract higher fees while incumbent CSPs (high
// churn-if-lost) pay lower fees, the incumbent advantage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "econ/bargaining.hpp"
#include "econ/welfare.hpp"

namespace poc::econ {

/// One CSP in the market.
struct CspProfile {
    std::string name;
    std::shared_ptr<const DemandCurve> demand;
    /// Per-LMP churn rates r_l^s (size must equal the LMP count): the
    /// fraction of LMP l's s-subscribers who leave l if s is blocked.
    /// Higher for must-have incumbent services.
    std::vector<double> churn_by_lmp;
};

/// The market: CSPs x LMPs.
struct Market {
    std::vector<CspProfile> csps;
    std::vector<LmpProfile> lmps;
};

enum class Regime { kNetworkNeutrality, kUnilateralFees, kBargainedFees };

const char* regime_name(Regime regime);

/// Per-CSP outcome under one regime.
struct CspOutcome {
    std::string name;
    double posted_price = 0.0;
    /// Population-weighted average termination fee paid (0 under NN).
    double avg_fee = 0.0;
    /// Per-LMP fees (uniform under NN/unilateral).
    std::vector<double> fee_by_lmp;
    double demand_served = 0.0;     // D(p)
    double social_welfare = 0.0;    // per unit mass
    double consumer_welfare = 0.0;  // per unit mass
    double csp_profit = 0.0;        // (p - t_avg) * D(p)
    double lmp_fee_revenue = 0.0;   // t_avg * D(p), summed over masses below
};

/// Whole-market outcome under one regime.
struct RegimeReport {
    Regime regime{};
    std::vector<CspOutcome> csp_outcomes;
    double total_social_welfare = 0.0;
    double total_consumer_welfare = 0.0;
    double total_csp_profit = 0.0;
    double total_lmp_fee_revenue = 0.0;
};

/// Evaluate the market under a regime. Requires a consistent market:
/// every CSP's churn vector sized to the LMP count, non-null demands.
RegimeReport evaluate(const Market& market, Regime regime);

/// Convenience: all three regimes side by side.
std::vector<RegimeReport> evaluate_all(const Market& market);

/// Validation helper used by constructors and tests.
void validate(const Market& market);

}  // namespace poc::econ
