#include "econ/usage_pricing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace poc::econ {

UsagePopulation draw_usage_population(const UsagePopulationOptions& opt) {
    POC_EXPECTS(opt.users >= 1);
    POC_EXPECTS(opt.sigma >= 0.0);
    util::Rng rng(opt.seed);
    UsagePopulation usage(opt.users);
    for (double& u : usage) u = rng.lognormal(opt.mu, opt.sigma);
    return usage;
}

const char* scheme_name(PricingScheme scheme) {
    switch (scheme) {
        case PricingScheme::kFlat:
            return "flat";
        case PricingScheme::kUsage:
            return "usage-based";
        case PricingScheme::kTiered:
            return "tiered";
    }
    return "?";
}

PricingOutcome price_population(const UsagePopulation& usage, const LmpCostModel& cost,
                                PricingScheme scheme, const TieredParams& tiered) {
    POC_EXPECTS(!usage.empty());
    POC_EXPECTS(cost.fixed_per_user >= 0.0 && cost.per_gb >= 0.0);
    POC_EXPECTS(tiered.allowance_gb >= 0.0);
    POC_EXPECTS(tiered.overage_markup >= 1.0);
    const auto n = static_cast<double>(usage.size());

    double total_gb = 0.0;
    double total_cost = 0.0;
    for (const double gb : usage) {
        POC_EXPECTS(gb >= 0.0);
        total_gb += gb;
        total_cost += cost.cost_of(gb);
    }

    PricingOutcome out;
    out.scheme = scheme;
    out.total_cost = total_cost;

    // Bill function per scheme, parameterized to exact break-even.
    std::vector<double> bills(usage.size());
    switch (scheme) {
        case PricingScheme::kFlat: {
            out.price_parameter = total_cost / n;  // one fee recovers all
            std::fill(bills.begin(), bills.end(), out.price_parameter);
            break;
        }
        case PricingScheme::kUsage: {
            // Bill = rate * gb; include fixed costs in the rate.
            POC_EXPECTS(total_gb > 0.0);
            out.price_parameter = total_cost / total_gb;
            for (std::size_t i = 0; i < usage.size(); ++i) {
                bills[i] = out.price_parameter * usage[i];
            }
            break;
        }
        case PricingScheme::kTiered: {
            // Overage price fixed at markup * marginal cost; solve the
            // base fee so total revenue == total cost.
            const double overage_rate = tiered.overage_markup * cost.per_gb;
            double overage_revenue = 0.0;
            for (const double gb : usage) {
                overage_revenue += overage_rate * std::max(0.0, gb - tiered.allowance_gb);
            }
            out.price_parameter = (total_cost - overage_revenue) / n;
            POC_EXPECTS(out.price_parameter >= 0.0);  // allowance too low otherwise
            for (std::size_t i = 0; i < usage.size(); ++i) {
                bills[i] = out.price_parameter +
                           overage_rate * std::max(0.0, usage[i] - tiered.allowance_gb);
            }
            break;
        }
    }

    double subsidy = 0.0;
    double min_bill = std::numeric_limits<double>::infinity();
    double max_bill = 0.0;
    double sum_bill = 0.0;
    for (std::size_t i = 0; i < usage.size(); ++i) {
        const double overpay = bills[i] - cost.cost_of(usage[i]);
        if (overpay > 0.0) subsidy += overpay;
        min_bill = std::min(min_bill, bills[i]);
        max_bill = std::max(max_bill, bills[i]);
        sum_bill += bills[i];
    }
    out.total_revenue = sum_bill;
    out.cross_subsidy_index = sum_bill > 0.0 ? subsidy / sum_bill : 0.0;
    out.min_bill = min_bill;
    out.max_bill = max_bill;
    out.mean_bill = sum_bill / n;
    POC_ENSURES(std::abs(out.total_revenue - out.total_cost) < 1e-6 * std::max(1.0, total_cost));
    return out;
}

std::vector<PricingOutcome> price_population_all(const UsagePopulation& usage,
                                                 const LmpCostModel& cost,
                                                 const TieredParams& tiered) {
    return {price_population(usage, cost, PricingScheme::kFlat, tiered),
            price_population(usage, cost, PricingScheme::kUsage, tiered),
            price_population(usage, cost, PricingScheme::kTiered, tiered)};
}

}  // namespace poc::econ
