#include "econ/pricing_models.hpp"

namespace poc::econ {

OptimizeResult monopoly_price(const DemandCurve& d) { return csp_price_given_fee(d, 0.0); }

OptimizeResult csp_price_given_fee(const DemandCurve& d, double fee) {
    POC_EXPECTS(fee >= 0.0);
    const double hi = std::max(d.upper_support(), fee * 1.01 + 1e-9);
    return golden_max([&](double p) { return (p - fee) * d.demand(p); }, fee, hi);
}

OptimizeResult lmp_optimal_fee(const DemandCurve& d) {
    const double hi = d.upper_support();
    return golden_max(
        [&](double t) {
            const double p = csp_price_given_fee(d, t).x;
            return t * d.demand(p);
        },
        0.0, hi,
        // The outer objective is evaluated through an inner optimizer;
        // a looser tolerance keeps it both stable and fast.
        1e-6 * hi);
}

std::vector<std::pair<double, double>> price_response_curve(const DemandCurve& d, double t_max,
                                                            std::size_t samples) {
    POC_EXPECTS(t_max > 0.0);
    POC_EXPECTS(samples >= 2);
    std::vector<std::pair<double, double>> out;
    out.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        const double t = t_max * static_cast<double>(i) / static_cast<double>(samples - 1);
        out.emplace_back(t, csp_price_given_fee(d, t).x);
    }
    return out;
}

}  // namespace poc::econ
