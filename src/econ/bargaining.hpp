// Nash-bargaining fee negotiation (paper section 4.5). Three models of
// increasing scope, matching the paper's exposition:
//
//  1. Bilateral: one CSP s and one LMP l negotiate the termination fee
//     with the CSP's posted price fixed. The NBS maximizes
//     [D(p)(p - t)] * [D(p)(t + r*c)] giving the closed form
//     t = (p - r*c) / 2.
//  2. Many LMPs: each negotiates bilaterally; the population-weighted
//     average fee is t_avg = (p - <rc>) / 2 with
//     <rc> = sum_l n_l r_l c_l / sum_l n_l.
//  3. Renegotiation equilibrium: the CSP re-prices against the average
//     fee (equation (1)) and fees are renegotiated until the fixed
//     point t = (p*(t) - <rc>) / 2 is reached.
#pragma once

#include <vector>

#include "econ/pricing_models.hpp"

namespace poc::econ {

/// One LMP as seen by a bargaining CSP.
struct LmpProfile {
    std::string name;
    /// Customer mass n_l (any positive unit; only ratios matter).
    double customers = 1.0;
    /// Monthly access charge c_l the LMP collects per customer.
    double access_charge = 50.0;
    /// r_l^s: fraction of the LMP's customers (who subscribe to s) it
    /// loses if negotiations with CSP s break down. Small for
    /// entrenched incumbents, large for entrants (paper's key driver of
    /// incumbent advantage).
    double churn_if_lost = 0.1;
};

/// Model 1: the bilateral NBS fee t = (p - r*c)/2 for posted price p.
/// May be negative (the LMP pays the CSP) when r*c > p.
double bilateral_nbs_fee(double posted_price, const LmpProfile& lmp);

/// Model 2: the population-weighted average fee across LMPs at a fixed
/// posted price. Requires a non-empty profile list with positive masses.
double average_nbs_fee(double posted_price, const std::vector<LmpProfile>& lmps);

/// <rc>: population-weighted average of r_l * c_l.
double average_rc(const std::vector<LmpProfile>& lmps);

struct BargainingEquilibrium {
    /// Fixed-point average fee t_avg.
    double avg_fee = 0.0;
    /// The CSP's equilibrium posted price p*(t_avg).
    double price = 0.0;
    /// Per-LMP negotiated fees at the equilibrium price, in input order.
    std::vector<double> fee_by_lmp;
    std::size_t iterations = 0;
    bool converged = false;
};

/// Model 3: alternate re-pricing and renegotiation to the fixed point
/// t = (p*(t) - <rc>) / 2. Fees are floored at zero (the paper assumes
/// the positive-fee regime).
BargainingEquilibrium bargaining_equilibrium(const DemandCurve& demand,
                                             const std::vector<LmpProfile>& lmps);

}  // namespace poc::econ
