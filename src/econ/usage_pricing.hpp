// LMP retail pricing schemes (paper section 3.2/3.4): "LMPs might
// charge home users a flat price, or a strictly usage-based charge, or
// some form of tiered service", with an acknowledged tension between
// cost predictability and usage alignment - "it is better to have costs
// borne by the entities that caused those costs". This module makes the
// trade-off computable over a heterogeneous usage population:
//
//  * flat      - everyone pays the same, light users subsidize heavy;
//  * usage     - $/GB, costs borne by cause, zero cross-subsidy;
//  * tiered    - flat up to an allowance, then $/GB (the compromise).
//
// For each scheme we report revenue, cost recovery, the cross-subsidy
// index (share of revenue transferred from below-average to
// above-average users relative to cost), and each user's bill spread.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace poc::econ {

/// One subscriber's monthly usage in GB.
using UsagePopulation = std::vector<double>;

struct UsagePopulationOptions {
    std::size_t users = 10'000;
    /// Usage ~ lognormal(mu, sigma) GB/month: a long right tail, as
    /// observed on real access networks.
    double mu = 4.0;     // median ~ e^4 ~ 55 GB
    double sigma = 1.1;  // heavy tail
    std::uint64_t seed = 5;
};

UsagePopulation draw_usage_population(const UsagePopulationOptions& opt = {});

/// The LMP's cost model: fixed per-subscriber cost plus per-GB cost
/// (the POC access charge it pays upstream).
struct LmpCostModel {
    double fixed_per_user = 20.0;
    double per_gb = 0.05;

    double cost_of(double gb) const { return fixed_per_user + per_gb * gb; }
};

enum class PricingScheme { kFlat, kUsage, kTiered };

const char* scheme_name(PricingScheme scheme);

struct TieredParams {
    double allowance_gb = 200.0;
    /// Overage price as a multiple of marginal cost.
    double overage_markup = 1.5;
};

struct PricingOutcome {
    PricingScheme scheme{};
    /// The break-even price parameter: flat monthly fee (kFlat), $/GB
    /// (kUsage), or base fee under the tier (kTiered).
    double price_parameter = 0.0;
    double total_revenue = 0.0;
    double total_cost = 0.0;
    /// Fraction of total revenue paid by users whose bill exceeds their
    /// own cost, net of their cost - the cross-subsidy flowing from
    /// light to heavy users (0 for pure usage pricing).
    double cross_subsidy_index = 0.0;
    /// Bill dispersion across users.
    double min_bill = 0.0;
    double max_bill = 0.0;
    double mean_bill = 0.0;
};

/// Price the population at exact break-even under a scheme and report.
/// Tiered pricing fixes the overage price from the cost model and
/// solves the base fee for break-even.
PricingOutcome price_population(const UsagePopulation& usage, const LmpCostModel& cost,
                                PricingScheme scheme, const TieredParams& tiered = {});

/// All three schemes on the same population.
std::vector<PricingOutcome> price_population_all(const UsagePopulation& usage,
                                                 const LmpCostModel& cost,
                                                 const TieredParams& tiered = {});

}  // namespace poc::econ
