// LMP retail pricing schemes (paper section 3.2/3.4): "LMPs might
// charge home users a flat price, or a strictly usage-based charge, or
// some form of tiered service", with an acknowledged tension between
// cost predictability and usage alignment - "it is better to have costs
// borne by the entities that caused those costs". This module makes the
// trade-off computable over a heterogeneous usage population:
//
//  * flat      - everyone pays the same, light users subsidize heavy;
//  * usage     - $/GB, costs borne by cause, zero cross-subsidy;
//  * tiered    - flat up to an allowance, then $/GB (the compromise).
//
// For each scheme we report revenue, cost recovery, the cross-subsidy
// index (share of revenue transferred from below-average to
// above-average users relative to cost), and each user's bill spread.
//
// DecayAccumulator/BilledAccumulator extend the static schemes into
// *live* usage-based billing for the serve daemon (DESIGN.md §8): a
// per-account exponentially-decaying usage average (the
// subjective-billing idiom — recent queries dominate, old usage ages
// out with a configurable half-life) and a Money-checked billed total
// that refuses to wrap on overflow.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/money.hpp"
#include "util/rng.hpp"

namespace poc::econ {

/// Exponentially-decaying usage accumulator over a continuous epoch
/// axis. value_at(t) halves every `half_life` epochs of silence:
///
///   value_at(t) = value(last) * 2^(-(t - last) / half_life)
///
/// Time is monotone: observations at t < last are folded in at `last`
/// (never "un-decayed"). A zero accumulator stays *exactly* zero under
/// decay — 0 * 2^x == 0 in IEEE arithmetic, so idle accounts never
/// drift onto denormal residue.
class DecayAccumulator {
public:
    explicit DecayAccumulator(double half_life_epochs) : half_life_(half_life_epochs) {
        POC_EXPECTS(half_life_epochs > 0.0);
    }

    /// Decayed value as of `epoch` (>= last observation; earlier
    /// epochs read at the last observation point).
    double value_at(double epoch) const {
        if (value_ == 0.0) return 0.0;  // exact: no decay arithmetic on zero
        if (epoch <= last_) return value_;
        return value_ * std::exp2(-(epoch - last_) / half_life_);
    }

    /// Fold `amount` in at `epoch`: decay to `epoch`, then add.
    void add(double epoch, double amount) {
        const double at = std::max(epoch, last_);
        value_ = value_at(at) + amount;
        last_ = at;
    }

    double half_life() const noexcept { return half_life_; }
    double last_epoch() const noexcept { return last_; }

private:
    double half_life_;
    double value_ = 0.0;  // as of last_
    double last_ = 0.0;
};

/// A decaying usage meter plus an exact Money billed total: the serve
/// daemon's per-account record. Usage drives admission control (the
/// decayed average is the "recent load" an over-quota check compares
/// against); billing multiplies metered units by a unit price under
/// overflow-checked arithmetic — a charge that would wrap the int64
/// micro-dollar total is *refused*, leaving both meter and bill
/// untouched, rather than applied partially.
class BilledAccumulator {
public:
    BilledAccumulator(double half_life_epochs, util::Money price_per_unit)
        : usage_(half_life_epochs), price_(price_per_unit) {}

    /// price_per_unit * units, or nullopt when the product leaves the
    /// int64 micro-dollar range (Money::scaled would silently wrap).
    static std::optional<util::Money> checked_scale(util::Money price, double units) {
        const double micros = static_cast<double>(price.micros()) * units;
        // Strict double bound below INT64_MAX: 2^63 is not representable,
        // so compare against the largest double that still fits.
        if (!(std::fabs(micros) < 9.2e18) || std::isnan(micros)) return std::nullopt;
        return util::Money::from_micros(static_cast<std::int64_t>(std::llround(micros)));
    }

    /// Meter `units` at `epoch` and bill them. False (state unchanged)
    /// when the charge or the running total would overflow.
    bool charge(double epoch, double units) {
        const auto amount = checked_scale(price_, units);
        if (!amount) return false;
        const auto total = util::Money::checked_add(billed_, *amount);
        if (!total) return false;
        usage_.add(epoch, units);
        billed_ = *total;
        return true;
    }

    double usage_at(double epoch) const { return usage_.value_at(epoch); }
    const DecayAccumulator& usage() const noexcept { return usage_; }
    util::Money price_per_unit() const noexcept { return price_; }
    util::Money billed() const noexcept { return billed_; }

private:
    DecayAccumulator usage_;
    util::Money price_;
    util::Money billed_;
};

/// One subscriber's monthly usage in GB.
using UsagePopulation = std::vector<double>;

struct UsagePopulationOptions {
    std::size_t users = 10'000;
    /// Usage ~ lognormal(mu, sigma) GB/month: a long right tail, as
    /// observed on real access networks.
    double mu = 4.0;     // median ~ e^4 ~ 55 GB
    double sigma = 1.1;  // heavy tail
    std::uint64_t seed = 5;
};

UsagePopulation draw_usage_population(const UsagePopulationOptions& opt = {});

/// The LMP's cost model: fixed per-subscriber cost plus per-GB cost
/// (the POC access charge it pays upstream).
struct LmpCostModel {
    double fixed_per_user = 20.0;
    double per_gb = 0.05;

    double cost_of(double gb) const { return fixed_per_user + per_gb * gb; }
};

enum class PricingScheme { kFlat, kUsage, kTiered };

const char* scheme_name(PricingScheme scheme);

struct TieredParams {
    double allowance_gb = 200.0;
    /// Overage price as a multiple of marginal cost.
    double overage_markup = 1.5;
};

struct PricingOutcome {
    PricingScheme scheme{};
    /// The break-even price parameter: flat monthly fee (kFlat), $/GB
    /// (kUsage), or base fee under the tier (kTiered).
    double price_parameter = 0.0;
    double total_revenue = 0.0;
    double total_cost = 0.0;
    /// Fraction of total revenue paid by users whose bill exceeds their
    /// own cost, net of their cost - the cross-subsidy flowing from
    /// light to heavy users (0 for pure usage pricing).
    double cross_subsidy_index = 0.0;
    /// Bill dispersion across users.
    double min_bill = 0.0;
    double max_bill = 0.0;
    double mean_bill = 0.0;
};

/// Price the population at exact break-even under a scheme and report.
/// Tiered pricing fixes the overage price from the cost model and
/// solves the base fee for break-even.
PricingOutcome price_population(const UsagePopulation& usage, const LmpCostModel& cost,
                                PricingScheme scheme, const TieredParams& tiered = {});

/// All three schemes on the same population.
std::vector<PricingOutcome> price_population_all(const UsagePopulation& usage,
                                                 const LmpCostModel& cost,
                                                 const TieredParams& tiered = {});

}  // namespace poc::econ
