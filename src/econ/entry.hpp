// Market entry under the fee regimes: the paper's *dynamic* argument
// (section 4.1). Static social welfare is one goal; the second is
// "fostering competition ... which in turn (because of their innovation
// ...) can lead to increases in future social welfare". Termination
// fees depress an entrant CSP's profit (it has little bargaining power,
// section 4.5), so fewer candidate services clear their entry cost.
//
// Model: a population of candidate CSPs, each with a demand curve drawn
// from a family (heterogeneous quality theta) and a fixed entry cost F.
// A candidate enters under a regime iff its per-period profit in that
// regime covers the amortized entry cost. Entrants are *entrants*:
// their churn-if-lost is low, so under bargaining they pay high fees -
// exactly the asymmetry of section 4.5. The realized "future" welfare
// is the summed social welfare of the services that actually enter.
#pragma once

#include <memory>

#include "econ/market_model.hpp"
#include "util/rng.hpp"

namespace poc::econ {

/// One candidate service considering entry.
struct EntryCandidate {
    std::string name;
    std::shared_ptr<const DemandCurve> demand;
    /// Per-period fixed cost the service must cover to be viable
    /// (amortized development + operations).
    double entry_cost = 0.0;
    /// Churn-if-blocked at each LMP (entrants: low).
    std::vector<double> churn_by_lmp;
};

struct EntryPopulationOptions {
    std::size_t candidates = 100;
    /// Quality theta ~ lognormal(mu, sigma); demand is exponential with
    /// scale theta (smooth, satisfies Lemma 1).
    double quality_mu = 2.0;
    double quality_sigma = 0.5;
    /// Entry cost as a fraction of the candidate's NN monopoly profit,
    /// drawn uniformly from [lo, hi]. Values near 1 make entry marginal
    /// - the region where regime differences decide.
    double cost_fraction_lo = 0.3;
    double cost_fraction_hi = 1.1;
    /// Entrant churn-if-blocked per LMP (low: nobody switches ISPs over
    /// a brand-new service).
    double entrant_churn = 0.03;
    std::uint64_t seed = 17;
};

/// Draw a candidate population for the given LMP market.
std::vector<EntryCandidate> draw_entry_population(const std::vector<LmpProfile>& lmps,
                                                  const EntryPopulationOptions& opt = {});

/// Outcome of evaluating one regime over a candidate population.
struct EntryReport {
    Regime regime{};
    std::size_t entered = 0;
    std::size_t candidates = 0;
    /// Summed per-period profit of the entrants (net of fees, gross of
    /// entry cost).
    double total_entrant_profit = 0.0;
    /// The "future social welfare": summed SW of services that entered.
    double realized_social_welfare = 0.0;
    /// SW left on the table: summed SW of viable-under-NN candidates
    /// that this regime priced out.
    double foreclosed_social_welfare = 0.0;
};

/// Evaluate entry for one regime. A candidate enters iff
/// profit(regime) >= entry_cost.
EntryReport evaluate_entry(const std::vector<EntryCandidate>& candidates,
                           const std::vector<LmpProfile>& lmps, Regime regime);

/// All three regimes side by side over the same population.
std::vector<EntryReport> evaluate_entry_all(const std::vector<EntryCandidate>& candidates,
                                            const std::vector<LmpProfile>& lmps);

}  // namespace poc::econ
