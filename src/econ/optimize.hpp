// One-dimensional numeric building blocks for the economic models:
// golden-section maximization (revenue curves are unimodal for the
// demand families we use), bisection root finding, and damped
// fixed-point iteration (the renegotiation equilibrium of section 4.5).
#pragma once

#include <functional>
#include <optional>

#include "util/contracts.hpp"

namespace poc::econ {

struct OptimizeResult {
    double x = 0.0;
    double value = 0.0;
};

/// Maximize a unimodal f on [lo, hi] by golden-section search.
/// Requires lo < hi and tol > 0.
OptimizeResult golden_max(const std::function<double(double)>& f, double lo, double hi,
                          double tol = 1e-9);

/// Root of a continuous f on [lo, hi] with f(lo), f(hi) of opposite
/// sign (bisection). Returns nullopt if signs match.
std::optional<double> bisect_root(const std::function<double(double)>& f, double lo, double hi,
                                  double tol = 1e-10);

struct FixedPointResult {
    double x = 0.0;
    std::size_t iterations = 0;
    bool converged = false;
};

/// Damped fixed-point iteration x <- (1-damping)*x + damping*g(x),
/// starting at x0, stopping when |g(x) - x| < tol.
FixedPointResult fixed_point(const std::function<double(double)>& g, double x0,
                             double damping = 0.5, double tol = 1e-9,
                             std::size_t max_iter = 10'000);

}  // namespace poc::econ
