#include "econ/bargaining.hpp"

#include <algorithm>

namespace poc::econ {

double bilateral_nbs_fee(double posted_price, const LmpProfile& lmp) {
    POC_EXPECTS(posted_price >= 0.0);
    POC_EXPECTS(lmp.churn_if_lost >= 0.0 && lmp.churn_if_lost <= 1.0);
    POC_EXPECTS(lmp.access_charge >= 0.0);
    return 0.5 * (posted_price - lmp.churn_if_lost * lmp.access_charge);
}

double average_rc(const std::vector<LmpProfile>& lmps) {
    POC_EXPECTS(!lmps.empty());
    double mass = 0.0;
    double rc = 0.0;
    for (const LmpProfile& l : lmps) {
        POC_EXPECTS(l.customers > 0.0);
        mass += l.customers;
        rc += l.customers * l.churn_if_lost * l.access_charge;
    }
    return rc / mass;
}

double average_nbs_fee(double posted_price, const std::vector<LmpProfile>& lmps) {
    POC_EXPECTS(posted_price >= 0.0);
    return 0.5 * (posted_price - average_rc(lmps));
}

BargainingEquilibrium bargaining_equilibrium(const DemandCurve& demand,
                                             const std::vector<LmpProfile>& lmps) {
    const double rc = average_rc(lmps);

    // Fixed point of t -> max(0, (p*(t) - <rc>) / 2).
    const auto g = [&](double t) {
        const double p = csp_price_given_fee(demand, std::max(0.0, t)).x;
        return std::max(0.0, 0.5 * (p - rc));
    };
    const FixedPointResult fp = fixed_point(g, /*x0=*/0.0, /*damping=*/0.5, /*tol=*/1e-7);

    BargainingEquilibrium eq;
    eq.avg_fee = fp.x;
    eq.iterations = fp.iterations;
    eq.converged = fp.converged;
    eq.price = csp_price_given_fee(demand, eq.avg_fee).x;
    eq.fee_by_lmp.reserve(lmps.size());
    for (const LmpProfile& l : lmps) {
        eq.fee_by_lmp.push_back(std::max(0.0, bilateral_nbs_fee(eq.price, l)));
    }
    return eq;
}

}  // namespace poc::econ
