#include "econ/welfare.hpp"

namespace poc::econ {

double social_welfare(const DemandCurve& d, double price) {
    POC_EXPECTS(price >= 0.0);
    return price * d.demand(price) + d.demand_integral(price);
}

double consumer_welfare(const DemandCurve& d, double price) {
    POC_EXPECTS(price >= 0.0);
    return d.demand_integral(price);
}

double csp_revenue(const DemandCurve& d, double price) {
    POC_EXPECTS(price >= 0.0);
    return price * d.demand(price);
}

double deadweight_loss(const DemandCurve& d, double price) {
    return social_welfare(d, 0.0) - social_welfare(d, price);
}

}  // namespace poc::econ
