#include "econ/entry.hpp"

#include <algorithm>

namespace poc::econ {

std::vector<EntryCandidate> draw_entry_population(const std::vector<LmpProfile>& lmps,
                                                  const EntryPopulationOptions& opt) {
    POC_EXPECTS(!lmps.empty());
    POC_EXPECTS(opt.candidates >= 1);
    POC_EXPECTS(opt.quality_sigma >= 0.0);
    POC_EXPECTS(opt.cost_fraction_lo >= 0.0);
    POC_EXPECTS(opt.cost_fraction_lo <= opt.cost_fraction_hi);
    POC_EXPECTS(opt.entrant_churn >= 0.0 && opt.entrant_churn <= 1.0);

    util::Rng rng(opt.seed);
    std::vector<EntryCandidate> candidates;
    candidates.reserve(opt.candidates);
    for (std::size_t i = 0; i < opt.candidates; ++i) {
        EntryCandidate c;
        c.name = "cand" + std::to_string(i);
        const double theta = rng.lognormal(opt.quality_mu, opt.quality_sigma);
        c.demand = std::make_shared<ExponentialDemand>(theta);
        // NN monopoly profit of exponential demand: p* = theta,
        // profit = theta * e^-1.
        const double nn_profit = monopoly_price(*c.demand).value;
        c.entry_cost = nn_profit * rng.uniform(opt.cost_fraction_lo, opt.cost_fraction_hi);
        c.churn_by_lmp.assign(lmps.size(), opt.entrant_churn);
        candidates.push_back(std::move(c));
    }
    return candidates;
}

EntryReport evaluate_entry(const std::vector<EntryCandidate>& candidates,
                           const std::vector<LmpProfile>& lmps, Regime regime) {
    POC_EXPECTS(!lmps.empty());
    EntryReport report;
    report.regime = regime;
    report.candidates = candidates.size();

    Market market;
    market.lmps = lmps;

    for (const EntryCandidate& c : candidates) {
        POC_EXPECTS(c.demand != nullptr);
        POC_EXPECTS(c.churn_by_lmp.size() == lmps.size());

        CspProfile profile;
        profile.name = c.name;
        profile.demand = c.demand;
        profile.churn_by_lmp = c.churn_by_lmp;
        market.csps = {profile};

        const RegimeReport outcome = evaluate(market, regime);
        const CspOutcome& o = outcome.csp_outcomes[0];
        const bool enters = o.csp_profit >= c.entry_cost;

        if (enters) {
            ++report.entered;
            report.total_entrant_profit += o.csp_profit;
            report.realized_social_welfare += o.social_welfare;
        } else {
            // Would this candidate have been viable under NN? If so the
            // regime forecloses its welfare contribution.
            const RegimeReport nn = evaluate(market, Regime::kNetworkNeutrality);
            if (nn.csp_outcomes[0].csp_profit >= c.entry_cost) {
                report.foreclosed_social_welfare += nn.csp_outcomes[0].social_welfare;
            }
        }
    }
    return report;
}

std::vector<EntryReport> evaluate_entry_all(const std::vector<EntryCandidate>& candidates,
                                            const std::vector<LmpProfile>& lmps) {
    return {evaluate_entry(candidates, lmps, Regime::kNetworkNeutrality),
            evaluate_entry(candidates, lmps, Regime::kUnilateralFees),
            evaluate_entry(candidates, lmps, Regime::kBargainedFees)};
}

}  // namespace poc::econ
