#include "econ/optimize.hpp"

#include <cmath>

namespace poc::econ {

OptimizeResult golden_max(const std::function<double(double)>& f, double lo, double hi,
                          double tol) {
    POC_EXPECTS(lo < hi);
    POC_EXPECTS(tol > 0.0);
    const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;

    double a = lo;
    double b = hi;
    double c = b - inv_phi * (b - a);
    double d = a + inv_phi * (b - a);
    double fc = f(c);
    double fd = f(d);
    while (b - a > tol) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    const double x = 0.5 * (a + b);
    return OptimizeResult{x, f(x)};
}

std::optional<double> bisect_root(const std::function<double(double)>& f, double lo, double hi,
                                  double tol) {
    POC_EXPECTS(lo < hi);
    POC_EXPECTS(tol > 0.0);
    double fl = f(lo);
    double fh = f(hi);
    if (fl == 0.0) return lo;
    if (fh == 0.0) return hi;
    if ((fl > 0.0) == (fh > 0.0)) return std::nullopt;
    while (hi - lo > tol) {
        const double mid = 0.5 * (lo + hi);
        const double fm = f(mid);
        if (fm == 0.0) return mid;
        if ((fm > 0.0) == (fl > 0.0)) {
            lo = mid;
            fl = fm;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

FixedPointResult fixed_point(const std::function<double(double)>& g, double x0, double damping,
                             double tol, std::size_t max_iter) {
    POC_EXPECTS(damping > 0.0 && damping <= 1.0);
    POC_EXPECTS(tol > 0.0);
    FixedPointResult r;
    r.x = x0;
    for (r.iterations = 0; r.iterations < max_iter; ++r.iterations) {
        const double gx = g(r.x);
        if (std::abs(gx - r.x) < tol) {
            r.x = gx;
            r.converged = true;
            return r;
        }
        r.x = (1.0 - damping) * r.x + damping * gx;
    }
    return r;
}

}  // namespace poc::econ
