// Chaos engine for the POC backbone: correlated fault injection,
// degraded operation, and auction-backed recovery.
//
// The paper's operational claim (sections 3.2-3.3) is that the POC
// stays viable under failure: the resilience-constrained auction
// pre-provisions backup capacity, and the external-ISP virtual links
// are the fallback of last resort. This module exercises that claim
// dynamically:
//
//  * shared_risk_groups  - shared-risk link groups (SRLGs) derived from
//    the topology's geometry: logical links between the same city pair
//    ride the same fibre conduit regardless of owning BP, and links
//    incident to the same router share its site. Correlated faults cut
//    whole groups at once.
//  * draw_fault_trace    - a deterministic, seeded fault schedule:
//    single link cuts, conduit cuts (SRLG-wide), router-site outages,
//    BP-wide withdrawals (a BP pulls its entire offer mid-epoch), and
//    partial capacity brownouts, each with a repair time in epochs.
//    External-ISP virtual links are never targeted: their contracts
//    (section 3.3) make them the reliability anchor of the design.
//  * run_chaos           - the degradation engine. Each epoch it applies
//    the active faults to the provisioned backbone, re-routes the
//    surviving demand over remaining plus virtual capacity (procuring
//    emergency virtual capacity at contract prices when the selected
//    set alone cannot carry the matrix), and emits an SLA record. When
//    delivery drops below a threshold it fires an *off-cycle*
//    re-auction restricted to the surviving offers through the
//    discrete-event queue, so scenarios expose time-to-restore in
//    epochs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/flow_sim.hpp"
#include "core/provisioning.hpp"
#include "market/bid.hpp"
#include "topo/poc_topology.hpp"

namespace poc::sim {

/// A set of links that plausibly fail together.
struct SharedRiskGroup {
    std::string name;
    std::vector<net::LinkId> links;
};

/// SRLGs from a bare graph: one "conduit" group per unordered node pair
/// with at least two parallel links, and one "site" group per node with
/// at least two incident links. Deterministic (groups in id order).
std::vector<SharedRiskGroup> shared_risk_groups(const net::Graph& graph);

/// SRLGs from the POC topology's geometry: conduit groups keyed by the
/// *city* pair (parallel circuits of different BPs between the same two
/// metros share the physical right-of-way) and site groups keyed by the
/// city hosting the router.
std::vector<SharedRiskGroup> shared_risk_groups(const topo::PocTopology& topo);

enum class FaultKind {
    /// One link cut (fibre break on a single circuit).
    kLinkCut,
    /// A whole shared-risk group cut (backhoe through the conduit).
    kConduitCut,
    /// Every link incident to one router fails (site power/cooling).
    kRouterOutage,
    /// A BP withdraws its entire offer mid-epoch (commercial or
    /// network-wide operational failure).
    kBpOutage,
    /// Partial capacity degradation on a link or group (brownout).
    kBrownout,
    /// The POC control-plane process is killed mid-epoch (at the
    /// pipeline stage in Fault::crash_stage). Consumed by the durable
    /// epoch runtime (sim/runtime.hpp); run_chaos ignores it.
    kCrash,
    /// The acceptability oracle is slow or failing while the fault is
    /// active: every oracle query raises util::TransientError, so the
    /// runtime's retry/breaker layer absorbs it. run_chaos ignores it.
    kOracleDegraded,
    /// The process is killed mid-epoch AND, before the restart, a bit
    /// flips in the newest state snapshot file (media corruption
    /// surfacing during recovery). Consumed by run_with_recovery;
    /// run_chaos ignores it.
    kSnapshotCorrupt,
    /// The process is killed mid-epoch AND the journal's tail is torn
    /// (the device persisted only part of the last write). Consumed by
    /// run_with_recovery; run_chaos ignores it.
    kTornWrite,
    /// A journal-tailing read replica dies mid-apply (while applying a
    /// record of epoch `start_epoch`). Consumed by
    /// serve::run_follower_with_recovery; run_chaos and the leader-side
    /// supervisors ignore it.
    kFollowerCrash,
    /// A bit flips in the journal suffix a follower has yet to consume
    /// (replica-side media corruption: the leader's copy is fine).
    /// Consumed by serve::run_follower_with_recovery; run_chaos and
    /// the leader-side supervisors ignore it.
    kFollowerTailCorrupt,
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. Affected links are resolved to concrete ids at
/// injection time; `capacity_factor == 0` means hard-down, a value in
/// (0, 1) leaves that fraction of capacity in service (brownout).
struct Fault {
    FaultKind kind{};
    /// First epoch the fault is in effect.
    std::size_t start_epoch = 0;
    /// Epochs until repair; the fault is active on epochs
    /// [start_epoch, start_epoch + repair_epochs).
    std::size_t repair_epochs = 1;
    std::vector<net::LinkId> links;
    double capacity_factor = 0.0;
    std::string description;
    /// For kCrash only: the pipeline stage index (sim::Stage) the
    /// process dies in; ignored by every other kind.
    std::uint32_t crash_stage = 0;

    bool active_at(std::size_t epoch) const {
        return epoch >= start_epoch && epoch < start_epoch + repair_epochs;
    }

    friend bool operator==(const Fault&, const Fault&) = default;
};

struct FaultInjectorOptions {
    /// Scenario horizon; faults start on epochs [1, epochs) so epoch 0
    /// always establishes the healthy baseline.
    std::size_t epochs = 8;
    /// Global multiplier on every per-kind rate (the sweep knob).
    double intensity = 1.0;
    /// Expected events per epoch at intensity 1.
    double link_cut_rate = 0.6;
    double conduit_cut_rate = 0.2;
    double router_outage_rate = 0.1;
    double bp_outage_rate = 0.05;
    double brownout_rate = 0.4;
    /// Control-plane fault rates (kCrash / kOracleDegraded /
    /// kSnapshotCorrupt / kTornWrite), consumed by the durable epoch
    /// runtime. Default 0 so existing data-plane traces — and their
    /// RNG streams — are unchanged.
    double crash_rate = 0.0;
    double oracle_degraded_rate = 0.0;
    double snapshot_corrupt_rate = 0.0;
    double torn_write_rate = 0.0;
    /// Brownout surviving-capacity factor is drawn uniformly from
    /// [brownout_floor, brownout_ceil].
    double brownout_floor = 0.2;
    double brownout_ceil = 0.7;
    /// Mean repair time (epochs); each fault draws its own, >= 1.
    double mean_repair_epochs = 2.0;
    std::uint64_t seed = 2020;
};

/// Draw a deterministic correlated fault trace against the pool's
/// offered links. Virtual links are never targeted; faults whose
/// resolved link set is empty are dropped. The same trace can be
/// replayed against backbones provisioned under different constraints
/// (that is the ablation the paper's section 3.3 implies).
std::vector<Fault> draw_fault_trace(const market::OfferPool& pool,
                                    const std::vector<SharedRiskGroup>& srlgs,
                                    const FaultInjectorOptions& opt);

/// Per-epoch service-level record.
struct SlaRecord {
    std::size_t epoch = 0;
    double offered_gbps = 0.0;
    double delivered_gbps = 0.0;
    /// delivered / offered (1.0 when nothing is offered).
    double delivered_fraction = 1.0;
    /// Demand-weighted downtime: offered - delivered (gbps).
    double undelivered_gbps = 0.0;
    /// Path-stretch inflation of the degraded routing.
    double stretch = 1.0;
    /// Share of delivered gbps-km riding external-ISP virtual links
    /// (spikes while the POC is in fallback mode).
    double virtual_share = 0.0;
    std::size_t faults_active = 0;
    /// Selected (in-service) links hard-down / degraded this epoch.
    std::size_t links_down = 0;
    std::size_t links_degraded = 0;
    /// Contract cost of virtual links carrying traffic this epoch that
    /// the auction had *not* selected: capacity procured on demand at
    /// contract prices (section 3.3's fallback of last resort).
    util::Money emergency_virtual_cost;
    /// This epoch's monthly outlay: current backbone payments plus the
    /// emergency virtual procurement.
    util::Money outlay;
    /// An off-cycle re-auction was fired after this epoch's measurement.
    bool reauction_triggered = false;
    /// This epoch's backbone came from an off-cycle re-auction that had
    /// to relax the resilience constraint to plain load feasibility.
    bool degraded_mode = false;
};

struct ChaosOptions {
    std::size_t epochs = 8;
    /// Initial provisioning request. Off-cycle re-auctions reuse it
    /// verbatim (minus withdrawn offers), so the auction engine knobs in
    /// `request.auction` — `exact`, `threads`, `cache` — apply to every
    /// recovery auction too. Parallel/cached re-auctions are bit-identical
    /// to serial ones (DESIGN.md §5), so chaos outcomes are unaffected.
    core::ProvisioningRequest request;
    /// Fire an off-cycle re-auction when delivered_fraction drops below
    /// this threshold (default: any loss of delivery triggers one).
    double reauction_threshold = 0.999;
    /// Shift overflow demand onto contracted-but-unselected virtual
    /// links, paying their contract price for the epoch.
    bool allow_emergency_virtual = true;
    /// When a re-auction is infeasible under the configured resilience
    /// constraint, retry with plain load feasibility (constraint #1)
    /// rather than staying dark: graceful degradation over purity.
    bool allow_constraint_relaxation = true;
    /// Called right after each epoch's SLA record is measured (before
    /// any off-cycle re-auction scheduled by that epoch runs). Benches
    /// use it to capture per-epoch obs snapshots; a recovery re-auction
    /// triggered by epoch e therefore lands in epoch e+1's snapshot
    /// delta. Must not mutate chaos state.
    std::function<void(const SlaRecord&)> on_epoch;
    /// Share one net::PathCache across the run: oracle primary-path
    /// SSSPs (initial auction, pivots, re-auctions) and the flow
    /// simulator's stretch pass reuse trees across the near-identical
    /// masks they evaluate, with epoch-based invalidation. Safe across
    /// the engine's brownout graph copies (capacity scaling preserves
    /// lengths and link ids — the cache-key contract). Off = recompute
    /// everything; outcomes are bit-identical either way.
    bool use_path_cache = true;
    /// Dynamic-repair budget for that shared cache (net/sssp_repair.hpp):
    /// a near-miss mask within this many link flips of a cached tree is
    /// served by patching the tree instead of a fresh Dijkstra. 0 = off.
    /// Repaired trees are bit-identical to cold ones (DESIGN.md §7), so
    /// this is purely an engine knob.
    std::size_t path_cache_repair_budget = 8;
    /// Carry one market::DeltaReclearState across the run's auctions
    /// (initial provisioning and every off-cycle re-auction): re-clears
    /// whose offered pool shrank or grew by at most
    /// `request.auction.delta_max_links` links under an unchanged
    /// context reuse the previous clearing's verdict/solve memo.
    /// Bit-identical to cold re-clears either way (DESIGN.md §7).
    bool use_delta_reclear = true;
    /// Data plane for the per-epoch flow measurement (DESIGN.md §9).
    /// kGreedy is the seed behavior; kPrimary routes every demand on
    /// its shortest path via the sharded engine. A *semantic* knob:
    /// SLA records differ between modes (it is part of the journal
    /// fingerprint, unlike the two engine knobs below).
    core::FlowRouting flow_routing = core::FlowRouting::kGreedy;
    /// Shard tasks / threads for the kPrimary data plane (net/shard.hpp).
    /// Engine knobs: outcomes are bit-identical for every value.
    std::size_t flow_shards = 1;
    std::size_t flow_threads = 1;
};

/// Full-run outcome: the SLA time series plus aggregates.
struct ChaosOutcome {
    /// False when even the initial (pristine) auction was infeasible;
    /// `sla` is empty in that case.
    bool provisioned = false;
    std::vector<SlaRecord> sla;
    std::size_t reauction_count = 0;
    /// Off-cycle re-auctions that found no feasible backbone (service
    /// stays degraded; retried after the next degraded epoch).
    std::size_t failed_reauctions = 0;
    double min_delivered_fraction = 1.0;
    double mean_delivered_fraction = 1.0;
    /// Sum over epochs of undelivered gbps (gbps-epochs of downtime).
    double total_undelivered_gbps = 0.0;
    /// Epochs from the first degraded epoch until delivery is fully
    /// restored; 0 when never degraded, `epochs` when not restored
    /// within the horizon.
    std::size_t epochs_to_restore = 0;
    /// Extra spend versus the pristine epoch-0 backbone: emergency
    /// virtual contracts plus outlay increases from re-auctions.
    util::Money total_recovery_cost;
    /// The epoch-0 (pristine) monthly outlay, for reference.
    util::Money baseline_outlay;
};

/// Run a fault trace against a backbone provisioned from `pool` under
/// `opt.request`. Deterministic. The pool's graph must outlive the
/// call. Faults listed against virtual links are ignored (contracted
/// fallback capacity is modeled as reliable); every fault must have
/// `repair_epochs >= 1` and `capacity_factor` in [0, 1).
ChaosOutcome run_chaos(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                       const std::vector<Fault>& trace, const ChaosOptions& opt);

}  // namespace poc::sim
