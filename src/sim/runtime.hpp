// Durable epoch runtime: the POC's per-epoch operational pipeline
// (auction -> provisioning -> flow sim -> settlement) made crash-safe
// and deadline-budgeted.
//
// Durability model (DESIGN.md §4b). Each epoch runs as four explicit,
// restartable stages. As each stage completes, a typed record with its
// full result is appended to a checksummed write-ahead journal
// (util/journal.hpp). A process killed at any stage boundary — or
// mid-stage, after computing a result but before journaling it — is
// restarted by re-running EpochRuntime::run() against the same journal
// path: replay reconstructs the ledger, every auction outcome, and the
// RNG stream position from the journal's valid prefix, truncates any
// torn tail, and resumes from the first stage whose record is missing.
// The recovered run is *bit-identical* to an uninterrupted one: same
// ledger balances, same AuctionResult bytes, same RNG state.
//
// Deadline/retry model. The winner-determination oracle is wrapped in
// market::FallibleOracle and every clearing attempt runs under
// util::Retrier: a per-call deadline budget, jittered exponential
// backoff between attempts, and a circuit breaker across epochs. When
// retries are exhausted (or the breaker fast-fails the epoch), the
// runtime degrades gracefully: it re-clears under the relaxed plain
// load-feasibility constraint with a fresh healthy oracle, flags the
// epoch `degraded_mode`, and keeps serving rather than staying dark —
// the same degradation contract as the chaos engine (sim/chaos.hpp).
//
// State-history model (DESIGN.md §4c). With `snapshot_interval` set,
// every K completed epochs the runtime serializes its *complete* state
// (epoch records, auction outcomes, ledger, RNG position) into a
// versioned, CRC-framed snapshot file installed atomically next to the
// journal, then compacts the journal down to the records the snapshot
// does not cover (none, at a snapshot boundary). Recovery grounds on
// the newest snapshot that validates end to end and replays only the
// journal suffix past it, so restart cost is O(snapshot interval)
// instead of O(history). Journal records are delta-encoded against the
// prior record of the same type (varint + XOR runs), shrinking
// steady-state log growth. Recovery is defensive: CRC-valid but
// semantically impossible records (duplicated frames, suffixes the
// surviving snapshot cannot ground) stop replay at the last good
// prefix, the journal is rewritten to that prefix, and the remainder
// is recomputed deterministically — recovery never crashes and never
// installs corrupt state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ledger.hpp"
#include "core/provisioning.hpp"
#include "sim/chaos.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/state_history.hpp"

namespace poc::sim {

/// The four restartable stages of one epoch, in pipeline order, plus
/// the two state-history operations that run between epochs. Hooks and
/// crash injection address all six; kStageCount counts only the
/// pipeline.
enum class Stage : std::uint8_t {
    kAuction = 0,
    kProvisioning = 1,
    kFlowSim = 2,
    kSettlement = 3,
    /// Snapshot emission (between epochs; hooked with the completed-
    /// epoch count in the epoch slot).
    kSnapshotWrite = 4,
    /// Journal compaction right after a snapshot.
    kCompaction = 5,
};

/// Pipeline stages only (kSnapshotWrite/kCompaction excluded — chaos
/// fault draws and the per-epoch crash matrices iterate this).
inline constexpr std::size_t kStageCount = 4;

/// Fault::crash_stage values addressing the state-history operations
/// (a crash while writing the snapshot / compacting the journal). The
/// fault's start_epoch is matched against the completed-epoch count at
/// which the operation fires.
inline constexpr std::uint32_t kCrashStageSnapshot = 4;
inline constexpr std::uint32_t kCrashStageCompaction = 5;

const char* stage_name(Stage stage);

/// Where within a stage a hook fires. kMid fires after the stage's
/// result is computed but *before* its journal record is appended —
/// a crash there models the worst case: work done, nothing durable.
enum class HookPoint : std::uint8_t { kBefore, kMid, kAfter };

/// Thrown by crash-injection hooks to model the process dying. The
/// runtime never catches it; a supervisor (run_with_recovery, or a
/// test harness) does, then constructs a fresh EpochRuntime against
/// the same journal to model the restart.
class CrashInjected final : public std::runtime_error {
public:
    CrashInjected(std::size_t epoch, Stage stage, HookPoint point);

    std::size_t epoch() const noexcept { return epoch_; }
    Stage stage() const noexcept { return stage_; }
    HookPoint point() const noexcept { return point_; }

private:
    std::size_t epoch_;
    Stage stage_;
    HookPoint point_;
};

/// run_with_recovery gave up: the restart budget burned down with no
/// forward progress (journal growth) between consecutive crashes. The
/// run is permanently stuck — a deterministic crash point, or storage
/// that corrupts faster than recovery repairs it.
class RecoveryExhausted final : public std::runtime_error {
public:
    RecoveryExhausted(std::size_t restarts, const std::string& last_error)
        : std::runtime_error("recovery exhausted after " + std::to_string(restarts) +
                             " restart(s); " + last_error),
          restarts_(restarts) {}

    /// Total process restarts before giving up (across all progress
    /// windows, not just the stuck one).
    std::size_t restarts() const noexcept { return restarts_; }

private:
    std::size_t restarts_;
};

/// One epoch's summary row (the runtime's SLA record).
struct EpochRecord {
    std::size_t epoch = 0;
    /// A backbone was provisioned this epoch (auction feasible, on
    /// either the primary or the degraded path).
    bool provisioned = false;
    /// The primary clearing path failed (retries exhausted or breaker
    /// open) and this epoch's backbone came from the relaxed
    /// load-feasibility re-clear.
    bool degraded_mode = false;
    /// The breaker was open when this epoch tried to clear.
    bool breaker_open = false;
    /// This epoch's demand multiplier (drawn from the runtime RNG).
    double demand_factor = 1.0;
    double demand_gbps = 0.0;
    /// routed / offered demand; 0 when unprovisioned.
    double delivered_fraction = 0.0;
    double max_utilization = 0.0;
    double stretch = 1.0;
    /// This epoch's monthly outlay (zero when unprovisioned).
    util::Money outlay;
    /// Oracle-clearing attempts this epoch (1 = first try succeeded).
    std::uint64_t retry_attempts = 0;

    friend bool operator==(const EpochRecord&, const EpochRecord&) = default;
};

/// What RuntimeOptions::on_epoch_commit observes: one epoch's results
/// the instant its epoch-end record is durable. Every reference points
/// into the runtime's own state and is valid only for the duration of
/// the callback — a serving layer must copy what it publishes (the
/// serve daemon builds an immutable EpochView from this).
struct EpochCommit {
    /// The epoch that just committed.
    std::size_t epoch = 0;
    /// Completed epochs so far (== epoch + 1).
    std::size_t completed_epochs = 0;
    /// True when this commit was reconstructed from the journal during
    /// recovery rather than computed fresh (fired once per resume, for
    /// the newest recovered epoch, so a restarted daemon republishes).
    bool replayed = false;
    const EpochRecord& record;
    /// nullopt = unprovisioned epoch.
    const std::optional<market::AuctionResult>& auction;
    /// Cumulative ledger through this epoch.
    const core::Ledger& ledger;
};

struct RuntimeOptions {
    std::size_t epochs = 4;
    /// Constraint, oracle fidelity, and auction engine knobs; reused
    /// verbatim every epoch.
    core::ProvisioningRequest request;
    /// Each epoch scales the traffic matrix by a factor drawn uniformly
    /// from [1 - jitter, 1 + jitter]. The draw happens even at 0 so the
    /// RNG stream position is exercised (and journaled) every epoch.
    double demand_jitter = 0.05;
    std::uint64_t seed = 2020;
    /// Write-ahead journal path. Empty = durability off (no journal
    /// I/O; the run is still deterministic).
    std::string journal_path;
    /// Retry/backoff budget for each epoch's clearing call and the
    /// breaker that persists across epochs within one process.
    util::RetryPolicy retry;
    util::BreakerPolicy breaker;
    /// Degrade to the relaxed load-feasibility re-clear when the
    /// primary path is exhausted; false = the epoch goes unprovisioned.
    bool allow_constraint_relaxation = true;
    /// Test/chaos hook fired at every stage boundary (kBefore/kAfter)
    /// and mid-stage (kMid). May throw CrashInjected.
    std::function<void(std::size_t, Stage, HookPoint)> stage_hook;
    /// Per-epoch oracle fault hook, invoked on every oracle query of
    /// that epoch's primary clearing path. May throw
    /// util::TransientError (degraded oracle) or sleep (slow oracle).
    /// Must be thread-safe when request.auction.threads > 1.
    std::function<void(std::size_t)> oracle_fault;
    /// Share one epoch-invalidated net::PathCache across the run's
    /// clearing oracles and flow simulations. An engine knob like
    /// `threads`/`cache`: excluded from the journal's configuration
    /// fingerprint because results are bit-identical either way, so a
    /// journaled run may resume with it flipped.
    bool use_path_cache = true;
    /// Dynamic-repair budget for that cache (net/sssp_repair.hpp): a
    /// mask within this many link flips of a cached tree is served by
    /// patching the tree instead of recomputing it. 0 = off. An engine
    /// knob (bit-identical either way, excluded from the meta
    /// fingerprint) — journaled runs may resume with it changed.
    std::size_t path_cache_repair_budget = 8;
    /// Carry one market::DeltaReclearState across the run's clearing
    /// calls (market/delta_reclear.hpp): epochs whose offered pool and
    /// oracle fingerprint match the previous clearing (e.g. jitter 0,
    /// no faults) reuse its verdict/solve memo. Engine knob; excluded
    /// from the meta fingerprint; bit-identical either way. With a
    /// per-epoch oracle fault hook installed the oracle opts out of
    /// purity certification and every epoch clears cold regardless.
    bool use_delta_reclear = true;
    /// Data plane for the per-epoch flow measurement (DESIGN.md §9):
    /// kGreedy = seed water-filling, kPrimary = sharded shortest-path
    /// routing. A *semantic* knob — epoch records differ between the
    /// modes — so unlike every engine knob here it IS part of the
    /// journal meta fingerprint: a journaled run cannot resume with it
    /// flipped.
    core::FlowRouting flow_routing = core::FlowRouting::kGreedy;
    /// Shard task / thread counts for the kPrimary data plane
    /// (net/shard.hpp). Engine knobs: results are bit-identical for
    /// every value, so both are excluded from the meta fingerprint and
    /// a journaled run may resume with them changed.
    std::size_t flow_shards = 1;
    std::size_t flow_threads = 1;

    // --- State-history knobs (DESIGN.md §4c). All of these are engine
    // knobs: results are bit-identical whatever their values, so they
    // are excluded from the meta fingerprint and a journaled run may
    // resume with any of them flipped. ---

    /// Emit a full state snapshot every K completed epochs (0 = off).
    std::size_t snapshot_interval = 0;
    /// Newest snapshot generations the default sink keeps on disk
    /// (older ones are the fallback when the newest is corrupt).
    std::size_t snapshot_keep = 2;
    /// After each snapshot, atomically rewrite the journal down to the
    /// records the snapshot does not cover (none, at a snapshot
    /// boundary) so the log stays O(snapshot interval).
    bool compact_after_snapshot = true;
    /// Delta-encode journal records against the prior record of the
    /// same type (varint + XOR runs) when that is smaller.
    bool delta_encoding = true;
    /// Snapshot destination override (tests capture payloads). Null =
    /// a util::FileSnapshotSink over SnapshotStore(journal_path,
    /// snapshot_keep). A custom sink that does not durably store
    /// snapshots next to the journal must disable
    /// compact_after_snapshot, or compaction will drop records only
    /// its snapshots could replace.
    util::SnapshotSink* snapshot_sink = nullptr;
    /// fsync the journal after every append (power-failure durability
    /// at per-append syscall cost; see util::Journal).
    bool fsync_journal = false;
    // --- Serving knobs (DESIGN.md §8). Observation only: the callback
    // sees committed results and cannot perturb them, so — like every
    // engine knob above — it is excluded from the meta fingerprint and
    // a journaled run may resume with it attached or detached. ---

    /// Fired after each epoch's end record is durable (and once after
    /// a resume, for the newest recovered epoch, with replayed=true).
    /// The EpochCommit's references die when the callback returns.
    /// Must not throw; must not call back into the runtime.
    std::function<void(const EpochCommit&)> on_epoch_commit;

    /// run_with_recovery's restart budget *per progress window*: after
    /// a crash, up to `restart.max_attempts` consecutive relaunches
    /// that make no forward progress (no journal change) are admitted,
    /// with the policy's jittered backoff between them; any progress
    /// resets the window. Exhaustion throws RecoveryExhausted. The
    /// per-attempt deadline is ignored (runs may take arbitrarily
    /// long).
    util::RetryPolicy restart{.max_attempts = 8};
};

/// The complete durable state of a runtime between epochs — exactly
/// what a snapshot persists and recovery installs. Exposed (with the
/// codec below) so property tests can prove the serialization
/// byte-stable without a runtime in the loop.
struct RuntimeState {
    std::vector<EpochRecord> epochs;
    std::vector<std::optional<market::AuctionResult>> auctions;
    core::Ledger ledger;
    util::RngState rng;
    std::uint64_t breaker_open_epochs = 0;
};

/// Serialize a RuntimeState to the snapshot payload format.
/// Deterministic and byte-stable: encode(decode(encode(s))) ==
/// encode(s).
std::string encode_runtime_state(const RuntimeState& state);

/// Invert encode_runtime_state. Throws util::JournalError on
/// malformed bytes (snapshot CRC framing normally rules that out;
/// this guards against version drift).
RuntimeState decode_runtime_state(std::string_view bytes);

struct RuntimeOutcome {
    std::vector<EpochRecord> epochs;
    /// Per-epoch auction outcomes (nullopt = unprovisioned epoch).
    std::vector<std::optional<market::AuctionResult>> auctions;
    core::Ledger ledger;
    /// RNG stream position after the final epoch (replay must land on
    /// the exact same state).
    util::RngState final_rng;
    /// Recovery diagnostics for this run() call.
    std::size_t replayed_epochs = 0;
    std::size_t replayed_records = 0;
    bool tail_truncated = false;
    double replay_ms = 0.0;
    /// Epochs that found the breaker open on arrival.
    std::size_t breaker_open_epochs = 0;
    util::RetryStats retry;
    /// State-history diagnostics for this run() call.
    std::size_t snapshots_written = 0;
    std::size_t compactions = 0;
    /// Recovery grounded on a snapshot instead of replaying the
    /// journal from its header.
    bool resumed_from_snapshot = false;
    /// Completed epochs the grounding snapshot covered (0 when none).
    std::uint64_t snapshot_epochs = 0;
    /// Recovery hit a CRC-valid but semantically impossible record
    /// (duplicated frame, ungroundable suffix) and rewrote the journal
    /// to its last good prefix.
    bool journal_repaired = false;
    /// Process restarts the supervisor performed (run_with_recovery
    /// only; 0 from a bare run()).
    std::size_t restarts = 0;
};

/// The runtime. One instance = one process lifetime: the retry breaker
/// persists across its epochs and resets on construction (a restarted
/// process starts with a closed breaker). The pool and traffic matrix
/// must outlive run().
class EpochRuntime {
public:
    EpochRuntime(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                 RuntimeOptions opt);
    ~EpochRuntime();

    EpochRuntime(const EpochRuntime&) = delete;
    EpochRuntime& operator=(const EpochRuntime&) = delete;

    /// Run (or resume) the epoch loop to completion. With a journal
    /// path set, opens/creates the journal, replays its valid prefix,
    /// and resumes from the first incomplete stage. Throws
    /// util::JournalError when the journal belongs to a different
    /// scenario (meta fingerprint mismatch); propagates CrashInjected
    /// from stage hooks.
    RuntimeOutcome run();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Supervisor loop: converts a chaos fault trace's control-plane
/// faults (kCrash, kOracleDegraded, kSnapshotCorrupt, kTornWrite)
/// into runtime hooks, then runs EpochRuntime under a restart-on-crash
/// loop until it completes. Each kCrash fault kills the process once
/// (at the faulted epoch and stage, mid-stage; crash_stage may also
/// name kCrashStageSnapshot/kCrashStageCompaction); kSnapshotCorrupt
/// and kTornWrite additionally damage the newest snapshot file (bit
/// flip) / the journal tail (torn write) after the kill, before the
/// restart. Each kOracleDegraded fault makes every oracle query of
/// its active epochs throw util::TransientError. Restarts are budgeted
/// by opt.restart: consecutive crashes with no forward progress
/// exhaust it and throw RecoveryExhausted. Requires a journal path
/// (recovery without durability would replay nothing).
RuntimeOutcome run_with_recovery(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                                 const RuntimeOptions& opt, const std::vector<Fault>& trace);

/// Point-in-time query backend (ROADMAP "point-in-time queries"):
/// reconstruct the complete runtime state as of exactly
/// `target_epochs` completed epochs, grounding on the newest valid
/// snapshot ≤ target (util::HistoryReader) and replaying only the
/// journal suffix past it. Strictly read-only — the journal is scanned
/// via Journal::scan_file, never truncated or reopened for append, so
/// this is safe to call while a live runtime owns the same journal
/// (the serve daemon's historical queries do). Returns nullopt when
/// the history cannot prove the state: no journal, a foreign
/// configuration fingerprint, or a journal+snapshot set that does not
/// reach `target_epochs`. The result is bit-identical to what a
/// from-scratch run of `target_epochs` epochs would hold.
std::optional<RuntimeState> materialize_state_at(const market::OfferPool& pool,
                                                 const net::TrafficMatrix& tm,
                                                 const RuntimeOptions& opt,
                                                 std::uint64_t target_epochs);

}  // namespace poc::sim
