// Durable epoch runtime: the POC's per-epoch operational pipeline
// (auction -> provisioning -> flow sim -> settlement) made crash-safe
// and deadline-budgeted.
//
// Durability model (DESIGN.md §4b). Each epoch runs as four explicit,
// restartable stages. As each stage completes, a typed record with its
// full result is appended to a checksummed write-ahead journal
// (util/journal.hpp). A process killed at any stage boundary — or
// mid-stage, after computing a result but before journaling it — is
// restarted by re-running EpochRuntime::run() against the same journal
// path: replay reconstructs the ledger, every auction outcome, and the
// RNG stream position from the journal's valid prefix, truncates any
// torn tail, and resumes from the first stage whose record is missing.
// The recovered run is *bit-identical* to an uninterrupted one: same
// ledger balances, same AuctionResult bytes, same RNG state.
//
// Deadline/retry model. The winner-determination oracle is wrapped in
// market::FallibleOracle and every clearing attempt runs under
// util::Retrier: a per-call deadline budget, jittered exponential
// backoff between attempts, and a circuit breaker across epochs. When
// retries are exhausted (or the breaker fast-fails the epoch), the
// runtime degrades gracefully: it re-clears under the relaxed plain
// load-feasibility constraint with a fresh healthy oracle, flags the
// epoch `degraded_mode`, and keeps serving rather than staying dark —
// the same degradation contract as the chaos engine (sim/chaos.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ledger.hpp"
#include "core/provisioning.hpp"
#include "sim/chaos.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"

namespace poc::sim {

/// The four restartable stages of one epoch, in pipeline order.
enum class Stage : std::uint8_t {
    kAuction = 0,
    kProvisioning = 1,
    kFlowSim = 2,
    kSettlement = 3,
};

inline constexpr std::size_t kStageCount = 4;

const char* stage_name(Stage stage);

/// Where within a stage a hook fires. kMid fires after the stage's
/// result is computed but *before* its journal record is appended —
/// a crash there models the worst case: work done, nothing durable.
enum class HookPoint : std::uint8_t { kBefore, kMid, kAfter };

/// Thrown by crash-injection hooks to model the process dying. The
/// runtime never catches it; a supervisor (run_with_recovery, or a
/// test harness) does, then constructs a fresh EpochRuntime against
/// the same journal to model the restart.
class CrashInjected final : public std::runtime_error {
public:
    CrashInjected(std::size_t epoch, Stage stage, HookPoint point);

    std::size_t epoch() const noexcept { return epoch_; }
    Stage stage() const noexcept { return stage_; }
    HookPoint point() const noexcept { return point_; }

private:
    std::size_t epoch_;
    Stage stage_;
    HookPoint point_;
};

/// One epoch's summary row (the runtime's SLA record).
struct EpochRecord {
    std::size_t epoch = 0;
    /// A backbone was provisioned this epoch (auction feasible, on
    /// either the primary or the degraded path).
    bool provisioned = false;
    /// The primary clearing path failed (retries exhausted or breaker
    /// open) and this epoch's backbone came from the relaxed
    /// load-feasibility re-clear.
    bool degraded_mode = false;
    /// The breaker was open when this epoch tried to clear.
    bool breaker_open = false;
    /// This epoch's demand multiplier (drawn from the runtime RNG).
    double demand_factor = 1.0;
    double demand_gbps = 0.0;
    /// routed / offered demand; 0 when unprovisioned.
    double delivered_fraction = 0.0;
    double max_utilization = 0.0;
    double stretch = 1.0;
    /// This epoch's monthly outlay (zero when unprovisioned).
    util::Money outlay;
    /// Oracle-clearing attempts this epoch (1 = first try succeeded).
    std::uint64_t retry_attempts = 0;

    friend bool operator==(const EpochRecord&, const EpochRecord&) = default;
};

struct RuntimeOptions {
    std::size_t epochs = 4;
    /// Constraint, oracle fidelity, and auction engine knobs; reused
    /// verbatim every epoch.
    core::ProvisioningRequest request;
    /// Each epoch scales the traffic matrix by a factor drawn uniformly
    /// from [1 - jitter, 1 + jitter]. The draw happens even at 0 so the
    /// RNG stream position is exercised (and journaled) every epoch.
    double demand_jitter = 0.05;
    std::uint64_t seed = 2020;
    /// Write-ahead journal path. Empty = durability off (no journal
    /// I/O; the run is still deterministic).
    std::string journal_path;
    /// Retry/backoff budget for each epoch's clearing call and the
    /// breaker that persists across epochs within one process.
    util::RetryPolicy retry;
    util::BreakerPolicy breaker;
    /// Degrade to the relaxed load-feasibility re-clear when the
    /// primary path is exhausted; false = the epoch goes unprovisioned.
    bool allow_constraint_relaxation = true;
    /// Test/chaos hook fired at every stage boundary (kBefore/kAfter)
    /// and mid-stage (kMid). May throw CrashInjected.
    std::function<void(std::size_t, Stage, HookPoint)> stage_hook;
    /// Per-epoch oracle fault hook, invoked on every oracle query of
    /// that epoch's primary clearing path. May throw
    /// util::TransientError (degraded oracle) or sleep (slow oracle).
    /// Must be thread-safe when request.auction.threads > 1.
    std::function<void(std::size_t)> oracle_fault;
    /// Share one epoch-invalidated net::PathCache across the run's
    /// clearing oracles and flow simulations. An engine knob like
    /// `threads`/`cache`: excluded from the journal's configuration
    /// fingerprint because results are bit-identical either way, so a
    /// journaled run may resume with it flipped.
    bool use_path_cache = true;
};

struct RuntimeOutcome {
    std::vector<EpochRecord> epochs;
    /// Per-epoch auction outcomes (nullopt = unprovisioned epoch).
    std::vector<std::optional<market::AuctionResult>> auctions;
    core::Ledger ledger;
    /// RNG stream position after the final epoch (replay must land on
    /// the exact same state).
    util::RngState final_rng;
    /// Recovery diagnostics for this run() call.
    std::size_t replayed_epochs = 0;
    std::size_t replayed_records = 0;
    bool tail_truncated = false;
    double replay_ms = 0.0;
    /// Epochs that found the breaker open on arrival.
    std::size_t breaker_open_epochs = 0;
    util::RetryStats retry;
};

/// The runtime. One instance = one process lifetime: the retry breaker
/// persists across its epochs and resets on construction (a restarted
/// process starts with a closed breaker). The pool and traffic matrix
/// must outlive run().
class EpochRuntime {
public:
    EpochRuntime(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                 RuntimeOptions opt);
    ~EpochRuntime();

    EpochRuntime(const EpochRuntime&) = delete;
    EpochRuntime& operator=(const EpochRuntime&) = delete;

    /// Run (or resume) the epoch loop to completion. With a journal
    /// path set, opens/creates the journal, replays its valid prefix,
    /// and resumes from the first incomplete stage. Throws
    /// util::JournalError when the journal belongs to a different
    /// scenario (meta fingerprint mismatch); propagates CrashInjected
    /// from stage hooks.
    RuntimeOutcome run();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Supervisor loop: converts a chaos fault trace's control-plane
/// faults (kCrash, kOracleDegraded) into runtime hooks, then runs
/// EpochRuntime under a restart-on-crash loop until it completes.
/// Each kCrash fault kills the process once (at the faulted epoch and
/// stage, mid-stage); each kOracleDegraded fault makes every oracle
/// query of its active epochs throw util::TransientError. Requires a
/// journal path (recovery without durability would replay nothing).
RuntimeOutcome run_with_recovery(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                                 const RuntimeOptions& opt, const std::vector<Fault>& trace);

}  // namespace poc::sim
