// A small discrete-event simulation engine: a time-ordered event queue
// with deterministic FIFO tie-breaking. The scenario layer uses it to
// sequence auction epochs, capacity recalls, failures, and demand
// growth on a common clock (time unit: months).
#pragma once

#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "util/contracts.hpp"

namespace poc::sim {

class Simulator;

using EventHandler = std::function<void(Simulator&)>;

/// Deterministic discrete-event loop.
class Simulator {
public:
    /// Schedule a handler at an absolute time >= now().
    void schedule_at(double time, EventHandler handler);

    /// Schedule a handler `delay >= 0` after now().
    void schedule_in(double delay, EventHandler handler);

    /// Run until the queue empties or `until` is passed (events at
    /// exactly `until` still run). Returns the number of events run.
    std::size_t run(double until = std::numeric_limits<double>::infinity());

    /// Stop after the current event returns.
    void stop() noexcept { stopped_ = true; }

    double now() const noexcept { return now_; }
    std::size_t pending() const noexcept { return queue_.size(); }

private:
    struct Scheduled {
        double time;
        std::uint64_t seq;  // FIFO among equal times
        EventHandler handler;
    };
    struct Later {
        bool operator()(const Scheduled& a, const Scheduled& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
    double now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    bool stopped_ = false;
};

}  // namespace poc::sim
