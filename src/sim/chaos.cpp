#include "sim/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <utility>

#include "market/delta_reclear.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "topo/geo.hpp"
#include "util/rng.hpp"

namespace poc::sim {

namespace {

std::string node_name(const net::Graph& g, net::NodeId n) {
    const std::string& label = g.node_label(n);
    return label.empty() ? "n" + std::to_string(n.value()) : label;
}

std::string city_name(std::size_t city) {
    const auto& cities = topo::world_cities();
    return city < cities.size() ? cities[city].name : "c" + std::to_string(city);
}

}  // namespace

std::vector<SharedRiskGroup> shared_risk_groups(const net::Graph& graph) {
    std::map<std::pair<std::size_t, std::size_t>, std::vector<net::LinkId>> conduits;
    for (const net::LinkId l : graph.all_links()) {
        const net::Link& link = graph.link(l);
        const std::size_t lo = std::min(link.a.index(), link.b.index());
        const std::size_t hi = std::max(link.a.index(), link.b.index());
        conduits[{lo, hi}].push_back(l);
    }
    std::vector<SharedRiskGroup> out;
    for (auto& [key, links] : conduits) {
        if (links.size() < 2) continue;
        out.push_back({"conduit:" + node_name(graph, net::NodeId{key.first}) + "-" +
                           node_name(graph, net::NodeId{key.second}),
                       std::move(links)});
    }
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
        const auto incident = graph.incident(net::NodeId{n});
        if (incident.size() < 2) continue;
        out.push_back({"site:" + node_name(graph, net::NodeId{n}),
                       std::vector<net::LinkId>(incident.begin(), incident.end())});
    }
    return out;
}

std::vector<SharedRiskGroup> shared_risk_groups(const topo::PocTopology& topo) {
    POC_EXPECTS(topo.router_city.size() == topo.graph.node_count());
    std::map<std::pair<std::size_t, std::size_t>, std::vector<net::LinkId>> conduits;
    std::map<std::size_t, std::vector<net::LinkId>> sites;
    for (const net::LinkId l : topo.graph.all_links()) {
        const net::Link& link = topo.graph.link(l);
        const std::size_t ca = topo.router_city[link.a.index()];
        const std::size_t cb = topo.router_city[link.b.index()];
        conduits[{std::min(ca, cb), std::max(ca, cb)}].push_back(l);
        sites[ca].push_back(l);
        if (cb != ca) sites[cb].push_back(l);
    }
    std::vector<SharedRiskGroup> out;
    for (auto& [key, links] : conduits) {
        if (links.size() < 2) continue;
        out.push_back({"conduit:" + city_name(key.first) + "-" + city_name(key.second),
                       std::move(links)});
    }
    for (auto& [city, links] : sites) {
        if (links.size() < 2) continue;
        out.push_back({"city:" + city_name(city), std::move(links)});
    }
    return out;
}

const char* fault_kind_name(FaultKind kind) {
    switch (kind) {
        case FaultKind::kLinkCut: return "link-cut";
        case FaultKind::kConduitCut: return "conduit-cut";
        case FaultKind::kRouterOutage: return "router-outage";
        case FaultKind::kBpOutage: return "bp-outage";
        case FaultKind::kBrownout: return "brownout";
        case FaultKind::kCrash: return "crash";
        case FaultKind::kOracleDegraded: return "oracle-degraded";
        case FaultKind::kSnapshotCorrupt: return "snapshot-corrupt";
        case FaultKind::kTornWrite: return "torn-write";
        case FaultKind::kFollowerCrash: return "follower-crash";
        case FaultKind::kFollowerTailCorrupt: return "follower-tail-corrupt";
    }
    return "?";
}

std::vector<Fault> draw_fault_trace(const market::OfferPool& pool,
                                    const std::vector<SharedRiskGroup>& srlgs,
                                    const FaultInjectorOptions& opt) {
    POC_EXPECTS(opt.epochs >= 1);
    POC_EXPECTS(opt.intensity >= 0.0);
    POC_EXPECTS(opt.brownout_floor > 0.0 && opt.brownout_floor <= opt.brownout_ceil);
    POC_EXPECTS(opt.brownout_ceil < 1.0);
    POC_EXPECTS(opt.mean_repair_epochs >= 1.0);

    util::Rng rng(opt.seed);
    const net::Graph& graph = pool.graph();

    // Real (auctioned) links only: the external-ISP virtual links are
    // contracted fallback capacity and modeled as reliable.
    std::vector<net::LinkId> targets;
    for (const net::LinkId l : pool.offered_links()) {
        if (!pool.is_virtual(l)) targets.push_back(l);
    }

    // SRLGs restricted to the real offered links; groups that shrink
    // below two links stop being "correlated" and are dropped.
    std::vector<SharedRiskGroup> groups;
    for (const SharedRiskGroup& g : srlgs) {
        SharedRiskGroup filtered{g.name, {}};
        for (const net::LinkId l : g.links) {
            if (pool.is_offered(l) && !pool.is_virtual(l)) filtered.links.push_back(l);
        }
        if (filtered.links.size() >= 2) groups.push_back(std::move(filtered));
    }

    auto draw_repair = [&]() {
        const double d = rng.exponential(1.0 / opt.mean_repair_epochs);
        return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(d)));
    };
    auto draw_count = [&](double rate) {
        const double expected = rate * opt.intensity;
        auto n = static_cast<std::size_t>(expected);
        if (rng.bernoulli(expected - static_cast<double>(n))) ++n;
        return n;
    };

    std::vector<Fault> trace;
    if (targets.empty()) return trace;

    // Epoch 0 always measures the healthy baseline.
    for (std::size_t epoch = 1; epoch < opt.epochs; ++epoch) {
        for (std::size_t i = draw_count(opt.link_cut_rate); i > 0; --i) {
            const net::LinkId l = targets[rng.uniform_int(targets.size())];
            trace.push_back({FaultKind::kLinkCut, epoch, draw_repair(), {l}, 0.0,
                             "cut link " + std::to_string(l.value())});
        }
        if (!groups.empty()) {
            for (std::size_t i = draw_count(opt.conduit_cut_rate); i > 0; --i) {
                const SharedRiskGroup& g = groups[rng.uniform_int(groups.size())];
                trace.push_back({FaultKind::kConduitCut, epoch, draw_repair(), g.links, 0.0,
                                 "cut " + g.name});
            }
        }
        for (std::size_t i = draw_count(opt.router_outage_rate); i > 0; --i) {
            const net::NodeId node{rng.uniform_int(graph.node_count())};
            std::vector<net::LinkId> links;
            for (const net::LinkId l : graph.incident(node)) {
                if (pool.is_offered(l) && !pool.is_virtual(l)) links.push_back(l);
            }
            if (links.empty()) continue;
            trace.push_back({FaultKind::kRouterOutage, epoch, draw_repair(), std::move(links),
                             0.0, "router " + node_name(graph, node) + " down"});
        }
        if (!pool.bids().empty()) {
            for (std::size_t i = draw_count(opt.bp_outage_rate); i > 0; --i) {
                const market::BpBid& bid = pool.bids()[rng.uniform_int(pool.bids().size())];
                if (bid.offered_links().empty()) continue;
                trace.push_back({FaultKind::kBpOutage, epoch, draw_repair(),
                                 bid.offered_links(), 0.0, "BP " + bid.name() + " withdraws"});
            }
        }
        for (std::size_t i = draw_count(opt.brownout_rate); i > 0; --i) {
            const double factor = rng.uniform(opt.brownout_floor, opt.brownout_ceil);
            std::vector<net::LinkId> links;
            std::string what;
            if (!groups.empty() && rng.bernoulli(0.4)) {
                const SharedRiskGroup& g = groups[rng.uniform_int(groups.size())];
                links = g.links;
                what = g.name;
            } else {
                const net::LinkId l = targets[rng.uniform_int(targets.size())];
                links = {l};
                what = "link " + std::to_string(l.value());
            }
            trace.push_back({FaultKind::kBrownout, epoch, draw_repair(), std::move(links),
                             factor, "brownout " + what});
        }
        // Control-plane faults, consumed by the durable epoch runtime
        // (sim/runtime.hpp). Guarded so a zero rate draws nothing from
        // the RNG and existing data-plane traces stay bit-identical.
        if (opt.crash_rate > 0.0) {
            for (std::size_t i = draw_count(opt.crash_rate); i > 0; --i) {
                const auto stage = static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{4}));
                trace.push_back({FaultKind::kCrash, epoch, 1, {}, 0.0,
                                 "process crash mid-epoch (stage " + std::to_string(stage) + ")",
                                 stage});
            }
        }
        if (opt.oracle_degraded_rate > 0.0) {
            for (std::size_t i = draw_count(opt.oracle_degraded_rate); i > 0; --i) {
                trace.push_back({FaultKind::kOracleDegraded, epoch, draw_repair(), {}, 0.0,
                                 "acceptability oracle degraded"});
            }
        }
        if (opt.snapshot_corrupt_rate > 0.0) {
            for (std::size_t i = draw_count(opt.snapshot_corrupt_rate); i > 0; --i) {
                const auto stage = static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{4}));
                trace.push_back({FaultKind::kSnapshotCorrupt, epoch, 1, {}, 0.0,
                                 "crash + snapshot bit flip (stage " + std::to_string(stage) + ")",
                                 stage});
            }
        }
        if (opt.torn_write_rate > 0.0) {
            for (std::size_t i = draw_count(opt.torn_write_rate); i > 0; --i) {
                const auto stage = static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{4}));
                trace.push_back({FaultKind::kTornWrite, epoch, 1, {}, 0.0,
                                 "crash + torn journal tail (stage " + std::to_string(stage) + ")",
                                 stage});
            }
        }
    }
    POC_OBS_COUNT("sim.chaos.faults_injected", trace.size());
    return trace;
}

namespace {

/// Copy of `g` with per-link capacities scaled by `factor` (entries in
/// (0, 1]); node/link ids are preserved by insertion order.
net::Graph scaled_copy(const net::Graph& g, const std::vector<double>& factor) {
    net::Graph out;
    for (std::size_t n = 0; n < g.node_count(); ++n) {
        out.add_node(g.node_label(net::NodeId{n}));
    }
    for (std::size_t i = 0; i < g.link_count(); ++i) {
        const net::Link& l = g.link(net::LinkId{i});
        out.add_link(l.a, l.b, l.capacity_gbps * factor[i], l.length_km);
    }
    return out;
}

}  // namespace

ChaosOutcome run_chaos(const market::OfferPool& base_pool, const net::TrafficMatrix& tm,
                       const std::vector<Fault>& trace, const ChaosOptions& opt) {
    POC_EXPECTS(opt.epochs >= 1);
    POC_EXPECTS(opt.reauction_threshold >= 0.0 && opt.reauction_threshold <= 1.0);
    const net::Graph& g0 = base_pool.graph();
    const std::size_t n_links = g0.link_count();
    for (const Fault& f : trace) {
        POC_EXPECTS(f.repair_epochs >= 1);
        POC_EXPECTS(f.capacity_factor >= 0.0 && f.capacity_factor < 1.0);
        for (const net::LinkId l : f.links) POC_EXPECTS(l.index() < n_links);
    }
    // Re-auctions rebuild surviving bids; bundle overrides cannot be
    // carried over link-by-link (same restriction as market's
    // manipulation rebuilds).
    for (const market::BpBid& b : base_pool.bids()) POC_EXPECTS(!b.has_bundle_overrides());

    std::vector<bool> is_virtual(n_links, false);
    for (const net::LinkId l : base_pool.virtual_links().links()) is_virtual[l.index()] = true;

    // One tree cache for the whole run (see ChaosOptions::use_path_cache):
    // the initial auction, every re-auction pivot, and every epoch's
    // flow simulation share it; advance_epoch() below keeps only the
    // recent working set alive. The repair budget lets near-miss masks
    // patch cached trees instead of recomputing them.
    net::PathCache path_cache(1, opt.path_cache_repair_budget);
    core::ProvisioningRequest request = opt.request;
    core::FlowSimOptions flow_opt;
    if (opt.use_path_cache) {
        request.oracle.path_cache = &path_cache;
        flow_opt.path_cache = &path_cache;
    }
    flow_opt.routing = opt.flow_routing;
    flow_opt.flow_shards = opt.flow_shards;
    flow_opt.sssp_threads = opt.flow_threads;
    // One warm-start state across the run's auctions: off-cycle
    // re-auctions whose surviving offer set is within the delta
    // threshold of the previous clearing reuse its memo.
    market::DeltaReclearState delta_state;
    if (opt.use_delta_reclear && request.auction.delta == nullptr) {
        request.auction.delta = &delta_state;
    }

    ChaosOutcome out;
    auto initial = core::provision(base_pool, tm, request);
    if (!initial) return out;  // provisioned stays false
    out.provisioned = true;
    out.baseline_outlay = initial->monthly_outlay();

    // Service state mutated by the scheduled handlers. Re-auctioned
    // backbones reference brownout-degraded graph copies, so those (and
    // the pools built over them) live in deques for address stability.
    struct State {
        std::deque<net::Graph> graphs;
        std::deque<market::OfferPool> pools;
        core::ProvisionedBackbone backbone;
        util::Money outlay;
        bool degraded_mode = false;
    } st{.backbone = std::move(*initial)};
    st.outlay = st.backbone.monthly_outlay();

    // Per-link fault state at an epoch: hard-down mask plus surviving-
    // capacity factor (brownouts compound by taking the worst factor).
    auto fault_state = [&](std::size_t epoch, std::vector<char>& down,
                           std::vector<double>& factor) {
        down.assign(n_links, 0);
        factor.assign(n_links, 1.0);
        std::size_t active = 0;
        for (const Fault& f : trace) {
            if (!f.active_at(epoch)) continue;
            // Control-plane faults affect the epoch runtime, not the
            // provisioned data plane this engine degrades.
            if (f.kind == FaultKind::kCrash || f.kind == FaultKind::kOracleDegraded ||
                f.kind == FaultKind::kSnapshotCorrupt || f.kind == FaultKind::kTornWrite) {
                continue;
            }
            ++active;
            for (const net::LinkId l : f.links) {
                if (is_virtual[l.index()]) continue;  // contracted fallback is reliable
                if (f.capacity_factor <= 0.0) {
                    down[l.index()] = 1;
                } else {
                    factor[l.index()] = std::min(factor[l.index()], f.capacity_factor);
                }
            }
        }
        return active;
    };

    // Off-cycle re-auction restricted to the surviving offers, run on
    // the brownout-degraded capacities. If the configured resilience
    // constraint has become infeasible, optionally fall back to plain
    // load feasibility instead of staying dark.
    auto reauction = [&](std::size_t epoch) {
        // Telemetry: recovery latency (wall clock of the whole
        // off-cycle re-auction, including pool rebuild) plus outcome
        // counters. Pure side channel — results are unchanged.
        POC_OBS_SPAN("sim.chaos.reauction");
        POC_OBS_TIMER_MS("sim.chaos.reauction_ms", 0.0, 2000.0, 50);
        std::vector<char> down;
        std::vector<double> factor;
        fault_state(epoch, down, factor);

        std::vector<market::BpBid> bids;
        bids.reserve(base_pool.bids().size());
        for (const market::BpBid& b : base_pool.bids()) {
            market::BpBid survivor(b.bp(), b.name());
            for (const net::LinkId l : b.offered_links()) {
                if (!down[l.index()]) survivor.offer(l, b.base_price(l));
            }
            for (const market::DiscountTier& t : b.discounts()) survivor.add_discount(t);
            bids.push_back(std::move(survivor));
        }

        st.graphs.push_back(scaled_copy(g0, factor));
        st.pools.emplace_back(std::move(bids), base_pool.virtual_links(), st.graphs.back());
        const market::OfferPool& pool = st.pools.back();

        bool degraded_mode = false;
        auto backbone = core::provision(pool, tm, request);
        if (!backbone && opt.allow_constraint_relaxation &&
            request.constraint != market::ConstraintKind::kLoad) {
            core::ProvisioningRequest relaxed = request;
            relaxed.constraint = market::ConstraintKind::kLoad;
            backbone = core::provision(pool, tm, relaxed);
            degraded_mode = backbone.has_value();
        }
        if (!backbone) {
            ++out.failed_reauctions;
            POC_OBS_INC("sim.chaos.failed_reauctions");
            return;
        }
        ++out.reauction_count;
        POC_OBS_INC("sim.chaos.reauctions");
        if (degraded_mode) POC_OBS_INC("sim.chaos.relaxed_reauctions");
        st.backbone = std::move(*backbone);
        st.outlay = st.backbone.monthly_outlay();
        st.degraded_mode = degraded_mode;
        if (st.outlay > out.baseline_outlay) {
            out.total_recovery_cost += st.outlay - out.baseline_outlay;
        }
    };

    Simulator simulator;
    for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
        simulator.schedule_at(static_cast<double>(epoch), [&, epoch](Simulator& sim) {
            // New epoch: age out cached trees no recent mask used.
            path_cache.advance_epoch();
            std::vector<char> down;
            std::vector<double> factor;
            SlaRecord rec;
            rec.epoch = epoch;
            rec.faults_active = fault_state(epoch, down, factor);
            rec.degraded_mode = st.degraded_mode;

            const bool any_brownout =
                std::any_of(factor.begin(), factor.end(), [](double f) { return f < 1.0; });
            net::Graph degraded;  // only materialized when capacities changed
            const net::Graph* epoch_graph = &g0;
            if (any_brownout) {
                degraded = scaled_copy(g0, factor);
                epoch_graph = &degraded;
            }

            // Operating set: surviving selected links, plus every
            // contracted virtual link as emergency fallback.
            std::vector<net::LinkId> operating;
            std::vector<char> in_selected(n_links, 0);
            for (const net::LinkId l : st.backbone.selected.active_links()) {
                in_selected[l.index()] = 1;
                if (down[l.index()]) {
                    ++rec.links_down;
                    continue;
                }
                if (factor[l.index()] < 1.0) ++rec.links_degraded;
                operating.push_back(l);
            }
            if (opt.allow_emergency_virtual) {
                for (const net::LinkId l : base_pool.virtual_links().links()) {
                    if (!in_selected[l.index()]) operating.push_back(l);
                }
            }

            const net::Subgraph sg(*epoch_graph, operating);
            const core::FlowReport flows = core::simulate_flows(sg, tm, is_virtual, flow_opt);

            rec.offered_gbps = flows.total_offered_gbps;
            rec.delivered_gbps = std::min(flows.total_routed_gbps, flows.total_offered_gbps);
            rec.delivered_fraction =
                rec.offered_gbps > 0.0 ? rec.delivered_gbps / rec.offered_gbps : 1.0;
            rec.undelivered_gbps = std::max(0.0, rec.offered_gbps - rec.delivered_gbps);
            rec.stretch = flows.stretch;
            rec.virtual_share = flows.virtual_share;

            // Virtual links the auction did not select but the degraded
            // routing leaned on: procured for the epoch at contract price.
            for (const net::LinkId l : base_pool.virtual_links().links()) {
                if (in_selected[l.index()] == 0 && flows.link_load_gbps[l.index()] > 1e-9) {
                    rec.emergency_virtual_cost += base_pool.virtual_links().price(l);
                }
            }
            rec.outlay = st.outlay + rec.emergency_virtual_cost;
            out.total_recovery_cost += rec.emergency_virtual_cost;

            // Recovery trigger: an off-cycle re-auction, mid-epoch on
            // the simulator clock, whose backbone serves from the next
            // epoch (time-to-restore is therefore measured in epochs).
            if (rec.delivered_fraction < opt.reauction_threshold && epoch + 1 < opt.epochs) {
                rec.reauction_triggered = true;
                sim.schedule_in(0.5, [&, epoch](Simulator&) { reauction(epoch); });
            }

            // Per-epoch SLA accounting through the metrics layer (the
            // same quantities as the SlaRecord, so snapshot deltas can
            // stand in for hand-rolled counters downstream).
            POC_OBS_INC("sim.chaos.epochs");
            POC_OBS_COUNT("sim.chaos.faults_active", rec.faults_active);
            POC_OBS_COUNT("sim.chaos.links_down", rec.links_down);
            POC_OBS_COUNT("sim.chaos.links_degraded", rec.links_degraded);
            if (rec.delivered_fraction < opt.reauction_threshold) {
                POC_OBS_INC("sim.chaos.sla_violations");
            }
            if (rec.delivered_fraction < 1.0 - 1e-6) POC_OBS_INC("sim.chaos.degraded_epochs");
            if (rec.degraded_mode) POC_OBS_INC("sim.chaos.relaxed_mode_epochs");
            POC_OBS_COUNT("sim.chaos.emergency_virtual_microusd",
                          rec.emergency_virtual_cost.micros());
            POC_OBS_HISTOGRAM("sim.chaos.delivered_fraction", 0.0, 1.0 + 1e-9, 20,
                              rec.delivered_fraction);
            POC_OBS_HISTOGRAM("sim.chaos.undelivered_gbps", 0.0, 1000.0, 50,
                              rec.undelivered_gbps);

            out.sla.push_back(rec);
            if (opt.on_epoch) opt.on_epoch(out.sla.back());
        });
    }
    simulator.run();
    POC_ENSURES(out.sla.size() == opt.epochs);

    double sum = 0.0;
    for (const SlaRecord& rec : out.sla) {
        sum += rec.delivered_fraction;
        out.min_delivered_fraction = std::min(out.min_delivered_fraction,
                                              rec.delivered_fraction);
        out.total_undelivered_gbps += rec.undelivered_gbps;
    }
    out.mean_delivered_fraction = sum / static_cast<double>(out.sla.size());

    constexpr double kFullEps = 1e-6;
    std::size_t first_degraded = out.sla.size();
    for (std::size_t i = 0; i < out.sla.size(); ++i) {
        if (out.sla[i].delivered_fraction < 1.0 - kFullEps) {
            first_degraded = i;
            break;
        }
    }
    if (first_degraded == out.sla.size()) {
        out.epochs_to_restore = 0;
    } else {
        out.epochs_to_restore = opt.epochs;
        for (std::size_t i = first_degraded + 1; i < out.sla.size(); ++i) {
            if (out.sla[i].delivered_fraction >= 1.0 - kFullEps) {
                out.epochs_to_restore = i - first_degraded;
                break;
            }
        }
    }
    return out;
}

}  // namespace poc::sim
