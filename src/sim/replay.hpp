// Journal-replay machinery shared by every consumer of the runtime's
// write-ahead log: crash recovery (sim::EpochRuntime), read-only
// point-in-time materialization (sim::materialize_state_at), and the
// journal-tailing read replicas (serve::Follower). All three must
// apply records through the *same* code path — bit-identity across
// leader, recovery, and followers is a property test, and a second
// replay implementation would be a place for it to silently break.
//
// The pieces: the on-disk record-type constants, the per-stage payload
// codecs, delta-frame resolution against the running per-type base map
// (decode_records), the configuration fingerprint stored in the
// journal header (runtime_meta_fingerprint), and the ReplayCursor
// state machine that advances a RuntimeState one decoded record at a
// time with parse-then-commit semantics.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/runtime.hpp"
#include "util/journal.hpp"

namespace poc::sim {

// Journal record types (kRec* values are part of the on-disk format;
// never renumber).
inline constexpr std::uint16_t kRecEpochBegin = 1;
inline constexpr std::uint16_t kRecAuction = 2;
inline constexpr std::uint16_t kRecProvision = 3;
inline constexpr std::uint16_t kRecFlows = 4;
inline constexpr std::uint16_t kRecSettlement = 5;
inline constexpr std::uint16_t kRecEpochEnd = 6;

/// High bit of the record type: the payload is an XOR delta
/// (util::xor_delta_encode) against the previous *full* payload of the
/// same base type in the file. Part of the on-disk format.
inline constexpr std::uint16_t kRecDeltaFlag = 0x8000;

void write_rng_state(util::BinaryWriter& w, const util::RngState& st);
util::RngState read_rng_state(util::BinaryReader& r);

void write_links(util::BinaryWriter& w, const std::vector<net::LinkId>& links);
std::vector<net::LinkId> read_links(util::BinaryReader& r);

void write_epoch_record(util::BinaryWriter& w, const EpochRecord& rec);
EpochRecord read_epoch_record(util::BinaryReader& r);

/// In-flight epoch: which stages have durable records, and the
/// reconstructed results of the ones that do.
struct PendingEpoch {
    std::size_t epoch = 0;
    double demand_factor = 1.0;
    bool have_begin = false;
    bool have_auction = false;
    bool have_provision = false;
    bool have_flows = false;
    bool have_settlement = false;

    std::optional<market::AuctionResult> auction;
    bool degraded = false;
    bool breaker_open = false;
    std::uint64_t attempts = 0;
    std::vector<net::LinkId> selected;

    double offered_gbps = 0.0;
    double routed_gbps = 0.0;
    double max_utilization = 0.0;
    double stretch = 1.0;
};

/// One journal record with its delta flag resolved: full payload bytes
/// plus the epoch every record type leads with.
struct DecodedRecord {
    std::uint16_t type = 0;  // base type, flag stripped
    std::string payload;
    std::uint64_t epoch = 0;
};

/// Resolve delta-encoded frames against the running per-type base map.
/// Stops at the first record that cannot be resolved (unknown type,
/// broken delta chain, malformed delta bytes, payload too short to
/// carry an epoch); `out` holds exactly the clean prefix. `bases`
/// ends up holding the last full payload per type of that prefix —
/// the appender state matching the file.
std::size_t decode_records(const std::vector<util::JournalRecord>& records,
                           std::vector<DecodedRecord>& out,
                           std::map<std::uint16_t, std::string>& bases);

/// Configuration fingerprint stored in the journal header. Engine
/// knobs that cannot change results (threads, cache, shard count,
/// serving hooks) are excluded on purpose: a run may resume under a
/// different engine config and still be bit-identical (DESIGN.md §5).
/// Semantic knobs that do change results (flow_routing) are included. Shared between
/// EpochRuntime, materialize_state_at, and serve::Follower so every
/// reader refuses foreign journals with the same rule the runtime
/// uses.
std::string runtime_meta_fingerprint(const market::OfferPool& pool,
                                     const net::TrafficMatrix& tm,
                                     const RuntimeOptions& opt);

/// Replay state machine shared by crash recovery (EpochRuntime::Impl),
/// read-only point-in-time materialization (materialize_state_at), and
/// the journal-tailing follower (serve::Follower): a RuntimeState plus
/// the in-flight epoch, advanced one decoded record at a time. apply()
/// is parse-then-commit — a record that is semantically impossible
/// against the current state (out-of-order epoch, duplicated stage,
/// truncated fields) throws *before* mutating anything, so callers can
/// stop at the last good prefix.
struct ReplayCursor {
    RuntimeState state;
    PendingEpoch pending;
    bool has_pending = false;
    std::size_t replayed_epochs = 0;

    void apply(const DecodedRecord& rec);
};

}  // namespace poc::sim
