#include "sim/event_queue.hpp"

#include <limits>

namespace poc::sim {

void Simulator::schedule_at(double time, EventHandler handler) {
    POC_EXPECTS(time >= now_);
    POC_EXPECTS(handler != nullptr);
    queue_.push(Scheduled{time, next_seq_++, std::move(handler)});
}

void Simulator::schedule_in(double delay, EventHandler handler) {
    POC_EXPECTS(delay >= 0.0);
    schedule_at(now_ + delay, std::move(handler));
}

std::size_t Simulator::run(double until) {
    stopped_ = false;
    std::size_t executed = 0;
    while (!queue_.empty() && !stopped_) {
        if (queue_.top().time > until) break;
        // priority_queue::top is const; copy the handler out before pop.
        Scheduled ev = queue_.top();
        queue_.pop();
        now_ = ev.time;
        ev.handler(*this);
        ++executed;
    }
    return executed;
}

}  // namespace poc::sim
