#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "market/delta_reclear.hpp"
#include "topo/traffic.hpp"
#include "util/rng.hpp"

namespace poc::sim {

namespace {

/// Pick `fraction` of a BP's offered links (largest capacity first) for
/// withdrawal.
std::vector<net::LinkId> recall_links(const market::OfferPool& pool, market::BpId bp,
                                      double fraction) {
    const auto& bid = pool.bid(bp);
    std::vector<net::LinkId> links = bid.offered_links();
    std::sort(links.begin(), links.end(), [&](net::LinkId a, net::LinkId b) {
        return pool.graph().link(a).capacity_gbps > pool.graph().link(b).capacity_gbps;
    });
    const auto keep = static_cast<std::size_t>(
        std::llround(static_cast<double>(links.size()) * fraction));
    links.resize(std::min(keep, links.size()));
    return links;
}

/// Reject malformed events up front (ContractViolation) instead of
/// letting them silently misbehave mid-scenario.
void validate_events(const market::OfferPool& pool, const std::vector<ScenarioEvent>& events,
                     const ScenarioOptions& opt) {
    const auto has_bp = [&](std::uint32_t bp) {
        const auto& bids = pool.bids();
        return std::any_of(bids.begin(), bids.end(), [&](const market::BpBid& b) {
            return b.bp() == market::BpId{bp};
        });
    };
    for (const ScenarioEvent& ev : events) {
        POC_EXPECTS(ev.epoch < opt.epochs);
        switch (ev.kind) {
            case ScenarioEvent::Kind::kDemandGrowth:
                POC_EXPECTS(ev.factor > 0.0);
                break;
            case ScenarioEvent::Kind::kBpRecall:
                POC_EXPECTS(ev.fraction >= 0.0 && ev.fraction <= 1.0);
                POC_EXPECTS(has_bp(ev.bp));
                break;
            case ScenarioEvent::Kind::kLinkFailure:
                break;  // count is clamped to the in-service links
            case ScenarioEvent::Kind::kPriceShift:
                POC_EXPECTS(ev.factor > 0.0);
                POC_EXPECTS(has_bp(ev.bp));
                break;
        }
    }
}

std::string describe(const ScenarioEvent& ev) {
    switch (ev.kind) {
        case ScenarioEvent::Kind::kDemandGrowth:
            return "demand x" + std::to_string(ev.factor);
        case ScenarioEvent::Kind::kBpRecall:
            return "BP" + std::to_string(ev.bp + 1) + " recalls " +
                   std::to_string(static_cast<int>(ev.fraction * 100.0)) + "% of links";
        case ScenarioEvent::Kind::kLinkFailure:
            return std::to_string(ev.count) + " link failure(s)";
        case ScenarioEvent::Kind::kPriceShift:
            return "BP" + std::to_string(ev.bp + 1) + " prices x" + std::to_string(ev.factor);
    }
    return "?";
}

}  // namespace

std::vector<EpochOutcome> run_scenario(const market::OfferPool& initial_pool,
                                       const net::TrafficMatrix& initial_tm,
                                       const std::vector<ScenarioEvent>& events,
                                       const ScenarioOptions& opt) {
    POC_EXPECTS(opt.epochs >= 1);
    validate_events(initial_pool, events, opt);
    util::Rng rng(opt.seed);

    market::OfferPool pool = initial_pool;
    net::TrafficMatrix tm = initial_tm;
    std::vector<EpochOutcome> outcomes;

    // Shared tree cache across epochs (see ScenarioOptions): the pools
    // built by with_withheld_links / with_scaled_bid keep the same
    // Graph, so the cache-key contract (fixed link ids and lengths)
    // holds for the whole scenario.
    net::PathCache path_cache(1, opt.path_cache_repair_budget);
    core::ProvisioningRequest request = opt.request;
    core::FlowSimOptions flow_opt;
    if (opt.use_path_cache) {
        request.oracle.path_cache = &path_cache;
        flow_opt.path_cache = &path_cache;
    }
    flow_opt.routing = opt.flow_routing;
    flow_opt.flow_shards = opt.flow_shards;
    flow_opt.sssp_threads = opt.flow_threads;
    // Warm-start state across the scenario's per-epoch auctions: small
    // offer-set deltas (withheld links, failures) reuse the previous
    // epoch's memo; demand changes alter the oracle fingerprint and
    // fall back to cold automatically.
    market::DeltaReclearState delta_state;
    if (opt.use_delta_reclear && request.auction.delta == nullptr) {
        request.auction.delta = &delta_state;
    }

    // Links failed so far (withheld from every future pool).
    std::optional<core::ProvisionedBackbone> last_backbone;

    Simulator simulator;
    for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
        simulator.schedule_at(static_cast<double>(epoch), [&, epoch](Simulator&) {
            path_cache.advance_epoch();
            EpochOutcome out;
            out.epoch = epoch;

            // Apply this epoch's events.
            for (const ScenarioEvent& ev : events) {
                if (ev.epoch != epoch) continue;
                out.applied_events.push_back(describe(ev));
                switch (ev.kind) {
                    case ScenarioEvent::Kind::kDemandGrowth:
                        tm = topo::scale_traffic(tm, ev.factor);
                        break;
                    case ScenarioEvent::Kind::kBpRecall: {
                        const market::BpId bp{ev.bp};
                        pool = market::with_withheld_links(pool, bp,
                                                           recall_links(pool, bp, ev.fraction));
                        break;
                    }
                    case ScenarioEvent::Kind::kLinkFailure: {
                        // Fail random links from the last provisioned
                        // backbone (failures hit in-service circuits).
                        if (!last_backbone) break;
                        auto active = last_backbone->selected.active_links();
                        std::vector<net::LinkId> non_virtual;
                        for (const net::LinkId l : active) {
                            if (pool.is_offered(l) && !pool.is_virtual(l)) {
                                non_virtual.push_back(l);
                            }
                        }
                        const std::size_t k = std::min(ev.count, non_virtual.size());
                        const auto picks =
                            rng.sample_without_replacement(non_virtual.size(), k);
                        for (const std::size_t p : picks) {
                            const net::LinkId failed = non_virtual[p];
                            pool = market::with_withheld_links(pool, pool.owner(failed),
                                                               {failed});
                        }
                        break;
                    }
                    case ScenarioEvent::Kind::kPriceShift:
                        pool = market::with_scaled_bid(pool, market::BpId{ev.bp}, ev.factor);
                        break;
                }
            }

            out.offered_links = pool.offered_links().size();
            out.total_demand_gbps = net::total_demand(tm);

            auto backbone = core::provision(pool, tm, request);
            if (backbone) {
                out.provisioned = true;
                out.outlay = backbone->monthly_outlay();
                out.selected_links = backbone->auction.selection.links.size();

                double pob_sum = 0.0;
                std::size_t winners = 0;
                for (const market::BpOutcome& bo : backbone->auction.outcomes) {
                    if (!bo.selected_links.empty()) {
                        pob_sum += bo.pob;
                        ++winners;
                    }
                }
                out.mean_pob = winners > 0 ? pob_sum / static_cast<double>(winners) : 0.0;

                std::vector<bool> is_virtual(pool.graph().link_count(), false);
                for (const net::LinkId l : pool.virtual_links().links()) {
                    is_virtual[l.index()] = true;
                }
                out.flows = core::simulate_flows(backbone->selected, tm, is_virtual, flow_opt);
                last_backbone = std::move(backbone);
            }
            outcomes.push_back(std::move(out));
            if (opt.on_epoch) opt.on_epoch(outcomes.back());
        });
    }
    simulator.run();
    POC_ENSURES(outcomes.size() == opt.epochs);
    return outcomes;
}

}  // namespace poc::sim
