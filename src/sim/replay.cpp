#include "sim/replay.hpp"

#include <cstring>
#include <utility>

#include "util/state_history.hpp"

namespace poc::sim {

void write_rng_state(util::BinaryWriter& w, const util::RngState& st) {
    for (const std::uint64_t s : st.s) w.u64(s);
    w.boolean(st.have_spare_normal);
    w.f64(st.spare_normal);
}

util::RngState read_rng_state(util::BinaryReader& r) {
    util::RngState st;
    for (std::uint64_t& s : st.s) s = r.u64();
    st.have_spare_normal = r.boolean();
    st.spare_normal = r.f64();
    return st;
}

void write_links(util::BinaryWriter& w, const std::vector<net::LinkId>& links) {
    w.u64(links.size());
    for (const net::LinkId l : links) w.u32(l.value());
}

std::vector<net::LinkId> read_links(util::BinaryReader& r) {
    const std::uint64_t n = r.u64();
    std::vector<net::LinkId> links;
    links.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) links.push_back(net::LinkId{r.u32()});
    return links;
}

void write_epoch_record(util::BinaryWriter& w, const EpochRecord& rec) {
    w.u64(rec.epoch);
    w.boolean(rec.provisioned);
    w.boolean(rec.degraded_mode);
    w.boolean(rec.breaker_open);
    w.f64(rec.demand_factor);
    w.f64(rec.demand_gbps);
    w.f64(rec.delivered_fraction);
    w.f64(rec.max_utilization);
    w.f64(rec.stretch);
    w.i64(rec.outlay.micros());
    w.u64(rec.retry_attempts);
}

EpochRecord read_epoch_record(util::BinaryReader& r) {
    EpochRecord rec;
    rec.epoch = r.u64();
    rec.provisioned = r.boolean();
    rec.degraded_mode = r.boolean();
    rec.breaker_open = r.boolean();
    rec.demand_factor = r.f64();
    rec.demand_gbps = r.f64();
    rec.delivered_fraction = r.f64();
    rec.max_utilization = r.f64();
    rec.stretch = r.f64();
    rec.outlay = util::Money::from_micros(r.i64());
    rec.retry_attempts = r.u64();
    return rec;
}

std::size_t decode_records(const std::vector<util::JournalRecord>& records,
                           std::vector<DecodedRecord>& out,
                           std::map<std::uint16_t, std::string>& bases) {
    for (const util::JournalRecord& rec : records) {
        const auto base_type = static_cast<std::uint16_t>(rec.type & ~kRecDeltaFlag);
        if (base_type < kRecEpochBegin || base_type > kRecEpochEnd) return out.size();
        std::string payload;
        if ((rec.type & kRecDeltaFlag) != 0) {
            const auto it = bases.find(base_type);
            if (it == bases.end()) return out.size();
            try {
                payload = util::xor_delta_decode(it->second, rec.payload);
            } catch (const util::StateHistoryError&) {
                return out.size();
            }
        } else {
            payload = rec.payload;
        }
        if (payload.size() < sizeof(std::uint64_t)) return out.size();
        std::uint64_t epoch = 0;
        std::memcpy(&epoch, payload.data(), sizeof epoch);
        bases[base_type] = payload;
        out.push_back({base_type, std::move(payload), epoch});
    }
    return out.size();
}

namespace {

/// Bit-pattern of a double, for exact fingerprint comparison.
std::uint64_t f64_bits(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::char_traits<char>::copy(reinterpret_cast<char*>(&bits),
                                 reinterpret_cast<const char*>(&v), sizeof bits);
    return bits;
}

}  // namespace

std::string runtime_meta_fingerprint(const market::OfferPool& pool,
                                     const net::TrafficMatrix& tm,
                                     const RuntimeOptions& opt) {
    util::BinaryWriter w;
    w.str("poc-runtime-v2");
    w.u64(opt.epochs);
    w.u64(opt.seed);
    w.u64(f64_bits(opt.demand_jitter));
    w.u8(static_cast<std::uint8_t>(opt.request.constraint));
    w.boolean(opt.request.auction.exact);
    // Semantic data-plane selection (RuntimeOptions::flow_routing):
    // epoch records differ between modes, so a resume must match. The
    // shard/thread counts are deliberately NOT here — they are engine
    // knobs, bit-identical at every value (DESIGN.md §9).
    w.u8(static_cast<std::uint8_t>(opt.flow_routing));
    w.u64(pool.offered_links().size());
    w.u64(tm.size());
    w.u64(f64_bits(net::total_demand(tm)));
    return w.bytes();
}

void ReplayCursor::apply(const DecodedRecord& rec) {
    util::BinaryReader r(rec.payload);
    switch (rec.type) {
        case kRecEpochBegin: {
            const std::uint64_t epoch = r.u64();
            const double demand_factor = r.f64();
            const util::RngState st = read_rng_state(r);
            POC_EXPECTS(r.exhausted());
            POC_EXPECTS(!has_pending);
            POC_EXPECTS(epoch == state.epochs.size());
            pending = PendingEpoch{};
            pending.epoch = epoch;
            pending.demand_factor = demand_factor;
            state.rng = st;
            pending.have_begin = true;
            has_pending = true;
            break;
        }
        case kRecAuction: {
            const std::uint64_t epoch = r.u64();
            std::optional<market::AuctionResult> auction;
            if (r.boolean()) auction = market::read_auction_result(r);
            const bool degraded = r.boolean();
            const bool breaker_open = r.boolean();
            const std::uint64_t attempts = r.u64();
            POC_EXPECTS(r.exhausted());
            POC_EXPECTS(has_pending && epoch == pending.epoch);
            POC_EXPECTS(!pending.have_auction);
            pending.auction = std::move(auction);
            pending.degraded = degraded;
            pending.breaker_open = breaker_open;
            pending.attempts = attempts;
            pending.have_auction = true;
            break;
        }
        case kRecProvision: {
            const std::uint64_t epoch = r.u64();
            std::vector<net::LinkId> selected = read_links(r);
            POC_EXPECTS(r.exhausted());
            POC_EXPECTS(has_pending && epoch == pending.epoch);
            POC_EXPECTS(pending.have_auction && !pending.have_provision);
            pending.selected = std::move(selected);
            pending.have_provision = true;
            break;
        }
        case kRecFlows: {
            const std::uint64_t epoch = r.u64();
            const double offered = r.f64();
            const double routed = r.f64();
            const double max_util = r.f64();
            const double stretch = r.f64();
            POC_EXPECTS(r.exhausted());
            POC_EXPECTS(has_pending && epoch == pending.epoch);
            POC_EXPECTS(pending.have_provision && !pending.have_flows);
            pending.offered_gbps = offered;
            pending.routed_gbps = routed;
            pending.max_utilization = max_util;
            pending.stretch = stretch;
            pending.have_flows = true;
            break;
        }
        case kRecSettlement: {
            const std::uint64_t epoch = r.u64();
            const std::uint64_t n = r.u64();
            std::vector<core::Transfer> transfers;
            transfers.reserve(n);
            for (std::uint64_t i = 0; i < n; ++i) {
                transfers.push_back(core::read_transfer(r));
            }
            POC_EXPECTS(r.exhausted());
            POC_EXPECTS(has_pending && epoch == pending.epoch);
            POC_EXPECTS(pending.have_flows && !pending.have_settlement);
            for (const core::Transfer& t : transfers) {
                state.ledger.record(t.from, t.to, t.kind, t.amount, t.memo);
            }
            pending.have_settlement = true;
            break;
        }
        case kRecEpochEnd: {
            EpochRecord done = read_epoch_record(r);
            const util::RngState st = read_rng_state(r);
            POC_EXPECTS(r.exhausted());
            POC_EXPECTS(has_pending && pending.have_settlement);
            POC_EXPECTS(done.epoch == pending.epoch);
            state.rng = st;
            if (done.breaker_open) ++state.breaker_open_epochs;
            state.epochs.push_back(done);
            state.auctions.push_back(std::move(pending.auction));
            has_pending = false;
            ++replayed_epochs;
            break;
        }
        default:
            throw util::JournalError("unknown journal record type " +
                                     std::to_string(rec.type));
    }
}

}  // namespace poc::sim
