// Multi-epoch market scenarios over the POC: each epoch the POC
// re-runs its bandwidth auction against the current offers and demand,
// provisions, and measures. Events between epochs model the dynamics
// the paper discusses in section 3.3: a large CSP-turned-BP recalling
// leased capacity for its own use, link failures, demand growth, and
// per-BP price shifts.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/flow_sim.hpp"
#include "core/provisioning.hpp"
#include "market/manipulation.hpp"
#include "market/pricing.hpp"
#include "sim/event_queue.hpp"

namespace poc::sim {

/// A scripted event applied at the start of its epoch.
struct ScenarioEvent {
    enum class Kind {
        /// Multiply every demand by `factor`.
        kDemandGrowth,
        /// BP `bp` withdraws `fraction` of its offered links (largest
        /// capacity first): the overbuy-then-recall dynamic.
        kBpRecall,
        /// `count` random selected links fail (withdrawn from offers).
        kLinkFailure,
        /// BP `bp` scales all its prices by `factor`.
        kPriceShift,
    };

    Kind kind{};
    std::size_t epoch = 0;  // applied before this epoch's auction
    std::uint32_t bp = 0;
    double factor = 1.0;
    double fraction = 0.0;
    std::size_t count = 0;
};

/// Per-epoch measurements.
struct EpochOutcome {
    std::size_t epoch = 0;
    bool provisioned = false;
    util::Money outlay;
    std::size_t selected_links = 0;
    std::size_t offered_links = 0;
    double total_demand_gbps = 0.0;
    /// Mean payment-over-bid across BPs that won links.
    double mean_pob = 0.0;
    core::FlowReport flows;
    std::vector<std::string> applied_events;
};

struct ScenarioOptions {
    std::size_t epochs = 4;
    core::ProvisioningRequest request;
    std::uint64_t seed = 99;
    /// Share one net::PathCache across the scenario's auctions and flow
    /// simulations (epoch-invalidated), exactly as the chaos engine
    /// does. Outcomes are bit-identical with it on or off.
    bool use_path_cache = true;
    /// Dynamic-repair budget for that cache (net/sssp_repair.hpp); 0 =
    /// off. Bit-identical either way.
    std::size_t path_cache_repair_budget = 8;
    /// Carry one market::DeltaReclearState across the scenario's
    /// auctions (market/delta_reclear.hpp). Bit-identical either way.
    bool use_delta_reclear = true;
    /// Data plane for the per-epoch flow measurement (DESIGN.md §9):
    /// kGreedy = seed behavior, kPrimary = sharded shortest-path
    /// routing. Semantic — epoch outcomes differ between modes.
    core::FlowRouting flow_routing = core::FlowRouting::kGreedy;
    /// kPrimary shard/thread counts (engine knobs: bit-identical for
    /// every value; ignored under kGreedy).
    std::size_t flow_shards = 1;
    std::size_t flow_threads = 1;
    /// Called after each epoch's outcome is measured (examples use it
    /// to dump per-epoch observability snapshots). Must not mutate
    /// scenario state.
    std::function<void(const EpochOutcome&)> on_epoch;
};

/// Run a scripted scenario. The pool's graph must outlive the call.
/// Returns one outcome per epoch (epochs after an unprovisionable one
/// still run; `provisioned` marks failures). Events are validated up
/// front: an `epoch` at or beyond `opt.epochs`, a `fraction` outside
/// [0, 1], a non-positive `factor`, or a `bp` with no bid in the pool
/// throws util::ContractViolation.
std::vector<EpochOutcome> run_scenario(const market::OfferPool& initial_pool,
                                       const net::TrafficMatrix& initial_tm,
                                       const std::vector<ScenarioEvent>& events,
                                       const ScenarioOptions& opt = {});

}  // namespace poc::sim
