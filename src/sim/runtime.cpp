#include "sim/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/flow_sim.hpp"
#include "obs/trace.hpp"
#include "util/journal.hpp"

namespace poc::sim {

const char* stage_name(Stage stage) {
    switch (stage) {
        case Stage::kAuction: return "auction";
        case Stage::kProvisioning: return "provisioning";
        case Stage::kFlowSim: return "flow-sim";
        case Stage::kSettlement: return "settlement";
    }
    return "?";
}

CrashInjected::CrashInjected(std::size_t epoch, Stage stage, HookPoint point)
    : std::runtime_error("crash injected at epoch " + std::to_string(epoch) + ", stage " +
                         stage_name(stage)),
      epoch_(epoch),
      stage_(stage),
      point_(point) {}

namespace {

// Journal record types (kRec* values are part of the on-disk format;
// never renumber).
constexpr std::uint16_t kRecEpochBegin = 1;
constexpr std::uint16_t kRecAuction = 2;
constexpr std::uint16_t kRecProvision = 3;
constexpr std::uint16_t kRecFlows = 4;
constexpr std::uint16_t kRecSettlement = 5;
constexpr std::uint16_t kRecEpochEnd = 6;

void write_rng_state(util::BinaryWriter& w, const util::RngState& st) {
    for (const std::uint64_t s : st.s) w.u64(s);
    w.boolean(st.have_spare_normal);
    w.f64(st.spare_normal);
}

util::RngState read_rng_state(util::BinaryReader& r) {
    util::RngState st;
    for (std::uint64_t& s : st.s) s = r.u64();
    st.have_spare_normal = r.boolean();
    st.spare_normal = r.f64();
    return st;
}

void write_links(util::BinaryWriter& w, const std::vector<net::LinkId>& links) {
    w.u64(links.size());
    for (const net::LinkId l : links) w.u32(l.value());
}

std::vector<net::LinkId> read_links(util::BinaryReader& r) {
    const std::uint64_t n = r.u64();
    std::vector<net::LinkId> links;
    links.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) links.push_back(net::LinkId{r.u32()});
    return links;
}

void write_epoch_record(util::BinaryWriter& w, const EpochRecord& rec) {
    w.u64(rec.epoch);
    w.boolean(rec.provisioned);
    w.boolean(rec.degraded_mode);
    w.boolean(rec.breaker_open);
    w.f64(rec.demand_factor);
    w.f64(rec.demand_gbps);
    w.f64(rec.delivered_fraction);
    w.f64(rec.max_utilization);
    w.f64(rec.stretch);
    w.i64(rec.outlay.micros());
    w.u64(rec.retry_attempts);
}

EpochRecord read_epoch_record(util::BinaryReader& r) {
    EpochRecord rec;
    rec.epoch = r.u64();
    rec.provisioned = r.boolean();
    rec.degraded_mode = r.boolean();
    rec.breaker_open = r.boolean();
    rec.demand_factor = r.f64();
    rec.demand_gbps = r.f64();
    rec.delivered_fraction = r.f64();
    rec.max_utilization = r.f64();
    rec.stretch = r.f64();
    rec.outlay = util::Money::from_micros(r.i64());
    rec.retry_attempts = r.u64();
    return rec;
}

/// Bit-pattern of a double, for exact fingerprint comparison.
std::uint64_t f64_bits(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::char_traits<char>::copy(reinterpret_cast<char*>(&bits),
                                 reinterpret_cast<const char*>(&v), sizeof bits);
    return bits;
}

/// Restores the fallible oracle's deadline pointer on every exit path
/// of a clearing attempt (including TransientError unwinds), so a
/// dead Deadline is never left dangling into the next attempt.
class DeadlineScope {
public:
    DeadlineScope(market::FallibleOracle& oracle, const util::Deadline& deadline) noexcept
        : oracle_(oracle) {
        oracle_.set_deadline(&deadline);
    }
    ~DeadlineScope() { oracle_.set_deadline(nullptr); }
    DeadlineScope(const DeadlineScope&) = delete;
    DeadlineScope& operator=(const DeadlineScope&) = delete;

private:
    market::FallibleOracle& oracle_;
};

/// In-flight epoch: which stages have durable records, and the
/// reconstructed results of the ones that do.
struct PendingEpoch {
    std::size_t epoch = 0;
    double demand_factor = 1.0;
    bool have_begin = false;
    bool have_auction = false;
    bool have_provision = false;
    bool have_flows = false;
    bool have_settlement = false;

    std::optional<market::AuctionResult> auction;
    bool degraded = false;
    bool breaker_open = false;
    std::uint64_t attempts = 0;
    std::vector<net::LinkId> selected;

    double offered_gbps = 0.0;
    double routed_gbps = 0.0;
    double max_utilization = 0.0;
    double stretch = 1.0;
};

}  // namespace

struct EpochRuntime::Impl {
    const market::OfferPool& pool;
    const net::TrafficMatrix& tm;
    RuntimeOptions opt;

    util::Rng rng;
    util::Retrier retrier;
    util::Journal journal;
    RuntimeOutcome outcome;
    PendingEpoch pending;
    bool has_pending = false;
    /// Shared across every epoch's oracle queries and flow sims (see
    /// RuntimeOptions::use_path_cache); epoch-invalidated in run_epoch.
    net::PathCache path_cache;

    Impl(const market::OfferPool& pool_, const net::TrafficMatrix& tm_, RuntimeOptions opt_)
        : pool(pool_),
          tm(tm_),
          opt(std::move(opt_)),
          rng(opt.seed),
          retrier(opt.retry, opt.breaker) {
        POC_EXPECTS(opt.epochs >= 1);
        POC_EXPECTS(opt.demand_jitter >= 0.0 && opt.demand_jitter < 1.0);
    }

    /// Configuration fingerprint stored in the journal header. Engine
    /// knobs that cannot change results (threads, cache) are excluded
    /// on purpose: a run may resume under a different engine config
    /// and still be bit-identical (DESIGN.md §5).
    std::string meta_fingerprint() const {
        util::BinaryWriter w;
        w.str("poc-runtime-v1");
        w.u64(opt.epochs);
        w.u64(opt.seed);
        w.u64(f64_bits(opt.demand_jitter));
        w.u8(static_cast<std::uint8_t>(opt.request.constraint));
        w.boolean(opt.request.auction.exact);
        w.u64(pool.offered_links().size());
        w.u64(tm.size());
        w.u64(f64_bits(net::total_demand(tm)));
        return w.bytes();
    }

    void hook(std::size_t epoch, Stage stage, HookPoint point) {
        if (opt.stage_hook) opt.stage_hook(epoch, stage, point);
    }

    void append(std::uint16_t type, const util::BinaryWriter& w) {
        journal.append(type, w.bytes());
    }

    net::TrafficMatrix scaled_tm(double factor) const {
        net::TrafficMatrix scaled = tm;
        for (net::Demand& d : scaled) d.gbps *= factor;
        return scaled;
    }

    /// Apply one journal record to the reconstructed state. Records
    /// arrive in append order; the journal layer has already verified
    /// their checksums.
    void replay_record(const util::JournalRecord& rec) {
        util::BinaryReader r(rec.payload);
        switch (rec.type) {
            case kRecEpochBegin: {
                pending = PendingEpoch{};
                pending.epoch = r.u64();
                pending.demand_factor = r.f64();
                rng.set_state(read_rng_state(r));
                pending.have_begin = true;
                has_pending = true;
                break;
            }
            case kRecAuction: {
                POC_EXPECTS(has_pending && r.u64() == pending.epoch);
                if (r.boolean()) pending.auction = market::read_auction_result(r);
                pending.degraded = r.boolean();
                pending.breaker_open = r.boolean();
                pending.attempts = r.u64();
                pending.have_auction = true;
                break;
            }
            case kRecProvision: {
                POC_EXPECTS(has_pending && r.u64() == pending.epoch);
                pending.selected = read_links(r);
                pending.have_provision = true;
                break;
            }
            case kRecFlows: {
                POC_EXPECTS(has_pending && r.u64() == pending.epoch);
                pending.offered_gbps = r.f64();
                pending.routed_gbps = r.f64();
                pending.max_utilization = r.f64();
                pending.stretch = r.f64();
                pending.have_flows = true;
                break;
            }
            case kRecSettlement: {
                POC_EXPECTS(has_pending && r.u64() == pending.epoch);
                const std::uint64_t n = r.u64();
                for (std::uint64_t i = 0; i < n; ++i) {
                    const core::Transfer t = core::read_transfer(r);
                    outcome.ledger.record(t.from, t.to, t.kind, t.amount, t.memo);
                }
                pending.have_settlement = true;
                break;
            }
            case kRecEpochEnd: {
                POC_EXPECTS(has_pending);
                EpochRecord done = read_epoch_record(r);
                POC_EXPECTS(done.epoch == pending.epoch);
                rng.set_state(read_rng_state(r));
                if (done.breaker_open) ++outcome.breaker_open_epochs;
                outcome.epochs.push_back(done);
                outcome.auctions.push_back(std::move(pending.auction));
                has_pending = false;
                ++outcome.replayed_epochs;
                break;
            }
            default:
                throw util::JournalError("unknown journal record type " +
                                         std::to_string(rec.type));
        }
        POC_EXPECTS(r.exhausted());
    }

    /// Open or create the journal and replay its valid prefix.
    void recover() {
        const std::string meta = meta_fingerprint();
        util::Journal::ScanResult scan;
        bool opened = false;
        try {
            journal = util::Journal::open(opt.journal_path, scan);
            opened = true;
        } catch (const util::JournalError&) {
            // Missing or header-corrupt journal: start fresh. A corrupt
            // *record* never lands here (open() truncates those).
        }
        if (!opened) {
            journal = util::Journal::create(opt.journal_path, meta);
            return;
        }
        if (scan.meta != meta) {
            throw util::JournalError(
                "journal at " + opt.journal_path +
                " was written by a different run configuration; refusing to replay");
        }
        outcome.tail_truncated = scan.tail_truncated;
        const auto start = std::chrono::steady_clock::now();
        for (const util::JournalRecord& rec : scan.records) {
            replay_record(rec);
            ++outcome.replayed_records;
        }
        const auto dur = std::chrono::steady_clock::now() - start;
        outcome.replay_ms =
            std::chrono::duration<double, std::milli>(dur).count();
        POC_OBS_HISTOGRAM("sim.runtime.replay_ms", 0.0, 1000.0, 50, outcome.replay_ms);
        POC_OBS_COUNT("sim.runtime.replayed_records", outcome.replayed_records);
    }

    /// The auction stage's computation: clear under the retry/breaker
    /// budget; degrade to the relaxed constraint when the primary path
    /// is exhausted or fast-failed.
    void clear_epoch(std::size_t epoch, const net::TrafficMatrix& epoch_tm) {
        pending.breaker_open = retrier.breaker_state() == util::BreakerState::kOpen;
        const std::uint64_t attempts_before = retrier.stats().attempts;

        market::OracleOptions oracle_opt = opt.request.oracle;
        if (opt.use_path_cache) oracle_opt.path_cache = &path_cache;
        const market::AcceptabilityOracle base(pool.graph(), epoch_tm, opt.request.constraint,
                                               oracle_opt);
        market::FallibleOracle::FaultHook fault;
        if (opt.oracle_fault) {
            fault = [this, epoch] { opt.oracle_fault(epoch); };
        }
        market::FallibleOracle guarded(base, std::move(fault));

        bool primary_failed = false;
        try {
            pending.auction = retrier.call([&](const util::Deadline& deadline) {
                const DeadlineScope scope(guarded, deadline);
                return market::run_auction(pool, guarded, opt.request.auction);
            });
        } catch (const util::BreakerOpen&) {
            primary_failed = true;
        } catch (const util::RetryExhausted&) {
            primary_failed = true;
        }

        if (primary_failed && opt.allow_constraint_relaxation) {
            // Graceful degradation (same contract as chaos recovery):
            // re-clear under plain load feasibility with a fresh,
            // healthy oracle — the sick dependency is bypassed, not
            // hammered.
            const market::AcceptabilityOracle relaxed(pool.graph(), epoch_tm,
                                                      market::ConstraintKind::kLoad,
                                                      oracle_opt);
            pending.auction = market::run_auction(pool, relaxed, opt.request.auction);
            pending.degraded = pending.auction.has_value();
            if (pending.degraded) POC_OBS_INC("sim.runtime.degraded_epochs");
        }
        pending.attempts = retrier.stats().attempts - attempts_before;
        POC_OBS_COUNT("sim.runtime.retry_attempts", pending.attempts);
        if (pending.breaker_open) {
            ++outcome.breaker_open_epochs;
            POC_OBS_INC("sim.runtime.breaker_open_epochs");
        }
    }

    /// The settlement stage's computation: record this epoch's money
    /// flows (section 3.2's structure, break-even by construction) and
    /// return them for journaling.
    std::vector<core::Transfer> settle_epoch(std::size_t epoch) {
        const std::size_t before = outcome.ledger.transfers().size();
        if (pending.auction) {
            const market::AuctionResult& a = *pending.auction;
            const core::Party poc{core::PartyKind::kPoc, 0};
            const std::string tag = "epoch " + std::to_string(epoch);
            for (const market::BpOutcome& o : a.outcomes) {
                outcome.ledger.record(poc, {core::PartyKind::kBandwidthProvider, o.bp.value()},
                                      core::TransferKind::kLinkLease, o.payment,
                                      tag + " lease: " + o.name);
            }
            outcome.ledger.record(poc, {core::PartyKind::kExternalIsp, 0},
                                  core::TransferKind::kIspContract, a.virtual_cost,
                                  tag + " virtual-link contracts");
            // Cost recovery: the access side covers the outlay exactly
            // (the nonprofit's zero-margin target).
            outcome.ledger.record({core::PartyKind::kLmp, 0}, poc,
                                  core::TransferKind::kPocAccess, a.total_outlay,
                                  tag + " access cost recovery");
        }
        return {outcome.ledger.transfers().begin() +
                    static_cast<std::ptrdiff_t>(before),
                outcome.ledger.transfers().end()};
    }

    void run_epoch(std::size_t epoch) {
        POC_OBS_SPAN("sim.runtime.epoch");
        path_cache.advance_epoch();
        if (!has_pending) {
            pending = PendingEpoch{};
            pending.epoch = epoch;
            has_pending = true;
        }
        POC_EXPECTS(pending.epoch == epoch);

        if (!pending.have_begin) {
            // Always consume one uniform draw, even with zero jitter:
            // the RNG stream position is part of the durable state and
            // every epoch must advance (and journal) it.
            pending.demand_factor =
                rng.uniform(1.0 - opt.demand_jitter, 1.0 + opt.demand_jitter);
            util::BinaryWriter w;
            w.u64(epoch);
            w.f64(pending.demand_factor);
            write_rng_state(w, rng.state());
            append(kRecEpochBegin, w);
            pending.have_begin = true;
        }
        const net::TrafficMatrix epoch_tm = scaled_tm(pending.demand_factor);

        if (!pending.have_auction) {
            hook(epoch, Stage::kAuction, HookPoint::kBefore);
            clear_epoch(epoch, epoch_tm);
            hook(epoch, Stage::kAuction, HookPoint::kMid);
            util::BinaryWriter w;
            w.u64(epoch);
            w.boolean(pending.auction.has_value());
            if (pending.auction) market::write_auction_result(w, *pending.auction);
            w.boolean(pending.degraded);
            w.boolean(pending.breaker_open);
            w.u64(pending.attempts);
            append(kRecAuction, w);
            pending.have_auction = true;
            hook(epoch, Stage::kAuction, HookPoint::kAfter);
        }

        if (!pending.have_provision) {
            hook(epoch, Stage::kProvisioning, HookPoint::kBefore);
            pending.selected =
                pending.auction ? pending.auction->selection.links : std::vector<net::LinkId>{};
            hook(epoch, Stage::kProvisioning, HookPoint::kMid);
            util::BinaryWriter w;
            w.u64(epoch);
            write_links(w, pending.selected);
            append(kRecProvision, w);
            pending.have_provision = true;
            hook(epoch, Stage::kProvisioning, HookPoint::kAfter);
        }

        if (!pending.have_flows) {
            hook(epoch, Stage::kFlowSim, HookPoint::kBefore);
            if (pending.auction) {
                std::vector<bool> is_virtual(pool.graph().link_count(), false);
                for (const net::LinkId l : pool.virtual_links().links()) {
                    is_virtual[l.index()] = true;
                }
                const net::Subgraph backbone(pool.graph(), pending.selected);
                core::FlowSimOptions flow_opt;
                if (opt.use_path_cache) flow_opt.path_cache = &path_cache;
                const core::FlowReport flows =
                    core::simulate_flows(backbone, epoch_tm, is_virtual, flow_opt);
                pending.offered_gbps = flows.total_offered_gbps;
                pending.routed_gbps = flows.total_routed_gbps;
                pending.max_utilization = flows.max_utilization;
                pending.stretch = flows.stretch;
            } else {
                pending.offered_gbps = net::total_demand(epoch_tm);
            }
            hook(epoch, Stage::kFlowSim, HookPoint::kMid);
            util::BinaryWriter w;
            w.u64(epoch);
            w.f64(pending.offered_gbps);
            w.f64(pending.routed_gbps);
            w.f64(pending.max_utilization);
            w.f64(pending.stretch);
            append(kRecFlows, w);
            pending.have_flows = true;
            hook(epoch, Stage::kFlowSim, HookPoint::kAfter);
        }

        if (!pending.have_settlement) {
            hook(epoch, Stage::kSettlement, HookPoint::kBefore);
            const std::vector<core::Transfer> transfers = settle_epoch(epoch);
            hook(epoch, Stage::kSettlement, HookPoint::kMid);
            util::BinaryWriter w;
            w.u64(epoch);
            w.u64(transfers.size());
            for (const core::Transfer& t : transfers) core::write_transfer(w, t);
            append(kRecSettlement, w);
            pending.have_settlement = true;
            hook(epoch, Stage::kSettlement, HookPoint::kAfter);
        }

        EpochRecord rec;
        rec.epoch = epoch;
        rec.provisioned = pending.auction.has_value();
        rec.degraded_mode = pending.degraded;
        rec.breaker_open = pending.breaker_open;
        rec.demand_factor = pending.demand_factor;
        rec.demand_gbps = pending.offered_gbps;
        rec.delivered_fraction =
            pending.offered_gbps > 0.0
                ? std::min(pending.routed_gbps, pending.offered_gbps) / pending.offered_gbps
                : 0.0;
        rec.max_utilization = pending.max_utilization;
        rec.stretch = pending.stretch;
        rec.outlay = pending.auction ? pending.auction->total_outlay : util::Money{};
        rec.retry_attempts = pending.attempts;

        util::BinaryWriter w;
        write_epoch_record(w, rec);
        write_rng_state(w, rng.state());
        append(kRecEpochEnd, w);

        outcome.epochs.push_back(rec);
        outcome.auctions.push_back(std::move(pending.auction));
        has_pending = false;
        POC_OBS_INC("sim.runtime.epochs");
    }

    RuntimeOutcome run() {
        POC_OBS_SPAN("sim.runtime.run");
        if (!opt.journal_path.empty()) recover();
        // After replay, any in-flight epoch is exactly the next one:
        // run_epoch() resumes it from its first incomplete stage.
        while (outcome.epochs.size() < opt.epochs) run_epoch(outcome.epochs.size());
        outcome.final_rng = rng.state();
        outcome.retry = retrier.stats();
        return std::move(outcome);
    }
};

EpochRuntime::EpochRuntime(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                           RuntimeOptions opt)
    : impl_(std::make_unique<Impl>(pool, tm, std::move(opt))) {}

EpochRuntime::~EpochRuntime() = default;

RuntimeOutcome EpochRuntime::run() { return impl_->run(); }

RuntimeOutcome run_with_recovery(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                                 const RuntimeOptions& opt, const std::vector<Fault>& trace) {
    POC_EXPECTS(!opt.journal_path.empty());

    struct CrashPoint {
        std::size_t epoch;
        Stage stage;
        bool fired = false;
    };
    auto crashes = std::make_shared<std::vector<CrashPoint>>();
    struct Window {
        std::size_t start;
        std::size_t end;
    };
    std::vector<Window> degraded_windows;
    for (const Fault& f : trace) {
        if (f.kind == FaultKind::kCrash) {
            POC_EXPECTS(f.crash_stage < kStageCount);
            crashes->push_back({f.start_epoch, static_cast<Stage>(f.crash_stage), false});
        } else if (f.kind == FaultKind::kOracleDegraded) {
            degraded_windows.push_back({f.start_epoch, f.start_epoch + f.repair_epochs});
        }
    }

    RuntimeOptions supervised = opt;
    supervised.stage_hook = [user = opt.stage_hook, crashes](std::size_t epoch, Stage stage,
                                                             HookPoint point) {
        if (user) user(epoch, stage, point);
        if (point != HookPoint::kMid) return;
        for (CrashPoint& c : *crashes) {
            if (!c.fired && c.epoch == epoch && c.stage == stage) {
                // Each scheduled crash kills the process exactly once;
                // the restarted process survives the same point.
                c.fired = true;
                throw CrashInjected(epoch, stage, point);
            }
        }
    };
    supervised.oracle_fault = [user = opt.oracle_fault,
                               windows = std::move(degraded_windows)](std::size_t epoch) {
        if (user) user(epoch);
        for (const Window& w : windows) {
            if (epoch >= w.start && epoch < w.end) {
                throw util::TransientError("oracle degraded by chaos fault (epoch " +
                                           std::to_string(epoch) + ")");
            }
        }
    };

    for (;;) {
        try {
            return EpochRuntime(pool, tm, supervised).run();
        } catch (const CrashInjected&) {
            POC_OBS_INC("sim.runtime.crashes");
            // "Restart the process": loop around and recover from the
            // journal with a fresh runtime (fresh breaker, fresh RNG
            // object — all durable state comes from the journal).
        }
    }
}

}  // namespace poc::sim
