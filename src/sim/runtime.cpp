#include "sim/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <utility>

#include "core/flow_sim.hpp"
#include "market/delta_reclear.hpp"
#include "obs/trace.hpp"
#include "sim/replay.hpp"
#include "util/fault_injection.hpp"
#include "util/journal.hpp"

namespace poc::sim {

const char* stage_name(Stage stage) {
    switch (stage) {
        case Stage::kAuction: return "auction";
        case Stage::kProvisioning: return "provisioning";
        case Stage::kFlowSim: return "flow-sim";
        case Stage::kSettlement: return "settlement";
        case Stage::kSnapshotWrite: return "snapshot";
        case Stage::kCompaction: return "compaction";
    }
    return "?";
}

CrashInjected::CrashInjected(std::size_t epoch, Stage stage, HookPoint point)
    : std::runtime_error("crash injected at epoch " + std::to_string(epoch) + ", stage " +
                         stage_name(stage)),
      epoch_(epoch),
      stage_(stage),
      point_(point) {}

namespace {

/// Version tag leading every snapshot payload (on-disk format).
constexpr std::uint64_t kStateVersion = 1;

/// Restores the fallible oracle's deadline pointer on every exit path
/// of a clearing attempt (including TransientError unwinds), so a
/// dead Deadline is never left dangling into the next attempt.
class DeadlineScope {
public:
    DeadlineScope(market::FallibleOracle& oracle, const util::Deadline& deadline) noexcept
        : oracle_(oracle) {
        oracle_.set_deadline(&deadline);
    }
    ~DeadlineScope() { oracle_.set_deadline(nullptr); }
    DeadlineScope(const DeadlineScope&) = delete;
    DeadlineScope& operator=(const DeadlineScope&) = delete;

private:
    market::FallibleOracle& oracle_;
};

}  // namespace

std::string encode_runtime_state(const RuntimeState& state) {
    POC_EXPECTS(state.epochs.size() == state.auctions.size());
    util::BinaryWriter w;
    w.u64(kStateVersion);
    w.u64(state.epochs.size());
    for (const EpochRecord& rec : state.epochs) write_epoch_record(w, rec);
    for (const std::optional<market::AuctionResult>& a : state.auctions) {
        w.boolean(a.has_value());
        if (a) market::write_auction_result(w, *a);
    }
    state.ledger.serialize(w);
    write_rng_state(w, state.rng);
    w.u64(state.breaker_open_epochs);
    return w.bytes();
}

RuntimeState decode_runtime_state(std::string_view bytes) {
    util::BinaryReader r(bytes);
    if (r.u64() != kStateVersion) {
        throw util::JournalError("unknown runtime-state version");
    }
    RuntimeState state;
    const std::uint64_t n = r.u64();
    state.epochs.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) state.epochs.push_back(read_epoch_record(r));
    state.auctions.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        if (r.boolean()) {
            state.auctions.emplace_back(market::read_auction_result(r));
        } else {
            state.auctions.emplace_back(std::nullopt);
        }
    }
    state.ledger = core::Ledger::deserialize(r);
    state.rng = read_rng_state(r);
    state.breaker_open_epochs = r.u64();
    if (!r.exhausted()) {
        throw util::JournalError("trailing bytes after runtime state");
    }
    return state;
}

struct EpochRuntime::Impl {
    const market::OfferPool& pool;
    const net::TrafficMatrix& tm;
    RuntimeOptions opt;

    util::Rng rng;
    util::Retrier retrier;
    util::Journal journal;
    RuntimeOutcome outcome;
    PendingEpoch pending;
    bool has_pending = false;
    /// Shared across every epoch's oracle queries and flow sims (see
    /// RuntimeOptions::use_path_cache); epoch-invalidated in run_epoch.
    net::PathCache path_cache;
    /// Cross-epoch auction warm start (RuntimeOptions::use_delta_reclear).
    /// Process-local like the breaker: a restarted process starts cold,
    /// which is safe because warm and cold clears are bit-identical.
    market::DeltaReclearState delta_state;
    /// Last full payload per record type in the journal file — the
    /// delta-encoding bases for future appends. Rebuilt from the file
    /// on recovery, reset by compaction.
    std::map<std::uint16_t, std::string> delta_base;
    /// Snapshot files next to the journal. Always consulted on
    /// recovery (the emitting process may have had snapshots on even
    /// if this one does not — engine knobs may flip across restarts).
    util::SnapshotStore store;
    std::optional<util::FileSnapshotSink> file_sink;
    util::SnapshotSink* sink = nullptr;

    Impl(const market::OfferPool& pool_, const net::TrafficMatrix& tm_, RuntimeOptions opt_)
        : pool(pool_),
          tm(tm_),
          opt(std::move(opt_)),
          rng(opt.seed),
          retrier(opt.retry, opt.breaker),
          path_cache(1, opt.path_cache_repair_budget) {
        POC_EXPECTS(opt.epochs >= 1);
        POC_EXPECTS(opt.demand_jitter >= 0.0 && opt.demand_jitter < 1.0);
        POC_EXPECTS(opt.snapshot_keep >= 1);
        if (!opt.journal_path.empty()) {
            store = util::SnapshotStore(opt.journal_path, opt.snapshot_keep);
        }
        if (opt.snapshot_sink != nullptr) {
            sink = opt.snapshot_sink;
        } else if (store.enabled() && opt.snapshot_interval > 0) {
            file_sink.emplace(store);
            sink = &*file_sink;
        }
    }

    /// Configuration fingerprint stored in the journal header (see
    /// runtime_meta_fingerprint): engine knobs that cannot change
    /// results are excluded on purpose, so a run may resume under a
    /// different engine config and still be bit-identical.
    std::string meta_fingerprint() const {
        return runtime_meta_fingerprint(pool, tm, opt);
    }

    void hook(std::size_t epoch, Stage stage, HookPoint point) {
        if (opt.stage_hook) opt.stage_hook(epoch, stage, point);
    }

    /// Append one record, delta-encoding against the last payload of
    /// the same type when that is smaller. The base map always tracks
    /// the full payload so a later record can delta against this one.
    void append(std::uint16_t type, const util::BinaryWriter& w) {
        const std::string& bytes = w.bytes();
        if (!journal.attached()) {
            journal.append(type, bytes);  // durability off: no-op write
            return;
        }
        if (opt.delta_encoding) {
            const auto it = delta_base.find(type);
            if (it != delta_base.end()) {
                std::string delta = util::xor_delta_encode(it->second, bytes);
                if (delta.size() < bytes.size()) {
                    it->second = bytes;
                    journal.append(static_cast<std::uint16_t>(type | kRecDeltaFlag), delta);
                    POC_OBS_COUNT("sim.runtime.delta_bytes_saved",
                                  bytes.size() - delta.size());
                    return;
                }
            }
        }
        delta_base[type] = bytes;
        journal.append(type, bytes);
    }

    net::TrafficMatrix scaled_tm(double factor) const {
        net::TrafficMatrix scaled = tm;
        for (net::Demand& d : scaled) d.gbps *= factor;
        return scaled;
    }

    /// Install a finished replay cursor as this runtime's state: the
    /// recovered epochs/ledger/RNG plus any in-flight epoch run_epoch()
    /// will resume from its first incomplete stage.
    void install_cursor(ReplayCursor&& c) {
        outcome.epochs = std::move(c.state.epochs);
        outcome.auctions = std::move(c.state.auctions);
        outcome.ledger = std::move(c.state.ledger);
        rng.set_state(c.state.rng);
        outcome.breaker_open_epochs = static_cast<std::size_t>(c.state.breaker_open_epochs);
        outcome.replayed_epochs = c.replayed_epochs;
        pending = std::move(c.pending);
        has_pending = c.has_pending;
    }

    /// Atomically rewrite the journal to header + `kept` (full
    /// payloads, re-encoded so the first record per type is full and
    /// delta chains stay self-contained). Resets the appender's base
    /// map to match the new file.
    void rewrite_journal(const std::string& meta, const std::vector<DecodedRecord>& kept) {
        std::vector<util::JournalRecord> frames;
        frames.reserve(kept.size());
        std::map<std::uint16_t, std::string> bases;
        for (const DecodedRecord& d : kept) {
            const auto it = bases.find(d.type);
            if (it != bases.end() && opt.delta_encoding) {
                std::string delta = util::xor_delta_encode(it->second, d.payload);
                if (delta.size() < d.payload.size()) {
                    it->second = d.payload;
                    frames.push_back({static_cast<std::uint16_t>(d.type | kRecDeltaFlag),
                                      std::move(delta)});
                    continue;
                }
            }
            bases[d.type] = d.payload;
            frames.push_back({d.type, d.payload});
        }
        util::Journal::RewriteStats stats;
        journal = util::Journal::rewrite(opt.journal_path, meta, frames, &stats,
                                         opt.fsync_journal);
        delta_base = std::move(bases);
        if (stats.bytes_before > stats.bytes_after) {
            POC_OBS_COUNT("sim.runtime.journal_bytes_reclaimed",
                          stats.bytes_before - stats.bytes_after);
        }
    }

    /// Recovery lattice: sweep stale temps, ground on the newest valid
    /// snapshot, then replay only the journal suffix that extends it.
    /// Defensive end to end — a corrupt snapshot falls back to an
    /// older one (or the journal alone), and a journal whose content
    /// cannot extend the grounded state is rewritten to its last good
    /// prefix with the rest recomputed deterministically. Never
    /// installs corrupt state; only a *foreign* journal (different
    /// configuration fingerprint) throws.
    void recover() {
        const std::string meta = meta_fingerprint();
        if (store.enabled()) {
            const std::size_t swept = store.sweep_stale_temps();
            if (swept > 0) POC_OBS_COUNT("sim.runtime.stale_temps_swept", swept);
        }
        {
            // A compaction rewrite that died before its rename leaves
            // `<journal>.tmp` behind; the original journal is intact.
            std::error_code ec;
            std::filesystem::remove(opt.journal_path + ".tmp", ec);
        }

        util::Journal::ScanResult scan;
        bool opened = false;
        try {
            journal = util::Journal::open(opt.journal_path, scan, opt.fsync_journal);
            opened = true;
        } catch (const util::JournalError&) {
            // Missing or header-corrupt journal: start a fresh log. A
            // corrupt *record* never lands here (open() truncates
            // those). Snapshot grounding below still applies — the
            // journal is the suffix, not the source of truth.
        }
        if (opened && scan.meta != meta) {
            throw util::JournalError(
                "journal at " + opt.journal_path +
                " was written by a different run configuration; refusing to replay");
        }

        // Ground on the newest snapshot that validates end to end
        // (CRC, fingerprint) *and* decodes; anything less is skipped.
        // The cursor starts at the fresh-seed state so a run with no
        // usable history installs exactly what the constructor built.
        ReplayCursor cursor;
        cursor.state.rng = rng.state();
        std::uint64_t grounded = 0;
        if (store.enabled()) {
            if (const auto snap = store.load_newest_valid(meta)) {
                try {
                    RuntimeState st = decode_runtime_state(snap->payload);
                    POC_EXPECTS(st.epochs.size() == snap->completed_epochs);
                    cursor.state = std::move(st);
                    grounded = snap->completed_epochs;
                    outcome.resumed_from_snapshot = true;
                    outcome.snapshot_epochs = grounded;
                    POC_OBS_INC("sim.runtime.snapshot_resumes");
                } catch (const util::ContractViolation&) {
                    POC_OBS_INC("sim.runtime.snapshots_undecodable");
                } catch (const util::JournalError&) {
                    POC_OBS_INC("sim.runtime.snapshots_undecodable");
                }
            }
        }

        if (!opened) {
            install_cursor(std::move(cursor));
            journal = util::Journal::create(opt.journal_path, meta, opt.fsync_journal);
            return;
        }
        outcome.tail_truncated = scan.tail_truncated;

        const auto start = std::chrono::steady_clock::now();
        std::vector<DecodedRecord> decoded;
        std::map<std::uint16_t, std::string> bases;
        decode_records(scan.records, decoded, bases);
        bool bad_tail = decoded.size() < scan.records.size();

        // Apply: skip records the grounding snapshot already covers,
        // then defensively replay the suffix. The first record that
        // cannot extend the current state (gap, duplicated frame,
        // semantic garbage) ends the good prefix; everything past it
        // is dropped and recomputed.
        std::size_t applied_begin = 0;
        bool any_applied = false;
        std::size_t good = decoded.size();
        std::size_t skipped = 0;
        for (std::size_t i = 0; i < decoded.size(); ++i) {
            if (!any_applied && decoded[i].epoch < grounded) {
                ++skipped;
                continue;
            }
            try {
                cursor.apply(decoded[i]);
            } catch (const util::ContractViolation&) {
                good = i;
                bad_tail = true;
                break;
            } catch (const util::JournalError&) {
                good = i;
                bad_tail = true;
                break;
            }
            if (!any_applied) {
                any_applied = true;
                applied_begin = i;
            }
            ++outcome.replayed_records;
        }
        if (!any_applied) applied_begin = good;
        install_cursor(std::move(cursor));

        if (bad_tail || skipped > 0) {
            const std::vector<DecodedRecord> kept(
                decoded.begin() + static_cast<std::ptrdiff_t>(applied_begin),
                decoded.begin() + static_cast<std::ptrdiff_t>(good));
            rewrite_journal(meta, kept);
            if (bad_tail) {
                outcome.journal_repaired = true;
                POC_OBS_INC("sim.runtime.journal_repairs");
            }
            if (skipped > 0) {
                // The crash-between-snapshot-and-compaction path: the
                // rewrite above doubles as the compaction that crash
                // skipped.
                ++outcome.compactions;
                POC_OBS_INC("sim.runtime.compactions");
            }
        } else {
            delta_base = std::move(bases);
        }

        const auto dur = std::chrono::steady_clock::now() - start;
        outcome.replay_ms =
            std::chrono::duration<double, std::milli>(dur).count();
        POC_OBS_HISTOGRAM("sim.runtime.replay_ms", 0.0, 1000.0, 50, outcome.replay_ms);
        POC_OBS_COUNT("sim.runtime.replayed_records", outcome.replayed_records);
    }

    /// Emit a snapshot when a snapshot boundary was just crossed, then
    /// compact the journal down to what the snapshot does not cover.
    void maybe_snapshot() {
        if (opt.snapshot_interval == 0 || sink == nullptr) return;
        const std::uint64_t completed = outcome.epochs.size();
        if (completed == 0 || completed % opt.snapshot_interval != 0) return;
        POC_OBS_SPAN("sim.runtime.snapshot");
        const auto epoch = static_cast<std::size_t>(completed);
        hook(epoch, Stage::kSnapshotWrite, HookPoint::kBefore);
        RuntimeState st{outcome.epochs, outcome.auctions, outcome.ledger, rng.state(),
                        outcome.breaker_open_epochs};
        const std::string payload = encode_runtime_state(st);
        // kMid models the worst case: state serialized, install not
        // yet durable. The atomic temp+rename install makes a crash
        // here invisible to recovery.
        hook(epoch, Stage::kSnapshotWrite, HookPoint::kMid);
        sink->emit(completed, meta_fingerprint(), payload);
        ++outcome.snapshots_written;
        POC_OBS_INC("sim.runtime.snapshots");
        hook(epoch, Stage::kSnapshotWrite, HookPoint::kAfter);

        if (!opt.compact_after_snapshot || !journal.attached()) return;
        hook(epoch, Stage::kCompaction, HookPoint::kBefore);
        // At a snapshot boundary no epoch is in flight, so the
        // snapshot covers every record: the kept suffix is empty.
        hook(epoch, Stage::kCompaction, HookPoint::kMid);
        rewrite_journal(meta_fingerprint(), {});
        ++outcome.compactions;
        POC_OBS_INC("sim.runtime.compactions");
        hook(epoch, Stage::kCompaction, HookPoint::kAfter);
    }

    /// The auction stage's computation: clear under the retry/breaker
    /// budget; degrade to the relaxed constraint when the primary path
    /// is exhausted or fast-failed.
    void clear_epoch(std::size_t epoch, const net::TrafficMatrix& epoch_tm) {
        pending.breaker_open = retrier.breaker_state() == util::BreakerState::kOpen;
        const std::uint64_t attempts_before = retrier.stats().attempts;

        market::OracleOptions oracle_opt = opt.request.oracle;
        if (opt.use_path_cache) oracle_opt.path_cache = &path_cache;
        market::AuctionOptions auction_opt = opt.request.auction;
        if (opt.use_delta_reclear && auction_opt.delta == nullptr) {
            auction_opt.delta = &delta_state;
        }
        const market::AcceptabilityOracle base(pool.graph(), epoch_tm, opt.request.constraint,
                                               oracle_opt);
        market::FallibleOracle::FaultHook fault;
        if (opt.oracle_fault) {
            fault = [this, epoch] { opt.oracle_fault(epoch); };
        }
        market::FallibleOracle guarded(base, std::move(fault));

        bool primary_failed = false;
        try {
            pending.auction = retrier.call([&](const util::Deadline& deadline) {
                const DeadlineScope scope(guarded, deadline);
                return market::run_auction(pool, guarded, auction_opt);
            });
        } catch (const util::BreakerOpen&) {
            primary_failed = true;
        } catch (const util::RetryExhausted&) {
            primary_failed = true;
        }

        if (primary_failed && opt.allow_constraint_relaxation) {
            // Graceful degradation (same contract as chaos recovery):
            // re-clear under plain load feasibility with a fresh,
            // healthy oracle — the sick dependency is bypassed, not
            // hammered.
            const market::AcceptabilityOracle relaxed(pool.graph(), epoch_tm,
                                                      market::ConstraintKind::kLoad,
                                                      oracle_opt);
            pending.auction = market::run_auction(pool, relaxed, auction_opt);
            pending.degraded = pending.auction.has_value();
            if (pending.degraded) POC_OBS_INC("sim.runtime.degraded_epochs");
        }
        pending.attempts = retrier.stats().attempts - attempts_before;
        POC_OBS_COUNT("sim.runtime.retry_attempts", pending.attempts);
        if (pending.breaker_open) {
            ++outcome.breaker_open_epochs;
            POC_OBS_INC("sim.runtime.breaker_open_epochs");
        }
    }

    /// The settlement stage's computation: record this epoch's money
    /// flows (section 3.2's structure, break-even by construction) and
    /// return them for journaling.
    std::vector<core::Transfer> settle_epoch(std::size_t epoch) {
        const std::size_t before = outcome.ledger.transfers().size();
        if (pending.auction) {
            const market::AuctionResult& a = *pending.auction;
            const core::Party poc{core::PartyKind::kPoc, 0};
            const std::string tag = "epoch " + std::to_string(epoch);
            for (const market::BpOutcome& o : a.outcomes) {
                outcome.ledger.record(poc, {core::PartyKind::kBandwidthProvider, o.bp.value()},
                                      core::TransferKind::kLinkLease, o.payment,
                                      tag + " lease: " + o.name);
            }
            outcome.ledger.record(poc, {core::PartyKind::kExternalIsp, 0},
                                  core::TransferKind::kIspContract, a.virtual_cost,
                                  tag + " virtual-link contracts");
            // Cost recovery: the access side covers the outlay exactly
            // (the nonprofit's zero-margin target).
            outcome.ledger.record({core::PartyKind::kLmp, 0}, poc,
                                  core::TransferKind::kPocAccess, a.total_outlay,
                                  tag + " access cost recovery");
        }
        return {outcome.ledger.transfers().begin() +
                    static_cast<std::ptrdiff_t>(before),
                outcome.ledger.transfers().end()};
    }

    void run_epoch(std::size_t epoch) {
        POC_OBS_SPAN("sim.runtime.epoch");
        path_cache.advance_epoch();
        if (!has_pending) {
            pending = PendingEpoch{};
            pending.epoch = epoch;
            has_pending = true;
        }
        POC_EXPECTS(pending.epoch == epoch);

        if (!pending.have_begin) {
            // Always consume one uniform draw, even with zero jitter:
            // the RNG stream position is part of the durable state and
            // every epoch must advance (and journal) it.
            pending.demand_factor =
                rng.uniform(1.0 - opt.demand_jitter, 1.0 + opt.demand_jitter);
            util::BinaryWriter w;
            w.u64(epoch);
            w.f64(pending.demand_factor);
            write_rng_state(w, rng.state());
            append(kRecEpochBegin, w);
            pending.have_begin = true;
        }
        const net::TrafficMatrix epoch_tm = scaled_tm(pending.demand_factor);

        if (!pending.have_auction) {
            hook(epoch, Stage::kAuction, HookPoint::kBefore);
            clear_epoch(epoch, epoch_tm);
            hook(epoch, Stage::kAuction, HookPoint::kMid);
            util::BinaryWriter w;
            w.u64(epoch);
            w.boolean(pending.auction.has_value());
            if (pending.auction) market::write_auction_result(w, *pending.auction);
            w.boolean(pending.degraded);
            w.boolean(pending.breaker_open);
            w.u64(pending.attempts);
            append(kRecAuction, w);
            pending.have_auction = true;
            hook(epoch, Stage::kAuction, HookPoint::kAfter);
        }

        if (!pending.have_provision) {
            hook(epoch, Stage::kProvisioning, HookPoint::kBefore);
            pending.selected =
                pending.auction ? pending.auction->selection.links : std::vector<net::LinkId>{};
            hook(epoch, Stage::kProvisioning, HookPoint::kMid);
            util::BinaryWriter w;
            w.u64(epoch);
            write_links(w, pending.selected);
            append(kRecProvision, w);
            pending.have_provision = true;
            hook(epoch, Stage::kProvisioning, HookPoint::kAfter);
        }

        if (!pending.have_flows) {
            hook(epoch, Stage::kFlowSim, HookPoint::kBefore);
            if (pending.auction) {
                std::vector<bool> is_virtual(pool.graph().link_count(), false);
                for (const net::LinkId l : pool.virtual_links().links()) {
                    is_virtual[l.index()] = true;
                }
                const net::Subgraph backbone(pool.graph(), pending.selected);
                core::FlowSimOptions flow_opt;
                if (opt.use_path_cache) flow_opt.path_cache = &path_cache;
                flow_opt.routing = opt.flow_routing;
                flow_opt.flow_shards = opt.flow_shards;
                flow_opt.sssp_threads = opt.flow_threads;
                const core::FlowReport flows =
                    core::simulate_flows(backbone, epoch_tm, is_virtual, flow_opt);
                pending.offered_gbps = flows.total_offered_gbps;
                pending.routed_gbps = flows.total_routed_gbps;
                pending.max_utilization = flows.max_utilization;
                pending.stretch = flows.stretch;
            } else {
                pending.offered_gbps = net::total_demand(epoch_tm);
            }
            hook(epoch, Stage::kFlowSim, HookPoint::kMid);
            util::BinaryWriter w;
            w.u64(epoch);
            w.f64(pending.offered_gbps);
            w.f64(pending.routed_gbps);
            w.f64(pending.max_utilization);
            w.f64(pending.stretch);
            append(kRecFlows, w);
            pending.have_flows = true;
            hook(epoch, Stage::kFlowSim, HookPoint::kAfter);
        }

        if (!pending.have_settlement) {
            hook(epoch, Stage::kSettlement, HookPoint::kBefore);
            const std::vector<core::Transfer> transfers = settle_epoch(epoch);
            hook(epoch, Stage::kSettlement, HookPoint::kMid);
            util::BinaryWriter w;
            w.u64(epoch);
            w.u64(transfers.size());
            for (const core::Transfer& t : transfers) core::write_transfer(w, t);
            append(kRecSettlement, w);
            pending.have_settlement = true;
            hook(epoch, Stage::kSettlement, HookPoint::kAfter);
        }

        EpochRecord rec;
        rec.epoch = epoch;
        rec.provisioned = pending.auction.has_value();
        rec.degraded_mode = pending.degraded;
        rec.breaker_open = pending.breaker_open;
        rec.demand_factor = pending.demand_factor;
        rec.demand_gbps = pending.offered_gbps;
        rec.delivered_fraction =
            pending.offered_gbps > 0.0
                ? std::min(pending.routed_gbps, pending.offered_gbps) / pending.offered_gbps
                : 0.0;
        rec.max_utilization = pending.max_utilization;
        rec.stretch = pending.stretch;
        rec.outlay = pending.auction ? pending.auction->total_outlay : util::Money{};
        rec.retry_attempts = pending.attempts;

        util::BinaryWriter w;
        write_epoch_record(w, rec);
        write_rng_state(w, rng.state());
        append(kRecEpochEnd, w);

        outcome.epochs.push_back(rec);
        outcome.auctions.push_back(std::move(pending.auction));
        has_pending = false;
        POC_OBS_INC("sim.runtime.epochs");
        commit_hook(false);
    }

    /// Publish the just-committed epoch to the serving layer. Fires
    /// after the epoch-end record is durable, so a subscriber never
    /// observes state the journal could lose.
    void commit_hook(bool replayed) {
        if (!opt.on_epoch_commit) return;
        const EpochCommit commit{outcome.epochs.back().epoch,
                                 outcome.epochs.size(),
                                 replayed,
                                 outcome.epochs.back(),
                                 outcome.auctions.back(),
                                 outcome.ledger};
        opt.on_epoch_commit(commit);
    }

    RuntimeOutcome run() {
        POC_OBS_SPAN("sim.runtime.run");
        if (!opt.journal_path.empty()) recover();
        // Replayed history publishes once, as the newest recovered
        // epoch: subscribers resynchronize without a re-run.
        if (!outcome.epochs.empty()) commit_hook(true);
        // After replay, any in-flight epoch is exactly the next one:
        // run_epoch() resumes it from its first incomplete stage.
        while (outcome.epochs.size() < opt.epochs) {
            run_epoch(outcome.epochs.size());
            maybe_snapshot();
        }
        outcome.final_rng = rng.state();
        outcome.retry = retrier.stats();
        return std::move(outcome);
    }
};

EpochRuntime::EpochRuntime(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                           RuntimeOptions opt)
    : impl_(std::make_unique<Impl>(pool, tm, std::move(opt))) {}

EpochRuntime::~EpochRuntime() = default;

RuntimeOutcome EpochRuntime::run() { return impl_->run(); }

RuntimeOutcome run_with_recovery(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                                 const RuntimeOptions& opt, const std::vector<Fault>& trace) {
    POC_EXPECTS(!opt.journal_path.empty());

    struct CrashPoint {
        std::size_t epoch;
        Stage stage;
        FaultKind kind;
        bool fired = false;
        bool damage_done = false;
    };
    auto crashes = std::make_shared<std::vector<CrashPoint>>();
    struct Window {
        std::size_t start;
        std::size_t end;
    };
    std::vector<Window> degraded_windows;
    for (const Fault& f : trace) {
        if (f.kind == FaultKind::kCrash || f.kind == FaultKind::kSnapshotCorrupt ||
            f.kind == FaultKind::kTornWrite) {
            POC_EXPECTS(f.crash_stage <= kCrashStageCompaction);
            crashes->push_back({f.start_epoch, static_cast<Stage>(f.crash_stage), f.kind});
        } else if (f.kind == FaultKind::kOracleDegraded) {
            degraded_windows.push_back({f.start_epoch, f.start_epoch + f.repair_epochs});
        }
    }

    RuntimeOptions supervised = opt;
    supervised.stage_hook = [user = opt.stage_hook, crashes](std::size_t epoch, Stage stage,
                                                             HookPoint point) {
        if (user) user(epoch, stage, point);
        if (point != HookPoint::kMid) return;
        for (CrashPoint& c : *crashes) {
            if (!c.fired && c.epoch == epoch && c.stage == stage) {
                // Each scheduled crash kills the process exactly once;
                // the restarted process survives the same point.
                c.fired = true;
                throw CrashInjected(epoch, stage, point);
            }
        }
    };
    supervised.oracle_fault = [user = opt.oracle_fault,
                               windows = std::move(degraded_windows)](std::size_t epoch) {
        if (user) user(epoch);
        for (const Window& w : windows) {
            if (epoch >= w.start && epoch < w.end) {
                throw util::TransientError("oracle degraded by chaos fault (epoch " +
                                           std::to_string(epoch) + ")");
            }
        }
    };

    // Post-kill disk damage: kSnapshotCorrupt flips a bit in the
    // newest snapshot, kTornWrite tears the journal's tail — the
    // crash *causing* the corruption recovery must then survive.
    const auto apply_damage = [&supervised] (std::vector<CrashPoint>& points) {
        for (CrashPoint& c : points) {
            if (!c.fired || c.damage_done) continue;
            c.damage_done = true;
            if (c.kind == FaultKind::kTornWrite) {
                const std::uint64_t size = util::FaultyFile::size(supervised.journal_path);
                if (size > 0) {
                    util::FaultyFile::tear_at(supervised.journal_path,
                                              size - std::min<std::uint64_t>(size, 3));
                    POC_OBS_INC("sim.runtime.torn_writes_injected");
                }
            } else if (c.kind == FaultKind::kSnapshotCorrupt) {
                const util::SnapshotStore store(supervised.journal_path,
                                                supervised.snapshot_keep);
                const auto snaps = store.list();
                if (!snaps.empty()) {
                    const std::string& path = snaps.back().path;
                    util::FaultyFile::flip_bit(path, util::FaultyFile::size(path) / 2, 3);
                    POC_OBS_INC("sim.runtime.snapshot_corruptions_injected");
                }
            }
        }
    };

    const auto journal_size = [&supervised] {
        std::error_code ec;
        const auto n = std::filesystem::file_size(supervised.journal_path, ec);
        return ec ? std::uintmax_t{0} : n;
    };

    // Restart loop under a per-progress-window budget: each crash that
    // leaves the journal unchanged burns one attempt (with the restart
    // policy's jittered backoff in between); any journal change resets
    // the window. A deterministic crash point therefore exhausts the
    // budget instead of looping forever.
    struct ProgressMade {};
    std::size_t restarts = 0;
    std::uintmax_t last_size = journal_size();
    util::RetryPolicy restart_policy = supervised.restart;
    restart_policy.deadline_ms = std::numeric_limits<double>::infinity();
    for (;;) {
        util::Retrier restarter(restart_policy);
        try {
            return restarter.call([&](const util::Deadline&) -> RuntimeOutcome {
                try {
                    RuntimeOutcome out = EpochRuntime(pool, tm, supervised).run();
                    out.restarts = restarts;
                    return out;
                } catch (const CrashInjected& c) {
                    ++restarts;
                    POC_OBS_INC("sim.runtime.crashes");
                    apply_damage(*crashes);
                    // "Restart the process": recover from the journal
                    // (and snapshots) with a fresh runtime — fresh
                    // breaker, fresh RNG object, all durable state
                    // from disk.
                    const std::uintmax_t size_now = journal_size();
                    if (size_now != last_size) {
                        last_size = size_now;
                        throw ProgressMade{};
                    }
                    throw util::TransientError(c.what());
                }
            });
        } catch (const ProgressMade&) {
            continue;  // fresh budget window
        } catch (const util::RetryExhausted& e) {
            POC_OBS_INC("sim.runtime.recovery_exhausted");
            throw RecoveryExhausted(restarts, e.what());
        }
    }
}

std::optional<RuntimeState> materialize_state_at(const market::OfferPool& pool,
                                                 const net::TrafficMatrix& tm,
                                                 const RuntimeOptions& opt,
                                                 std::uint64_t target_epochs) {
    if (opt.journal_path.empty()) return std::nullopt;
    POC_OBS_SPAN("sim.runtime.materialize");
    const std::string meta = runtime_meta_fingerprint(pool, tm, opt);
    const util::HistoryReader reader(opt.journal_path, opt.snapshot_keep);

    // Ground exactly like recover(): fresh-seed state, upgraded to the
    // newest decodable snapshot at or below the target.
    ReplayCursor cursor;
    cursor.state.rng = util::Rng(opt.seed).state();
    std::uint64_t grounded = 0;
    if (const auto snap = reader.snapshot_at(target_epochs, meta)) {
        try {
            RuntimeState st = decode_runtime_state(snap->payload);
            POC_EXPECTS(st.epochs.size() == snap->completed_epochs);
            cursor.state = std::move(st);
            grounded = snap->completed_epochs;
        } catch (const util::ContractViolation&) {
            POC_OBS_INC("sim.runtime.snapshots_undecodable");
        } catch (const util::JournalError&) {
            POC_OBS_INC("sim.runtime.snapshots_undecodable");
        }
    }
    if (cursor.state.epochs.size() == target_epochs) return std::move(cursor.state);

    // Read-only scan: never truncates, never takes an append handle,
    // so this is safe while a live runtime owns the journal.
    util::Journal::ScanResult scan;
    try {
        reader.scan_journal(scan);
    } catch (const util::JournalError&) {
        return std::nullopt;  // journal missing or header-corrupt
    }
    if (scan.meta != meta) return std::nullopt;  // foreign journal

    std::vector<DecodedRecord> decoded;
    std::map<std::uint16_t, std::string> bases;
    decode_records(scan.records, decoded, bases);

    bool any_applied = false;
    for (const DecodedRecord& d : decoded) {
        if (cursor.state.epochs.size() == target_epochs) break;
        if (!any_applied && d.epoch < grounded) continue;
        try {
            cursor.apply(d);
        } catch (const util::ContractViolation&) {
            break;  // good prefix ends here; history cannot prove more
        } catch (const util::JournalError&) {
            break;
        }
        any_applied = true;
    }
    if (cursor.state.epochs.size() != target_epochs) return std::nullopt;
    return std::move(cursor.state);
}

}  // namespace poc::sim
