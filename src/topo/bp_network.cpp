#include "topo/bp_network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace poc::topo {

namespace {

/// Pick `count` distinct city indices, biased toward large metros (so
/// every BP lands at the major interconnection hubs, which is what makes
/// colocation-based POC router placement work, and is how real carrier
/// footprints look).
std::vector<std::size_t> pick_cities(util::Rng& rng, std::size_t count) {
    const auto& cities = world_cities();
    POC_EXPECTS(count <= cities.size());
    std::vector<double> weights(cities.size());
    for (std::size_t i = 0; i < cities.size(); ++i) {
        weights[i] = cities[i].population_m;
    }
    std::vector<std::size_t> chosen;
    chosen.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        const std::size_t idx = rng.discrete(weights);
        chosen.push_back(idx);
        weights[idx] = 0.0;  // without replacement
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

/// Add a Euclidean MST over the PoPs so the backbone is connected even
/// when the Waxman draw is sparse (Prim's algorithm; PoP counts are
/// small, so O(n^2) is fine).
void add_mst_links(BpNetwork& bp, util::Rng& rng, const std::vector<double>& capacity_choices,
                   std::vector<std::vector<bool>>& linked) {
    const auto& cities = world_cities();
    const std::size_t n = bp.cities.size();
    std::vector<bool> in_tree(n, false);
    std::vector<double> best_dist(n, std::numeric_limits<double>::infinity());
    std::vector<std::size_t> best_from(n, 0);
    in_tree[0] = true;
    for (std::size_t j = 1; j < n; ++j) {
        best_dist[j] = haversine_km(cities[bp.cities[0]].location, cities[bp.cities[j]].location);
        best_from[j] = 0;
    }
    for (std::size_t added = 1; added < n; ++added) {
        std::size_t pick = n;
        double pick_dist = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < n; ++j) {
            if (!in_tree[j] && best_dist[j] < pick_dist) {
                pick = j;
                pick_dist = best_dist[j];
            }
        }
        POC_ASSERT(pick < n);
        in_tree[pick] = true;
        if (!linked[best_from[pick]][pick]) {
            const double cap =
                capacity_choices[rng.uniform_int(std::uint64_t{capacity_choices.size()})];
            bp.physical.add_link(net::NodeId{best_from[pick]}, net::NodeId{pick}, cap, pick_dist);
            linked[best_from[pick]][pick] = linked[pick][best_from[pick]] = true;
        }
        for (std::size_t j = 0; j < n; ++j) {
            if (in_tree[j]) continue;
            const double d = haversine_km(cities[bp.cities[pick]].location,
                                          cities[bp.cities[j]].location);
            if (d < best_dist[j]) {
                best_dist[j] = d;
                best_from[j] = pick;
            }
        }
    }
}

}  // namespace

std::vector<BpNetwork> generate_bp_networks(const BpGeneratorOptions& opt) {
    POC_EXPECTS(opt.bp_count >= 1);
    POC_EXPECTS(opt.min_cities >= 2);
    POC_EXPECTS(opt.min_cities <= opt.max_cities);
    POC_EXPECTS(opt.max_cities <= world_cities().size());
    POC_EXPECTS(!opt.capacity_choices_gbps.empty());
    POC_EXPECTS(opt.waxman_alpha > 0.0 && opt.waxman_alpha <= 1.0);
    POC_EXPECTS(opt.waxman_beta > 0.0);

    util::Rng rng(opt.seed);
    const auto& cities = world_cities();

    std::vector<BpNetwork> bps;
    bps.reserve(opt.bp_count);
    for (std::size_t b = 0; b < opt.bp_count; ++b) {
        BpNetwork bp;
        bp.name = "BP" + std::to_string(b + 1);

        // Linear size ramp with +-10% jitter: BP1 is the largest.
        const double frac = opt.bp_count == 1
                                ? 1.0
                                : 1.0 - static_cast<double>(b) /
                                            static_cast<double>(opt.bp_count - 1);
        const double span = static_cast<double>(opt.max_cities - opt.min_cities);
        double size_f = static_cast<double>(opt.min_cities) + frac * span;
        size_f *= rng.uniform(0.9, 1.1);
        const auto size = std::clamp(static_cast<std::size_t>(std::llround(size_f)),
                                     opt.min_cities, opt.max_cities);

        bp.cities = pick_cities(rng, size);
        for (const std::size_t ci : bp.cities) bp.physical.add_node(cities[ci].name);

        // Max pairwise distance normalizes the Waxman exponent.
        double max_d = 1.0;
        for (std::size_t i = 0; i < bp.cities.size(); ++i) {
            for (std::size_t j = i + 1; j < bp.cities.size(); ++j) {
                max_d = std::max(max_d, haversine_km(cities[bp.cities[i]].location,
                                                     cities[bp.cities[j]].location));
            }
        }

        std::vector<std::vector<bool>> linked(size, std::vector<bool>(size, false));
        for (std::size_t i = 0; i < size; ++i) {
            for (std::size_t j = i + 1; j < size; ++j) {
                const double d = haversine_km(cities[bp.cities[i]].location,
                                              cities[bp.cities[j]].location);
                const double p = opt.waxman_alpha * std::exp(-d / (opt.waxman_beta * max_d));
                if (rng.bernoulli(std::min(1.0, p))) {
                    const double cap = opt.capacity_choices_gbps[rng.uniform_int(
                        std::uint64_t{opt.capacity_choices_gbps.size()})];
                    bp.physical.add_link(net::NodeId{i}, net::NodeId{j}, cap, d);
                    linked[i][j] = linked[j][i] = true;
                }
            }
        }
        add_mst_links(bp, rng, opt.capacity_choices_gbps, linked);
        bps.push_back(std::move(bp));
    }
    return bps;
}

std::vector<std::size_t> bp_presence_by_city(const std::vector<BpNetwork>& bps,
                                             std::size_t city_count) {
    std::vector<std::size_t> presence(city_count, 0);
    for (const BpNetwork& bp : bps) {
        for (const std::size_t ci : bp.cities) {
            POC_EXPECTS(ci < city_count);
            ++presence[ci];
        }
    }
    return presence;
}

}  // namespace poc::topo
