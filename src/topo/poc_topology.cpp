#include "topo/poc_topology.hpp"

#include <algorithm>
#include <limits>

#include "net/shortest_path.hpp"

namespace poc::topo {

std::vector<net::LinkId> PocTopology::links_of(std::uint32_t bp) const {
    std::vector<net::LinkId> out;
    for (std::size_t i = 0; i < link_owner.size(); ++i) {
        if (link_owner[i] == bp) out.emplace_back(i);
    }
    return out;
}

double PocTopology::share_of(std::uint32_t bp) const {
    POC_EXPECTS(!link_owner.empty());
    const auto owned = static_cast<double>(std::count(link_owner.begin(), link_owner.end(), bp));
    return owned / static_cast<double>(link_owner.size());
}

PocTopology build_poc_topology(const std::vector<BpNetwork>& bps, const PocTopologyOptions& opt) {
    POC_EXPECTS(!bps.empty());
    POC_EXPECTS(opt.min_colocated_bps >= 1);
    POC_EXPECTS(opt.max_circuitousness >= 1.0);
    const auto& cities = world_cities();

    // 1. Router placement: cities where >= min_colocated_bps BPs meet.
    const auto presence = bp_presence_by_city(bps, cities.size());
    PocTopology topo;
    topo.bp_count = bps.size();
    std::vector<std::size_t> city_to_router(cities.size(), std::numeric_limits<std::size_t>::max());
    for (std::size_t ci = 0; ci < cities.size(); ++ci) {
        if (presence[ci] >= opt.min_colocated_bps) {
            city_to_router[ci] = topo.graph.add_node(cities[ci].name).index();
            topo.router_city.push_back(ci);
        }
    }
    POC_ENSURES(topo.router_city.size() >= 2);

    // 2. Logical links: for each BP, every pair of its POC-router cities
    //    whose internal path is commercially sensible becomes an offer.
    for (std::size_t b = 0; b < bps.size(); ++b) {
        const BpNetwork& bp = bps[b];
        // This BP's PoPs that are POC router sites.
        std::vector<std::size_t> pop_nodes;  // node ids in bp.physical
        for (std::size_t n = 0; n < bp.cities.size(); ++n) {
            if (city_to_router[bp.cities[n]] != std::numeric_limits<std::size_t>::max()) {
                pop_nodes.push_back(n);
            }
        }
        if (pop_nodes.size() < 2) continue;

        const net::Subgraph all(bp.physical);
        const net::LinkWeight by_len = net::weight_by_length(bp.physical);

        for (std::size_t i = 0; i < pop_nodes.size(); ++i) {
            // One Dijkstra per source PoP covers all destinations.
            const auto tree = net::dijkstra(all, net::NodeId{pop_nodes[i]}, by_len);
            for (std::size_t j = i + 1; j < pop_nodes.size(); ++j) {
                const net::NodeId dst{pop_nodes[j]};
                if (!tree.reachable(dst)) continue;
                const double path_km = tree.dist[dst.index()];
                if (path_km > opt.max_circuit_km) continue;
                const double direct_km =
                    haversine_km(cities[bp.cities[pop_nodes[i]]].location,
                                 cities[bp.cities[pop_nodes[j]]].location);
                if (path_km > opt.max_circuitousness * std::max(direct_km, 1.0)) continue;

                // Bottleneck capacity along the realizing path.
                double cap = std::numeric_limits<double>::infinity();
                for (const net::LinkId pl : tree.path_to(dst)) {
                    cap = std::min(cap, bp.physical.link(pl).capacity_gbps);
                }
                POC_ASSERT(cap < std::numeric_limits<double>::infinity());

                const net::NodeId ra{city_to_router[bp.cities[pop_nodes[i]]]};
                const net::NodeId rb{city_to_router[bp.cities[pop_nodes[j]]]};
                topo.graph.add_link(ra, rb, cap, path_km);
                topo.link_owner.push_back(static_cast<std::uint32_t>(b));
            }
        }
    }
    POC_ENSURES(topo.link_owner.size() == topo.graph.link_count());
    return topo;
}

}  // namespace poc::topo
