#include "topo/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace poc::topo {

namespace {

/// Scale demands so they sum to total_gbps.
void rescale(net::TrafficMatrix& tm, double total_gbps) {
    const double current = net::total_demand(tm);
    POC_EXPECTS(current > 0.0);
    const double f = total_gbps / current;
    for (net::Demand& d : tm) d.gbps *= f;
}

}  // namespace

net::TrafficMatrix gravity_traffic(const PocTopology& topo, const GravityOptions& opt) {
    POC_EXPECTS(opt.total_gbps > 0.0);
    POC_EXPECTS(opt.distance_gamma >= 0.0);
    POC_EXPECTS(opt.floor_fraction >= 0.0 && opt.floor_fraction < 1.0);
    const auto& cities = world_cities();
    const std::size_t n = topo.router_city.size();
    POC_EXPECTS(n >= 2);

    net::TrafficMatrix tm;
    double max_weight = 0.0;
    std::vector<double> weights;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            const City& ci = cities[topo.router_city[i]];
            const City& cj = cities[topo.router_city[j]];
            const double dist = std::max(haversine_km(ci.location, cj.location), 100.0);
            const double w = ci.population_m * cj.population_m /
                             std::pow(dist, opt.distance_gamma);
            tm.push_back(net::Demand{net::NodeId{i}, net::NodeId{j}, w});
            weights.push_back(w);
            max_weight = std::max(max_weight, w);
        }
    }
    // Sparsify: drop the long tail of tiny demands.
    const double floor = max_weight * opt.floor_fraction;
    net::TrafficMatrix kept;
    for (const net::Demand& d : tm) {
        if (d.gbps >= floor) kept.push_back(d);
    }
    POC_ENSURES(!kept.empty());
    rescale(kept, opt.total_gbps);
    return kept;
}

net::TrafficMatrix uniform_traffic(const PocTopology& topo, double total_gbps) {
    POC_EXPECTS(total_gbps > 0.0);
    const std::size_t n = topo.router_city.size();
    POC_EXPECTS(n >= 2);
    const double per = total_gbps / static_cast<double>(n * (n - 1));
    net::TrafficMatrix tm;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i != j) tm.push_back(net::Demand{net::NodeId{i}, net::NodeId{j}, per});
        }
    }
    return tm;
}

net::TrafficMatrix hotspot_traffic(const PocTopology& topo, double total_gbps,
                                   std::size_t hotspot_count, double hot_fraction) {
    POC_EXPECTS(total_gbps > 0.0);
    POC_EXPECTS(hotspot_count >= 1);
    POC_EXPECTS(hot_fraction > 0.0 && hot_fraction < 1.0);
    const auto& cities = world_cities();
    const std::size_t n = topo.router_city.size();
    POC_EXPECTS(hotspot_count < n);

    // Hotspots: the most-populous router metros.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return cities[topo.router_city[a]].population_m >
               cities[topo.router_city[b]].population_m;
    });
    std::vector<bool> hot(n, false);
    for (std::size_t h = 0; h < hotspot_count; ++h) hot[order[h]] = true;

    // Hot part: every non-hot router sends toward each hotspot,
    // proportionally to the sender's population.
    net::TrafficMatrix tm;
    for (std::size_t i = 0; i < n; ++i) {
        if (hot[i]) continue;
        for (std::size_t h = 0; h < hotspot_count; ++h) {
            const std::size_t j = order[h];
            const double w = cities[topo.router_city[i]].population_m;
            // Content flows *to* eyeballs: hotspot -> i dominates.
            tm.push_back(net::Demand{net::NodeId{j}, net::NodeId{i}, 3.0 * w});
            tm.push_back(net::Demand{net::NodeId{i}, net::NodeId{j}, w});
        }
    }
    rescale(tm, total_gbps * hot_fraction);

    GravityOptions gopt;
    gopt.total_gbps = total_gbps * (1.0 - hot_fraction);
    net::TrafficMatrix background = gravity_traffic(topo, gopt);
    tm.insert(tm.end(), background.begin(), background.end());
    return tm;
}

net::TrafficMatrix aggregate_top_n(const net::TrafficMatrix& tm, std::size_t n) {
    POC_EXPECTS(n >= 1);
    if (tm.size() <= n) return tm;
    net::TrafficMatrix sorted = tm;
    std::sort(sorted.begin(), sorted.end(),
              [](const net::Demand& a, const net::Demand& b) { return a.gbps > b.gbps; });
    const double total = net::total_demand(sorted);
    sorted.resize(n);
    rescale(sorted, total);
    return sorted;
}

net::TrafficMatrix scale_traffic(const net::TrafficMatrix& tm, double factor) {
    POC_EXPECTS(factor >= 0.0);
    net::TrafficMatrix out = tm;
    for (net::Demand& d : out) d.gbps *= factor;
    return out;
}

}  // namespace poc::topo
