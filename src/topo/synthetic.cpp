#include "topo/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace poc::topo {

namespace {

double euclid_km(const SyntheticTopology& t, net::NodeId a, net::NodeId b) {
    const double dx = t.x_km[a.index()] - t.x_km[b.index()];
    const double dy = t.y_km[a.index()] - t.y_km[b.index()];
    return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

std::pair<net::NodeId, net::NodeId> SyntheticTopology::region_range(std::size_t r) const {
    POC_EXPECTS(r < region_count);
    // region_of is nondecreasing, so the range is a binary search away.
    const auto lo = std::lower_bound(region_of.begin(), region_of.end(), r);
    const auto hi = std::upper_bound(region_of.begin(), region_of.end(), r);
    return {net::NodeId{static_cast<std::size_t>(lo - region_of.begin())},
            net::NodeId{static_cast<std::size_t>(hi - region_of.begin())}};
}

SyntheticTopology build_synthetic_topology(const SyntheticTopologyOptions& opt) {
    POC_EXPECTS(opt.nodes >= 2);
    POC_EXPECTS(opt.regions >= 1);
    POC_EXPECTS(opt.avg_degree >= 0.0);
    POC_EXPECTS(opt.region_span_km > 0.0);
    POC_EXPECTS(0.0 < opt.min_capacity_gbps && opt.min_capacity_gbps <= opt.max_capacity_gbps);

    const std::size_t regions = std::min(opt.regions, opt.nodes);
    const auto cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(regions))));

    SyntheticTopology out;
    out.region_count = regions;
    out.region_of.reserve(opt.nodes);
    out.x_km.reserve(opt.nodes);
    out.y_km.reserve(opt.nodes);

    util::Rng rng(opt.seed);

    // Region-major node placement: region r gets the contiguous id
    // range [r*N/R, (r+1)*N/R), each node uniform inside r's grid cell.
    std::vector<std::uint32_t> region_first(regions + 1, 0);
    for (std::size_t r = 0; r <= regions; ++r) {
        region_first[r] = static_cast<std::uint32_t>(opt.nodes * r / regions);
    }
    for (std::size_t r = 0; r < regions; ++r) {
        const double cell_x = static_cast<double>(r % cols) * opt.region_span_km;
        const double cell_y = static_cast<double>(r / cols) * opt.region_span_km;
        for (std::uint32_t i = region_first[r]; i < region_first[r + 1]; ++i) {
            out.region_of.push_back(static_cast<std::uint32_t>(r));
            out.x_km.push_back(cell_x + rng.uniform(0.0, opt.region_span_km));
            out.y_km.push_back(cell_y + rng.uniform(0.0, opt.region_span_km));
        }
    }

    const auto target_links = static_cast<std::size_t>(
        static_cast<double>(opt.nodes) * opt.avg_degree / 2.0);
    out.graph.reserve(opt.nodes, target_links + 4 * regions * opt.trunks_per_adjacency);
    out.graph.add_nodes(opt.nodes);

    const auto add = [&](net::NodeId a, net::NodeId b) {
        out.graph.add_link(a, b, rng.uniform(opt.min_capacity_gbps, opt.max_capacity_gbps),
                           euclid_km(out, a, b));
    };

    // Connectivity skeleton 1: an id-order chain through every region.
    for (std::size_t r = 0; r < regions; ++r) {
        for (std::uint32_t i = region_first[r] + 1; i < region_first[r + 1]; ++i) {
            add(net::NodeId{i - 1}, net::NodeId{i});
        }
    }

    // Connectivity skeleton 2: trunks between grid-adjacent regions
    // (right and down neighbors — each adjacency visited once), between
    // uniformly drawn endpoints of the two regions.
    const auto pick_in = [&](std::size_t r) {
        const std::uint32_t lo = region_first[r];
        const std::uint32_t n = region_first[r + 1] - lo;
        return net::NodeId{lo + static_cast<std::uint32_t>(rng.uniform_int(n))};
    };
    for (std::size_t r = 0; r < regions; ++r) {
        const std::size_t col = r % cols;
        const std::size_t right = r + 1;
        const std::size_t down = r + cols;
        if (col + 1 < cols && right < regions) {
            for (std::size_t t = 0; t < opt.trunks_per_adjacency; ++t) {
                add(pick_in(r), pick_in(right));
            }
        }
        if (down < regions) {
            for (std::size_t t = 0; t < opt.trunks_per_adjacency; ++t) {
                add(pick_in(r), pick_in(down));
            }
        }
    }

    // Random intra-region chords up to the degree budget, spread round
    // robin across regions so the budget lands proportionally without a
    // per-region quota computation. Regions of one node cannot host a
    // chord and are skipped.
    std::size_t remaining = target_links > out.graph.link_count()
                                ? target_links - out.graph.link_count()
                                : 0;
    while (remaining > 0) {
        bool placed_any = false;
        for (std::size_t r = 0; r < regions && remaining > 0; ++r) {
            if (region_first[r + 1] - region_first[r] < 2) continue;
            const net::NodeId a = pick_in(r);
            net::NodeId b = pick_in(r);
            if (a == b) continue;  // rejected; the rng stream still advanced
            add(a, b);
            --remaining;
            placed_any = true;
        }
        if (!placed_any) break;  // every region is a singleton
    }

    return out;
}

net::TrafficMatrix continental_traffic(const SyntheticTopology& topo,
                                       const ContinentalTrafficOptions& opt) {
    const std::size_t n = topo.graph.node_count();
    POC_EXPECTS(n >= 2);
    POC_EXPECTS(opt.demands >= 1);
    POC_EXPECTS(opt.total_gbps > 0.0);

    const std::size_t sources =
        opt.max_sources == 0 ? n : std::min(opt.max_sources, n);

    util::Rng rng(opt.seed);
    net::TrafficMatrix tm;
    tm.reserve(opt.demands);
    double sum = 0.0;
    for (std::size_t j = 0; j < opt.demands; ++j) {
        // Evenly spaced source ids cover every region; uniform
        // destinations; Pareto volumes for a heavy tail.
        const std::size_t si = rng.uniform_int(sources);
        const net::NodeId src{si * n / sources};
        net::NodeId dst{rng.uniform_int(n)};
        if (dst == src) dst = net::NodeId{(dst.index() + 1) % n};
        const double v = rng.pareto(1.0, 1.5);
        tm.push_back(net::Demand{src, dst, v});
        sum += v;
    }
    const double scale = opt.total_gbps / sum;
    for (net::Demand& d : tm) d.gbps *= scale;
    return tm;
}

}  // namespace poc::topo
