// Traffic-matrix generators for the POC attachment points. The paper
// used an unspecified synthetic matrix; we provide the standard gravity
// model (population product with distance decay) as the default, plus
// uniform and hotspot matrices for sensitivity studies, and a top-N
// aggregation helper that caps the commodity count seen by the MCF
// oracles.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "topo/poc_topology.hpp"

namespace poc::topo {

struct GravityOptions {
    /// Total offered load summed over all demands (Gbps).
    double total_gbps = 5000.0;
    /// Distance-decay exponent; 0 disables the distance term.
    double distance_gamma = 1.0;
    /// Demands below this fraction of the largest demand are dropped
    /// (keeps the matrix sparse, as real inter-metro matrices are).
    double floor_fraction = 0.01;
};

/// Gravity matrix over all ordered router pairs:
/// d(i,j) ~ pop_i * pop_j / dist(i,j)^gamma, scaled to total_gbps.
net::TrafficMatrix gravity_traffic(const PocTopology& topo, const GravityOptions& opt = {});

/// Equal demand between every ordered router pair, scaled to total_gbps.
net::TrafficMatrix uniform_traffic(const PocTopology& topo, double total_gbps);

/// Hotspot matrix: a few routers (the most-populous metros) sink a
/// `hot_fraction` of the total, the rest is gravity-spread. Models the
/// content-network concentration the paper describes in section 2.4.
net::TrafficMatrix hotspot_traffic(const PocTopology& topo, double total_gbps,
                                   std::size_t hotspot_count = 3, double hot_fraction = 0.5);

/// Keep only the n largest demands, rescaling so the total volume is
/// preserved (coarsens the commodity set for the feasibility oracles;
/// conservative because the same load is concentrated on fewer pairs).
net::TrafficMatrix aggregate_top_n(const net::TrafficMatrix& tm, std::size_t n);

/// Scale every demand by `factor` (demand growth between epochs).
net::TrafficMatrix scale_traffic(const net::TrafficMatrix& tm, double factor);

}  // namespace poc::topo
