// POC candidate topology: routers placed where enough BPs colocate, and
// the pool of *logical links* the BPs can offer between those routers.
// A logical link is a point-to-point circuit between two POC routers
// realized over one BP's physical backbone (possibly several physical
// hops), mirroring the paper's construction: "we placed POC routers at
// points where there were four or more BPs closely colocated ... 4674
// point-to-point connections between POC routers; we call these
// connections logical links because they may involve several physical
// links."
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "topo/bp_network.hpp"

namespace poc::topo {

/// Sentinel owner index for links that belong to no BP (external-ISP
/// virtual links appended after construction).
inline constexpr std::uint32_t kVirtualOwner = ~std::uint32_t{0};

struct PocTopologyOptions {
    /// Minimum number of colocated BPs for a city to host a POC router.
    std::size_t min_colocated_bps = 4;
    /// A BP offers a circuit between two of its POC-router cities only
    /// if its internal path is at most this factor longer than the
    /// great-circle distance (keeps offers commercially sensible and
    /// bounds the logical-link count).
    double max_circuitousness = 2.6;
    /// Upper bound on offered circuit length (km); transcontinental
    /// circuits beyond this are not offered as single logical links.
    double max_circuit_km = 11000.0;
};

/// The POC candidate network.
struct PocTopology {
    /// Routers (nodes) and offered logical links (edges). Link capacity
    /// is the bottleneck physical capacity of the realizing path; link
    /// length is the realizing path's total km.
    net::Graph graph;
    /// Gazetteer city index of each POC router (aligned with node ids).
    std::vector<std::size_t> router_city;
    /// Owning BP index per logical link (aligned with link ids).
    std::vector<std::uint32_t> link_owner;
    std::size_t bp_count = 0;

    /// Logical links owned by one BP.
    std::vector<net::LinkId> links_of(std::uint32_t bp) const;
    /// Fraction of all logical links owned by one BP.
    double share_of(std::uint32_t bp) const;
};

/// Build the POC candidate topology from generated BP networks.
/// Requires at least two cities to qualify as router sites.
PocTopology build_poc_topology(const std::vector<BpNetwork>& bps,
                               const PocTopologyOptions& opt = {});

}  // namespace poc::topo
