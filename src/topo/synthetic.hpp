// Synthetic continental topologies (DESIGN.md §9): a grid of
// geographic regions with dense intra-region meshes and inter-region
// trunks, sized by parameters instead of GraphML fixtures, so benches
// and property tests can build 10^4–10^5-router instances in
// milliseconds. Node ids are *region-major* — region r owns one
// contiguous id range — which is what makes the shard engine's
// contiguous source ranges geographically contiguous too.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace poc::topo {

struct SyntheticTopologyOptions {
    /// Total routers. Spread as evenly as possible across regions
    /// (every region gets at least one).
    std::size_t nodes = 10000;
    /// Regions, laid out on a near-square grid of cells. Clamped to
    /// `nodes` so no region is empty.
    std::size_t regions = 64;
    /// Target mean degree; links beyond the connectivity skeleton
    /// (intra-region chain + inter-region trunks) are random
    /// intra-region chords up to this budget. Values below the
    /// skeleton degree just yield the skeleton.
    double avg_degree = 4.0;
    /// Edge length of one region cell (km); node coordinates are
    /// uniform within their cell, link lengths are planar euclidean
    /// distances, so path lengths look continental.
    double region_span_km = 600.0;
    /// Parallel trunks added between each pair of grid-adjacent
    /// regions (>= 1 keeps the whole graph connected).
    std::size_t trunks_per_adjacency = 2;
    /// Link capacities drawn uniformly from this range (Gbps).
    double min_capacity_gbps = 400.0;
    double max_capacity_gbps = 3200.0;
    std::uint64_t seed = 7;
};

/// A generated continental instance. All vectors are indexed by node
/// id; `region_of` is nondecreasing (region-major ids).
struct SyntheticTopology {
    net::Graph graph;
    std::vector<std::uint32_t> region_of;
    std::vector<double> x_km;
    std::vector<double> y_km;
    std::size_t region_count = 0;

    /// Node ids of region r: the contiguous range [first, last).
    std::pair<net::NodeId, net::NodeId> region_range(std::size_t r) const;
};

/// Build a continental instance. Deterministic in the options
/// (including seed); the graph is connected whenever
/// trunks_per_adjacency >= 1.
SyntheticTopology build_synthetic_topology(const SyntheticTopologyOptions& opt = {});

struct ContinentalTrafficOptions {
    /// Demand count.
    std::size_t demands = 100000;
    /// Total offered volume (Gbps), split Pareto-heavy across demands.
    double total_gbps = 50000.0;
    /// Distinct demand sources (the SSSP count per epoch): evenly
    /// spaced node ids, so sources cover every region. Clamped to the
    /// node count; 0 means every node may source traffic.
    std::size_t max_sources = 512;
    std::uint64_t seed = 11;
};

/// A heavy-tailed demand list over a synthetic instance with a bounded
/// distinct-source set (S << D, the shape the sharded data plane is
/// built for). Deterministic in the options.
net::TrafficMatrix continental_traffic(const SyntheticTopology& topo,
                                       const ContinentalTrafficOptions& opt = {});

}  // namespace poc::topo
