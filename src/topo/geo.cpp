#include "topo/geo.hpp"

#include <cmath>
#include <numbers>

namespace poc::topo {

double haversine_km(GeoPoint a, GeoPoint b) {
    constexpr double kEarthRadiusKm = 6371.0;
    const double to_rad = std::numbers::pi / 180.0;
    const double phi1 = a.lat_deg * to_rad;
    const double phi2 = b.lat_deg * to_rad;
    const double dphi = (b.lat_deg - a.lat_deg) * to_rad;
    const double dlambda = (b.lon_deg - a.lon_deg) * to_rad;
    const double s = std::sin(dphi / 2.0) * std::sin(dphi / 2.0) +
                     std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2.0) *
                         std::sin(dlambda / 2.0);
    return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

const std::vector<City>& world_cities() {
    // Interconnection-relevant metros with approximate coordinates and
    // metro populations (millions). The values need only be plausible:
    // they seed BP presence and the gravity traffic model.
    static const std::vector<City> kCities = {
        // North America
        {"NewYork", {40.71, -74.01}, 19.8},
        {"Ashburn", {39.04, -77.49}, 6.3},
        {"Chicago", {41.88, -87.63}, 9.5},
        {"Dallas", {32.78, -96.80}, 7.6},
        {"LosAngeles", {34.05, -118.24}, 13.2},
        {"SanJose", {37.34, -121.89}, 7.7},
        {"Seattle", {47.61, -122.33}, 4.0},
        {"Miami", {25.76, -80.19}, 6.1},
        {"Atlanta", {33.75, -84.39}, 6.1},
        {"Denver", {39.74, -104.99}, 3.0},
        {"Toronto", {43.65, -79.38}, 6.4},
        {"Montreal", {45.50, -73.57}, 4.3},
        {"Vancouver", {49.28, -123.12}, 2.6},
        {"MexicoCity", {19.43, -99.13}, 21.8},
        {"Houston", {29.76, -95.37}, 7.1},
        {"Boston", {42.36, -71.06}, 4.9},
        {"Phoenix", {33.45, -112.07}, 4.9},
        {"Minneapolis", {44.98, -93.27}, 3.7},
        {"KansasCity", {39.10, -94.58}, 2.2},
        {"SaltLakeCity", {40.76, -111.89}, 1.3},
        // Europe
        {"London", {51.51, -0.13}, 14.3},
        {"Amsterdam", {52.37, 4.90}, 2.5},
        {"Frankfurt", {50.11, 8.68}, 2.7},
        {"Paris", {48.86, 2.35}, 13.0},
        {"Madrid", {40.42, -3.70}, 6.7},
        {"Milan", {45.46, 9.19}, 4.3},
        {"Stockholm", {59.33, 18.07}, 2.4},
        {"Copenhagen", {55.68, 12.57}, 2.1},
        {"Dublin", {53.35, -6.26}, 2.0},
        {"Vienna", {48.21, 16.37}, 2.9},
        {"Warsaw", {52.23, 21.01}, 3.1},
        {"Zurich", {47.38, 8.54}, 1.4},
        {"Brussels", {50.85, 4.35}, 2.1},
        {"Lisbon", {38.72, -9.14}, 2.9},
        {"Prague", {50.08, 14.44}, 2.7},
        {"Budapest", {47.50, 19.04}, 3.0},
        {"Bucharest", {44.43, 26.10}, 2.3},
        {"Athens", {37.98, 23.73}, 3.6},
        {"Helsinki", {60.17, 24.94}, 1.5},
        {"Oslo", {59.91, 10.75}, 1.6},
        {"Marseille", {43.30, 5.37}, 1.9},
        {"Barcelona", {41.39, 2.17}, 5.6},
        {"Berlin", {52.52, 13.40}, 6.1},
        {"Munich", {48.14, 11.58}, 2.9},
        {"Rome", {41.90, 12.50}, 4.3},
        {"Istanbul", {41.01, 28.98}, 15.6},
        {"Moscow", {55.76, 37.62}, 12.5},
        {"Kyiv", {50.45, 30.52}, 3.0},
        // Asia & Middle East
        {"Tokyo", {35.68, 139.69}, 37.4},
        {"Osaka", {34.69, 135.50}, 19.2},
        {"Singapore", {1.35, 103.82}, 5.9},
        {"HongKong", {22.32, 114.17}, 7.5},
        {"Seoul", {37.57, 126.98}, 25.6},
        {"Taipei", {25.03, 121.57}, 7.0},
        {"Mumbai", {19.08, 72.88}, 20.4},
        {"Chennai", {13.08, 80.27}, 10.9},
        {"Delhi", {28.70, 77.10}, 31.2},
        {"Jakarta", {-6.21, 106.85}, 10.6},
        {"KualaLumpur", {3.14, 101.69}, 8.0},
        {"Bangkok", {13.76, 100.50}, 10.7},
        {"Manila", {14.60, 120.98}, 13.9},
        {"Dubai", {25.20, 55.27}, 3.4},
        {"TelAviv", {32.09, 34.78}, 4.0},
        {"Riyadh", {24.71, 46.68}, 7.7},
        {"Shanghai", {31.23, 121.47}, 27.8},
        {"Beijing", {39.90, 116.41}, 20.9},
        {"Shenzhen", {22.54, 114.06}, 12.6},
        // South America
        {"SaoPaulo", {-23.55, -46.63}, 22.4},
        {"RioDeJaneiro", {-22.91, -43.17}, 13.6},
        {"BuenosAires", {-34.60, -58.38}, 15.4},
        {"Santiago", {-33.45, -70.67}, 6.8},
        {"Bogota", {4.71, -74.07}, 11.0},
        {"Lima", {-12.05, -77.04}, 10.9},
        // Africa
        {"Johannesburg", {-26.20, 28.05}, 10.0},
        {"CapeTown", {-33.92, 18.42}, 4.8},
        {"Lagos", {6.52, 3.38}, 14.9},
        {"Nairobi", {-1.29, 36.82}, 5.1},
        {"Cairo", {30.04, 31.24}, 21.3},
        // Oceania
        {"Sydney", {-33.87, 151.21}, 5.4},
        {"Melbourne", {-37.81, 144.96}, 5.2},
        {"Auckland", {-36.85, 174.76}, 1.7},
    };
    return kCities;
}

}  // namespace poc::topo
