// Geographic substrate: coordinates, great-circle distance, and the
// built-in city gazetteer used by the synthetic topology generator.
#pragma once

#include <string>
#include <vector>

namespace poc::topo {

/// A point on the globe (degrees).
struct GeoPoint {
    double lat_deg = 0.0;
    double lon_deg = 0.0;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
double haversine_km(GeoPoint a, GeoPoint b);

/// A city where bandwidth providers may have points of presence.
struct City {
    std::string name;
    GeoPoint location;
    /// Metro population in millions; drives both BP-presence probability
    /// and the gravity traffic model.
    double population_m = 0.0;
};

/// The built-in gazetteer: ~80 interconnection-relevant metros across
/// North America, Europe, Asia, South America, Africa, and Oceania.
/// Deterministic and ordered; indices into this vector are stable city
/// ids for a process lifetime.
const std::vector<City>& world_cities();

}  // namespace poc::topo
