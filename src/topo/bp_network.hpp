// Synthetic bandwidth-provider (BP) physical networks. This is the
// substitute for the Internet Topology Zoo dataset used by the paper's
// Figure 2 experiment (see DESIGN.md): we generate 20 BP backbones over
// a shared city gazetteer, sized so that BP shares of the resulting POC
// logical-link pool span roughly 2%..12%, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "topo/geo.hpp"
#include "util/rng.hpp"

namespace poc::topo {

/// One bandwidth provider's physical backbone.
struct BpNetwork {
    std::string name;
    /// Gazetteer indices of the cities where this BP has a PoP; aligned
    /// with the node ids of `physical` (node i <-> cities[i]).
    std::vector<std::size_t> cities;
    /// The BP's own fibre graph between its PoPs.
    net::Graph physical;
};

struct BpGeneratorOptions {
    std::size_t bp_count = 20;
    /// PoP-count range across BPs. Sizes ramp linearly from min to max
    /// (with jitter), producing the skewed share distribution the paper
    /// reports (smallest BP ~2% of logical links, largest ~12%).
    std::size_t min_cities = 12;
    std::size_t max_cities = 40;
    /// Waxman connectivity parameters: P(link u,v) =
    /// alpha * exp(-dist(u,v) / (beta * max_dist)).
    double waxman_alpha = 0.9;
    double waxman_beta = 0.22;
    /// Physical link capacity choices (Gbps), drawn uniformly.
    std::vector<double> capacity_choices_gbps = {100.0, 200.0, 400.0};
    std::uint64_t seed = 42;
};

/// Generate `opt.bp_count` connected BP backbones. Deterministic in the
/// seed. Every generated network is connected (Waxman draw augmented
/// with a Euclidean-MST skeleton).
std::vector<BpNetwork> generate_bp_networks(const BpGeneratorOptions& opt = {});

/// Number of BPs with a PoP in each gazetteer city (indexed by city).
std::vector<std::size_t> bp_presence_by_city(const std::vector<BpNetwork>& bps,
                                             std::size_t city_count);

}  // namespace poc::topo
