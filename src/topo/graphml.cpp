#include "topo/graphml.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

#include "util/contracts.hpp"

namespace poc::topo {

namespace {

/// Extract the value of attribute `name` from an XML tag body (the text
/// between '<' and '>'). Handles single or double quotes.
std::optional<std::string> attribute(const std::string& tag, const std::string& name) {
    const std::string needle = name + "=";
    std::size_t pos = 0;
    while ((pos = tag.find(needle, pos)) != std::string::npos) {
        // Make sure this is a standalone attribute name (preceded by
        // whitespace), not a suffix of a longer one (attr.name vs name).
        if (pos > 0 && !std::isspace(static_cast<unsigned char>(tag[pos - 1]))) {
            pos += needle.size();
            continue;
        }
        pos += needle.size();
        if (pos >= tag.size()) return std::nullopt;
        const char quote = tag[pos];
        if (quote != '"' && quote != '\'') return std::nullopt;
        const std::size_t end = tag.find(quote, pos + 1);
        if (end == std::string::npos) return std::nullopt;
        return tag.substr(pos + 1, end - pos - 1);
    }
    return std::nullopt;
}

struct Tag {
    std::string body;       // text between < and > (without them)
    std::size_t begin = 0;  // offset of '<'
    std::size_t end = 0;    // offset just past '>'

    bool is(const std::string& name) const {
        return body.rfind(name, 0) == 0 &&
               (body.size() == name.size() ||
                std::isspace(static_cast<unsigned char>(body[name.size()])) ||
                body[name.size()] == '/' || body[name.size()] == '>');
    }
    bool self_closing() const { return !body.empty() && body.back() == '/'; }
    bool closing() const { return !body.empty() && body.front() == '/'; }
};

/// Scan the next tag at or after `from`.
std::optional<Tag> next_tag(const std::string& text, std::size_t from) {
    const std::size_t lt = text.find('<', from);
    if (lt == std::string::npos) return std::nullopt;
    const std::size_t gt = text.find('>', lt + 1);
    if (gt == std::string::npos) {
        throw GraphmlParseError("unclosed tag (truncated input?)", lt);
    }
    Tag t;
    t.body = text.substr(lt + 1, gt - lt - 1);
    t.begin = lt;
    t.end = gt + 1;
    return t;
}

/// Parse a full numeric value (strtod with no trailing garbage).
double parse_coordinate(const std::string& value, const char* what, std::size_t offset) {
    const char* begin = value.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    const char* tail = end;
    while (tail != nullptr && *tail != '\0' &&
           std::isspace(static_cast<unsigned char>(*tail))) {
        ++tail;
    }
    if (end == begin || tail == nullptr || *tail != '\0' || !std::isfinite(v)) {
        throw GraphmlParseError(std::string(what) + " value is not a finite number: '" +
                                    value + "'",
                                offset);
    }
    return v;
}

}  // namespace

std::optional<std::size_t> ZooGraph::node_index(const std::string& id) const {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].id == id) return i;
    }
    return std::nullopt;
}

ZooGraph parse_graphml(const std::string& text) {
    // Pass 1: key declarations mapping data-key ids to attribute names.
    std::map<std::string, std::string> key_name;  // key id -> attr.name
    std::size_t pos = 0;
    while (const auto tag = next_tag(text, pos)) {
        pos = tag->end;
        if (!tag->is("key")) continue;
        const auto id = attribute(tag->body, "id");
        const auto name = attribute(tag->body, "attr.name");
        if (id && name) key_name[*id] = *name;
    }

    ZooGraph graph;
    pos = 0;

    // Pass 2: graph/node/edge elements with their <data> children.
    enum class Scope { kNone, kNode, kEdge, kGraph };
    Scope scope = Scope::kNone;
    std::set<std::string> node_ids;
    std::set<std::string> edge_ids;
    std::vector<std::size_t> edge_offsets;  // for post-pass diagnostics
    ZooNode current_node;
    // Plain flags instead of std::optional<double>: GCC 12's
    // -Wmaybe-uninitialized false-positives on the optional pattern.
    double cur_lat = 0.0;
    double cur_lon = 0.0;
    bool have_lat = false;
    bool have_lon = false;

    while (const auto tag = next_tag(text, pos)) {
        const std::size_t content_begin = tag->end;
        pos = tag->end;

        if (tag->is("graph") && !tag->closing()) {
            scope = Scope::kGraph;
            continue;
        }
        if (tag->is("node") && !tag->closing()) {
            const auto id = attribute(tag->body, "id");
            if (!id) throw GraphmlParseError("node element missing id attribute", tag->begin);
            if (!node_ids.insert(*id).second) {
                throw GraphmlParseError("duplicate node id '" + *id + "'", tag->begin);
            }
            current_node = ZooNode{};
            current_node.id = *id;
            have_lat = have_lon = false;
            if (tag->self_closing()) {
                graph.nodes.push_back(current_node);
            } else {
                scope = Scope::kNode;
            }
            continue;
        }
        if (tag->is("/node")) {
            if (have_lat && have_lon) current_node.location = GeoPoint{cur_lat, cur_lon};
            graph.nodes.push_back(current_node);
            scope = Scope::kGraph;
            continue;
        }
        if (tag->is("edge") && !tag->closing()) {
            const auto source = attribute(tag->body, "source");
            const auto target = attribute(tag->body, "target");
            if (!source || !target) {
                throw GraphmlParseError("edge element missing source/target attribute",
                                        tag->begin);
            }
            auto id = attribute(tag->body, "id").value_or("");
            if (!id.empty() && !edge_ids.insert(id).second) {
                throw GraphmlParseError("duplicate edge id '" + id + "'", tag->begin);
            }
            graph.edges.push_back(ZooEdge{*source, *target, std::move(id)});
            edge_offsets.push_back(tag->begin);
            if (!tag->self_closing()) scope = Scope::kEdge;
            continue;
        }
        if (tag->is("/edge")) {
            scope = Scope::kGraph;
            continue;
        }
        if (tag->is("data") && !tag->closing() && !tag->self_closing()) {
            const auto key = attribute(tag->body, "key");
            if (!key) continue;
            const auto named = key_name.find(*key);
            if (named == key_name.end()) continue;
            const std::size_t close = text.find("</data>", content_begin);
            if (close == std::string::npos) {
                throw GraphmlParseError("unclosed <data> element", tag->begin);
            }
            const std::string value = text.substr(content_begin, close - content_begin);
            pos = close + 7;
            if (scope == Scope::kNode) {
                if (named->second == "Latitude") {
                    cur_lat = parse_coordinate(value, "Latitude", content_begin);
                    have_lat = true;
                }
                if (named->second == "Longitude") {
                    cur_lon = parse_coordinate(value, "Longitude", content_begin);
                    have_lon = true;
                }
                if (named->second == "label") current_node.label = value;
            } else if (scope == Scope::kGraph) {
                if (named->second == "Network" || named->second == "label") {
                    graph.name = value;
                }
            }
            continue;
        }
    }

    // Validate edge endpoints (a post-pass: GraphML allows an edge to
    // reference a node declared later in the file).
    for (std::size_t i = 0; i < graph.edges.size(); ++i) {
        const ZooEdge& e = graph.edges[i];
        for (const std::string& endpoint : {e.source, e.target}) {
            if (!graph.node_index(endpoint)) {
                throw GraphmlParseError("edge references unknown node '" + endpoint + "'",
                                        edge_offsets[i]);
            }
        }
    }
    return graph;
}

BpNetwork bp_from_zoo(const ZooGraph& zoo, const ZooImportOptions& opt) {
    POC_EXPECTS(opt.capacity_gbps > 0.0);
    const auto& cities = world_cities();

    // Map each located node to its nearest gazetteer city.
    std::vector<std::optional<std::size_t>> node_city(zoo.nodes.size());
    std::set<std::size_t> used_cities;
    for (std::size_t n = 0; n < zoo.nodes.size(); ++n) {
        const ZooNode& zn = zoo.nodes[n];
        if (!zn.location) {
            POC_EXPECTS(opt.drop_unlocated);
            continue;
        }
        std::size_t best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < cities.size(); ++c) {
            const double d = haversine_km(*zn.location, cities[c].location);
            if (d < best_d) {
                best_d = d;
                best = c;
            }
        }
        node_city[n] = best;
        used_cities.insert(best);
    }
    POC_EXPECTS(!used_cities.empty());

    BpNetwork bp;
    bp.name = zoo.name.empty() ? "ZooImport" : zoo.name;
    bp.cities.assign(used_cities.begin(), used_cities.end());  // sorted

    std::map<std::size_t, std::size_t> city_to_node;  // gazetteer -> bp node
    for (const std::size_t ci : bp.cities) {
        city_to_node[ci] = bp.physical.add_node(cities[ci].name).index();
    }

    // Edges: merge parallel duplicates and drop self-loops created by
    // nearest-city merging.
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const ZooEdge& e : zoo.edges) {
        const auto si = zoo.node_index(e.source);
        const auto ti = zoo.node_index(e.target);
        POC_ASSERT(si && ti);
        if (!node_city[*si] || !node_city[*ti]) continue;  // unlocated endpoint
        std::size_t ca = *node_city[*si];
        std::size_t cb = *node_city[*ti];
        if (ca == cb) continue;  // merged into one metro
        if (ca > cb) std::swap(ca, cb);
        if (!seen.insert({ca, cb}).second) continue;  // duplicate circuit
        const double km = haversine_km(cities[ca].location, cities[cb].location);
        bp.physical.add_link(net::NodeId{city_to_node[ca]}, net::NodeId{city_to_node[cb]},
                             opt.capacity_gbps, std::max(km, 1.0));
    }
    return bp;
}

}  // namespace poc::topo
