// Minimal GraphML importer for Internet Topology Zoo files. The paper
// built its Figure 2 input from TopologyZoo [33]; that dataset is not
// redistributable here, so the default pipeline uses the synthetic
// generator (bp_network.hpp) — but users who have the .graphml files
// can load them through this importer and run the same experiments on
// the paper's actual input.
//
// The parser is deliberately small: it understands the subset of
// GraphML that TopologyZoo emits (<key> declarations, <node>/<edge>
// elements with <data> children) and nothing more. It is not a general
// XML parser.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "topo/bp_network.hpp"
#include "util/contracts.hpp"

namespace poc::topo {

/// Structured parse failure: what went wrong and where (byte offset
/// into the input text). Subclasses util::ContractViolation so callers
/// that treat malformed topology input as a precondition violation
/// keep working; new callers can catch this type for diagnostics.
class GraphmlParseError final : public util::ContractViolation {
public:
    GraphmlParseError(std::string message, std::size_t offset)
        : util::ContractViolation("GraphML parse error at byte " + std::to_string(offset) +
                                  ": " + message),
          message_(std::move(message)),
          offset_(offset) {}

    const std::string& message() const noexcept { return message_; }
    std::size_t offset() const noexcept { return offset_; }

private:
    std::string message_;
    std::size_t offset_;
};

/// A parsed GraphML node.
struct ZooNode {
    std::string id;     // GraphML node id
    std::string label;  // human-readable name if present
    /// Geographic coordinates; absent for placeholder nodes (Topology
    /// Zoo contains a few unlocated nodes).
    std::optional<GeoPoint> location;
};

struct ZooEdge {
    std::string source;  // node ids
    std::string target;
    /// GraphML edge id attribute, if present (duplicate non-empty ids
    /// are rejected at parse time).
    std::string id;
};

/// One parsed topology file.
struct ZooGraph {
    std::string name;  // graph label if present
    std::vector<ZooNode> nodes;
    std::vector<ZooEdge> edges;

    /// Index of a node by GraphML id; nullopt if unknown.
    std::optional<std::size_t> node_index(const std::string& id) const;
};

/// Parse GraphML text. Throws GraphmlParseError (a
/// util::ContractViolation) on malformed input: truncated/unclosed
/// tags, unclosed <data> elements, nodes without ids, duplicate node
/// or edge ids, edges missing endpoints or referencing unknown nodes,
/// and non-numeric coordinate values.
ZooGraph parse_graphml(const std::string& text);

struct ZooImportOptions {
    /// Capacity assigned to each imported physical link (TopologyZoo
    /// has no capacities; the paper does not state its assignment).
    double capacity_gbps = 100.0;
    /// Nodes without coordinates are dropped (true) or rejected (false).
    bool drop_unlocated = true;
};

/// Convert a parsed topology into a BpNetwork over the built-in
/// gazetteer: each located zoo node maps to its nearest gazetteer city
/// (several zoo nodes may merge into one city - exactly the
/// "closely colocated" notion the POC router placement needs), edges
/// become physical links with haversine lengths, and self-loops created
/// by merging are dropped.
BpNetwork bp_from_zoo(const ZooGraph& zoo, const ZooImportOptions& opt = {});

}  // namespace poc::topo
