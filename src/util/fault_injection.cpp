#include "util/fault_injection.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace poc::util {

std::string FaultyFile::slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return {};
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void FaultyFile::spit(const std::string& path, std::string_view bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t FaultyFile::size(const std::string& path) {
    std::error_code ec;
    const auto n = std::filesystem::file_size(path, ec);
    return ec ? 0 : n;
}

void FaultyFile::tear_at(const std::string& path, std::uint64_t offset) {
    std::string bytes = slurp(path);
    if (offset < bytes.size()) bytes.resize(offset);
    spit(path, bytes);
}

void FaultyFile::flip_bit(const std::string& path, std::uint64_t offset, unsigned bit) {
    std::string bytes = slurp(path);
    if (offset >= bytes.size()) return;
    bytes[offset] = static_cast<char>(
        static_cast<unsigned char>(bytes[offset]) ^ (1u << (bit & 7u)));
    spit(path, bytes);
}

void FaultyFile::truncate_tail(const std::string& path, std::uint64_t n) {
    std::string bytes = slurp(path);
    bytes.resize(bytes.size() - std::min<std::uint64_t>(n, bytes.size()));
    spit(path, bytes);
}

void FaultyFile::duplicate_range(const std::string& path, std::uint64_t offset,
                                 std::uint64_t len) {
    std::string bytes = slurp(path);
    if (offset >= bytes.size()) return;
    const std::uint64_t n = std::min<std::uint64_t>(len, bytes.size() - offset);
    bytes.append(bytes, offset, n);
    spit(path, bytes);
}

void FaultyFile::append_garbage(const std::string& path, std::string_view bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FaultyFile::make_stale_temp(const std::string& path, std::string_view bytes) {
    spit(path + ".tmp", bytes);
}

}  // namespace poc::util
