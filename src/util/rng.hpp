// Deterministic pseudo-random number generation for reproducible
// simulations. We implement splitmix64 (for seeding) and xoshiro256**
// (for the main stream) rather than relying on std::mt19937 so that the
// stream is identical across standard libraries and platforms; every
// experiment in the benchmark harness is seeded and replayable.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace poc::util {

/// Complete serializable state of an Rng: the 256-bit xoshiro state
/// plus the Box-Muller spare, so a restored stream resumes at exactly
/// the same position (including a pending second normal deviate). Used
/// by the durable epoch runtime's write-ahead journal.
struct RngState {
    std::array<std::uint64_t, 4> s{};
    bool have_spare_normal = false;
    double spare_normal = 0.0;

    friend bool operator==(const RngState&, const RngState&) = default;
};

/// splitmix64: tiny, high-quality 64-bit mixer. Used to expand a single
/// user seed into the 256-bit xoshiro state.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it composes with <random> if
/// ever needed, but we provide our own distributions below for
/// cross-platform determinism.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        SplitMix64 sm(seed);
        for (auto& s : state_) s = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept { return next(); }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        // 53 random mantissa bits; exact dyadic rational in [0,1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi). Requires lo <= hi.
    double uniform(double lo, double hi) {
        POC_EXPECTS(lo <= hi);
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n). Requires n > 0. Uses Lemire-style
    /// rejection to avoid modulo bias.
    std::uint64_t uniform_int(std::uint64_t n);

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Standard normal via Box-Muller (deterministic across platforms).
    double normal() noexcept;

    /// Normal with the given mean and standard deviation (sigma >= 0).
    double normal(double mean, double sigma);

    /// Exponential with the given rate (rate > 0).
    double exponential(double rate);

    /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed demand).
    double pareto(double x_m, double alpha);

    /// Log-normal with the given parameters of the underlying normal.
    double lognormal(double mu, double sigma);

    /// Bernoulli trial with success probability p in [0, 1].
    bool bernoulli(double p);

    /// Sample an index from a discrete distribution given non-negative
    /// weights (not necessarily normalized, at least one positive).
    std::size_t discrete(const std::vector<double>& weights);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        if (v.empty()) return;
        for (std::size_t i = v.size() - 1; i > 0; --i) {
            const std::size_t j = static_cast<std::size_t>(uniform_int(i + 1));
            using std::swap;
            swap(v[i], v[j]);
        }
    }

    /// Sample k distinct indices from [0, n) without replacement.
    std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

    /// Snapshot the full generator state (stream position included).
    RngState state() const noexcept {
        return RngState{state_, have_spare_normal_, spare_normal_};
    }

    /// Restore a snapshot taken with state(): the stream continues
    /// bit-identically from the captured position.
    void set_state(const RngState& st) noexcept {
        state_ = st.s;
        have_spare_normal_ = st.have_spare_normal;
        spare_normal_ = st.spare_normal;
    }

    /// A decorrelated child stream (for per-entity randomness that is
    /// stable under changes elsewhere in the program).
    Rng split() noexcept {
        Rng child;
        child.state_ = {next(), next(), next(), next()};
        return child;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
    bool have_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

}  // namespace poc::util
