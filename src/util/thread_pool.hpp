// A small work-stealing thread pool for embarrassingly parallel
// batches — in this codebase, the auction engine's independent per-BP
// Clarke-pivot re-solves (market/vcg.cpp) — that is also fit to idle
// inside a long-running process (the serve daemon). Design: one deque
// per worker guarded by its own mutex; a worker pops from the front of
// its own deque and steals from the back of another's when empty, so
// uneven task costs rebalance without a single contended queue.
// parallel_for()'s calling thread joins the stealing loop, so a pool
// of N workers drains N+1 wide.
//
// Idle behavior: workers park on their *own* condition variable (LIFO
// parked stack under sleep_mutex_), and submit() hands the task
// *directly* to a parked worker's handoff slot with a targeted wakeup
// when one exists — the task never sits in a stealable deque — falling
// back to round-robin queue placement only when every worker is busy.
// A mostly-idle pool therefore executes submissions without steals:
// the obs "util.pool.steals" counter measures real load imbalance, and
// an idle pool burns no CPU between tasks.
//
// Tasks must not throw: ferry errors out by hand (run_auction catches
// into std::exception_ptr slots and rethrows after the join).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace poc::util {

class ThreadPool {
public:
    /// Spin up `workers` threads (>= 1).
    explicit ThreadPool(std::size_t workers);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t worker_count() const noexcept { return queues_.size(); }

    /// Enqueue one task. Thread-safe.
    void submit(std::function<void()> task);

    /// Block until every task submitted so far has finished.
    void wait_idle();

    /// Run fn(0), ..., fn(count-1) across the pool and the calling
    /// thread; returns when all of them have finished.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
    struct Queue {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    /// Per-worker parking slot. All fields guarded by sleep_mutex_.
    /// `task` is the direct-handoff slot: filled by submit() targeting
    /// this parked worker, drained by the worker on wakeup.
    struct Parking {
        std::condition_variable cv;
        bool signaled = false;
        std::function<void()> task;
    };

    /// Pop a task: front of the `home` deque, else steal from the back
    /// of the others. Empty function when nothing is queued anywhere.
    std::function<void()> take(std::size_t home);
    bool any_queued();
    void worker_loop(std::size_t home);
    void finish_one();

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::unique_ptr<Parking>> parking_;
    std::vector<std::thread> threads_;
    std::mutex sleep_mutex_;
    std::condition_variable idle_cv_;
    std::atomic<std::size_t> pending_{0};  // submitted, not yet finished
    std::atomic<std::size_t> next_queue_{0};
    /// Workers currently parked, most recently parked last (LIFO keeps
    /// warm workers busy). Guarded by sleep_mutex_.
    std::vector<std::size_t> parked_;
    bool stop_ = false;  // guarded by sleep_mutex_
};

}  // namespace poc::util
