#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace poc::util {

std::uint64_t Rng::uniform_int(std::uint64_t n) {
    POC_EXPECTS(n > 0);
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
        const std::uint64_t t = (0 - n) % n;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    POC_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
    const std::uint64_t draw = (span == 0) ? next() : uniform_int(span);
    return lo + static_cast<std::int64_t>(draw);
}

double Rng::normal() noexcept {
    if (have_spare_normal_) {
        have_spare_normal_ = false;
        return spare_normal_;
    }
    // Box-Muller; draw u1 away from zero to keep log finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_normal_ = r * std::sin(theta);
    have_spare_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
    POC_EXPECTS(sigma >= 0.0);
    return mean + sigma * normal();
}

double Rng::exponential(double rate) {
    POC_EXPECTS(rate > 0.0);
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double Rng::pareto(double x_m, double alpha) {
    POC_EXPECTS(x_m > 0.0);
    POC_EXPECTS(alpha > 0.0);
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
    POC_EXPECTS(sigma >= 0.0);
    return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
    POC_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
    POC_EXPECTS(!weights.empty());
    double total = 0.0;
    for (const double w : weights) {
        POC_EXPECTS(w >= 0.0);
        total += w;
    }
    POC_EXPECTS(total > 0.0);
    const double target = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc) return i;
    }
    // Floating-point slack: return the last index with positive weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0) return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
    POC_EXPECTS(k <= n);
    // Partial Fisher-Yates over an index vector.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
        using std::swap;
        swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

}  // namespace poc::util
