// Checksummed write-ahead journal for the durable epoch runtime
// (DESIGN.md §4b): an append-only log of typed binary records with a
// CRC32 frame per record, so a process killed mid-write leaves at worst
// a torn tail that the next open detects, truncates, and reports —
// never a silently-replayed corrupt record.
//
// File layout (native byte order; the journal is a local recovery
// artifact, not a wire format):
//
//   header:  magic "POCWAL01" | u32 meta_len | meta bytes | u32 crc32(meta)
//   record:  u16 type | u32 payload_len | u32 crc32(type || payload) | payload
//
// The metadata string fingerprints the run configuration (seed, epoch
// count, pool shape); open() surfaces it so the runtime can refuse to
// replay a journal written by a different configuration.
//
// BinaryWriter/BinaryReader are the serialization substrate shared by
// every journaled type (core::Ledger transfers, market::AuctionResult,
// util::RngState). Readers throw JournalError on truncation instead of
// reading garbage.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace poc::util {

/// Thrown on malformed journal bytes: truncated payloads, bad magic,
/// or metadata that does not match the resuming configuration.
class JournalError : public std::runtime_error {
public:
    explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only binary serializer (little-endian on every platform we
/// build for; the journal never crosses machines).
class BinaryWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u16(std::uint16_t v) { raw(&v, sizeof v); }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void i64(std::int64_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    /// Length-prefixed byte string.
    void str(std::string_view s) {
        u64(s.size());
        buf_.append(s.data(), s.size());
    }

    const std::string& bytes() const noexcept { return buf_; }
    void clear() noexcept { buf_.clear(); }

private:
    void raw(const void* p, std::size_t n) {
        buf_.append(static_cast<const char*>(p), n);
    }
    std::string buf_;
};

/// Bounds-checked reader over a serialized payload. Every accessor
/// throws JournalError when the buffer is exhausted early (a torn or
/// corrupt record must never yield garbage values).
class BinaryReader {
public:
    explicit BinaryReader(std::string_view bytes) : buf_(bytes) {}

    std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(buf_[pos_++]);
    }
    std::uint16_t u16() { return read<std::uint16_t>(); }
    std::uint32_t u32() { return read<std::uint32_t>(); }
    std::uint64_t u64() { return read<std::uint64_t>(); }
    std::int64_t i64() { return read<std::int64_t>(); }
    double f64() { return read<double>(); }
    bool boolean() { return u8() != 0; }
    std::string str() {
        const std::uint64_t n = u64();
        need(n);
        std::string out(buf_.substr(pos_, n));
        pos_ += n;
        return out;
    }

    std::size_t remaining() const noexcept { return buf_.size() - pos_; }
    bool exhausted() const noexcept { return pos_ == buf_.size(); }

private:
    template <typename T>
    T read() {
        need(sizeof(T));
        T v;
        std::char_traits<char>::copy(reinterpret_cast<char*>(&v), buf_.data() + pos_,
                                     sizeof(T));
        pos_ += sizeof(T);
        return v;
    }
    void need(std::uint64_t n) const {
        if (n > buf_.size() - pos_) {
            throw JournalError("journal payload truncated: need " + std::to_string(n) +
                               " bytes, have " + std::to_string(buf_.size() - pos_));
        }
    }

    std::string_view buf_;
    std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte string.
std::uint32_t crc32(std::string_view bytes);

struct JournalRecord {
    std::uint16_t type = 0;
    std::string payload;
};

/// The file-backed journal itself. `create` starts a fresh log;
/// `open` scans an existing one, validates every record checksum,
/// truncates any torn/corrupt tail in place, and leaves the file
/// positioned for append so recovery can continue the same log.
class Journal {
public:
    struct ScanResult {
        std::string meta;
        std::vector<JournalRecord> records;
        /// True when a torn or checksum-failing tail was detected. The
        /// bytes are physically truncated away by open() only;
        /// scan_file() reports and leaves them in place.
        bool tail_truncated = false;
        std::uint64_t dropped_bytes = 0;
        /// Byte offset just past the header (magic + meta + meta CRC):
        /// where the first record frame starts.
        std::uint64_t header_end = 0;
        /// Byte offset of the end of the valid record prefix. A tailing
        /// reader resumes its next incremental scan here; bytes in
        /// (valid_end, file_size] are a torn or corrupt tail.
        std::uint64_t valid_end = 0;
        /// Total bytes the scan saw (the file image it read).
        std::uint64_t file_size = 0;
    };

    /// Diagnostics from a rewrite() compaction pass.
    struct RewriteStats {
        std::uint64_t records = 0;
        std::uint64_t bytes_before = 0;
        std::uint64_t bytes_after = 0;
    };

    // All special members out of line: Fsyncer is incomplete here.
    Journal();
    Journal(Journal&&) noexcept;
    Journal& operator=(Journal&&) noexcept;
    ~Journal();

    /// Create (or truncate) the journal at `path` with the given
    /// configuration fingerprint. Throws JournalError on I/O failure.
    static Journal create(const std::string& path, std::string_view meta,
                          bool fsync_on_append = false);

    /// Open an existing journal: validate the header, scan the valid
    /// record prefix, truncate the file to it, and report what was
    /// read. Throws JournalError when the header itself is unreadable.
    static Journal open(const std::string& path, ScanResult& scan,
                        bool fsync_on_append = false);

    /// Read-only scan: validate the header and every record CRC
    /// exactly as open() does, but never truncate the file and never
    /// take an append handle. Safe to run against a journal the
    /// owning runtime still has open for append — the point-in-time
    /// query path (util::HistoryReader) and the journal-tailing
    /// follower (serve::Follower) read live journals this way.
    /// A torn tail is reported in `scan`, not repaired. Throws
    /// JournalError when the file is missing or its header is
    /// unreadable, like open().
    ///
    /// Read-only live-tail contract (pinned by tests/util
    /// regression tests; the replicated read tier depends on it):
    ///  * The function performs no write, truncate, rename, or
    ///    open-for-append on `path` — a reader can never damage the
    ///    writer's log, and truncation authority stays with the
    ///    writer (open()).
    ///  * A torn tail — a frame whose declared length runs past EOF,
    ///    exactly what a reader racing an in-progress append observes
    ///    — stops the scan at the last complete valid frame and sets
    ///    tail_truncated; it never throws. A later scan, after the
    ///    writer finishes the append, extends the same valid prefix.
    ///  * A corrupt tail (CRC mismatch: bit flip, overwritten bytes)
    ///    is indistinguishable from a torn one at scan level and is
    ///    handled identically: stop at the last good frame, report.
    ///    Distinguishing "still being written" from "damaged" is the
    ///    caller's job (poll again; no growth past valid_end = damage).
    ///  * scan.records is always exactly the records of
    ///    [header_end, valid_end) — a prefix closed under record
    ///    boundaries, never a partial frame.
    static void scan_file(const std::string& path, ScanResult& scan);

    /// Stable identity of the inode behind `path` (device + inode
    /// hash), or 0 when the file is missing or the platform cannot
    /// say. A tailing reader uses an identity change to detect that
    /// rewrite() renamed a new generation over the path it is
    /// following (the compaction race).
    static std::uint64_t file_identity(const std::string& path);

    /// Atomically replace the journal at `path` with header(meta) +
    /// `records`: serialize to `<path>.tmp`, then rename over `path`.
    /// A crash at any point leaves either the old log or the complete
    /// new one — never a hybrid. Returns the rewritten journal open
    /// for append. This is the compaction primitive: the state-history
    /// layer calls it to drop records a snapshot already covers.
    static Journal rewrite(const std::string& path, std::string_view meta,
                           const std::vector<JournalRecord>& records,
                           RewriteStats* stats = nullptr, bool fsync_on_append = false);

    /// Append one record and flush it to the OS. The record is durable
    /// (from this process's perspective) once append returns; with
    /// fsync_on_append it is also synced to stable storage.
    void append(std::uint16_t type, std::string_view payload);

    /// Durability knob: fsync the file after every append. Off by
    /// default (flush-to-OS only) — the journal's torn-tail scan
    /// already makes an OS-level loss a clean truncation, so fsync
    /// buys power-failure durability at per-append syscall cost.
    void set_fsync_on_append(bool enabled);
    bool fsync_on_append() const noexcept { return fsync_ != nullptr; }

    bool attached() const noexcept { return out_.is_open(); }
    const std::string& path() const noexcept { return path_; }
    /// Bytes written to the file so far (header + records).
    std::uint64_t size_bytes() const noexcept { return size_bytes_; }

private:
    /// RAII holder of the O_WRONLY descriptor used for fsync (the
    /// ofstream has no portable sync hook). Defined in journal.cpp.
    struct Fsyncer;

    std::string path_;
    std::ofstream out_;
    std::uint64_t size_bytes_ = 0;
    std::unique_ptr<Fsyncer> fsync_;
};

}  // namespace poc::util
