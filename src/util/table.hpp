// ASCII table rendering for the benchmark harnesses. Every experiment
// binary prints paper-style rows through this class so the output format
// is uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace poc::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, push rows of strings (or use
/// the cell() helpers for numbers), then render.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Per-column alignment; defaults to left for the first column and
    /// right for the rest (the usual label-then-numbers layout).
    void set_alignment(std::vector<Align> alignment);

    /// Append a row. Must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    std::size_t row_count() const noexcept { return rows_.size(); }
    std::size_t column_count() const noexcept { return headers_.size(); }

    /// Render with box-drawing rules, e.g.
    ///   | BP   |   bid |   payment |  PoB |
    ///   |------|-------|-----------|------|
    ///   | BP1  |  12.0 |      13.1 | 0.09 |
    std::string render() const;

    /// Render as CSV (RFC-4180 quoting).
    std::string render_csv() const;

private:
    std::vector<std::string> headers_;
    std::vector<Align> alignment_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given number of decimal places.
std::string cell(double value, int decimals = 3);
/// Format an integer.
std::string cell(std::int64_t value);
std::string cell(std::size_t value);
/// Format a percentage ("12.3%") from a fraction.
std::string cell_pct(double fraction, int decimals = 1);

}  // namespace poc::util
