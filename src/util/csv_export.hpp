// Optional CSV export for the benchmark harnesses: when the
// POC_CSV_DIR environment variable names a directory, each experiment
// binary also writes its tables there as CSV (for plotting/regression
// against EXPERIMENTS.md). Without the variable this is a no-op, so
// default runs stay side-effect free.
#pragma once

#include <optional>
#include <string>

#include "util/table.hpp"

namespace poc::util {

/// The export directory from POC_CSV_DIR, if set and non-empty.
std::optional<std::string> csv_export_dir();

/// Write `table` as <dir>/<name>.csv when exporting is enabled.
/// Returns the path written, or nullopt when disabled. Throws
/// ContractViolation if the directory is set but unwritable (a silent
/// drop would be worse than failing the bench).
std::optional<std::string> maybe_export_csv(const Table& table, const std::string& name);

}  // namespace poc::util
