#include "util/thread_pool.hpp"

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace poc::util {

ThreadPool::ThreadPool(std::size_t workers) {
    POC_EXPECTS(workers >= 1);
    queues_.reserve(workers);
    parking_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        queues_.push_back(std::make_unique<Queue>());
        parking_.push_back(std::make_unique<Parking>());
    }
    parked_.reserve(workers);
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    wait_idle();  // queued work is never dropped
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stop_ = true;
        for (const auto& p : parking_) p->cv.notify_one();
    }
    for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    POC_EXPECTS(task != nullptr);
    POC_OBS_INC("util.pool.tasks_submitted");
    POC_OBS_GAUGE_ADD("util.pool.queue_depth", 1);
    pending_.fetch_add(1, std::memory_order_relaxed);
    // The push happens under sleep_mutex_ in both branches: a worker
    // re-scans the queues under sleep_mutex_ before parking, so a task
    // pushed while the lock is held is either seen by that re-scan or
    // lands after the worker is on parked_ (and gets the targeted
    // wakeup). Lock order is sleep_mutex_ -> queue mutex, matching
    // any_queued() under the parking lock.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    if (!parked_.empty()) {
        // Hand the task directly to a parked worker and wake exactly
        // that worker. The task never touches a deque, so a busy
        // worker mid-scan cannot steal it — an idle pool's steal
        // counter stays flat.
        const std::size_t q = parked_.back();
        parked_.pop_back();
        parking_[q]->task = std::move(task);
        parking_[q]->signaled = true;
        parking_[q]->cv.notify_one();
        return;
    }
    // Every worker is busy: round-robin placement for balance.
    const std::size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    std::lock_guard<std::mutex> qlock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
}

std::function<void()> ThreadPool::take(std::size_t home) {
    const std::size_t n = queues_.size();
    for (std::size_t k = 0; k < n; ++k) {
        Queue& q = *queues_[(home + k) % n];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (q.tasks.empty()) continue;
        std::function<void()> task;
        if (k == 0) {  // own deque: oldest first
            task = std::move(q.tasks.front());
            q.tasks.pop_front();
        } else {  // steal the newest from the victim
            task = std::move(q.tasks.back());
            q.tasks.pop_back();
            POC_OBS_INC("util.pool.steals");
        }
        POC_OBS_GAUGE_SUB("util.pool.queue_depth", 1);
        return task;
    }
    return {};
}

bool ThreadPool::any_queued() {
    for (const auto& q : queues_) {
        std::lock_guard<std::mutex> lock(q->mutex);
        if (!q->tasks.empty()) return true;
    }
    return false;
}

void ThreadPool::finish_one() {
    POC_OBS_INC("util.pool.tasks_executed");
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        idle_cv_.notify_all();
    }
}

void ThreadPool::worker_loop(std::size_t home) {
    Parking& self = *parking_[home];
    for (;;) {
        if (auto task = take(home)) {
            task();
            finish_one();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        if (stop_) return;
        if (any_queued()) continue;  // raced with a submit; retry take
        // Park: once this worker is on parked_, the next submit targets
        // it directly. Spurious wakeups stay inside the predicate wait
        // (still parked, still on the stack).
        self.signaled = false;
        parked_.push_back(home);
        self.cv.wait(lock, [&] { return self.signaled || stop_; });
        if (stop_) return;
        if (self.task) {
            auto task = std::move(self.task);
            self.task = nullptr;
            lock.unlock();
            POC_OBS_GAUGE_SUB("util.pool.queue_depth", 1);
            task();
            finish_one();
        }
    }
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    // Batch lives on the caller's stack, so the entire completion
    // handshake stays under batch.mutex: a worker's final decrement and
    // notify happen inside the lock, and the caller only observes
    // remaining == 0 under the same lock. Once it does, no worker can
    // still be touching the batch, making destruction safe.
    struct Batch {
        std::mutex mutex;
        std::condition_variable done;
        std::size_t remaining;
    } batch{{}, {}, count};

    for (std::size_t i = 0; i < count; ++i) {
        submit([&batch, &fn, i] {
            fn(i);
            std::lock_guard<std::mutex> lock(batch.mutex);
            if (--batch.remaining == 0) batch.done.notify_all();
        });
    }

    // The caller drains the pool alongside the workers until this
    // batch's tasks have all finished. It may execute tasks from another
    // concurrent batch it happens to steal; that is still useful work.
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(batch.mutex);
            if (batch.remaining == 0) return;
        }
        if (auto task = take(0)) {
            task();
            finish_one();
            continue;
        }
        // Nothing left to steal: the remaining tasks are running on
        // workers. Sleep until the last of them signals the batch.
        std::unique_lock<std::mutex> lock(batch.mutex);
        batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
        return;
    }
}

}  // namespace poc::util
