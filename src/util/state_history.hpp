// State-history store for the durable epoch runtime (DESIGN.md §4c):
// periodic full snapshots plus a delta-compacted journal, so restart
// cost is O(snapshot interval) instead of O(history) and a single
// corrupted file never strands the run.
//
// Three pieces, layered on util/journal.hpp:
//
//  * Snapshot files — a versioned, CRC-framed serialization of the
//    complete epoch state, installed *atomically* (write `<path>.tmp`,
//    flush, rename). A reader either sees the previous snapshot or the
//    complete new one, never a torn hybrid. Recovery prefers the
//    newest snapshot that validates end to end (magic, length frame,
//    CRC-32 over the whole body, matching configuration fingerprint)
//    and silently skips anything less.
//
//      file := magic "POCSNAP1"
//            | u64 completed_epochs | u32 meta_len | u64 payload_len
//            | meta bytes | payload bytes
//            | u32 crc32(everything after the magic)
//
//  * Delta codec — varint + XOR run-length encoding of one byte string
//    against a base. Consecutive epochs produce near-identical stage
//    records (same shape, few changed fields), so journaling the XOR
//    delta against the prior epoch's record of the same type shrinks
//    steady-state journal growth. Purely positional: no schema
//    knowledge, byte-stable, and `decode(base, encode(base, next))`
//    is exactly `next`.
//
//  * SnapshotStore / SnapshotSink — the file-management layer: write
//    with atomic install, enumerate `<base>.snap-<epoch>` files, load
//    the newest valid one, prune old generations, and sweep stale
//    `.tmp` leftovers from crashed installs. SnapshotSink is the
//    emission interface the runtime calls every K epochs; tests
//    substitute their own sink to capture payloads.
//
// Journal compaction itself lives on util::Journal (`rewrite`): an
// atomic temp+rename rewrite of the log to header + suffix records,
// which the runtime uses to drop everything a snapshot already covers.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/journal.hpp"

namespace poc::util {

/// Thrown on malformed delta bytes. Snapshot corruption is *not* an
/// exception path: a bad snapshot file is skipped, not thrown.
class StateHistoryError : public std::runtime_error {
public:
    explicit StateHistoryError(const std::string& what) : std::runtime_error(what) {}
};

/// LEB128 unsigned varint (the delta codec's integer format).
void put_varint(std::string& out, std::uint64_t v);
/// Decode a varint at `pos` (advanced past it). Throws
/// StateHistoryError on truncation or overlong encodings.
std::uint64_t get_varint(std::string_view bytes, std::size_t& pos);

/// Encode `next` as an XOR delta against `base`: alternating
/// (skip, literal) runs over the positions where `next` matches /
/// differs from `base` (base is implicitly zero-padded past its end).
/// Deterministic; `next` of any size against `base` of any size.
std::string xor_delta_encode(std::string_view base, std::string_view next);

/// Invert xor_delta_encode. Throws StateHistoryError when the delta
/// bytes are malformed (truncated runs, lengths out of bounds).
std::string xor_delta_decode(std::string_view base, std::string_view delta);

/// One snapshot file on disk, identified by how many completed epochs
/// it covers (the state is the instant after epoch
/// `completed_epochs - 1` settled).
struct SnapshotInfo {
    std::uint64_t completed_epochs = 0;
    std::string path;

    friend bool operator==(const SnapshotInfo&, const SnapshotInfo&) = default;
};

/// Write one snapshot file at `path` atomically: serialize to
/// `<path>.tmp`, flush to the OS (and fsync where available), then
/// rename over `path`. Throws StateHistoryError on I/O failure.
void write_snapshot_file(const std::string& path, std::uint64_t completed_epochs,
                         std::string_view meta, std::string_view payload);

struct LoadedSnapshot {
    std::uint64_t completed_epochs = 0;
    std::string meta;
    std::string payload;
    std::string path;
};

/// Read and fully validate one snapshot file. Returns nullopt — never
/// throws, never returns partial bytes — when the file is missing,
/// torn, truncated, bit-flipped, or not a snapshot at all.
std::optional<LoadedSnapshot> read_snapshot_file(const std::string& path);

/// File-management layer over `<base>.snap-<epoch>` snapshot files.
class SnapshotStore {
public:
    SnapshotStore() = default;
    /// `base_path` is the artifact the snapshots belong to (the
    /// journal path); snapshots land next to it. `keep` >= 1 newest
    /// generations survive pruning. A `read_only` store is a pure
    /// observer: write() throws, prune()/sweep_stale_temps() are
    /// no-ops — a follower bootstrapping from another process's
    /// snapshots must never delete that writer's in-flight `.tmp`
    /// files or old generations (temp-file ownership is writer-only).
    explicit SnapshotStore(std::string base_path, std::size_t keep = 2,
                           bool read_only = false);

    bool enabled() const noexcept { return !base_path_.empty(); }
    const std::string& base_path() const noexcept { return base_path_; }
    std::size_t keep() const noexcept { return keep_; }
    bool read_only() const noexcept { return read_only_; }

    /// Path of the snapshot covering `completed_epochs` epochs.
    std::string path_for(std::uint64_t completed_epochs) const;

    /// Atomically install a snapshot, then prune old generations.
    /// Returns the installed path. Throws StateHistoryError on a
    /// read-only store.
    std::string write(std::uint64_t completed_epochs, std::string_view meta,
                      std::string_view payload) const;

    /// Snapshots present on disk (by filename), oldest first. Purely
    /// lexical: corrupt files are listed too (validation is load's
    /// job); `.tmp` leftovers are not.
    std::vector<SnapshotInfo> list() const;

    /// The newest snapshot that validates end to end *and* matches the
    /// expected configuration fingerprint. Corrupt or foreign
    /// snapshots are skipped (older generations are the fallback);
    /// nullopt when none survive.
    std::optional<LoadedSnapshot> load_newest_valid(std::string_view expect_meta) const;

    /// Point-in-time variant: the newest valid, fingerprint-matching
    /// snapshot covering at most `target_epochs` completed epochs —
    /// the grounding point for "replay the journal suffix up to epoch
    /// N". Same corrupt/foreign fallback as load_newest_valid; nullopt
    /// when no generation ≤ target survives (callers then replay the
    /// whole journal from scratch).
    std::optional<LoadedSnapshot> load_at(std::uint64_t target_epochs,
                                          std::string_view expect_meta) const;

    /// Delete all but the newest `keep` snapshots. Returns how many
    /// files were removed (always 0 on a read-only store).
    std::size_t prune() const;

    /// Remove `<base>.snap-*.tmp` leftovers from installs that died
    /// before their rename. Returns how many were removed (always 0
    /// on a read-only store — only the writer knows whether a `.tmp`
    /// is stale or mid-install).
    std::size_t sweep_stale_temps() const;

private:
    std::string base_path_;
    std::size_t keep_ = 2;
    bool read_only_ = false;
};

/// Emission interface the runtime calls every K completed epochs.
class SnapshotSink {
public:
    virtual ~SnapshotSink() = default;
    virtual void emit(std::uint64_t completed_epochs, std::string_view meta,
                      std::string_view payload) = 0;
};

/// Read-only view over a run's history artifacts (journal + snapshot
/// generations) for point-in-time queries: pick the newest valid
/// snapshot ≤ the target epoch, then scan the journal *without*
/// mutating it — the owning runtime may still hold the file open for
/// append, so this side never truncates tails or takes write handles.
/// The caller (sim::materialize_state_at) replays the record suffix on
/// top of the snapshot.
class HistoryReader {
public:
    HistoryReader() = default;
    /// `journal_path` is the live journal; snapshots are discovered
    /// next to it via SnapshotStore's `<base>.snap-<epochs>` naming.
    /// The store is read-only: a HistoryReader never writes, prunes,
    /// or sweeps the writer's snapshot directory (a follower must
    /// leave a mid-install leader `.tmp` intact).
    explicit HistoryReader(std::string journal_path, std::size_t keep = 2)
        : journal_path_(std::move(journal_path)),
          store_(journal_path_, keep, /*read_only=*/true) {}

    const std::string& journal_path() const noexcept { return journal_path_; }
    const SnapshotStore& store() const noexcept { return store_; }

    /// Newest valid snapshot covering ≤ `target_epochs` (see
    /// SnapshotStore::load_at). Nullopt → replay from the journal head.
    std::optional<LoadedSnapshot> snapshot_at(std::uint64_t target_epochs,
                                              std::string_view expect_meta) const {
        return store_.load_at(target_epochs, expect_meta);
    }

    /// Read-only journal scan (Journal::scan_file): validates header
    /// and record CRCs, reports — but never repairs — a torn tail.
    /// Throws JournalError when the journal is missing or headerless.
    void scan_journal(Journal::ScanResult& scan) const {
        Journal::scan_file(journal_path_, scan);
    }

private:
    std::string journal_path_;
    SnapshotStore store_;
};

/// The default sink: write-through to a SnapshotStore.
class FileSnapshotSink final : public SnapshotSink {
public:
    explicit FileSnapshotSink(SnapshotStore store) : store_(std::move(store)) {}

    void emit(std::uint64_t completed_epochs, std::string_view meta,
              std::string_view payload) override {
        store_.write(completed_epochs, meta, payload);
    }

    const SnapshotStore& store() const noexcept { return store_; }

private:
    SnapshotStore store_;
};

}  // namespace poc::util
