// Descriptive statistics used across the benchmark harnesses: running
// accumulators, percentiles, and fixed-width histograms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace poc::util {

/// Single-pass accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
public:
    void add(double x) noexcept;

    std::size_t count() const noexcept { return n_; }
    bool empty() const noexcept { return n_ == 0; }

    /// Mean of the observations. Requires at least one observation.
    double mean() const;
    /// Unbiased sample variance. Requires at least two observations.
    double variance() const;
    /// Sample standard deviation. Requires at least two observations.
    double stddev() const;
    /// Smallest observation. Requires at least one observation.
    double min() const;
    /// Largest observation. Requires at least one observation.
    double max() const;
    /// Sum of all observations.
    double sum() const noexcept { return sum_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order
/// statistics (the "type 7" estimator). q in [0, 1]; sample non-empty.
/// The input is copied; use percentile_inplace to avoid the copy.
double percentile(std::vector<double> sample, double q);

/// As percentile(), but partially sorts the given vector in place.
double percentile_inplace(std::vector<double>& sample, double q);

/// Mean of a non-empty sample.
double mean_of(const std::vector<double>& sample);

/// Fixed-width histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
public:
    /// Requires lo < hi and bins >= 1.
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;

    std::size_t bin_count() const noexcept { return counts_.size(); }
    std::size_t count_in_bin(std::size_t bin) const;
    std::size_t underflow() const noexcept { return underflow_; }
    std::size_t overflow() const noexcept { return overflow_; }
    std::size_t total() const noexcept { return total_; }

    /// Left edge of the given bin.
    double bin_lo(std::size_t bin) const;
    /// Right edge of the given bin.
    double bin_hi(std::size_t bin) const;

    /// Multi-line ASCII rendering (for harness logs).
    std::string ascii(std::size_t width = 50) const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

}  // namespace poc::util
