#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace poc::util {

void Accumulator::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
    POC_EXPECTS(n_ >= 1);
    return mean_;
}

double Accumulator::variance() const {
    POC_EXPECTS(n_ >= 2);
    return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
    POC_EXPECTS(n_ >= 1);
    return min_;
}

double Accumulator::max() const {
    POC_EXPECTS(n_ >= 1);
    return max_;
}

double percentile(std::vector<double> sample, double q) { return percentile_inplace(sample, q); }

double percentile_inplace(std::vector<double>& sample, double q) {
    POC_EXPECTS(!sample.empty());
    POC_EXPECTS(q >= 0.0 && q <= 1.0);
    const double rank = q * static_cast<double>(sample.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(std::floor(rank));
    const auto hi_idx = static_cast<std::size_t>(std::ceil(rank));
    std::nth_element(sample.begin(),
                     sample.begin() + static_cast<std::ptrdiff_t>(lo_idx), sample.end());
    const double lo_val = sample[lo_idx];
    if (hi_idx == lo_idx) return lo_val;
    const double hi_val =
        *std::min_element(sample.begin() + static_cast<std::ptrdiff_t>(lo_idx) + 1, sample.end());
    const double frac = rank - static_cast<double>(lo_idx);
    return lo_val + frac * (hi_val - lo_val);
}

double mean_of(const std::vector<double>& sample) {
    POC_EXPECTS(!sample.empty());
    double s = 0.0;
    for (const double x : sample) s += x;
    return s / static_cast<double>(sample.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
    POC_EXPECTS(lo < hi);
    POC_EXPECTS(bins >= 1);
}

void Histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto bin = static_cast<std::size_t>((x - lo_) / width);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // FP edge
    ++counts_[bin];
}

std::size_t Histogram::count_in_bin(std::size_t bin) const {
    POC_EXPECTS(bin < counts_.size());
    return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
    POC_EXPECTS(bin < counts_.size());
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + static_cast<double>(bin) * width;
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size()); }

std::string Histogram::ascii(std::size_t width) const {
    std::size_t peak = 1;
    for (const std::size_t c : counts_) peak = std::max(peak, c);
    std::string out;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "[%10.3f, %10.3f) ", bin_lo(b), bin_hi(b));
        out += buf;
        const auto bar = counts_[b] * width / peak;
        out.append(bar, '#');
        out += " " + std::to_string(counts_[b]) + "\n";
    }
    if (underflow_ > 0) out += "underflow: " + std::to_string(underflow_) + "\n";
    if (overflow_ > 0) out += "overflow: " + std::to_string(overflow_) + "\n";
    return out;
}

}  // namespace poc::util
