#include "util/state_history.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"
#include "util/journal.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define POC_HAVE_FSYNC 1
#else
#define POC_HAVE_FSYNC 0
#endif

namespace poc::util {

namespace {

constexpr char kSnapMagic[8] = {'P', 'O', 'C', 'S', 'N', 'A', 'P', '1'};
/// magic | u64 epochs | u32 meta_len | u64 payload_len ... | u32 crc.
constexpr std::size_t kSnapFixed = sizeof(kSnapMagic) + sizeof(std::uint64_t) +
                                   sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                                   sizeof(std::uint32_t);
/// Length fields beyond this are treated as corruption, not attempted
/// as allocations (mirrors util/journal.hpp's kMaxPayload).
constexpr std::uint64_t kMaxSnapField = 1ull << 32;

/// Fold shorter-than-this match runs into the neighbouring literal:
/// a (skip, literal) pair costs >= 2 varint bytes, so breaking a
/// literal for a 1-3 byte match run would grow the delta.
constexpr std::size_t kMinSkipRun = 4;

template <typename T>
T load_le(const std::string& bytes, std::size_t at) {
    T v;
    std::char_traits<char>::copy(reinterpret_cast<char*>(&v), bytes.data() + at, sizeof(T));
    return v;
}

/// Best-effort fsync of an installed file (crash durability of the
/// rename itself is the filesystem's problem; this pins the data).
void fsync_path(const std::string& path) {
#if POC_HAVE_FSYNC
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)path;
#endif
}

}  // namespace

void put_varint(std::string& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

std::uint64_t get_varint(std::string_view bytes, std::size_t& pos) {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
        if (pos >= bytes.size() || shift > 63) {
            throw StateHistoryError("malformed varint in delta record");
        }
        const auto b = static_cast<std::uint8_t>(bytes[pos++]);
        v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if ((b & 0x80) == 0) return v;
        shift += 7;
    }
}

std::string xor_delta_encode(std::string_view base, std::string_view next) {
    std::string out;
    put_varint(out, next.size());
    const auto base_byte = [&](std::size_t i) {
        return i < base.size() ? base[i] : char{0};
    };
    std::size_t i = 0;
    while (i < next.size()) {
        // Match run (next == base, base zero-padded past its end).
        std::size_t skip = 0;
        while (i + skip < next.size() && next[i + skip] == base_byte(i + skip)) ++skip;
        // Literal run: differing bytes, swallowing any match run too
        // short to pay for its own (skip, literal) pair.
        std::size_t lit_end = i + skip;
        while (lit_end < next.size()) {
            std::size_t run = 0;
            while (lit_end + run < next.size() &&
                   next[lit_end + run] == base_byte(lit_end + run)) {
                ++run;
            }
            if (run >= kMinSkipRun || lit_end + run == next.size()) break;
            lit_end += run + 1;
        }
        const std::size_t lit = lit_end - (i + skip);
        put_varint(out, skip);
        put_varint(out, lit);
        out.append(next.data() + i + skip, lit);
        i = lit_end;
    }
    return out;
}

std::string xor_delta_decode(std::string_view base, std::string_view delta) {
    std::size_t pos = 0;
    const std::uint64_t total = get_varint(delta, pos);
    if (total > kMaxSnapField) {
        throw StateHistoryError("delta record claims an implausible payload size");
    }
    std::string out;
    out.reserve(total);
    while (out.size() < total) {
        const std::uint64_t skip = get_varint(delta, pos);
        const std::uint64_t lit = get_varint(delta, pos);
        const std::uint64_t room = total - out.size();
        if (skip > room || lit > room - skip || lit > delta.size() - pos) {
            throw StateHistoryError("delta record runs past its declared payload");
        }
        for (std::uint64_t k = 0; k < skip; ++k) {
            const std::size_t i = out.size();
            out.push_back(i < base.size() ? base[i] : char{0});
        }
        out.append(delta.data() + pos, lit);
        pos += lit;
    }
    if (pos != delta.size()) {
        throw StateHistoryError("delta record has trailing bytes");
    }
    return out;
}

void write_snapshot_file(const std::string& path, std::uint64_t completed_epochs,
                         std::string_view meta, std::string_view payload) {
    const auto start = std::chrono::steady_clock::now();
    BinaryWriter body;
    body.u64(completed_epochs);
    body.u32(static_cast<std::uint32_t>(meta.size()));
    body.u64(payload.size());
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw StateHistoryError("cannot create snapshot temp at " + tmp);
        out.write(kSnapMagic, sizeof kSnapMagic);
        out.write(body.bytes().data(), static_cast<std::streamsize>(body.bytes().size()));
        out.write(meta.data(), static_cast<std::streamsize>(meta.size()));
        out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        // One CRC over the whole body: any flipped bit anywhere after
        // the magic — lengths, meta, payload — fails validation.
        std::string crc_input = body.bytes();
        crc_input.append(meta.data(), meta.size());
        crc_input.append(payload.data(), payload.size());
        const std::uint32_t crc = crc32(crc_input);
        out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
        out.flush();
        if (!out) throw StateHistoryError("snapshot write failed at " + tmp);
    }
    fsync_path(tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        throw StateHistoryError("snapshot install rename failed at " + path + ": " +
                                ec.message());
    }
    const auto dur = std::chrono::steady_clock::now() - start;
    const double write_ms = std::chrono::duration<double, std::milli>(dur).count();
    POC_OBS_INC("util.state_history.snapshots_written");
    POC_OBS_COUNT("util.state_history.snapshot_bytes",
                  kSnapFixed + meta.size() + payload.size());
    POC_OBS_HISTOGRAM("util.state_history.snapshot_write_ms", 0.0, 100.0, 50, write_ms);
}

std::optional<LoadedSnapshot> read_snapshot_file(const std::string& path) {
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) return std::nullopt;
        bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    if (bytes.size() < kSnapFixed ||
        bytes.compare(0, sizeof(kSnapMagic), kSnapMagic, sizeof(kSnapMagic)) != 0) {
        return std::nullopt;
    }
    std::size_t pos = sizeof(kSnapMagic);
    const auto epochs = load_le<std::uint64_t>(bytes, pos);
    pos += sizeof(std::uint64_t);
    const auto meta_len = load_le<std::uint32_t>(bytes, pos);
    pos += sizeof(std::uint32_t);
    const auto payload_len = load_le<std::uint64_t>(bytes, pos);
    pos += sizeof(std::uint64_t);
    if (meta_len > kMaxSnapField || payload_len > kMaxSnapField ||
        bytes.size() != kSnapFixed + meta_len + payload_len) {
        return std::nullopt;  // truncated, torn, or length-corrupt
    }
    const std::string_view crc_input(bytes.data() + sizeof(kSnapMagic),
                                     bytes.size() - sizeof(kSnapMagic) -
                                         sizeof(std::uint32_t));
    if (load_le<std::uint32_t>(bytes, bytes.size() - sizeof(std::uint32_t)) !=
        crc32(crc_input)) {
        return std::nullopt;  // bit flip anywhere in the body
    }
    LoadedSnapshot snap;
    snap.completed_epochs = epochs;
    snap.meta = bytes.substr(pos, meta_len);
    snap.payload = bytes.substr(pos + meta_len, payload_len);
    snap.path = path;
    return snap;
}

SnapshotStore::SnapshotStore(std::string base_path, std::size_t keep, bool read_only)
    : base_path_(std::move(base_path)),
      keep_(std::max<std::size_t>(1, keep)),
      read_only_(read_only) {}

std::string SnapshotStore::path_for(std::uint64_t completed_epochs) const {
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".snap-%012llu",
                  static_cast<unsigned long long>(completed_epochs));
    return base_path_ + suffix;
}

std::string SnapshotStore::write(std::uint64_t completed_epochs, std::string_view meta,
                                 std::string_view payload) const {
    if (read_only_) {
        throw StateHistoryError("snapshot write refused: store at " + base_path_ +
                                " is read-only (reader side of the history)");
    }
    const std::string path = path_for(completed_epochs);
    write_snapshot_file(path, completed_epochs, meta, payload);
    prune();
    return path;
}

std::vector<SnapshotInfo> SnapshotStore::list() const {
    std::vector<SnapshotInfo> out;
    if (base_path_.empty()) return out;
    const std::filesystem::path base(base_path_);
    const std::string prefix = base.filename().string() + ".snap-";
    std::error_code ec;
    const auto dir = base.has_parent_path() ? base.parent_path()
                                            : std::filesystem::path(".");
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
            continue;
        }
        const std::string digits = name.substr(prefix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
            continue;  // .tmp leftovers and foreign files
        }
        out.push_back(SnapshotInfo{std::strtoull(digits.c_str(), nullptr, 10),
                                   entry.path().string()});
    }
    std::sort(out.begin(), out.end(), [](const SnapshotInfo& a, const SnapshotInfo& b) {
        return a.completed_epochs < b.completed_epochs;
    });
    return out;
}

std::optional<LoadedSnapshot> SnapshotStore::load_newest_valid(
    std::string_view expect_meta) const {
    const std::vector<SnapshotInfo> snaps = list();
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
        std::optional<LoadedSnapshot> snap = read_snapshot_file(it->path);
        if (!snap) {
            POC_OBS_INC("util.state_history.snapshots_rejected");
            continue;  // corrupt: fall back to the next-older one
        }
        if (snap->meta != expect_meta) {
            POC_OBS_INC("util.state_history.snapshots_foreign");
            continue;  // a different run configuration's snapshot
        }
        return snap;
    }
    return std::nullopt;
}

std::optional<LoadedSnapshot> SnapshotStore::load_at(std::uint64_t target_epochs,
                                                     std::string_view expect_meta) const {
    const std::vector<SnapshotInfo> snaps = list();
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
        if (it->completed_epochs > target_epochs) continue;  // newer than the target
        std::optional<LoadedSnapshot> snap = read_snapshot_file(it->path);
        if (!snap) {
            POC_OBS_INC("util.state_history.snapshots_rejected");
            continue;  // corrupt: fall back to the next-older one
        }
        if (snap->meta != expect_meta) {
            POC_OBS_INC("util.state_history.snapshots_foreign");
            continue;  // a different run configuration's snapshot
        }
        return snap;
    }
    return std::nullopt;
}

std::size_t SnapshotStore::prune() const {
    if (read_only_) return 0;  // deletion authority stays with the writer
    const std::vector<SnapshotInfo> snaps = list();
    std::size_t removed = 0;
    if (snaps.size() <= keep_) return removed;
    for (std::size_t i = 0; i + keep_ < snaps.size(); ++i) {
        std::error_code ec;
        if (std::filesystem::remove(snaps[i].path, ec)) ++removed;
    }
    POC_OBS_COUNT("util.state_history.snapshots_pruned", removed);
    return removed;
}

std::size_t SnapshotStore::sweep_stale_temps() const {
    std::size_t removed = 0;
    // A reader cannot tell a stale temp from the writer's mid-install
    // rename source; sweeping is the writer's recovery step only.
    if (read_only_ || base_path_.empty()) return removed;
    const std::filesystem::path base(base_path_);
    const std::string prefix = base.filename().string() + ".snap-";
    std::error_code ec;
    const auto dir = base.has_parent_path() ? base.parent_path()
                                            : std::filesystem::path(".");
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0 &&
            name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
            std::error_code rec;
            if (std::filesystem::remove(entry.path(), rec)) ++removed;
        }
    }
    POC_OBS_COUNT("util.state_history.stale_temps_removed", removed);
    return removed;
}

}  // namespace poc::util
