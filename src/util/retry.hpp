// Deadline-budgeted retry with jittered exponential backoff and a
// circuit breaker (DESIGN.md §4b): the wrapper the durable epoch
// runtime puts around the fallible parts of market clearing (the
// acceptability oracle and the pivot solver).
//
// Failure model: the wrapped callable signals a retryable failure by
// throwing TransientError (DeadlineExceeded is the cooperative-timeout
// subclass thrown by Deadline::check()). Each attempt gets a per-call
// deadline; the callable is expected to poll the Deadline it receives
// at natural cancellation points (the oracle checks once per
// acceptability query). Attempts that return but overran their budget
// count as timeouts too, so a slow-but-successful dependency still
// registers as unhealthy.
//
// The breaker counts *calls* whose retry budget was exhausted, not
// individual attempts. After `failure_threshold` consecutive exhausted
// calls it opens: further calls fail fast with BreakerOpen (no load on
// the sick dependency) until `cooldown_ms` passes, then one half-open
// probe is admitted; a successful probe closes the breaker, a failed
// one re-opens it.
//
// Time is injectable: `Clock` returns monotonic milliseconds and
// `Sleep` pauses between attempts. The defaults use the steady clock
// and a *virtual* (no-op) sleep — simulations account for backoff in
// stats without wall-clock stalls; callers that want real pacing pass
// a real sleeper, and tests pass a fake clock.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace poc::util {

/// A failure worth retrying (scripted oracle faults, lost upstreams).
class TransientError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Cooperative per-attempt timeout, thrown by Deadline::check().
class DeadlineExceeded : public TransientError {
public:
    DeadlineExceeded() : TransientError("deadline exceeded") {}
};

/// Every attempt of one call failed (or timed out).
class RetryExhausted : public std::runtime_error {
public:
    explicit RetryExhausted(const std::string& what) : std::runtime_error(what) {}
};

/// The circuit breaker is open: the call was rejected without running.
class BreakerOpen : public std::runtime_error {
public:
    BreakerOpen() : std::runtime_error("circuit breaker open") {}
};

struct RetryPolicy {
    /// Attempts per call() before giving up (>= 1).
    std::size_t max_attempts = 3;
    /// Per-attempt budget in clock milliseconds.
    double deadline_ms = 60'000.0;
    /// Backoff before retry k (1-based): base * multiplier^(k-1),
    /// capped at max_backoff_ms, scaled by uniform jitter in
    /// [1 - jitter_fraction, 1 + jitter_fraction).
    double base_backoff_ms = 10.0;
    double backoff_multiplier = 2.0;
    double max_backoff_ms = 1'000.0;
    double jitter_fraction = 0.2;
    /// Seed of the (deterministic) jitter stream.
    std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
};

struct BreakerPolicy {
    /// Consecutive exhausted calls that open the breaker (>= 1).
    std::size_t failure_threshold = 3;
    /// Open -> half-open after this much clock time.
    double cooldown_ms = 5'000.0;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

struct RetryStats {
    std::uint64_t calls = 0;
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
    /// Failed attempts (timeouts included).
    std::uint64_t failures = 0;
    /// Attempts that exceeded their deadline (thrown or post-hoc).
    std::uint64_t timeouts = 0;
    /// Calls whose whole attempt budget was consumed.
    std::uint64_t exhausted = 0;
    std::uint64_t breaker_opens = 0;
    /// Calls rejected while the breaker was open.
    std::uint64_t breaker_fast_fails = 0;
    /// Total (possibly virtual) backoff accumulated between attempts.
    double backoff_ms_total = 0.0;

    friend bool operator==(const RetryStats&, const RetryStats&) = default;
};

/// The per-attempt deadline handed to the wrapped callable. check() is
/// the cooperative cancellation point; it is safe to call from pivot
/// worker threads as long as the clock itself is thread-safe (the
/// default steady clock is).
class Deadline {
public:
    Deadline(double expires_at_ms, const std::function<double()>* clock) noexcept
        : expires_at_ms_(expires_at_ms), clock_(clock) {}

    double expires_at_ms() const noexcept { return expires_at_ms_; }
    bool expired() const { return (*clock_)() > expires_at_ms_; }
    /// Throws DeadlineExceeded once the budget is gone.
    void check() const {
        if (expired()) throw DeadlineExceeded{};
    }

private:
    double expires_at_ms_;
    const std::function<double()>* clock_;
};

/// Retry + breaker engine. Not thread-safe: one Retrier per control
/// loop (the epoch runtime owns one for the whole run, so breaker
/// state persists across epochs).
class Retrier {
public:
    using Clock = std::function<double()>;      // monotonic milliseconds
    using Sleep = std::function<void(double)>;  // pause between attempts

    explicit Retrier(RetryPolicy policy = {}, BreakerPolicy breaker = {}, Clock clock = {},
                     Sleep sleep = {});

    /// Run `fn(deadline)` under the retry policy. Returns fn's result
    /// on the first successful attempt; throws BreakerOpen when the
    /// breaker rejects the call, RetryExhausted when every attempt
    /// failed, and propagates non-transient exceptions immediately.
    template <typename F>
    auto call(F&& fn) -> std::invoke_result_t<F&, const Deadline&> {
        ++stats_.calls;
        if (!admit()) throw BreakerOpen{};
        std::string last_error = "no attempts made";
        for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
            ++stats_.attempts;
            const double start = clock_();
            const Deadline deadline(start + policy_.deadline_ms, &clock_);
            bool failed = false;
            try {
                auto result = fn(deadline);
                if (clock_() - start > policy_.deadline_ms) {
                    // Completed, but over budget: a slow dependency is
                    // a sick dependency.
                    ++stats_.timeouts;
                    ++stats_.failures;
                    last_error = "attempt completed past its deadline";
                    failed = true;
                } else {
                    ++stats_.successes;
                    on_success();
                    return result;
                }
            } catch (const DeadlineExceeded& e) {
                ++stats_.timeouts;
                ++stats_.failures;
                last_error = e.what();
                failed = true;
            } catch (const TransientError& e) {
                ++stats_.failures;
                last_error = e.what();
                failed = true;
            }
            POC_ASSERT(failed);
            if (attempt < policy_.max_attempts) backoff(attempt);
        }
        on_exhausted();
        throw RetryExhausted("retries exhausted after " +
                             std::to_string(policy_.max_attempts) +
                             " attempts; last error: " + last_error);
    }

    const RetryStats& stats() const noexcept { return stats_; }
    const RetryPolicy& policy() const noexcept { return policy_; }

    /// Current breaker state; evaluates cooldown passage (an open
    /// breaker whose cooldown has elapsed reports half-open).
    BreakerState breaker_state() const;

    /// Force the breaker closed (administrative reset).
    void reset_breaker() noexcept;

private:
    /// Admission check; transitions open -> half-open after cooldown.
    bool admit();
    void on_success() noexcept;
    void on_exhausted();
    void backoff(std::size_t attempt);

    RetryPolicy policy_;
    BreakerPolicy breaker_;
    Clock clock_;
    Sleep sleep_;
    Rng jitter_;
    RetryStats stats_;

    BreakerState state_ = BreakerState::kClosed;
    std::size_t consecutive_exhausted_ = 0;
    double open_until_ms_ = 0.0;
    bool probing_ = false;  // a half-open probe is in flight
};

}  // namespace poc::util
