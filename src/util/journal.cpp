#include "util/journal.hpp"

#include <array>
#include <filesystem>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define POC_JOURNAL_HAVE_FSYNC 1
#else
#define POC_JOURNAL_HAVE_FSYNC 0
#endif

namespace poc::util {

/// Holds the descriptor fsync needs; data still flows through the
/// ofstream (buffered), this fd exists only to reach the same inode.
struct Journal::Fsyncer {
#if POC_JOURNAL_HAVE_FSYNC
    int fd = -1;
    explicit Fsyncer(const std::string& path) : fd(::open(path.c_str(), O_WRONLY)) {}
    ~Fsyncer() {
        if (fd >= 0) ::close(fd);
    }
    void sync() const {
        if (fd >= 0) ::fsync(fd);
    }
#else
    explicit Fsyncer(const std::string&) {}
    void sync() const {}
#endif
    Fsyncer(const Fsyncer&) = delete;
    Fsyncer& operator=(const Fsyncer&) = delete;
};

Journal::Journal() = default;
Journal::Journal(Journal&&) noexcept = default;
Journal& Journal::operator=(Journal&&) noexcept = default;
Journal::~Journal() = default;

namespace {

constexpr char kMagic[8] = {'P', 'O', 'C', 'W', 'A', 'L', '0', '1'};
constexpr std::size_t kHeaderFixed = sizeof(kMagic) + sizeof(std::uint32_t);
constexpr std::size_t kFrameFixed =
    sizeof(std::uint16_t) + sizeof(std::uint32_t) + sizeof(std::uint32_t);
/// Upper bound on one record's payload; a length field beyond this is
/// treated as tail corruption rather than attempted as an allocation.
constexpr std::uint32_t kMaxPayload = 1u << 30;

const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    return table;
}

std::uint32_t crc32_update(std::uint32_t crc, const char* data, std::size_t n) {
    const auto& table = crc_table();
    for (std::size_t i = 0; i < n; ++i) {
        crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^ (crc >> 8);
    }
    return crc;
}

/// CRC over the record frame contents: the 2-byte type followed by the
/// payload, so a flipped type byte fails verification too.
std::uint32_t frame_crc(std::uint16_t type, std::string_view payload) {
    std::uint32_t crc = 0xFFFFFFFFu;
    const char type_bytes[2] = {static_cast<char>(type & 0xFF),
                                static_cast<char>((type >> 8) & 0xFF)};
    crc = crc32_update(crc, type_bytes, 2);
    crc = crc32_update(crc, payload.data(), payload.size());
    return crc ^ 0xFFFFFFFFu;
}

template <typename T>
T load(const std::string& bytes, std::size_t at) {
    T v;
    std::char_traits<char>::copy(reinterpret_cast<char*>(&v), bytes.data() + at, sizeof(T));
    return v;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
    return crc32_update(0xFFFFFFFFu, bytes.data(), bytes.size()) ^ 0xFFFFFFFFu;
}

Journal Journal::create(const std::string& path, std::string_view meta,
                        bool fsync_on_append) {
    Journal j;
    j.path_ = path;
    j.out_.open(path, std::ios::binary | std::ios::trunc);
    if (!j.out_) throw JournalError("cannot create journal at " + path);

    BinaryWriter header;
    for (const char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
    header.u32(static_cast<std::uint32_t>(meta.size()));
    j.out_.write(header.bytes().data(), static_cast<std::streamsize>(header.bytes().size()));
    j.out_.write(meta.data(), static_cast<std::streamsize>(meta.size()));
    const std::uint32_t crc = crc32(meta);
    j.out_.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    j.out_.flush();
    if (!j.out_) throw JournalError("journal header write failed at " + path);
    j.size_bytes_ = kHeaderFixed + meta.size() + sizeof crc;
    j.set_fsync_on_append(fsync_on_append);
    return j;
}

namespace {

/// Shared header+record scan over an in-memory image of the file.
/// Returns the byte offset of the end of the valid record prefix;
/// everything past it is a torn or corrupt tail.
std::size_t scan_bytes(const std::string& path, const std::string& bytes,
                       Journal::ScanResult& scan) {
    // Header: magic + meta (its own CRC). A bad header means we cannot
    // trust anything in the file — refuse rather than guess.
    if (bytes.size() < kHeaderFixed ||
        bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
        throw JournalError("journal at " + path + " has a bad or missing header");
    }
    const auto meta_len = load<std::uint32_t>(bytes, sizeof(kMagic));
    const std::size_t meta_end = kHeaderFixed + meta_len + sizeof(std::uint32_t);
    if (meta_len > kMaxPayload || meta_end > bytes.size()) {
        throw JournalError("journal at " + path + " has a truncated metadata block");
    }
    scan.meta = bytes.substr(kHeaderFixed, meta_len);
    if (load<std::uint32_t>(bytes, kHeaderFixed + meta_len) != crc32(scan.meta)) {
        throw JournalError("journal at " + path + " has corrupt metadata");
    }

    // Record scan: stop at the first torn or checksum-failing frame.
    std::size_t pos = meta_end;
    std::size_t valid_end = meta_end;
    while (pos + kFrameFixed <= bytes.size()) {
        const auto type = load<std::uint16_t>(bytes, pos);
        const auto len = load<std::uint32_t>(bytes, pos + sizeof(std::uint16_t));
        const auto crc =
            load<std::uint32_t>(bytes, pos + sizeof(std::uint16_t) + sizeof(std::uint32_t));
        if (len > kMaxPayload || pos + kFrameFixed + len > bytes.size()) break;  // torn
        const std::string_view payload(bytes.data() + pos + kFrameFixed, len);
        if (frame_crc(type, payload) != crc) break;  // corrupt
        scan.records.push_back(JournalRecord{type, std::string(payload)});
        pos += kFrameFixed + len;
        valid_end = pos;
    }
    if (valid_end < bytes.size()) {
        scan.tail_truncated = true;
        scan.dropped_bytes = bytes.size() - valid_end;
    }
    scan.header_end = meta_end;
    scan.valid_end = valid_end;
    scan.file_size = bytes.size();
    return valid_end;
}

std::string slurp_or_throw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw JournalError("cannot open journal at " + path);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

}  // namespace

void Journal::scan_file(const std::string& path, ScanResult& scan) {
    scan = ScanResult{};
    const std::string bytes = slurp_or_throw(path);
    scan_bytes(path, bytes, scan);
}

std::uint64_t Journal::file_identity(const std::string& path) {
#if POC_JOURNAL_HAVE_FSYNC
    struct ::stat st{};
    if (::stat(path.c_str(), &st) != 0) return 0;
    // dev in the high bits, inode in the low: distinct inodes on one
    // filesystem (the rewrite temp vs the old log) always differ.
    return (static_cast<std::uint64_t>(st.st_dev) << 48) ^
           static_cast<std::uint64_t>(st.st_ino);
#else
    (void)path;
    return 0;
#endif
}

Journal Journal::open(const std::string& path, ScanResult& scan, bool fsync_on_append) {
    scan = ScanResult{};
    const std::string bytes = slurp_or_throw(path);

    // Scan the valid record prefix, then truncate the file back to the
    // last good record so the append handle continues a clean log.
    const std::size_t valid_end = scan_bytes(path, bytes, scan);
    if (scan.tail_truncated) {
        std::filesystem::resize_file(path, valid_end);
        POC_OBS_INC("util.journal.truncated_tails");
        POC_OBS_COUNT("util.journal.dropped_bytes", scan.dropped_bytes);
    }

    Journal j;
    j.path_ = path;
    j.out_.open(path, std::ios::binary | std::ios::app);
    if (!j.out_) throw JournalError("cannot reopen journal for append at " + path);
    j.size_bytes_ = valid_end;
    j.set_fsync_on_append(fsync_on_append);
    return j;
}

Journal Journal::rewrite(const std::string& path, std::string_view meta,
                         const std::vector<JournalRecord>& records, RewriteStats* stats,
                         bool fsync_on_append) {
    std::uint64_t bytes_before = 0;
    {
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        if (!ec) bytes_before = size;
    }
    const std::string tmp = path + ".tmp";
    {
        // Reuse create/append for the serialization so the rewritten
        // bytes are frame-for-frame what a fresh log would contain.
        Journal draft = Journal::create(tmp, meta);
        for (const JournalRecord& rec : records) draft.append(rec.type, rec.payload);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        throw JournalError("journal rewrite rename failed at " + path + ": " + ec.message());
    }

    Journal j;
    j.path_ = path;
    j.out_.open(path, std::ios::binary | std::ios::app);
    if (!j.out_) throw JournalError("cannot reopen rewritten journal at " + path);
    j.size_bytes_ = std::filesystem::file_size(path);
    j.set_fsync_on_append(fsync_on_append);
    if (stats) {
        stats->records = records.size();
        stats->bytes_before = bytes_before;
        stats->bytes_after = j.size_bytes_;
    }
    POC_OBS_INC("util.journal.rewrites");
    return j;
}

void Journal::append(std::uint16_t type, std::string_view payload) {
    if (!out_.is_open()) return;  // detached journal: durability disabled
    BinaryWriter frame;
    frame.u16(type);
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u32(frame_crc(type, payload));
    out_.write(frame.bytes().data(), static_cast<std::streamsize>(frame.bytes().size()));
    out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out_.flush();
    if (!out_) throw JournalError("journal append failed at " + path_);
    if (fsync_) fsync_->sync();
    size_bytes_ += kFrameFixed + payload.size();
    POC_OBS_INC("util.journal.appends");
    POC_OBS_COUNT("util.journal.bytes", kFrameFixed + payload.size());
}

void Journal::set_fsync_on_append(bool enabled) {
    if (!enabled) {
        fsync_.reset();
        return;
    }
    if (!fsync_ && out_.is_open()) fsync_ = std::make_unique<Fsyncer>(path_);
}

}  // namespace poc::util
