#include "util/csv_export.hpp"

#include <cstdlib>
#include <fstream>

#include "util/contracts.hpp"

namespace poc::util {

std::optional<std::string> csv_export_dir() {
    const char* dir = std::getenv("POC_CSV_DIR");
    if (dir == nullptr || dir[0] == '\0') return std::nullopt;
    return std::string(dir);
}

std::optional<std::string> maybe_export_csv(const Table& table, const std::string& name) {
    POC_EXPECTS(!name.empty());
    POC_EXPECTS(name.find('/') == std::string::npos);  // plain file name
    const auto dir = csv_export_dir();
    if (!dir) return std::nullopt;
    const std::string path = *dir + "/" + name + ".csv";
    std::ofstream out(path);
    POC_EXPECTS(out.good());  // misconfigured POC_CSV_DIR should fail loudly
    out << table.render_csv();
    POC_ENSURES(out.good());
    return path;
}

}  // namespace poc::util
