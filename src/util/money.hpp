// Fixed-point money type. All ledger arithmetic in the POC payment
// structure uses Money rather than double so that "the sum total of
// revenue from the LMPs is enough to cover the bandwidth costs of the
// POC" (paper, section 3.2) can be checked exactly: conservation tests
// compare integers, not epsilon-fuzzed floats.
//
// Representation: signed 64-bit count of micro-dollars (1e-6 USD).
// Range is about +/- 9.2 trillion dollars, comfortably above any
// backbone-leasing budget.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "util/contracts.hpp"

namespace poc::util {

class Money {
public:
    static constexpr std::int64_t kMicrosPerDollar = 1'000'000;

    constexpr Money() noexcept = default;

    /// Construct from a raw micro-dollar count.
    static constexpr Money from_micros(std::int64_t micros) noexcept {
        Money m;
        m.micros_ = micros;
        return m;
    }

    /// Construct from whole dollars.
    static constexpr Money from_dollars(std::int64_t dollars) noexcept {
        return from_micros(dollars * kMicrosPerDollar);
    }

    /// Construct from a double amount of dollars, rounding to the nearest
    /// micro-dollar (ties away from zero).
    static Money from_dollars(double dollars);

    constexpr std::int64_t micros() const noexcept { return micros_; }
    constexpr double dollars() const noexcept {
        return static_cast<double>(micros_) / static_cast<double>(kMicrosPerDollar);
    }

    constexpr bool is_zero() const noexcept { return micros_ == 0; }
    constexpr bool is_negative() const noexcept { return micros_ < 0; }

    constexpr Money operator-() const noexcept { return from_micros(-micros_); }

    constexpr Money& operator+=(Money rhs) noexcept {
        micros_ += rhs.micros_;
        return *this;
    }
    constexpr Money& operator-=(Money rhs) noexcept {
        micros_ -= rhs.micros_;
        return *this;
    }

    friend constexpr Money operator+(Money a, Money b) noexcept { return a += b; }
    friend constexpr Money operator-(Money a, Money b) noexcept { return a -= b; }

    /// Overflow-checked addition: nullopt when the exact sum does not
    /// fit in the int64 micro-dollar representation. Settlement paths
    /// that accumulate many transfers use this instead of operator+ so
    /// a ledger total can never silently wrap.
    static constexpr std::optional<Money> checked_add(Money a, Money b) noexcept {
        std::int64_t sum = 0;
        if (__builtin_add_overflow(a.micros_, b.micros_, &sum)) return std::nullopt;
        return from_micros(sum);
    }

    /// checked_add that throws ContractViolation on overflow — the
    /// accumulate-or-die form the ledger uses.
    static constexpr Money checked_sum(Money a, Money b) {
        const auto sum = checked_add(a, b);
        POC_EXPECTS(sum.has_value());  // Money accumulation overflowed int64 micros
        return *sum;
    }

    /// Scale by a dimensionless factor, rounding to nearest micro-dollar.
    Money scaled(double factor) const;

    /// Ratio of two amounts (e.g. payment-over-bid). Requires a nonzero
    /// denominator.
    friend double ratio(Money num, Money den);

    friend constexpr auto operator<=>(Money, Money) noexcept = default;

    /// "$1,234.56"-style human-readable rendering (two decimal places,
    /// thousands separators).
    std::string str() const;

private:
    std::int64_t micros_ = 0;
};

std::ostream& operator<<(std::ostream& os, Money m);

/// Namespace-scope declaration so qualified calls (util::ratio) work in
/// addition to ADL via the in-class friend declaration.
double ratio(Money num, Money den);

/// User-defined literal for whole dollars: 100_usd.
constexpr Money operator""_usd(unsigned long long dollars) {
    return Money::from_dollars(static_cast<std::int64_t>(dollars));
}

}  // namespace poc::util
