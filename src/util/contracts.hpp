// Contract checking in the style of the C++ Core Guidelines (I.6 / I.8 /
// GSL Expects/Ensures). Violations throw poc::util::ContractViolation so
// that tests can assert on misuse and long-running simulations fail loudly
// instead of corrupting results.
#pragma once

#include <stdexcept>
#include <string>

namespace poc::util {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
public:
    ContractViolation(const char* kind, const char* expr, const char* file, int line)
        : std::logic_error(std::string(kind) + " violated: `" + expr + "` at " + file + ":" +
                           std::to_string(line)) {}

protected:
    /// For domain-specific subclasses (e.g. parse errors) that carry
    /// their own structured message.
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line) {
    throw ContractViolation(kind, expr, file, line);
}
}  // namespace detail

}  // namespace poc::util

/// Precondition check: document and enforce what a function expects of its
/// arguments (Core Guidelines I.6).
#define POC_EXPECTS(cond)                                                              \
    do {                                                                               \
        if (!(cond)) ::poc::util::detail::contract_fail("Precondition", #cond, __FILE__, \
                                                        __LINE__);                     \
    } while (false)

/// Postcondition check (Core Guidelines I.8).
#define POC_ENSURES(cond)                                                               \
    do {                                                                                \
        if (!(cond)) ::poc::util::detail::contract_fail("Postcondition", #cond, __FILE__, \
                                                        __LINE__);                      \
    } while (false)

/// Internal invariant check.
#define POC_ASSERT(cond)                                                             \
    do {                                                                             \
        if (!(cond)) ::poc::util::detail::contract_fail("Invariant", #cond, __FILE__, \
                                                        __LINE__);                   \
    } while (false)
