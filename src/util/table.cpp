#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "util/contracts.hpp"

namespace poc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    POC_EXPECTS(!headers_.empty());
    alignment_.assign(headers_.size(), Align::kRight);
    alignment_[0] = Align::kLeft;
}

void Table::set_alignment(std::vector<Align> alignment) {
    POC_EXPECTS(alignment.size() == headers_.size());
    alignment_ = std::move(alignment);
}

void Table::add_row(std::vector<std::string> cells) {
    POC_EXPECTS(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string Table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string>& row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::size_t pad = widths[c] - row[c].size();
            line += ' ';
            if (alignment_[c] == Align::kRight) line.append(pad, ' ');
            line += row[c];
            if (alignment_[c] == Align::kLeft) line.append(pad, ' ');
            line += " |";
        }
        return line + "\n";
    };

    std::string out = emit_row(headers_);
    out += "|";
    for (const std::size_t w : widths) {
        out.append(w + 2, '-');
        out += "|";
    }
    out += "\n";
    for (const auto& row : rows_) out += emit_row(row);
    return out;
}

std::string Table::render_csv() const {
    auto quote = [](const std::string& s) {
        if (s.find_first_of(",\"\n") == std::string::npos) return s;
        std::string q = "\"";
        for (const char ch : s) {
            if (ch == '"') q += "\"\"";
            else q += ch;
        }
        return q + "\"";
    };
    std::string out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) out += ',';
            out += quote(row[c]);
        }
        out += '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return out;
}

std::string cell(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string cell(std::int64_t value) { return std::to_string(value); }
std::string cell(std::size_t value) { return std::to_string(value); }

std::string cell_pct(double fraction, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

}  // namespace poc::util
