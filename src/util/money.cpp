#include "util/money.hpp"

#include <cmath>
#include <cstdlib>
#include <ostream>

namespace poc::util {

Money Money::from_dollars(double dollars) {
    POC_EXPECTS(std::isfinite(dollars));
    const double micros = dollars * static_cast<double>(kMicrosPerDollar);
    POC_EXPECTS(std::abs(micros) < 9.2e18);
    return from_micros(static_cast<std::int64_t>(std::llround(micros)));
}

Money Money::scaled(double factor) const {
    POC_EXPECTS(std::isfinite(factor));
    const double scaled = static_cast<double>(micros_) * factor;
    POC_EXPECTS(std::abs(scaled) < 9.2e18);
    return from_micros(static_cast<std::int64_t>(std::llround(scaled)));
}

double ratio(Money num, Money den) {
    POC_EXPECTS(den.micros_ != 0);
    return static_cast<double>(num.micros_) / static_cast<double>(den.micros_);
}

std::string Money::str() const {
    const bool neg = micros_ < 0;
    // Avoid overflow on INT64_MIN by working with unsigned magnitude.
    const auto mag =
        neg ? (~static_cast<std::uint64_t>(micros_) + 1) : static_cast<std::uint64_t>(micros_);
    const std::uint64_t whole = mag / static_cast<std::uint64_t>(kMicrosPerDollar);
    const std::uint64_t frac_micros = mag % static_cast<std::uint64_t>(kMicrosPerDollar);
    const std::uint64_t cents = (frac_micros + 5'000) / 10'000;  // round to cents

    std::uint64_t display_whole = whole;
    std::uint64_t display_cents = cents;
    if (display_cents == 100) {  // rounding carried into the dollar column
        display_whole += 1;
        display_cents = 0;
    }

    std::string digits = std::to_string(display_whole);
    std::string grouped;
    grouped.reserve(digits.size() + digits.size() / 3);
    const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) grouped += ',';
        grouped += digits[i];
    }

    std::string cents_str = std::to_string(display_cents);
    if (cents_str.size() < 2) cents_str.insert(cents_str.begin(), '0');

    return std::string(neg ? "-$" : "$") + grouped + "." + cents_str;
}

std::ostream& operator<<(std::ostream& os, Money m) { return os << m.str(); }

}  // namespace poc::util
