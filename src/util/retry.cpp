#include "util/retry.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace poc::util {

const char* breaker_state_name(BreakerState state) {
    switch (state) {
        case BreakerState::kClosed: return "closed";
        case BreakerState::kOpen: return "open";
        case BreakerState::kHalfOpen: return "half-open";
    }
    return "?";
}

namespace {

double steady_now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

Retrier::Retrier(RetryPolicy policy, BreakerPolicy breaker, Clock clock, Sleep sleep)
    : policy_(policy),
      breaker_(breaker),
      clock_(clock ? std::move(clock) : Clock(&steady_now_ms)),
      sleep_(std::move(sleep)),  // empty = virtual backoff (stats only)
      jitter_(policy.jitter_seed) {
    POC_EXPECTS(policy_.max_attempts >= 1);
    POC_EXPECTS(policy_.deadline_ms > 0.0);
    POC_EXPECTS(policy_.base_backoff_ms >= 0.0);
    POC_EXPECTS(policy_.backoff_multiplier >= 1.0);
    POC_EXPECTS(policy_.max_backoff_ms >= policy_.base_backoff_ms);
    POC_EXPECTS(policy_.jitter_fraction >= 0.0 && policy_.jitter_fraction < 1.0);
    POC_EXPECTS(breaker_.failure_threshold >= 1);
    POC_EXPECTS(breaker_.cooldown_ms >= 0.0);
}

BreakerState Retrier::breaker_state() const {
    if (state_ == BreakerState::kOpen && clock_() >= open_until_ms_) {
        return BreakerState::kHalfOpen;
    }
    return state_;
}

void Retrier::reset_breaker() noexcept {
    state_ = BreakerState::kClosed;
    consecutive_exhausted_ = 0;
    probing_ = false;
}

bool Retrier::admit() {
    switch (state_) {
        case BreakerState::kClosed:
            return true;
        case BreakerState::kOpen:
            if (clock_() >= open_until_ms_) {
                state_ = BreakerState::kHalfOpen;
                probing_ = true;
                return true;  // one probe through
            }
            ++stats_.breaker_fast_fails;
            POC_OBS_INC("util.retry.breaker_fast_fails");
            return false;
        case BreakerState::kHalfOpen:
            return true;
    }
    return true;
}

void Retrier::on_success() noexcept {
    consecutive_exhausted_ = 0;
    probing_ = false;
    state_ = BreakerState::kClosed;
}

void Retrier::on_exhausted() {
    ++stats_.exhausted;
    ++consecutive_exhausted_;
    POC_OBS_INC("util.retry.exhausted_calls");
    // A failed half-open probe re-opens immediately; otherwise open
    // once the consecutive-failure threshold is reached.
    if (probing_ || consecutive_exhausted_ >= breaker_.failure_threshold) {
        if (state_ != BreakerState::kOpen || probing_) {
            ++stats_.breaker_opens;
            POC_OBS_INC("util.retry.breaker_opens");
        }
        state_ = BreakerState::kOpen;
        open_until_ms_ = clock_() + breaker_.cooldown_ms;
        probing_ = false;
    }
}

void Retrier::backoff(std::size_t attempt) {
    double b = policy_.base_backoff_ms;
    for (std::size_t k = 1; k < attempt; ++k) b *= policy_.backoff_multiplier;
    b = std::min(b, policy_.max_backoff_ms);
    if (policy_.jitter_fraction > 0.0) {
        b *= jitter_.uniform(1.0 - policy_.jitter_fraction, 1.0 + policy_.jitter_fraction);
    }
    stats_.backoff_ms_total += b;
    POC_OBS_COUNT("util.retry.backoff_ms", static_cast<std::uint64_t>(b));
    if (sleep_) sleep_(b);
}

}  // namespace poc::util
