#include "util/log.hpp"

#include <atomic>
#include <mutex>

namespace poc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::ostream* g_sink = nullptr;
// Guards g_sink and the actual stream write; keeps concurrent messages
// from interleaving mid-line.
std::mutex& sink_mutex() {
    static std::mutex m;
    return m;
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

void set_log_sink(std::ostream* sink) noexcept {
    std::lock_guard<std::mutex> lock(sink_mutex());
    g_sink = sink;
}

namespace detail {

void log_write(LogLevel level, const std::string& message) {
    static const char* const kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
    const auto idx = static_cast<std::size_t>(level);
    std::lock_guard<std::mutex> lock(sink_mutex());
    std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
    out << "[" << (idx < 4 ? kNames[idx] : "?????") << "] " << message << "\n";
}

}  // namespace detail

}  // namespace poc::util
