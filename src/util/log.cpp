#include "util/log.hpp"

namespace poc::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = nullptr;
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }
void set_log_sink(std::ostream* sink) noexcept { g_sink = sink; }

namespace detail {

void log_write(LogLevel level, const std::string& message) {
    static const char* const kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
    std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
    const auto idx = static_cast<std::size_t>(level);
    out << "[" << (idx < 4 ? kNames[idx] : "?????") << "] " << message << "\n";
}

}  // namespace detail

}  // namespace poc::util
