// Deterministic file-level fault injection for durability testing
// (DESIGN.md §4c): the byte-surgery toolkit the state-history property
// tests sweep over snapshot and journal files.
//
// Every operation models a concrete storage failure:
//
//  * tear_at        - torn write: the device persisted only the first
//                     `offset` bytes of the file (power loss mid-write).
//                     Sweeping offset over every byte of a frame is the
//                     exhaustive torn-write matrix.
//  * flip_bit       - a single bit flip at rest (media corruption).
//  * truncate_tail  - the last n bytes never made it (lost cache).
//  * duplicate_range- a doubled frame: bytes [offset, offset+len) are
//                     appended again at the end (replayed write, a
//                     misdirected retry).
//  * append_garbage - arbitrary trailing bytes (reused sectors).
//  * make_stale_temp- a `<path>.tmp` leftover from an install that
//                     died before its rename.
//
// All operations act on closed files (the crash already happened);
// they are plain byte surgery, deterministic, and sandbox-friendly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace poc::util {

class FaultyFile {
public:
    /// Raw file bytes ("" when missing — faults on absent files are
    /// no-ops by construction).
    static std::string slurp(const std::string& path);
    /// Replace the file's contents wholesale.
    static void spit(const std::string& path, std::string_view bytes);
    /// Current size in bytes (0 when missing).
    static std::uint64_t size(const std::string& path);

    /// Keep only the first `offset` bytes (torn write at `offset`).
    static void tear_at(const std::string& path, std::uint64_t offset);
    /// XOR bit `bit` (0-7) of the byte at `offset` (no-op past EOF).
    static void flip_bit(const std::string& path, std::uint64_t offset, unsigned bit = 0);
    /// Drop the last `n` bytes.
    static void truncate_tail(const std::string& path, std::uint64_t n);
    /// Append a copy of bytes [offset, offset+len) to the end
    /// (duplicated frame). Clamped to the file's size.
    static void duplicate_range(const std::string& path, std::uint64_t offset,
                                std::uint64_t len);
    /// Append arbitrary garbage bytes.
    static void append_garbage(const std::string& path, std::string_view bytes);
    /// Plant a stale `<path>.tmp` leftover with the given bytes.
    static void make_stale_temp(const std::string& path, std::string_view bytes);
};

}  // namespace poc::util
