// Minimal leveled logging. The library itself logs nothing by default;
// harnesses and examples opt in by raising the level. Thread-safe: the
// level is atomic and each sink write happens under a global mutex, so
// messages from concurrent auction workers never interleave mid-line.
// Level/sink changes are racy only in ordering (a message in flight may
// use either value), which is fine for configuration done at startup.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace poc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Redirect output (default std::cerr). Pass nullptr to restore default.
void set_log_sink(std::ostream* sink) noexcept;

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

}  // namespace poc::util

#define POC_LOG(level, expr)                                                      \
    do {                                                                          \
        if (static_cast<int>(level) >= static_cast<int>(::poc::util::log_level())) { \
            std::ostringstream poc_log_oss;                                       \
            poc_log_oss << expr;                                                  \
            ::poc::util::detail::log_write(level, poc_log_oss.str());             \
        }                                                                         \
    } while (false)

#define POC_DEBUG(expr) POC_LOG(::poc::util::LogLevel::kDebug, expr)
#define POC_INFO(expr) POC_LOG(::poc::util::LogLevel::kInfo, expr)
#define POC_WARN(expr) POC_LOG(::poc::util::LogLevel::kWarn, expr)
#define POC_ERROR(expr) POC_LOG(::poc::util::LogLevel::kError, expr)
