// Strongly-typed integer identifiers. The POC model juggles several id
// spaces (network nodes, links, bandwidth providers, LMPs, CSPs, ...);
// a dedicated type per space makes mixing them a compile error instead
// of a silent index bug (Core Guidelines I.4: precise, strongly-typed
// interfaces).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace poc::util {

/// A strongly-typed index. Tag is a phantom type naming the id space.
template <typename Tag>
class Id {
public:
    using underlying_type = std::uint32_t;
    static constexpr underlying_type kInvalid = ~underlying_type{0};

    constexpr Id() noexcept = default;
    constexpr explicit Id(underlying_type value) noexcept : value_(value) {}
    constexpr explicit Id(std::size_t value) noexcept
        : value_(static_cast<underlying_type>(value)) {}

    constexpr underlying_type value() const noexcept { return value_; }
    constexpr std::size_t index() const noexcept { return value_; }
    constexpr bool valid() const noexcept { return value_ != kInvalid; }

    friend constexpr auto operator<=>(Id, Id) noexcept = default;

private:
    underlying_type value_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
    if (id.valid()) return os << id.value();
    return os << "<invalid>";
}

}  // namespace poc::util

template <typename Tag>
struct std::hash<poc::util::Id<Tag>> {
    std::size_t operator()(poc::util::Id<Tag> id) const noexcept {
        return std::hash<typename poc::util::Id<Tag>::underlying_type>{}(id.value());
    }
};
