// A tiny deterministic 64-bit hasher (FNV-1a) for building content
// fingerprints: oracle purity digests, offer-pool pricing digests
// (market/delta_reclear.hpp). Not a cryptographic hash — collision
// behavior is the usual 64-bit birthday bound, the same contract as
// Subgraph::fingerprint() (DESIGN.md §6).
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace poc::util {

class Fnv64 {
public:
    void add(std::uint64_t v) noexcept {
        for (int i = 0; i < 8; ++i) {
            step(static_cast<unsigned char>(v >> (8 * i)));
        }
    }

    void add_i64(std::int64_t v) noexcept { add(static_cast<std::uint64_t>(v)); }

    /// Hash the exact bit pattern: distinguishes -0.0 from 0.0 and
    /// every NaN payload, which is what bit-identity contracts need.
    void add_f64(double v) noexcept { add(std::bit_cast<std::uint64_t>(v)); }

    void add_bytes(std::string_view bytes) noexcept {
        for (const char c : bytes) step(static_cast<unsigned char>(c));
    }

    std::uint64_t value() const noexcept { return h_; }

private:
    void step(unsigned char byte) noexcept {
        h_ ^= byte;
        h_ *= 1099511628211ull;
    }

    std::uint64_t h_ = 1469598103934665603ull;
};

}  // namespace poc::util
