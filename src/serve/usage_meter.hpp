// Per-account usage metering and admission control for the serve
// daemon (DESIGN.md §8). Each account carries an exponentially-
// decaying usage average (econ::DecayAccumulator — recent queries
// dominate, idle accounts age back under quota) and a Money-checked
// billed total. Admission is checked *before* a query runs: an
// account whose decayed usage would exceed its quota is rejected with
// a structured error code — backpressure, not silent throttling — and
// a charge that would overflow the int64 micro-dollar bill is refused
// atomically. At each epoch rollover the meter flushes accrued
// charges into a core::Ledger (account -> POC service fees) and
// reconciles: flushed totals must equal billed totals exactly, and
// the ledger must conserve.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/ledger.hpp"
#include "econ/usage_pricing.hpp"
#include "util/money.hpp"

namespace poc::serve {

/// Structured error codes shared by every serve query class. Values
/// are stable (wire/log-friendly).
enum class ServeError : std::uint8_t {
    kOk = 0,
    /// No epoch has been published yet (daemon warming up).
    kNotServing,
    /// Admission control: the account's decayed usage is over quota.
    kOverQuota,
    /// The charge would overflow the account's billed total.
    kBillingRefused,
    kUnknownBp,
    kUnknownNode,
    /// Path query: destination not reachable on the epoch's backbone.
    kUnreachable,
    /// Point-in-time query: history cannot prove the requested epoch.
    kHistoryUnavailable,
    /// Bounded-staleness serving (replica reads): the answering
    /// replica's lag exceeds the query's max_lag_epochs bound. The
    /// caller may retry against the leader, relax the bound, or fall
    /// back to a point-in-time query the replica *can* prove.
    kStaleView,
};

const char* serve_error_name(ServeError code);

struct MeterOptions {
    /// Usage half-life in epochs: how fast an idle account's load
    /// average decays back toward zero (and back under quota).
    double half_life_epochs = 8.0;
    /// Price per query unit.
    util::Money price_per_unit = util::Money::from_micros(250);
    /// Decayed-usage ceiling; a query pushing past it is rejected.
    double quota_units = 1000.0;
    /// Off = meter and bill but never reject (observe-only mode).
    bool admission_enabled = true;
};

/// One admission decision. On kOk the account was metered and billed;
/// on any rejection its meter and bill are untouched.
struct Admission {
    ServeError code = ServeError::kOk;
    /// Decayed usage after this decision (unchanged on rejection).
    double usage = 0.0;
    util::Money charged;

    bool ok() const noexcept { return code == ServeError::kOk; }
};

class UsageMeter {
public:
    explicit UsageMeter(MeterOptions opt);

    /// Admit-and-charge `units` of work for `account` at time `epoch`
    /// (a continuous axis; the engine passes completed_epochs).
    /// Thread-safe.
    Admission admit(const std::string& account, double epoch, double units);

    double usage(const std::string& account, double epoch) const;
    util::Money billed(const std::string& account) const;
    util::Money total_billed() const;
    std::size_t account_count() const;
    std::uint64_t rejected() const;

    struct Reconciliation {
        std::size_t accounts_flushed = 0;
        util::Money flushed;
        /// Ledger service-fee total == sum of billed totals, and the
        /// ledger conserves. False would mean metering and billing
        /// disagree — a bug, surfaced rather than absorbed.
        bool balanced = false;
    };

    /// Rollover hook: flush charges accrued since the last call into
    /// the billing ledger and verify meter/ledger agreement.
    Reconciliation reconcile(std::size_t epoch);

    /// The cumulative serve-side billing ledger (reconciled copy; safe
    /// snapshot under the meter's lock).
    core::Ledger billing_ledger() const;

    const MeterOptions& options() const noexcept { return opt_; }

private:
    struct Account {
        econ::BilledAccumulator meter;
        /// Portion of `meter.billed()` already moved to the ledger.
        util::Money flushed;
        /// Stable ledger identity (first-registration order).
        std::uint32_t party_index = 0;
    };

    Account& account_locked(const std::string& name);

    MeterOptions opt_;
    mutable std::mutex mutex_;
    std::map<std::string, Account> accounts_;
    core::Ledger ledger_;
    std::uint64_t rejected_ = 0;
    std::uint32_t next_party_ = 0;
};

}  // namespace poc::serve
