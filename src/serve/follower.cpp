#include "serve/follower.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/replay.hpp"
#include "util/contracts.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/state_history.hpp"

namespace poc::serve {

namespace {

/// Per-record frame overhead: u16 type | u32 payload_len | u32 crc.
/// Kept in sync with the journal's framing (journal.cpp); the cursor
/// advances by this plus the *raw* (possibly delta-encoded) payload
/// size per consumed record.
constexpr std::uint64_t kFrameOverhead =
    sizeof(std::uint16_t) + 2 * sizeof(std::uint32_t);

double steady_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

const char* follower_status_name(FollowerStatus status) {
    switch (status) {
        case FollowerStatus::kCold: return "cold";
        case FollowerStatus::kTailing: return "tailing";
        case FollowerStatus::kWaitingForJournal: return "waiting-for-journal";
        case FollowerStatus::kTornTail: return "torn-tail";
        case FollowerStatus::kCorrupt: return "corrupt";
        case FollowerStatus::kForeign: return "foreign";
    }
    return "unknown";
}

struct Follower::Impl {
    const market::OfferPool& pool;
    const net::TrafficMatrix& tm;
    FollowerOptions opt;
    std::string meta;
    util::HistoryReader reader;
    std::shared_ptr<ViewHub> hub;

    // --- Tail-thread state (poll()/tail_until() are externally
    // serialized; nothing below is touched by query threads). ---
    sim::ReplayCursor cursor;
    /// Last full payload per base record type of the consumed prefix —
    /// the delta-decoder state matching the cursor position. A suffix
    /// decode works against a *copy*; the persistent map advances only
    /// for records actually consumed.
    std::map<std::uint16_t, std::string> delta_bases;
    std::size_t consumed_records = 0;
    std::uint64_t consumed_bytes = 0;
    /// Completed epochs the grounding snapshot covered (records with a
    /// lower epoch are consumed without applying until the first
    /// apply).
    std::uint64_t grounded = 0;
    bool any_applied = false;
    bool bootstrapped = false;
    std::uint64_t generation = 0;
    std::size_t stall_polls = 0;
    bool stall_reground_tried = false;

    // --- Shared with query threads (atomics; the hub carries the
    // views themselves). ---
    std::atomic<std::uint64_t> applied{0};
    std::atomic<std::uint64_t> known{0};
    std::atomic<FollowerStatus> status{FollowerStatus::kCold};
    std::atomic<std::uint64_t> cursor_bytes_pub{0};
    std::atomic<std::uint64_t> cursor_records_pub{0};
    mutable std::atomic<std::uint64_t> stale_rejects{0};

    mutable FollowerStats stats;

    Impl(const market::OfferPool& pool_in, const net::TrafficMatrix& tm_in,
         FollowerOptions opt_in)
        : pool(pool_in),
          tm(tm_in),
          opt(std::move(opt_in)),
          meta(sim::runtime_meta_fingerprint(pool, tm, opt.runtime)),
          reader(opt.runtime.journal_path, opt.runtime.snapshot_keep),
          hub(opt.hub ? opt.hub : std::make_shared<ViewHub>()) {
        POC_EXPECTS(!opt.runtime.journal_path.empty());
    }

    std::uint64_t lag() const noexcept {
        const std::uint64_t k = known.load(std::memory_order_relaxed);
        const std::uint64_t a = applied.load(std::memory_order_relaxed);
        return k > a ? k - a : 0;
    }

    void publish_current() {
        if (cursor.state.epochs.empty()) return;
        auto view = build_epoch_view(pool.graph(), cursor.state);
        if (hub->publish(std::move(view))) {
            ++stats.views_published;
        } else {
            ++stats.publish_rejects;
        }
    }

    /// Reset the cursor to a fresh grounding: newest valid snapshot
    /// (or the journal head when none survives) of the generation the
    /// scan observed. Re-announces the grounded epoch through the hub
    /// — the monotonic guard makes that idempotent or a no-op.
    void ground(const util::Journal::ScanResult& scan) {
        cursor = sim::ReplayCursor{};
        cursor.state.rng = util::Rng(opt.runtime.seed).state();
        delta_bases.clear();
        consumed_records = 0;
        consumed_bytes = scan.header_end;
        grounded = 0;
        any_applied = false;
        if (const auto snap = reader.store().load_newest_valid(meta)) {
            try {
                sim::RuntimeState st = sim::decode_runtime_state(snap->payload);
                POC_EXPECTS(st.epochs.size() == snap->completed_epochs);
                cursor.state = std::move(st);
                grounded = snap->completed_epochs;
            } catch (const util::ContractViolation&) {
                POC_OBS_INC("serve.follower.snapshot_decode_failures");
            } catch (const util::JournalError&) {
                POC_OBS_INC("serve.follower.snapshot_decode_failures");
            }
        }
        applied.store(cursor.state.epochs.size(), std::memory_order_relaxed);
        ++stats.rebootstraps;
        publish_current();
    }

    struct ConsumeOutcome {
        /// A CRC-valid record was semantically impossible against the
        /// cursor state (replay refused it before mutating anything).
        bool structural = false;
        /// CRC-valid records past the clean prefix the delta decoder
        /// could not resolve (broken chain, unknown type).
        std::size_t undecodable = 0;
    };

    /// Apply newly provable records at the cursor. Advances the
    /// persistent delta bases / byte cursor only per record actually
    /// consumed, so a failed suffix leaves the cursor at the last good
    /// record.
    ConsumeOutcome consume(const util::Journal::ScanResult& scan, FollowerPoll& out) {
        ConsumeOutcome res;
        std::size_t unapplied_epoch_ends = 0;
        if (consumed_records < scan.records.size()) {
            const std::vector<util::JournalRecord> pending(
                scan.records.begin() + static_cast<std::ptrdiff_t>(consumed_records),
                scan.records.end());
            std::vector<sim::DecodedRecord> decoded;
            auto bases = delta_bases;
            sim::decode_records(pending, decoded, bases);
            res.undecodable = pending.size() - decoded.size();

            std::size_t i = 0;
            for (; i < decoded.size(); ++i) {
                if (opt.max_records_per_poll != 0 &&
                    out.records_applied >= opt.max_records_per_poll) {
                    break;
                }
                const sim::DecodedRecord& d = decoded[i];
                const util::JournalRecord& raw = pending[i];
                if (!any_applied && d.epoch < grounded) {
                    // The grounding snapshot already covers this record
                    // (the journal was not compacted at the boundary):
                    // consume without applying, but keep it as the
                    // delta base its successors resolve against.
                    delta_bases[d.type] = d.payload;
                    ++consumed_records;
                    consumed_bytes += kFrameOverhead + raw.payload.size();
                    continue;
                }
                if (opt.apply_hook) opt.apply_hook(consumed_records, d.type, d.epoch);
                try {
                    cursor.apply(d);
                } catch (const util::ContractViolation&) {
                    res.structural = true;
                    break;
                } catch (const util::JournalError&) {
                    res.structural = true;
                    break;
                }
                any_applied = true;
                delta_bases[d.type] = d.payload;
                ++consumed_records;
                consumed_bytes += kFrameOverhead + raw.payload.size();
                ++out.records_applied;
                ++stats.records_applied;
                if (d.type == sim::kRecEpochEnd) {
                    ++out.epochs_applied;
                    ++stats.epochs_applied;
                    applied.store(cursor.state.epochs.size(), std::memory_order_relaxed);
                    if (opt.publish_every_epoch) publish_current();
                }
            }
            for (std::size_t j = i; j < decoded.size(); ++j) {
                if (decoded[j].type == sim::kRecEpochEnd) ++unapplied_epoch_ends;
            }
        }
        if (!opt.publish_every_epoch && out.epochs_applied > 0) publish_current();
        known.store(cursor.state.epochs.size() + unapplied_epoch_ends,
                    std::memory_order_relaxed);
        return res;
    }

    FollowerPoll poll() {
        FollowerPoll out;
        ++stats.polls;
        POC_OBS_INC("serve.follower.polls");
        const std::string& path = opt.runtime.journal_path;

        // Identity *before* the scan: if a compaction rename lands in
        // between, the stored identity is stale and the next poll
        // re-detects the generation change instead of missing it.
        const std::uint64_t identity = util::Journal::file_identity(path);
        util::Journal::ScanResult scan;
        try {
            util::Journal::scan_file(path, scan);
        } catch (const util::JournalError&) {
            if (!std::filesystem::exists(path)) {
                out.status = FollowerStatus::kWaitingForJournal;
            } else {
                // Present but headerless: a create in progress, or a
                // damaged header. Same decision rule as the tail —
                // in-progress until the stall budget says otherwise.
                out.torn_tail = true;
                ++stats.torn_tail_polls;
                ++stall_polls;
                out.status = stall_polls >= opt.stall_poll_budget
                                 ? FollowerStatus::kCorrupt
                                 : FollowerStatus::kTornTail;
            }
            status.store(out.status, std::memory_order_relaxed);
            export_counters();
            return out;
        }

        if (scan.meta != meta) {
            // Another scenario's journal: never bootstrap, never apply.
            out.status = FollowerStatus::kForeign;
            status.store(out.status, std::memory_order_relaxed);
            export_counters();
            return out;
        }

        const bool was_bootstrapped = bootstrapped;
        const std::uint64_t start_bytes = consumed_bytes;
        const std::size_t start_records = consumed_records;
        const std::uint64_t start_applied = cursor.state.epochs.size();
        const bool generation_changed =
            bootstrapped && (identity != generation ||
                             scan.valid_end < consumed_bytes ||
                             scan.records.size() < consumed_records);
        generation = identity;

        if (!bootstrapped || generation_changed) {
            ground(scan);
            bootstrapped = true;
            out.rebootstrapped = true;
        }

        ConsumeOutcome co = consume(scan, out);
        if (co.structural && !out.rebootstrapped) {
            // A semantically impossible suffix usually means our
            // grounding is stale relative to a compaction whose rename
            // the identity check could not see (recycled inode). One
            // re-ground per poll; a repeat is structural damage.
            ground(scan);
            out.rebootstrapped = true;
            co = consume(scan, out);
        }

        if (scan.tail_truncated) {
            out.torn_tail = true;
            ++stats.torn_tail_polls;
        }

        // Net progress vs the poll's start — a re-ground that climbs
        // back to the same stuck record is *not* progress, re-applied
        // records notwithstanding.
        out.progressed = !was_bootstrapped || generation_changed ||
                         consumed_bytes != start_bytes ||
                         consumed_records != start_records ||
                         cursor.state.epochs.size() != start_applied;

        bool blocked = co.structural || co.undecodable > 0;
        if (out.progressed) {
            stall_polls = 0;
            stall_reground_tried = false;
        } else if (blocked || out.torn_tail) {
            ++stall_polls;
            if (stall_polls >= opt.stall_poll_budget && !stall_reground_tried) {
                // Before declaring damage, try one snapshot re-ground:
                // a newer snapshot may already cover past the stuck
                // bytes.
                stall_reground_tried = true;
                stall_polls = 0;
                ground(scan);
                out.rebootstrapped = true;
                co = consume(scan, out);
                blocked = co.structural || co.undecodable > 0;
                if (cursor.state.epochs.size() > start_applied ||
                    consumed_bytes > start_bytes) {
                    out.progressed = true;
                    stall_reground_tried = false;
                }
            }
        } else {
            // Quiescent and clean: a journal that simply is not
            // growing is an idle leader, not a stall.
            stall_polls = 0;
        }

        if ((blocked || out.torn_tail) && stall_reground_tried &&
            stall_polls >= opt.stall_poll_budget) {
            out.status = FollowerStatus::kCorrupt;
        } else if (blocked || out.torn_tail) {
            out.status = FollowerStatus::kTornTail;
        } else {
            out.status = FollowerStatus::kTailing;
        }
        status.store(out.status, std::memory_order_relaxed);
        export_counters();
        return out;
    }

    void export_counters() {
        cursor_bytes_pub.store(consumed_bytes, std::memory_order_relaxed);
        cursor_records_pub.store(consumed_records, std::memory_order_relaxed);
        POC_OBS_GAUGE_SET("serve.follower.lag_epochs", lag());
        POC_OBS_GAUGE_SET("serve.follower.applied_epochs",
                          applied.load(std::memory_order_relaxed));
    }

    void tail_until(std::uint64_t target) {
        struct ProgressMade {};
        const double t0 = steady_ms();
        util::RetryPolicy policy = opt.tail_backoff;
        policy.deadline_ms = std::numeric_limits<double>::infinity();
        const util::Retrier::Clock clock = steady_ms;
        const util::Retrier::Sleep sleep = [](double ms) {
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
        };
        for (;;) {
            // Fresh Retrier per progress window: the attempt budget
            // bounds *stall* time, any progress resets it.
            util::Retrier retrier(
                policy,
                util::BreakerPolicy{.failure_threshold =
                                        std::numeric_limits<std::size_t>::max()},
                clock, sleep);
            try {
                retrier.call([&](const util::Deadline&) -> int {
                    const FollowerPoll p = poll();
                    if (applied.load(std::memory_order_relaxed) >= target) return 0;
                    if (p.progressed) throw ProgressMade{};
                    throw util::TransientError(
                        std::string("follower tail stalled: ") +
                        follower_status_name(p.status));
                });
                break;
            } catch (const ProgressMade&) {
                continue;
            }
            // util::RetryExhausted propagates: a full stall window is
            // a structural failure, the supervisor's problem.
        }
        POC_OBS_HISTOGRAM("serve.follower.catchup_ms", 0.0, 5000.0, 50,
                          steady_ms() - t0);
    }

    bool reject_stale(std::uint64_t max_lag) const {
        if (lag() <= max_lag) return false;
        stale_rejects.fetch_add(1, std::memory_order_relaxed);
        POC_OBS_INC("serve.follower.stale_rejects");
        return true;
    }
};

Follower::Follower(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                   FollowerOptions opt)
    : impl_(std::make_unique<Impl>(pool, tm, std::move(opt))) {}

Follower::~Follower() = default;

FollowerPoll Follower::poll() { return impl_->poll(); }

void Follower::tail_until(std::uint64_t target_epochs) {
    impl_->tail_until(target_epochs);
}

std::shared_ptr<const EpochView> Follower::current() const {
    return impl_->hub->current();
}

const std::shared_ptr<ViewHub>& Follower::hub() const noexcept { return impl_->hub; }

std::uint64_t Follower::applied_epochs() const noexcept {
    return impl_->applied.load(std::memory_order_relaxed);
}

std::uint64_t Follower::known_epochs() const noexcept {
    return impl_->known.load(std::memory_order_relaxed);
}

std::uint64_t Follower::lag_epochs() const noexcept { return impl_->lag(); }

FollowerStatus Follower::status() const noexcept {
    return impl_->status.load(std::memory_order_relaxed);
}

const FollowerStats& Follower::stats() const noexcept {
    impl_->stats.stale_rejects =
        impl_->stale_rejects.load(std::memory_order_relaxed);
    return impl_->stats;
}

std::uint64_t Follower::cursor_bytes() const noexcept {
    return impl_->cursor_bytes_pub.load(std::memory_order_relaxed);
}

std::uint64_t Follower::cursor_records() const noexcept {
    return impl_->cursor_records_pub.load(std::memory_order_relaxed);
}

QuoteReply Follower::quote(std::string_view bp_name,
                           std::uint64_t max_lag_epochs) const {
    POC_OBS_INC("serve.follower.queries");
    QuoteReply reply;
    if (impl_->reject_stale(max_lag_epochs)) {
        reply.code = ServeError::kStaleView;
        return reply;
    }
    const auto view = impl_->hub->current();
    if (!view) return reply;
    reply.epoch = view->epoch;
    reply.total_outlay = view->total_outlay;
    const BpQuote* q = view->quote_for(bp_name);
    if (q == nullptr) {
        reply.code = ServeError::kUnknownBp;
        return reply;
    }
    reply.code = ServeError::kOk;
    reply.quote = *q;
    return reply;
}

PathReply Follower::path(net::NodeId src, net::NodeId dst,
                         std::uint64_t max_lag_epochs) const {
    POC_OBS_INC("serve.follower.queries");
    PathReply reply;
    if (impl_->reject_stale(max_lag_epochs)) {
        reply.code = ServeError::kStaleView;
        return reply;
    }
    const auto view = impl_->hub->current();
    if (!view) return reply;
    reply.epoch = view->epoch;
    if (!src.valid() || !dst.valid() || src.index() >= view->trees.size() ||
        dst.index() >= view->trees.size()) {
        reply.code = ServeError::kUnknownNode;
        return reply;
    }
    const net::ShortestPathTree& tree = view->trees[src.index()];
    if (!tree.reachable(dst)) {
        reply.code = ServeError::kUnreachable;
        return reply;
    }
    reply.code = ServeError::kOk;
    reply.links = tree.path_to(dst);
    reply.length_km = tree.dist[dst.index()];
    return reply;
}

SlaReply Follower::sla(std::uint64_t max_lag_epochs, double delivered_target) const {
    POC_OBS_INC("serve.follower.queries");
    SlaReply reply;
    if (impl_->reject_stale(max_lag_epochs)) {
        reply.code = ServeError::kStaleView;
        return reply;
    }
    const auto view = impl_->hub->current();
    if (!view) return reply;
    reply.code = ServeError::kOk;
    reply.epoch = view->epoch;
    reply.status = view->sla(delivered_target);
    reply.delivered_fraction = view->record.delivered_fraction;
    reply.degraded = view->record.degraded_mode;
    reply.breaker_open = view->record.breaker_open;
    return reply;
}

HistoryReply Follower::at_epoch(std::uint64_t completed_epochs) const {
    POC_OBS_INC("serve.follower.queries");
    HistoryReply reply;
    if (completed_epochs == 0) {
        reply.code = ServeError::kHistoryUnavailable;
        return reply;
    }
    // The degradation path for a stale replica: no staleness check —
    // the reply is proven point-in-time state, not the live view.
    const auto state =
        sim::materialize_state_at(impl_->pool, impl_->tm, impl_->opt.runtime,
                                  completed_epochs);
    if (!state) {
        reply.code = ServeError::kHistoryUnavailable;
        return reply;
    }
    reply.view = build_epoch_view(impl_->pool.graph(), *state);
    reply.code = ServeError::kOk;
    return reply;
}

FollowerRunResult run_follower_with_recovery(const market::OfferPool& pool,
                                             const net::TrafficMatrix& tm,
                                             const FollowerOptions& opt,
                                             std::uint64_t target_epochs,
                                             const std::vector<sim::Fault>& trace) {
    FollowerRunResult res;
    res.hub = opt.hub ? opt.hub : std::make_shared<ViewHub>();

    struct FirePoint {
        std::uint64_t epoch = 0;
        bool fired = false;
    };
    auto crashes = std::make_shared<std::vector<FirePoint>>();
    std::vector<FirePoint> corrupts;
    for (const sim::Fault& f : trace) {
        if (f.kind == sim::FaultKind::kFollowerCrash) {
            crashes->push_back({f.start_epoch, false});
        } else if (f.kind == sim::FaultKind::kFollowerTailCorrupt) {
            corrupts.push_back({f.start_epoch, false});
        }
        // Leader-side kinds are the leader supervisor's problem.
    }

    FollowerOptions sub = opt;
    sub.hub = res.hub;
    sub.apply_hook = [user = opt.apply_hook, crashes](std::size_t index,
                                                      std::uint16_t type,
                                                      std::uint64_t epoch) {
        if (user) user(index, type, epoch);
        for (FirePoint& c : *crashes) {
            if (!c.fired && epoch == c.epoch) {
                c.fired = true;
                throw FollowerCrash(index, epoch);
            }
        }
    };

    const std::size_t restart_budget =
        std::max<std::size_t>(1, opt.runtime.restart.max_attempts);
    const std::size_t poll_budget =
        restart_budget * std::max<std::size_t>(1, opt.stall_poll_budget);

    std::unique_ptr<Follower> follower;
    std::size_t idle_restarts = 0;  // consecutive restarts without progress
    std::size_t idle_polls = 0;     // consecutive no-progress polls
    std::uint64_t best_applied = 0;

    for (;;) {
        if (!follower) {
            follower = std::make_unique<Follower>(pool, tm, sub);
        }
        FollowerPoll p;
        try {
            p = follower->poll();
        } catch (const FollowerCrash& crash) {
            ++res.restarts;
            POC_OBS_INC("serve.follower.crashes");
            res.rebootstraps += follower->stats().rebootstraps;
            const std::uint64_t applied = follower->applied_epochs();
            if (applied > best_applied) {
                best_applied = applied;
                idle_restarts = 0;
            } else if (++idle_restarts >= restart_budget) {
                throw sim::RecoveryExhausted(res.restarts, crash.what());
            }
            follower.reset();
            continue;
        }

        const std::uint64_t applied = follower->applied_epochs();
        if (applied > best_applied) best_applied = applied;

        // Fire pending tail-corruption faults: one bit flip past the
        // replica's cursor once it has applied the fault's epoch. Only
        // this replica (and a future recovery scan) reads those bytes
        // — the leader appends blind — so the damage is exactly "media
        // corruption in the suffix the follower has yet to consume".
        for (FirePoint& c : corrupts) {
            if (c.fired || applied < c.epoch) continue;
            const std::string& path = sub.runtime.journal_path;
            const std::uint64_t size = util::FaultyFile::size(path);
            const std::uint64_t cur = follower->cursor_bytes();
            if (size > cur + 4) {
                util::FaultyFile::flip_bit(path, cur + (size - cur) / 2, 3);
                c.fired = true;
                POC_OBS_INC("serve.follower.injected_tail_corruptions");
            }
            // Journal not yet extended past the cursor: hold the fault
            // until there are suffix bytes to damage.
        }

        if (applied >= target_epochs) break;

        if (p.progressed) {
            idle_polls = 0;
        } else if (++idle_polls >= poll_budget) {
            throw sim::RecoveryExhausted(
                res.restarts, std::string("follower stalled: ") +
                                  follower_status_name(p.status));
        } else {
            // Waiting on a live writer (or a compaction that clears
            // damage): tiny real pause so the supervisor does not spin
            // a core against an idle journal.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }

    res.applied_epochs = follower->applied_epochs();
    res.rebootstraps += follower->stats().rebootstraps;
    res.final_view = res.hub->current();
    return res;
}

}  // namespace poc::serve
