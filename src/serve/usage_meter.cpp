#include "serve/usage_meter.hpp"

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace poc::serve {

const char* serve_error_name(ServeError code) {
    switch (code) {
        case ServeError::kOk: return "ok";
        case ServeError::kNotServing: return "not-serving";
        case ServeError::kOverQuota: return "over-quota";
        case ServeError::kBillingRefused: return "billing-refused";
        case ServeError::kUnknownBp: return "unknown-bp";
        case ServeError::kUnknownNode: return "unknown-node";
        case ServeError::kUnreachable: return "unreachable";
        case ServeError::kHistoryUnavailable: return "history-unavailable";
        case ServeError::kStaleView: return "stale-view";
    }
    return "unknown";
}

UsageMeter::UsageMeter(MeterOptions opt) : opt_(opt) {
    POC_EXPECTS(opt_.half_life_epochs > 0.0);
    POC_EXPECTS(opt_.quota_units > 0.0);
}

UsageMeter::Account& UsageMeter::account_locked(const std::string& name) {
    auto it = accounts_.find(name);
    if (it == accounts_.end()) {
        it = accounts_
                 .emplace(name, Account{econ::BilledAccumulator(opt_.half_life_epochs,
                                                                opt_.price_per_unit),
                                        util::Money{}, next_party_++})
                 .first;
    }
    return it->second;
}

Admission UsageMeter::admit(const std::string& account, double epoch, double units) {
    POC_EXPECTS(units >= 0.0);
    std::lock_guard<std::mutex> lock(mutex_);
    Account& acc = account_locked(account);
    if (opt_.admission_enabled &&
        acc.meter.usage_at(epoch) + units > opt_.quota_units) {
        ++rejected_;
        POC_OBS_INC("serve.admission_rejects");
        return {ServeError::kOverQuota, acc.meter.usage_at(epoch), util::Money{}};
    }
    const util::Money before = acc.meter.billed();
    if (!acc.meter.charge(epoch, units)) {
        ++rejected_;
        POC_OBS_INC("serve.billing_refusals");
        return {ServeError::kBillingRefused, acc.meter.usage_at(epoch), util::Money{}};
    }
    return {ServeError::kOk, acc.meter.usage_at(epoch), acc.meter.billed() - before};
}

double UsageMeter::usage(const std::string& account, double epoch) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = accounts_.find(account);
    return it == accounts_.end() ? 0.0 : it->second.meter.usage_at(epoch);
}

util::Money UsageMeter::billed(const std::string& account) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = accounts_.find(account);
    return it == accounts_.end() ? util::Money{} : it->second.meter.billed();
}

util::Money UsageMeter::total_billed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    util::Money total;
    for (const auto& [name, acc] : accounts_) {
        total = util::Money::checked_sum(total, acc.meter.billed());
    }
    return total;
}

std::size_t UsageMeter::account_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return accounts_.size();
}

std::uint64_t UsageMeter::rejected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

UsageMeter::Reconciliation UsageMeter::reconcile(std::size_t epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    Reconciliation out;
    util::Money billed_total;
    for (auto& [name, acc] : accounts_) {
        billed_total = util::Money::checked_sum(billed_total, acc.meter.billed());
        const util::Money delta = acc.meter.billed() - acc.flushed;
        if (delta <= util::Money{}) continue;
        ledger_.record({core::PartyKind::kCustomers, acc.party_index},
                       {core::PartyKind::kPoc, 0}, core::TransferKind::kServiceFees, delta,
                       "serve rollover " + std::to_string(epoch) + ": " + name);
        acc.flushed += delta;
        out.flushed += delta;
        ++out.accounts_flushed;
    }
    out.balanced =
        ledger_.total(core::TransferKind::kServiceFees) == billed_total && ledger_.conserves();
    if (!out.balanced) POC_OBS_INC("serve.reconcile_mismatches");
    POC_OBS_INC("serve.reconciliations");
    return out;
}

core::Ledger UsageMeter::billing_ledger() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ledger_;
}

}  // namespace poc::serve
