#include "serve/engine.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace poc::serve {

ServeEngine::ServeEngine(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                         sim::RuntimeOptions runtime_opt, ServeOptions opt)
    : pool_(pool),
      tm_(tm),
      runtime_opt_(std::move(runtime_opt)),
      opt_(opt),
      meter_(opt.meter),
      workers_(opt.workers == 0 ? 1 : opt.workers) {}

ServeEngine::~ServeEngine() = default;

sim::RuntimeOptions& ServeEngine::attach(sim::RuntimeOptions& opt) {
    opt.on_epoch_commit = [this](const sim::EpochCommit& commit) { publish(commit); };
    return opt;
}

void ServeEngine::publish(const sim::EpochCommit& commit) noexcept {
    // Never throw back into the runtime: a failed view build keeps the
    // previous epoch published and counts the failure.
    try {
        const auto start = std::chrono::steady_clock::now();
        auto view = build_epoch_view(pool_.graph(), commit);
        hub_.publish(std::move(view));
        const auto dur = std::chrono::steady_clock::now() - start;
        const double swap_ms = std::chrono::duration<double, std::milli>(dur).count();
        POC_OBS_HISTOGRAM("serve.rollover_swap_ms", 0.0, 100.0, 50, swap_ms);
        POC_OBS_INC("serve.rollovers");
    } catch (...) {
        POC_OBS_INC("serve.publish_errors");
    }
}

Admission ServeEngine::admit(const std::string& account, double units) {
    const auto view = hub_.current();
    const double now = view ? static_cast<double>(view->completed_epochs) : 0.0;
    return meter_.admit(account, now, units);
}

ServeEngine::QuoteReply ServeEngine::quote(const std::string& account,
                                           std::string_view bp_name) {
    POC_OBS_TIMER_MS("serve.quote_ms", 0.0, 50.0, 50);
    POC_OBS_INC("serve.queries");
    QuoteReply reply;
    const auto view = hub_.current();
    if (!view) return reply;
    const Admission adm = admit(account, opt_.quote_units);
    if (!adm.ok()) {
        reply.code = adm.code;
        return reply;
    }
    reply.epoch = view->epoch;
    reply.total_outlay = view->total_outlay;
    const BpQuote* q = view->quote_for(bp_name);
    if (q == nullptr) {
        reply.code = ServeError::kUnknownBp;
        return reply;
    }
    reply.code = ServeError::kOk;
    reply.quote = *q;
    return reply;
}

ServeEngine::PathReply ServeEngine::path(const std::string& account, net::NodeId src,
                                         net::NodeId dst) {
    POC_OBS_TIMER_MS("serve.path_ms", 0.0, 50.0, 50);
    POC_OBS_INC("serve.queries");
    PathReply reply;
    const auto view = hub_.current();
    if (!view) return reply;
    const Admission adm = admit(account, opt_.path_units);
    if (!adm.ok()) {
        reply.code = adm.code;
        return reply;
    }
    reply.epoch = view->epoch;
    if (!src.valid() || !dst.valid() || src.index() >= view->trees.size() ||
        dst.index() >= view->trees.size()) {
        reply.code = ServeError::kUnknownNode;
        return reply;
    }
    const net::ShortestPathTree& tree = view->trees[src.index()];
    if (!tree.reachable(dst)) {
        reply.code = ServeError::kUnreachable;
        return reply;
    }
    reply.code = ServeError::kOk;
    reply.links = tree.path_to(dst);
    reply.length_km = tree.dist[dst.index()];
    return reply;
}

ServeEngine::SlaReply ServeEngine::sla(const std::string& account) {
    POC_OBS_TIMER_MS("serve.sla_ms", 0.0, 50.0, 50);
    POC_OBS_INC("serve.queries");
    SlaReply reply;
    const auto view = hub_.current();
    if (!view) return reply;
    const Admission adm = admit(account, opt_.sla_units);
    if (!adm.ok()) {
        reply.code = adm.code;
        return reply;
    }
    reply.code = ServeError::kOk;
    reply.epoch = view->epoch;
    reply.status = view->sla(opt_.sla_delivered_target);
    reply.delivered_fraction = view->record.delivered_fraction;
    reply.degraded = view->record.degraded_mode;
    reply.breaker_open = view->record.breaker_open;
    return reply;
}

ServeEngine::HistoryReply ServeEngine::at_epoch(const std::string& account,
                                                std::uint64_t completed_epochs) {
    POC_OBS_TIMER_MS("serve.history_ms", 0.0, 500.0, 50);
    POC_OBS_INC("serve.queries");
    HistoryReply reply;
    const Admission adm = admit(account, opt_.history_units);
    if (!adm.ok()) {
        reply.code = adm.code;
        return reply;
    }
    if (completed_epochs == 0) {
        reply.code = ServeError::kHistoryUnavailable;
        return reply;
    }
    {
        std::lock_guard<std::mutex> lock(history_mutex_);
        const auto hit = history_cache_.find(completed_epochs);
        if (hit != history_cache_.end()) {
            POC_OBS_INC("serve.history_cache_hits");
            reply.code = ServeError::kOk;
            reply.view = hit->second;
            return reply;
        }
    }
    // Strictly read-only against the live journal (Journal::scan_file):
    // materialization can run while the runtime is mid-epoch.
    const auto state = sim::materialize_state_at(pool_, tm_, runtime_opt_, completed_epochs);
    if (!state) {
        POC_OBS_INC("serve.history_misses");
        reply.code = ServeError::kHistoryUnavailable;
        return reply;
    }
    auto view = build_epoch_view(pool_.graph(), *state);
    {
        std::lock_guard<std::mutex> lock(history_mutex_);
        if (history_cache_.size() >= opt_.history_cache_cap) history_cache_.clear();
        history_cache_.emplace(completed_epochs, view);
    }
    reply.code = ServeError::kOk;
    reply.view = std::move(view);
    return reply;
}

void ServeEngine::async(std::function<void()> fn) { workers_.submit(std::move(fn)); }

void ServeEngine::wait_idle() { workers_.wait_idle(); }

}  // namespace poc::serve
