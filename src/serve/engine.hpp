// The always-on market daemon's query front-end (DESIGN.md §8). One
// ServeEngine sits beside a running sim::EpochRuntime: the runtime's
// on_epoch_commit hook freezes each committed epoch into an immutable
// EpochView and publishes it through the RCU hub; query threads (the
// engine's util::ThreadPool, or any caller thread — every query
// method is thread-safe) answer price quotes, path lookups, and SLA
// status from the published view, never waiting on rollover work.
// Point-in-time queries materialize historical epochs from
// the state-history store (newest snapshot <= N plus a read-only
// journal-suffix replay) without disturbing the live runtime's
// journal. Every query passes admission control first (usage_meter);
// all of it is strictly read-only with respect to the market: a
// journaled run with a query storm replays bit-identical to one
// without.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "serve/epoch_view.hpp"
#include "serve/usage_meter.hpp"
#include "serve/view_hub.hpp"
#include "sim/runtime.hpp"
#include "util/thread_pool.hpp"

namespace poc::serve {

// Reply types shared by every serving front-end (the leader-side
// ServeEngine and the replica-side Follower answer with the same
// shapes, so a client cannot tell which tier served it — only
// ServeError::kStaleView betrays a lagging replica).

struct QuoteReply {
    ServeError code = ServeError::kNotServing;
    std::size_t epoch = 0;
    BpQuote quote;
    util::Money total_outlay;
};

struct PathReply {
    ServeError code = ServeError::kNotServing;
    std::size_t epoch = 0;
    std::vector<net::LinkId> links;
    double length_km = 0.0;
};

struct SlaReply {
    ServeError code = ServeError::kNotServing;
    std::size_t epoch = 0;
    SlaStatus status = SlaStatus::kUnprovisioned;
    double delivered_fraction = 0.0;
    bool degraded = false;
    bool breaker_open = false;
};

struct HistoryReply {
    ServeError code = ServeError::kNotServing;
    /// The view as of `completed_epochs` target (null on error).
    std::shared_ptr<const EpochView> view;
};

struct ServeOptions {
    /// Query worker threads.
    std::size_t workers = 2;
    MeterOptions meter;
    /// SLA delivered-fraction contract target.
    double sla_delivered_target = 0.999;
    /// Admission cost per query class, in meter units.
    double quote_units = 1.0;
    double path_units = 2.0;
    double sla_units = 1.0;
    /// Historical queries replay journal suffixes: priced accordingly.
    double history_units = 8.0;
    /// Materialized historical views kept for reuse (history is
    /// immutable, so entries never go stale; the cap only bounds
    /// memory).
    std::size_t history_cache_cap = 16;
};

class ServeEngine {
public:
    /// `pool`, `tm`, and `runtime_opt` must match the runtime being
    /// served — they identify the journal generation for point-in-time
    /// queries (same configuration fingerprint rule as recovery).
    ServeEngine(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                sim::RuntimeOptions runtime_opt, ServeOptions opt = {});
    ~ServeEngine();

    /// Install this engine as `opt`'s commit subscriber. The returned
    /// reference is `opt` itself (builder style).
    sim::RuntimeOptions& attach(sim::RuntimeOptions& opt);

    /// The commit hook body: freeze + publish. Never throws (a failed
    /// build is counted, the previous epoch stays published).
    void publish(const sim::EpochCommit& commit) noexcept;

    /// Newest published epoch (nullptr before the first commit).
    std::shared_ptr<const EpochView> current() const { return hub_.current(); }
    std::uint64_t rollovers() const { return hub_.published_count(); }

    // Source-compat aliases: the reply structs predate the follower
    // tier and used to be nested here.
    using QuoteReply = serve::QuoteReply;
    using PathReply = serve::PathReply;
    using SlaReply = serve::SlaReply;
    using HistoryReply = serve::HistoryReply;

    QuoteReply quote(const std::string& account, std::string_view bp_name);

    PathReply path(const std::string& account, net::NodeId src, net::NodeId dst);

    SlaReply sla(const std::string& account);

    /// Point-in-time: the market as of exactly `completed_epochs`
    /// committed epochs, bit-identical to what a from-scratch run of
    /// that length would publish.
    HistoryReply at_epoch(const std::string& account, std::uint64_t completed_epochs);

    /// Run `fn` on the engine's pool (queries are thread-safe, so the
    /// task may call any query method). wait_idle() drains.
    void async(std::function<void()> fn);
    void wait_idle();

    UsageMeter& meter() noexcept { return meter_; }
    const ServeOptions& options() const noexcept { return opt_; }

private:
    /// Admission at the current serving time (completed_epochs).
    Admission admit(const std::string& account, double units);

    const market::OfferPool& pool_;
    const net::TrafficMatrix& tm_;
    sim::RuntimeOptions runtime_opt_;
    ServeOptions opt_;

    ViewHub hub_;
    UsageMeter meter_;
    util::ThreadPool workers_;

    std::mutex history_mutex_;
    std::map<std::uint64_t, std::shared_ptr<const EpochView>> history_cache_;
};

}  // namespace poc::serve
