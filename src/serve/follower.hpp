// The replicated read tier's replica process (DESIGN.md §8.6): a
// serve::Follower is a read-only copy of the market daemon that never
// touches the leader's write path. It bootstraps from the newest valid
// snapshot next to the journal (util::HistoryReader — strictly
// read-only, never sweeps the writer's temps), then incrementally
// tails the live journal suffix with a persistent byte/record cursor,
// applying records through sim::ReplayCursor — the exact same replay
// path as crash recovery — and publishing an EpochView per completed
// epoch into its own ViewHub. Because leader commits and follower
// replays run the same state machine over the same bytes, a follower's
// views are *bit-identical* to the leader's at every epoch
// (serve::encode_epoch_view is the comparison; the property tests in
// tests/serve/test_follower.cpp drive the fault matrix).
//
// Robustness model:
//  * Torn tail on a live journal = a write in progress, not damage:
//    the scan stops at the last complete frame, the follower keeps
//    serving its current view, and the next poll retries the tail
//    (tail_until paces polls with a jittered-backoff util::Retrier).
//    Truncation stays writer-only — a follower never repairs a log.
//  * Compaction race: the leader's Journal::rewrite renames a new
//    generation over the path the follower is tailing. The follower
//    detects it (file-identity change, or the valid prefix regressing
//    below its cursor) and re-bootstraps: fresh cursor, newest valid
//    snapshot, replay the new suffix. The ViewHub's monotonic epoch
//    guard guarantees readers never observe the re-bootstrap as time
//    going backwards.
//  * Corrupt tail: indistinguishable from a torn one at scan level.
//    The decision rule is progress: a tail that never extends while
//    content sits unconsumed past the cursor (stall_poll_budget
//    consecutive polls) is damage, not writing. The follower first
//    tries a snapshot re-ground; if the stall persists it reports
//    kCorrupt — it keeps serving its last proven view and *fails
//    structurally* (tail_until throws, the supervisor restarts it)
//    rather than ever applying unproven bytes. A later leader
//    compaction rewrites the journal from clean in-memory state,
//    which the follower picks up as a generation change.
//  * Bounded staleness: queries carry max_lag_epochs; a follower
//    whose lag (newest epoch provable from the tail minus newest
//    epoch applied) exceeds the bound answers ServeError::kStaleView
//    instead of silently serving stale data, and degrades gracefully
//    to point-in-time queries (at_epoch) it can still prove. Lag is
//    exported as the serve.follower.lag_epochs gauge.
//
// Admission/metering stays at the front door (the leader-side
// ServeEngine or a gateway): follower queries are unmetered replica
// reads, which is what makes the read tier horizontally scalable.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/engine.hpp"
#include "serve/epoch_view.hpp"
#include "serve/view_hub.hpp"
#include "sim/chaos.hpp"
#include "sim/runtime.hpp"
#include "util/retry.hpp"

namespace poc::serve {

/// No staleness bound: any published view answers.
inline constexpr std::uint64_t kNoLagBound = std::numeric_limits<std::uint64_t>::max();

/// Thrown by chaos apply hooks to model a replica dying mid-apply.
/// The follower never catches it; run_follower_with_recovery (or a
/// test harness) does, then constructs a fresh Follower against the
/// same journal to model the restart.
class FollowerCrash final : public std::runtime_error {
public:
    FollowerCrash(std::size_t record_index, std::uint64_t epoch)
        : std::runtime_error("follower crash injected applying record " +
                             std::to_string(record_index) + " (epoch " +
                             std::to_string(epoch) + ")"),
          record_index_(record_index),
          epoch_(epoch) {}

    std::size_t record_index() const noexcept { return record_index_; }
    std::uint64_t epoch() const noexcept { return epoch_; }

private:
    std::size_t record_index_;
    std::uint64_t epoch_;
};

/// What the follower knows about its tail after the latest poll.
enum class FollowerStatus : std::uint8_t {
    /// Not bootstrapped yet (no poll has run).
    kCold = 0,
    /// Healthy: the whole provable journal prefix is applied.
    kTailing,
    /// The journal file does not exist yet (leader not started).
    kWaitingForJournal,
    /// Bytes past the valid prefix: presumed write-in-progress,
    /// retried next poll.
    kTornTail,
    /// Unconsumable content outlasted the stall budget (and a snapshot
    /// re-ground): structural damage, not an in-progress write.
    kCorrupt,
    /// The journal's configuration fingerprint is not this follower's.
    kForeign,
};

const char* follower_status_name(FollowerStatus status);

struct FollowerOptions {
    /// Must match the leader writing the journal (journal_path, seed,
    /// epochs, …) — the same configuration-fingerprint rule as
    /// recovery. Engine knobs (threads, caches) are free to differ.
    sim::RuntimeOptions runtime;
    /// Publish a view for *every* epoch applied during a poll (the
    /// property tests compare per-epoch); false publishes only the
    /// newest epoch per poll (a production replica catching up).
    bool publish_every_epoch = true;
    /// Cap on records applied per poll(); 0 = no cap. The fault-matrix
    /// tests set 1 to drive every record boundary.
    std::size_t max_records_per_poll = 0;
    /// Consecutive no-progress polls with unconsumed content before
    /// the tail is declared corrupt rather than in-progress (after a
    /// snapshot re-ground has been tried).
    std::size_t stall_poll_budget = 8;
    /// Backoff policy for tail_until()'s poll pacing (real sleeps).
    util::RetryPolicy tail_backoff{.max_attempts = 16,
                                   .deadline_ms = std::numeric_limits<double>::infinity(),
                                   .base_backoff_ms = 1.0,
                                   .max_backoff_ms = 50.0};
    /// Publish into this hub instead of an owned one. A supervisor
    /// shares one hub across follower restarts so readers keep their
    /// view through a replica crash.
    std::shared_ptr<ViewHub> hub;
    /// Test/chaos hook fired before each record application:
    /// (record index within the current generation, base record type,
    /// record epoch). May throw FollowerCrash.
    std::function<void(std::size_t, std::uint16_t, std::uint64_t)> apply_hook;
};

/// One poll's outcome.
struct FollowerPoll {
    FollowerStatus status = FollowerStatus::kCold;
    /// Records applied by this poll.
    std::size_t records_applied = 0;
    /// Epochs completed by this poll.
    std::size_t epochs_applied = 0;
    /// Anything moved: records applied, a re-bootstrap grounded new
    /// state, or the valid prefix grew under the cursor.
    bool progressed = false;
    /// This poll detected a generation change (or unprovable content)
    /// and re-grounded from a snapshot.
    bool rebootstrapped = false;
    /// Bytes past the valid prefix were present (write in progress or
    /// damage; see status).
    bool torn_tail = false;
};

/// Lifetime counters (monotonic across polls, reset by re-bootstrap
/// only where noted).
struct FollowerStats {
    std::uint64_t polls = 0;
    std::uint64_t records_applied = 0;
    std::uint64_t epochs_applied = 0;
    std::uint64_t rebootstraps = 0;
    std::uint64_t torn_tail_polls = 0;
    std::uint64_t views_published = 0;
    /// Publishes the hub's monotonic guard rejected (expected during
    /// re-bootstrap overlap, never during steady tailing).
    std::uint64_t publish_rejects = 0;
    /// Queries rejected with kStaleView.
    std::uint64_t stale_rejects = 0;
};

/// The follower itself. Single tail thread: poll()/tail_until() must
/// be externally serialized (one tailing loop per follower), while
/// every query method and atomic accessor (applied/known/lag, status,
/// cursor position, current()) is safe to call concurrently with the
/// tail thread — queries read the hub's published views and atomics
/// only. stats() is the exception: read it between polls (or from the
/// tail thread).
class Follower {
public:
    /// `pool` and `tm` must be the leader's instance (they are inputs
    /// to the configuration fingerprint) and must outlive the
    /// follower.
    Follower(const market::OfferPool& pool, const net::TrafficMatrix& tm,
             FollowerOptions opt);
    ~Follower();

    Follower(const Follower&) = delete;
    Follower& operator=(const Follower&) = delete;

    /// One tailing step: scan the journal read-only, detect generation
    /// changes, apply newly provable records through the shared replay
    /// path, publish completed epochs. Never throws on torn or corrupt
    /// bytes (that is status); propagates apply_hook exceptions
    /// (FollowerCrash) and programming errors only.
    FollowerPoll poll();

    /// Poll until `target_epochs` epochs are applied, pacing retries
    /// with the jittered-backoff tail_backoff policy (real sleeps).
    /// Progress resets the attempt window, so the budget bounds
    /// *stall* time, not catch-up time. Throws util::RetryExhausted
    /// when the tail stalls for a full window (e.g. a corrupt tail no
    /// compaction ever clears).
    void tail_until(std::uint64_t target_epochs);

    /// Newest published view (nullptr before the first epoch).
    std::shared_ptr<const EpochView> current() const;
    const std::shared_ptr<ViewHub>& hub() const noexcept;

    /// Epochs applied to this follower's state.
    std::uint64_t applied_epochs() const noexcept;
    /// Newest epoch count provable from the last scan (applied epochs
    /// plus epoch-end records decoded but not yet applied).
    std::uint64_t known_epochs() const noexcept;
    /// known - applied: how far the replica trails what the journal
    /// can already prove. 0 while fully caught up (growth the scan has
    /// not seen yet is invisible to the replica, as it must be).
    std::uint64_t lag_epochs() const noexcept;

    FollowerStatus status() const noexcept;
    const FollowerStats& stats() const noexcept;

    /// Tail-cursor position: bytes of the current journal generation
    /// consumed, and records applied from it (diagnostics; the chaos
    /// harness aims its bit flips past this point).
    std::uint64_t cursor_bytes() const noexcept;
    std::uint64_t cursor_records() const noexcept;

    // --- Bounded-staleness queries (unmetered replica reads). Each
    // carries the caller's staleness contract: if lag_epochs() >
    // max_lag_epochs the reply is kStaleView and the published view is
    // not consulted. ---

    QuoteReply quote(std::string_view bp_name,
                     std::uint64_t max_lag_epochs = kNoLagBound) const;
    PathReply path(net::NodeId src, net::NodeId dst,
                   std::uint64_t max_lag_epochs = kNoLagBound) const;
    SlaReply sla(std::uint64_t max_lag_epochs = kNoLagBound,
                 double delivered_target = 0.999) const;

    /// Point-in-time query the replica can prove regardless of lag
    /// (the graceful degradation path for stale replicas): the market
    /// as of exactly `completed_epochs`, via snapshot + read-only
    /// suffix replay. kHistoryUnavailable when history cannot prove
    /// that epoch.
    HistoryReply at_epoch(std::uint64_t completed_epochs) const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Outcome of a supervised follower run.
struct FollowerRunResult {
    std::uint64_t applied_epochs = 0;
    /// Replica process restarts (FollowerCrash recoveries).
    std::size_t restarts = 0;
    /// Snapshot re-groundings across all incarnations.
    std::uint64_t rebootstraps = 0;
    std::shared_ptr<const EpochView> final_view;
    /// The hub shared across incarnations (opt.hub, or the one the
    /// supervisor created).
    std::shared_ptr<ViewHub> hub;
};

/// Replica-side supervisor, the follower analogue of
/// sim::run_with_recovery: consumes a chaos trace's replica faults and
/// polls a Follower to `target_epochs` under a progress-windowed
/// restart budget. kFollowerCrash kills the replica once, mid-apply,
/// on the first record of its start_epoch (the next incarnation
/// re-bootstraps from disk into the *same* shared hub);
/// kFollowerTailCorrupt flips a bit once in the journal suffix past
/// the replica's cursor after it has applied start_epoch epochs.
/// Leader-side fault kinds in the trace are ignored. Consecutive
/// no-progress polls beyond opt.runtime.restart.max_attempts x
/// opt.stall_poll_budget — or crash restarts beyond
/// opt.runtime.restart.max_attempts without progress — throw
/// sim::RecoveryExhausted.
FollowerRunResult run_follower_with_recovery(const market::OfferPool& pool,
                                             const net::TrafficMatrix& tm,
                                             const FollowerOptions& opt,
                                             std::uint64_t target_epochs,
                                             const std::vector<sim::Fault>& trace);

}  // namespace poc::serve
