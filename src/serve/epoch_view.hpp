// The serve daemon's unit of publication: one epoch's market results
// frozen into an immutable value (DESIGN.md §8). The runtime hands the
// daemon borrowed references at commit time (sim::EpochCommit); this
// module copies exactly what queries need — per-BP quotes, the
// provisioned backbone with its shortest-path trees, ledger balances,
// SLA verdict — into a heap object that is never mutated again. The
// hub (view_hub.hpp) then swaps a shared_ptr to it atomically, so
// readers hold a consistent epoch for as long as they keep the
// pointer, across any number of later rollovers.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/ledger.hpp"
#include "market/vcg.hpp"
#include "net/shortest_path.hpp"
#include "sim/runtime.hpp"

namespace poc::serve {

/// One bandwidth provider's standing in the epoch's auction: what a
/// price-quote query answers.
struct BpQuote {
    std::string name;
    /// VCG payment to this BP this epoch (its clearing price).
    util::Money payment;
    util::Money bid_cost;
    /// Payment-over-bid margin (P-C)/C.
    double pob = 0.0;
    std::size_t links_won = 0;
};

/// The paper's availability SLA, graded from the epoch's flow results.
enum class SlaStatus : std::uint8_t {
    kHealthy = 0,
    /// Served, but on the degraded (relaxed-constraint) path or with
    /// the breaker open / links oversubscribed.
    kDegraded,
    /// Delivered fraction below the contract target.
    kViolated,
    /// No backbone was provisioned this epoch.
    kUnprovisioned,
};

const char* sla_status_name(SlaStatus status);

/// Immutable snapshot of one committed epoch. Built once (on the
/// runtime's commit thread or from a materialized historical state),
/// then only read — every member is value-owned, nothing points back
/// into the runtime.
struct EpochView {
    std::size_t epoch = 0;
    std::size_t completed_epochs = 0;
    /// Reconstructed from the journal on daemon restart rather than
    /// computed fresh this process.
    bool replayed = false;

    sim::EpochRecord record;
    bool provisioned = false;
    util::Money total_outlay;
    util::Money virtual_cost;
    /// Per-BP quotes in bid order.
    std::vector<BpQuote> quotes;

    /// The winning link set (empty when unprovisioned).
    std::vector<net::LinkId> backbone;
    /// Shortest-path tree per source node over `backbone`, weighted by
    /// length — path queries answer from these without touching the
    /// graph again. Index = node index.
    std::vector<net::ShortestPathTree> trees;

    /// Net balance per party with ledger activity, in first-seen order.
    std::vector<std::pair<core::Party, util::Money>> balances;
    util::Money poc_net;

    /// SLA verdict at `delivered_target` (engine default 0.999).
    SlaStatus sla(double delivered_target) const;

    const BpQuote* quote_for(std::string_view bp_name) const;
    std::optional<util::Money> balance(core::Party party) const;
};

/// Freeze one epoch's results into a view. `graph` must outlive the
/// call only (trees are materialized eagerly); the returned view owns
/// everything it answers from.
std::shared_ptr<const EpochView> build_epoch_view(
    const net::Graph& graph, std::size_t epoch, std::size_t completed_epochs, bool replayed,
    const sim::EpochRecord& record, const std::optional<market::AuctionResult>& auction,
    const core::Ledger& ledger);

/// Convenience: freeze straight from the runtime's commit callback.
std::shared_ptr<const EpochView> build_epoch_view(const net::Graph& graph,
                                                  const sim::EpochCommit& commit);

/// Freeze the newest epoch of a materialized historical state
/// (sim::materialize_state_at). Requires at least one epoch.
std::shared_ptr<const EpochView> build_epoch_view(const net::Graph& graph,
                                                  const sim::RuntimeState& state);

/// Canonical byte serialization of everything a view *answers from*:
/// epoch, record, quotes, backbone, path trees, balances. The one
/// field excluded is `replayed` — it is provenance (how this process
/// learned the epoch), not market state, and it is exactly what
/// legitimately differs between a leader's freshly-computed view and
/// a follower's journal-replayed one. Two views serving identical
/// answers encode identically, so the replication property tests can
/// assert leader/follower bit-identity per epoch with one comparison.
std::string encode_epoch_view(const EpochView& view);

}  // namespace poc::serve
