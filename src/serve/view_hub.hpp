// RCU-style publication point between the market runtime (one writer,
// the epoch-commit thread) and any number of query threads. The
// entire shared state is one slot holding a shared_ptr to an
// immutable EpochView: publish() swaps the pointer, current() copies
// it — readers never block on rollover work (the view is fully
// constructed before the swap, and the old epoch's destruction
// happens outside the critical section) and can never observe a
// half-built epoch (the old view stays alive until its last reader
// drops the pointer). This is the "grace period by shared_ptr" RCU
// variant: reclamation is the control block's job, so no epoch
// counters or quiescent-state tracking are needed.
//
// The slot is guarded by an explicit acquire/release spinlock rather
// than std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic releases
// its internal reader-side lock with a *relaxed* RMW, so a reader's
// pointer read and the next writer's pointer write are unsequenced
// under the memory model (TSan reports the race). The hand-rolled
// lock costs the same one CAS per side but establishes the
// happens-before edge properly; the critical section on either side
// is a pointer copy plus a refcount adjustment, a few nanoseconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "serve/epoch_view.hpp"

namespace poc::serve {

class ViewHub {
public:
    /// Swap the published epoch. Called by the commit thread only;
    /// safe against any number of concurrent current() calls. The
    /// previous epoch (if this drops its last reference) is destroyed
    /// after the lock is released, so a slow teardown never stalls
    /// readers.
    void publish(std::shared_ptr<const EpochView> view) {
        lock();
        view_.swap(view);
        unlock();
        published_.fetch_add(1, std::memory_order_relaxed);
    }

    /// The newest published epoch, or nullptr before the first
    /// publish. The returned pointer pins that epoch: it stays valid
    /// (and immutable) across later rollovers.
    std::shared_ptr<const EpochView> current() const {
        lock();
        std::shared_ptr<const EpochView> view = view_;
        unlock();
        return view;
    }

    std::uint64_t published_count() const {
        return published_.load(std::memory_order_relaxed);
    }

private:
    void lock() const {
        while (locked_.exchange(true, std::memory_order_acquire)) {
            while (locked_.load(std::memory_order_relaxed)) {
            }
        }
    }
    void unlock() const { locked_.store(false, std::memory_order_release); }

    mutable std::atomic<bool> locked_{false};
    std::shared_ptr<const EpochView> view_;
    std::atomic<std::uint64_t> published_{0};
};

}  // namespace poc::serve
