// RCU-style publication point between the market runtime (one writer,
// the epoch-commit thread) and any number of query threads. The
// entire shared state is one slot holding a shared_ptr to an
// immutable EpochView: publish() swaps the pointer, current() copies
// it — readers never block on rollover work (the view is fully
// constructed before the swap, and the old epoch's destruction
// happens outside the critical section) and can never observe a
// half-built epoch (the old view stays alive until its last reader
// drops the pointer). This is the "grace period by shared_ptr" RCU
// variant: reclamation is the control block's job, so no epoch
// counters or quiescent-state tracking are needed.
//
// The slot is guarded by an explicit acquire/release spinlock rather
// than std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic releases
// its internal reader-side lock with a *relaxed* RMW, so a reader's
// pointer read and the next writer's pointer write are unsequenced
// under the memory model (TSan reports the race). The hand-rolled
// lock costs the same one CAS per side but establishes the
// happens-before edge properly; the critical section on either side
// is a pointer copy plus a refcount adjustment, a few nanoseconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "serve/epoch_view.hpp"

namespace poc::serve {

class ViewHub {
public:
    /// Swap the published epoch. Called by the commit thread (or a
    /// follower's tail thread); safe against any number of concurrent
    /// current() calls. The previous epoch (if this drops its last
    /// reference) is destroyed after the lock is released, so a slow
    /// teardown never stalls readers.
    ///
    /// Monotonic epoch guard: a view older than the published one
    /// (completed_epochs strictly below) is rejected — readers can
    /// never observe time running backwards, whatever order restarts
    /// and re-bootstraps hand views in. A *same-epoch* republish is
    /// accepted (idempotent: a restarted daemon or a re-bootstrapped
    /// follower re-announces the epoch it recovered to). Returns
    /// whether the view was installed; a rejected view is destroyed
    /// outside the critical section like a replaced one.
    bool publish(std::shared_ptr<const EpochView> view) {
        if (!view) return false;
        bool accepted = false;
        lock();
        if (!view_ || view->completed_epochs >= view_->completed_epochs) {
            view_.swap(view);
            accepted = true;
        }
        unlock();
        if (accepted) {
            published_.fetch_add(1, std::memory_order_relaxed);
        } else {
            rejected_.fetch_add(1, std::memory_order_relaxed);
        }
        return accepted;
    }

    /// The newest published epoch, or nullptr before the first
    /// publish. The returned pointer pins that epoch: it stays valid
    /// (and immutable) across later rollovers.
    std::shared_ptr<const EpochView> current() const {
        lock();
        std::shared_ptr<const EpochView> view = view_;
        unlock();
        return view;
    }

    std::uint64_t published_count() const {
        return published_.load(std::memory_order_relaxed);
    }

    /// Publishes the monotonic guard turned away.
    std::uint64_t rejected_count() const {
        return rejected_.load(std::memory_order_relaxed);
    }

private:
    void lock() const {
        while (locked_.exchange(true, std::memory_order_acquire)) {
            while (locked_.load(std::memory_order_relaxed)) {
            }
        }
    }
    void unlock() const { locked_.store(false, std::memory_order_release); }

    mutable std::atomic<bool> locked_{false};
    std::shared_ptr<const EpochView> view_;
    std::atomic<std::uint64_t> published_{0};
    std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace poc::serve
