#include "serve/epoch_view.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "sim/replay.hpp"

namespace poc::serve {

const char* sla_status_name(SlaStatus status) {
    switch (status) {
        case SlaStatus::kHealthy: return "healthy";
        case SlaStatus::kDegraded: return "degraded";
        case SlaStatus::kViolated: return "violated";
        case SlaStatus::kUnprovisioned: return "unprovisioned";
    }
    return "unknown";
}

SlaStatus EpochView::sla(double delivered_target) const {
    if (!provisioned) return SlaStatus::kUnprovisioned;
    if (record.delivered_fraction < delivered_target) return SlaStatus::kViolated;
    if (record.degraded_mode || record.breaker_open || record.max_utilization > 1.0) {
        return SlaStatus::kDegraded;
    }
    return SlaStatus::kHealthy;
}

const BpQuote* EpochView::quote_for(std::string_view bp_name) const {
    for (const BpQuote& q : quotes) {
        if (q.name == bp_name) return &q;
    }
    return nullptr;
}

std::optional<util::Money> EpochView::balance(core::Party party) const {
    for (const auto& [p, amount] : balances) {
        if (p == party) return amount;
    }
    return std::nullopt;
}

std::shared_ptr<const EpochView> build_epoch_view(
    const net::Graph& graph, std::size_t epoch, std::size_t completed_epochs, bool replayed,
    const sim::EpochRecord& record, const std::optional<market::AuctionResult>& auction,
    const core::Ledger& ledger) {
    POC_OBS_SPAN("serve.view_build");
    auto view = std::make_shared<EpochView>();
    view->epoch = epoch;
    view->completed_epochs = completed_epochs;
    view->replayed = replayed;
    view->record = record;
    view->provisioned = auction.has_value();

    if (auction) {
        view->total_outlay = auction->total_outlay;
        view->virtual_cost = auction->virtual_cost;
        view->quotes.reserve(auction->outcomes.size());
        for (const market::BpOutcome& o : auction->outcomes) {
            view->quotes.push_back(
                {o.name, o.payment, o.bid_cost, o.pob, o.selected_links.size()});
        }
        view->backbone = auction->selection.links;
    }

    // Path trees over the provisioned backbone, one per source. An
    // unprovisioned epoch still gets trees (every node isolated), so
    // path queries answer kUnreachable instead of faulting.
    const net::Subgraph backbone(graph, view->backbone);
    const net::LinkWeight weight = net::weight_by_length(graph);
    view->trees.reserve(graph.node_count());
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
        view->trees.push_back(net::dijkstra(backbone, net::NodeId(n), weight));
    }

    // Balances for every party the ledger has seen, in first-seen
    // order (deterministic across runs: transfers replay identically).
    for (const core::Transfer& t : ledger.transfers()) {
        for (const core::Party p : {t.from, t.to}) {
            const auto seen =
                std::find_if(view->balances.begin(), view->balances.end(),
                             [&](const auto& entry) { return entry.first == p; });
            if (seen == view->balances.end()) {
                view->balances.emplace_back(p, ledger.balance(p));
            }
        }
    }
    view->poc_net = ledger.poc_net();
    return view;
}

std::shared_ptr<const EpochView> build_epoch_view(const net::Graph& graph,
                                                  const sim::EpochCommit& commit) {
    return build_epoch_view(graph, commit.epoch, commit.completed_epochs, commit.replayed,
                            commit.record, commit.auction, commit.ledger);
}

std::shared_ptr<const EpochView> build_epoch_view(const net::Graph& graph,
                                                  const sim::RuntimeState& state) {
    POC_EXPECTS(!state.epochs.empty());
    return build_epoch_view(graph, state.epochs.back().epoch, state.epochs.size(),
                            /*replayed=*/true, state.epochs.back(), state.auctions.back(),
                            state.ledger);
}

std::string encode_epoch_view(const EpochView& view) {
    util::BinaryWriter w;
    w.str("poc-epoch-view-v1");
    w.u64(view.epoch);
    w.u64(view.completed_epochs);
    sim::write_epoch_record(w, view.record);
    w.boolean(view.provisioned);
    w.i64(view.total_outlay.micros());
    w.i64(view.virtual_cost.micros());
    w.u64(view.quotes.size());
    for (const BpQuote& q : view.quotes) {
        w.str(q.name);
        w.i64(q.payment.micros());
        w.i64(q.bid_cost.micros());
        w.f64(q.pob);
        w.u64(q.links_won);
    }
    sim::write_links(w, view.backbone);
    w.u64(view.trees.size());
    for (const net::ShortestPathTree& tree : view.trees) {
        w.u32(tree.source.value());
        w.u64(tree.dist.size());
        for (const double d : tree.dist) w.f64(d);
        for (const net::LinkId l : tree.parent_link) w.u32(l.value());
        for (const net::NodeId n : tree.pred_node_) w.u32(n.value());
    }
    w.u64(view.balances.size());
    for (const auto& [party, amount] : view.balances) {
        w.u8(static_cast<std::uint8_t>(party.kind));
        w.u32(party.index);
        w.i64(amount.micros());
    }
    w.i64(view.poc_net.micros());
    return w.bytes();
}

}  // namespace poc::serve
