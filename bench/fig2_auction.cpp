// Figure 2 reproduction: payment-over-bid margins (PoB) of the five
// largest BPs under the paper's three provisioning constraints.
//
// Paper methodology (section 3.3): TopologyZoo networks merged into 20
// BPs; POC routers where >= 4 BPs colocate; 4674 logical links; BP
// shares ~2%..12%; synthetic traffic matrix; VCG auction under
//   #1  the links carry the offered load,
//   #2  ... after any single path (link) failure,
//   #3  ... with a path failed between each pair simultaneously.
//
// Ours: the synthetic continental generator (DESIGN.md substitution for
// TopologyZoo), same construction rules, gravity traffic matrix. The
// absolute margins differ from the paper's; the reproduced *shape* is
// (a) PoB varies strongly across BPs and (b) margins grow as the
// constraint tightens.
//
// Environment knobs: POC_FIG2_QUICK=1 shrinks the instance (~10 s);
// POC_FIG2_SEED overrides the topology seed.
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "net/failure.hpp"
#include "topo/traffic.hpp"
#include "util/csv_export.hpp"
#include "util/table.hpp"

using namespace poc;

namespace {

struct Config {
    bool quick = false;
    std::uint64_t seed = 42;
};

Config read_config() {
    Config cfg;
    if (const char* q = std::getenv("POC_FIG2_QUICK"); q != nullptr && q[0] == '1') {
        cfg.quick = true;
    }
    if (const char* s = std::getenv("POC_FIG2_SEED"); s != nullptr) {
        cfg.seed = static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
    }
    return cfg;
}

/// Validate the final selection under the exact (exhaustive) semantics.
bool validate_exact(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                    market::ConstraintKind kind, const std::vector<net::LinkId>& links) {
    const market::AcceptabilityOracle exact(pool.graph(), tm, kind);
    return exact.accepts(net::Subgraph(pool.graph(), links));
}

}  // namespace

int main() {
    const Config cfg = read_config();

    topo::BpGeneratorOptions bopt;
    bopt.seed = cfg.seed;
    topo::PocTopologyOptions popt;
    topo::GravityOptions gopt;
    std::size_t top_n = 60;
    if (cfg.quick) {
        bopt.bp_count = 8;
        bopt.min_cities = 8;
        bopt.max_cities = 18;
        popt.min_colocated_bps = 3;
        gopt.total_gbps = 800.0;
        top_n = 30;
    } else {
        gopt.total_gbps = 5000.0;
    }

    auto bps = topo::generate_bp_networks(bopt);
    auto topology = topo::build_poc_topology(bps, popt);
    const market::OfferPool pool = market::make_offer_pool(topology);
    const auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), top_n);

    std::cout << "=== Figure 2: bandwidth-auction payment-over-bid margins ===\n";
    std::cout << "POC network: " << topology.router_city.size() << " routers, "
              << topology.graph.link_count() << " offered logical links (paper: 4674), "
              << topology.bp_count << " BPs\n";
    std::cout << "BP link shares: ";
    for (std::size_t b = 0; b < topology.bp_count; ++b) {
        std::cout << util::cell_pct(topology.share_of(static_cast<std::uint32_t>(b)), 1) << " ";
    }
    std::cout << "(paper: ~2%..12%)\n";
    std::cout << "Traffic matrix: " << tm.size() << " aggregated demands, "
              << net::total_demand(tm) << " Gbps\n\n";

    // The five largest BPs by offered-link share, as in the figure.
    std::vector<std::uint32_t> order(topology.bp_count);
    for (std::uint32_t b = 0; b < topology.bp_count; ++b) order[b] = b;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return topology.share_of(a) > topology.share_of(b);
    });
    order.resize(std::min<std::size_t>(5, order.size()));

    struct Row {
        market::ConstraintKind kind;
        std::vector<double> pob;          // aligned with `order`
        util::Money outlay;
        std::size_t selected = 0;
        bool exact_valid = false;
        double seconds = 0.0;
    };
    std::vector<Row> rows;

    for (const auto kind :
         {market::ConstraintKind::kLoad, market::ConstraintKind::kSingleFailure,
          market::ConstraintKind::kPerPairFailure}) {
        Row row;
        row.kind = kind;
        const auto t0 = std::chrono::steady_clock::now();

        // The kFast surrogate is conservative-by-derate; if the final
        // selection fails the exhaustive check, tighten the protection
        // headroom and re-run (each step shrinks usable capacity, so
        // the search keeps more backup links).
        std::optional<market::AuctionResult> result;
        for (const double derate : {0.65, 0.5, 0.4}) {
            market::OracleOptions oopt;
            oopt.fidelity = market::OracleFidelity::kFast;
            oopt.fast_failure_derate = derate;
            const market::AcceptabilityOracle oracle(pool.graph(), tm, kind, oopt);
            result = market::run_auction(pool, oracle);
            if (!result) break;
            row.exact_valid = validate_exact(pool, tm, kind, result->selection.links);
            if (row.exact_valid || kind != market::ConstraintKind::kSingleFailure) break;
        }
        row.seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        if (!result) {
            std::cout << "constraint " << market::constraint_name(kind)
                      << ": INFEASIBLE with the offered links\n";
            rows.push_back(std::move(row));
            continue;
        }
        for (const std::uint32_t b : order) {
            row.pob.push_back(result->outcome(market::BpId{b}).pob);
        }
        row.outlay = result->total_outlay;
        row.selected = result->selection.links.size();
        rows.push_back(std::move(row));
    }

    util::Table table({"constraint", "BP1 PoB", "BP2 PoB", "BP3 PoB", "BP4 PoB", "BP5 PoB",
                       "selected", "outlay", "exact-valid", "time(s)"});
    for (const Row& row : rows) {
        std::vector<std::string> cells{market::constraint_name(row.kind)};
        for (std::size_t i = 0; i < 5; ++i) {
            cells.push_back(i < row.pob.size() ? util::cell(row.pob[i], 3) : "-");
        }
        cells.push_back(util::cell(row.selected));
        cells.push_back(row.outlay.str());
        cells.push_back(row.exact_valid ? "yes" : "NO");
        cells.push_back(util::cell(row.seconds, 1));
        table.add_row(std::move(cells));
    }
    std::cout << table.render();
    util::maybe_export_csv(table, "fig2_pob");

    // Paper's headline observation: "the high variation in the PoB".
    double min_pob = 1e18;
    double max_pob = -1e18;
    for (const Row& row : rows) {
        for (const double p : row.pob) {
            min_pob = std::min(min_pob, p);
            max_pob = std::max(max_pob, p);
        }
    }
    std::cout << "\nPoB spread across the five largest BPs and three constraints: ["
              << util::cell(min_pob, 3) << ", " << util::cell(max_pob, 3)
              << "] (paper reports high variation, ~0.00..0.19)\n";
    std::cout << "(BP1..BP5 columns are the five largest BPs by offered-link share,\n"
                 " in decreasing size order, as in the paper's figure.)\n";
    return 0;
}
