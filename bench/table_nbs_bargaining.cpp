// Section 4.5 (bilateral bargaining): the three NBS models.
//   Model 1 - one CSP, one LMP: t = (p - r c)/2.
//   Model 2 - many LMPs: population-weighted average fee
//             t_avg = (p - <rc>)/2.
//   Model 3 - renegotiation equilibrium: t = (p*(t) - <rc>)/2.
// Plus the regime comparison NN vs UR-unilateral vs UR-bargaining.
#include <iostream>
#include <memory>

#include "econ/market_model.hpp"
#include "util/csv_export.hpp"
#include "util/table.hpp"

using namespace poc;

int main() {
    std::cout << "=== Section 4.5: Nash-bargained termination fees ===\n\n";

    const auto demand = std::make_shared<econ::LinearDemand>(20.0);
    const std::vector<econ::LmpProfile> lmps = {
        {"Mega (8M subs)", 8.0, 55.0, 0.05},
        {"Mid (2M subs)", 2.0, 50.0, 0.15},
        {"Start (0.5M subs)", 0.5, 45.0, 0.40},
    };

    // Model 1: bilateral fees at the NN posted price.
    const double p_nn = econ::monopoly_price(*demand).x;
    std::cout << "Model 1 - bilateral NBS fee at fixed posted price p=" << util::cell(p_nn, 2)
              << ":\n";
    util::Table m1({"LMP", "churn r", "access c", "r*c", "NBS fee (p-rc)/2"});
    for (const econ::LmpProfile& l : lmps) {
        m1.add_row({l.name, util::cell(l.churn_if_lost, 2), util::cell(l.access_charge, 0),
                    util::cell(l.churn_if_lost * l.access_charge, 2),
                    util::cell(econ::bilateral_nbs_fee(p_nn, l), 2)});
    }
    std::cout << m1.render();

    // Model 2: population-weighted average.
    std::cout << "\nModel 2 - population-weighted average: <rc> = "
              << util::cell(econ::average_rc(lmps), 3) << ", t_avg = (p - <rc>)/2 = "
              << util::cell(econ::average_nbs_fee(p_nn, lmps), 3) << "\n";

    // Model 3: renegotiation to the fixed point.
    const auto eq = econ::bargaining_equilibrium(*demand, lmps);
    std::cout << "\nModel 3 - renegotiation equilibrium (fixed point of t = (p*(t)-<rc>)/2):\n"
              << "  converged: " << (eq.converged ? "yes" : "NO") << " in " << eq.iterations
              << " iterations\n"
              << "  equilibrium avg fee t = " << util::cell(eq.avg_fee, 3)
              << ", equilibrium price p*(t) = " << util::cell(eq.price, 3) << "\n";
    util::Table m3({"LMP", "equilibrium fee"});
    for (std::size_t i = 0; i < lmps.size(); ++i) {
        m3.add_row({lmps[i].name, util::cell(eq.fee_by_lmp[i], 3)});
    }
    std::cout << m3.render();

    // Regime comparison over a small CSP portfolio.
    econ::Market market;
    market.lmps = lmps;
    econ::CspProfile a;
    a.name = "MassVideo";
    a.demand = demand;
    a.churn_by_lmp = {0.05, 0.15, 0.40};
    econ::CspProfile b;
    b.name = "SocialNet";
    b.demand = std::make_shared<econ::ExponentialDemand>(6.0);
    b.churn_by_lmp = {0.02, 0.08, 0.20};
    market.csps = {a, b};

    std::cout << "\nRegime comparison (paper's core welfare claim):\n";
    util::Table cmp({"regime", "social welfare", "consumer welfare", "CSP profit",
                     "LMP fee revenue"});
    for (const econ::RegimeReport& r : econ::evaluate_all(market)) {
        cmp.add_row({econ::regime_name(r.regime), util::cell(r.total_social_welfare, 3),
                     util::cell(r.total_consumer_welfare, 3),
                     util::cell(r.total_csp_profit, 3),
                     util::cell(r.total_lmp_fee_revenue, 3)});
    }
    std::cout << cmp.render();
    util::maybe_export_csv(cmp, "nbs_regime_comparison");
    std::cout << "\nShape check vs paper: fees fall with churn rate (model 1); the\n"
                 "equilibrium fee is positive but below the unilateral optimum, so\n"
                 "SW(NN) > SW(bargaining) > SW(unilateral) - 'the price increase will\n"
                 "likely be less under bilateral bargaining ... but still result in a\n"
                 "lower social welfare than the NN case' (section 4.5).\n";
    return 0;
}
