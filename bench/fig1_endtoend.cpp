// Figure 1 / section 3.2 reproduction: the full proposed structure run
// end to end. Customers pay LMPs and CSPs; LMPs and directly-attached
// CSPs pay the POC for usage; the POC pays BPs (auction) and external
// ISPs (contracts). One billing epoch is executed on an
// auction-provisioned backbone and the resulting ledger printed with
// its exact conservation and break-even checks.
#include <iostream>

#include "core/billing.hpp"
#include "core/cdn.hpp"
#include "core/flow_sim.hpp"
#include "core/qos.hpp"
#include "market/pricing.hpp"
#include "topo/traffic.hpp"
#include "util/table.hpp"

using namespace poc;
using util::operator""_usd;

int main() {
    std::cout << "=== Figure 1: end-to-end POC structure, one billing epoch ===\n\n";

    // Topology & offers.
    topo::BpGeneratorOptions bopt;
    bopt.bp_count = 10;
    bopt.min_cities = 8;
    bopt.max_cities = 20;
    bopt.seed = 7;
    auto topology = topo::build_poc_topology(topo::generate_bp_networks(bopt));
    market::VirtualLinkOptions vopt;
    vopt.attach_count = 4;
    const market::OfferPool pool = market::make_offer_pool(topology, {}, vopt);

    // The cast of Figure 1: eyeball LMPs, a large directly-attached
    // CSP, a small LMP-hosted CSP, and an external ISP.
    core::EntityRoster roster;
    const std::size_t n = topology.router_city.size();
    roster.lmps = {
        {"MetroAccess", net::NodeId{0u}, 2'000'000.0, 55_usd},
        {"SuburbanNet", net::NodeId{std::min<std::size_t>(1, n - 1)}, 900'000.0, 60_usd},
        {"RuralReach", net::NodeId{std::min<std::size_t>(2, n - 1)}, 300'000.0, 65_usd},
    };
    core::CspInfo stream;
    stream.name = "StreamCo";
    stream.attachment = core::CspAttachment::kDirectToPoc;
    stream.poc_router = net::NodeId{std::min<std::size_t>(3, n - 1)};
    stream.subscription_price = 14_usd;
    stream.take_rate = 0.45;
    stream.gbps_per_1k_subscribers = 0.05;
    core::CspInfo indie;
    indie.name = "IndieStream";
    indie.attachment = core::CspAttachment::kViaLmp;
    indie.via_lmp = core::LmpId{0u};
    indie.subscription_price = 7_usd;
    indie.take_rate = 0.10;
    indie.gbps_per_1k_subscribers = 0.02;
    roster.csps = {stream, indie};
    roster.external_isps = {
        {"GlobalTransit", {net::NodeId{0u}, net::NodeId{std::min<std::size_t>(1, n - 1)}},
         25'000_usd}};

    const auto tm = core::roster_traffic(roster);
    std::cout << "Roster traffic: " << tm.size() << " aggregate demands, "
              << util::cell(net::total_demand(tm), 1) << " Gbps\n";

    // Provision under constraint #2 (single-failure survivable).
    core::ProvisioningRequest req;
    req.constraint = market::ConstraintKind::kSingleFailure;
    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    req.oracle = oopt;
    const auto backbone = core::provision(pool, tm, req);
    if (!backbone) {
        std::cerr << "provisioning infeasible\n";
        return 1;
    }
    std::cout << "Provisioned backbone: " << backbone->auction.selection.links.size()
              << " leased links, monthly outlay " << backbone->monthly_outlay() << "\n";

    // Route the actual traffic.
    std::vector<bool> is_virtual(pool.graph().link_count(), false);
    for (const net::LinkId l : pool.virtual_links().links()) is_virtual[l.index()] = true;
    const core::FlowReport flows = core::simulate_flows(backbone->selected, tm, is_virtual);
    std::cout << "Flow simulation: routed " << util::cell(flows.total_routed_gbps, 1) << "/"
              << util::cell(flows.total_offered_gbps, 1) << " Gbps, max util "
              << util::cell_pct(flows.max_utilization) << ", path stretch "
              << util::cell(flows.stretch, 3) << ", virtual share "
              << util::cell_pct(flows.virtual_share) << "\n\n";

    // Section 3.1 services: an open QoS catalog bought by the LMPs and
    // an open CDN bought by the direct CSP. Their revenue is credited
    // against the POC's outlay, lowering everyone's access price.
    core::QosCatalog qos;
    qos.add_tier({"expedited", 0, 40_usd});
    qos.add_tier({"standard", 1, 0_usd});
    qos.subscribe(0, 12.0);  // MetroAccess buys expedited for 12 Gbps
    qos.subscribe(0, 4.0);   // SuburbanNet for 4 Gbps
    std::cout << "QoS catalog: " << core::verdict_name(core::audit_rule(qos.as_policy_rule()))
              << ", revenue " << qos.monthly_revenue() << "\n";

    core::CdnOffer cdn_offer;
    cdn_offer.fee_per_unit = 3000_usd;
    const std::vector<core::CdnDeployment> cdn{{net::NodeId{0u}, 2.0}};
    const core::CdnEffect cdn_effect = core::apply_cdn(tm, cdn, cdn_offer, 0.6);
    std::cout << "Open CDN at the MetroAccess router: offload "
              << util::cell_pct(cdn_effect.offload_fraction) << ", fees "
              << cdn_effect.monthly_fees << "\n\n";

    core::ServiceBilling services;
    services.qos_fees_by_lmp = {qos.monthly_revenue().scaled(12.0 / 16.0),
                                qos.monthly_revenue().scaled(4.0 / 16.0), util::Money{}};
    services.cdn_fees_by_csp = {cdn_effect.monthly_fees, util::Money{}};

    // One month of payments.
    const core::EpochReport epoch =
        core::run_billing_epoch(*backbone, roster, pool, {}, &services);
    std::cout << "Usage-based POC access price: $"
              << util::cell(epoch.usage_price_per_gbps, 2) << " per Gbps (sent+received)\n\n";

    util::Table charges({"payer", "sent Gbps", "recv Gbps", "POC invoice"});
    for (const core::UsageCharge& c : epoch.charges) {
        charges.add_row({core::party_label(c.payer), util::cell(c.sent_gbps, 2),
                         util::cell(c.received_gbps, 2), c.amount.str()});
    }
    std::cout << charges.render() << "\n";

    std::cout << epoch.ledger.statement();
    std::cout << "\nChecks: ledger conserves = " << (epoch.ledger.conserves() ? "yes" : "NO")
              << "; POC net position = " << epoch.ledger.poc_net()
              << " (nonprofit break-even, section 3.2); POC outlay " << epoch.poc_outlay
              << " == access revenue " << epoch.poc_revenue << " + service revenue "
              << epoch.service_revenue << "\n";
    return 0;
}
