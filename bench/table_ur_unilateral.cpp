// Section 4.4 (unilateral termination fees): double marginalization.
// Reproduces, per demand family,
//   * the CSP price response p*(t) - Lemma 1's monotone curve,
//   * the LMP's revenue-maximizing fee t* = argmax t D(p*(t)),
//   * the welfare gap between NN and UR-unilateral.
#include <iostream>
#include <memory>

#include "econ/market_model.hpp"
#include "util/csv_export.hpp"
#include "util/table.hpp"

using namespace poc;

int main() {
    std::cout << "=== Section 4.4: unilateral fees / double marginalization ===\n\n";

    struct Entry {
        std::string name;
        std::shared_ptr<const econ::DemandCurve> demand;
    };
    const std::vector<Entry> families = {
        {"linear(P=20)", std::make_shared<econ::LinearDemand>(20.0)},
        {"exponential(theta=6)", std::make_shared<econ::ExponentialDemand>(6.0)},
        {"isoelastic(knee=15,s=2.2)", std::make_shared<econ::IsoelasticDemand>(15.0, 2.2)},
        {"logistic(mid=9,s=2.5)", std::make_shared<econ::LogisticDemand>(9.0, 2.5)},
    };

    util::Table table({"demand family", "p* (NN)", "t* (UR)", "p*(t*)", "D drop",
                       "SW (NN)", "SW (UR)", "SW loss"});
    for (const Entry& e : families) {
        const double p_nn = econ::monopoly_price(*e.demand).x;
        const double t_star = econ::lmp_optimal_fee(*e.demand).x;
        const double p_ur = econ::csp_price_given_fee(*e.demand, t_star).x;
        const double sw_nn = econ::social_welfare(*e.demand, p_nn);
        const double sw_ur = econ::social_welfare(*e.demand, p_ur);
        const double d_drop = 1.0 - e.demand->demand(p_ur) /
                                        std::max(e.demand->demand(p_nn), 1e-12);
        table.add_row({e.name, util::cell(p_nn, 2), util::cell(t_star, 2),
                       util::cell(p_ur, 2), util::cell_pct(d_drop),
                       util::cell(sw_nn, 2), util::cell(sw_ur, 2),
                       util::cell_pct(1.0 - sw_ur / sw_nn)});
    }
    std::cout << table.render();
    util::maybe_export_csv(table, "ur_unilateral");

    // Lemma 1: the price response curve for the linear family (the
    // paper proves p*'(t) > 0 under smooth convex demand).
    std::cout << "\nLemma 1 price response p*(t), linear(P=20):\n";
    const auto curve = econ::price_response_curve(*families[0].demand, 12.0, 7);
    util::Table lemma({"t", "p*(t)", "D(p*(t))"});
    for (const auto& [t, p] : curve) {
        lemma.add_row({util::cell(t, 1), util::cell(p, 2),
                       util::cell(families[0].demand->demand(p), 3)});
    }
    std::cout << lemma.render();
    util::maybe_export_csv(lemma, "lemma1_price_response");
    std::cout << "\nShape check vs paper: prices rise one-for-two with the fee for\n"
                 "linear demand (p*(t) = (P+t)/2), demand served falls, and social\n"
                 "welfare drops - 'termination fees strictly decrease social welfare'\n"
                 "(section 4.4). The knee-capped isoelastic family is the edge case:\n"
                 "its monopoly corner pins the price, so the LMP's optimal fee stops\n"
                 "exactly where prices would move and the fee is a pure transfer out\n"
                 "of CSP profit (0% welfare loss; Lemma 1 assumes smooth demand).\n";
    return 0;
}
