// Microbenchmarks for the market layer: oracle queries, winner
// determination, and the full VCG pipeline at small scale.
#include <benchmark/benchmark.h>

#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "topo/traffic.hpp"

using namespace poc;

namespace {

struct Instance {
    topo::PocTopology topology;
    market::OfferPool pool;
    net::TrafficMatrix tm;

    explicit Instance(std::size_t bp_count)
        : topology(make_topology(bp_count)), pool(make_pool(topology)) {
        topo::GravityOptions gopt;
        gopt.total_gbps = 800.0;
        tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 25);
    }

    static market::OfferPool make_pool(topo::PocTopology& topology) {
        market::VirtualLinkOptions vopt;
        vopt.attach_count = std::min<std::size_t>(3, topology.router_city.size());
        return market::make_offer_pool(topology, {}, vopt);
    }

    static topo::PocTopology make_topology(std::size_t bp_count) {
        topo::BpGeneratorOptions bopt;
        bopt.bp_count = bp_count;
        bopt.min_cities = 8;
        bopt.max_cities = 16;
        bopt.seed = 3;
        topo::PocTopologyOptions popt;
        popt.min_colocated_bps = 3;
        return topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
    }
};

void BM_OracleQueryLoad(benchmark::State& state) {
    const Instance inst(8);
    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    const market::AcceptabilityOracle oracle(inst.pool.graph(), inst.tm,
                                             market::ConstraintKind::kLoad, oopt);
    const net::Subgraph sg(inst.pool.graph());
    for (auto _ : state) {
        benchmark::DoNotOptimize(oracle.accepts(sg));
    }
}
BENCHMARK(BM_OracleQueryLoad);

void BM_OracleQuerySingleFailureFast(benchmark::State& state) {
    const Instance inst(8);
    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    const market::AcceptabilityOracle oracle(inst.pool.graph(), inst.tm,
                                             market::ConstraintKind::kSingleFailure, oopt);
    const net::Subgraph sg(inst.pool.graph());
    for (auto _ : state) {
        benchmark::DoNotOptimize(oracle.accepts(sg));
    }
}
BENCHMARK(BM_OracleQuerySingleFailureFast);

void BM_WinnerDetermination(benchmark::State& state) {
    const Instance inst(static_cast<std::size_t>(state.range(0)));
    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    const market::AcceptabilityOracle oracle(inst.pool.graph(), inst.tm,
                                             market::ConstraintKind::kLoad, oopt);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            market::select_links(inst.pool, oracle, inst.pool.offered_links()));
    }
}
BENCHMARK(BM_WinnerDetermination)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_FullVcgAuction(benchmark::State& state) {
    const Instance inst(static_cast<std::size_t>(state.range(0)));
    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    const market::AcceptabilityOracle oracle(inst.pool.graph(), inst.tm,
                                             market::ConstraintKind::kLoad, oopt);
    for (auto _ : state) {
        benchmark::DoNotOptimize(market::run_auction(inst.pool, oracle));
    }
}
BENCHMARK(BM_FullVcgAuction)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_BidCostEvaluation(benchmark::State& state) {
    const Instance inst(8);
    const auto& bid = inst.pool.bids().front();
    const auto links = bid.offered_links();
    for (auto _ : state) {
        benchmark::DoNotOptimize(bid.cost(links));
    }
}
BENCHMARK(BM_BidCostEvaluation);

void BM_TopologyGeneration(benchmark::State& state) {
    for (auto _ : state) {
        topo::BpGeneratorOptions bopt;
        bopt.bp_count = 10;
        bopt.seed = 5;
        benchmark::DoNotOptimize(
            topo::build_poc_topology(topo::generate_bp_networks(bopt)));
    }
    state.SetLabel("20-40 PoP BPs -> POC graph");
}
BENCHMARK(BM_TopologyGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
