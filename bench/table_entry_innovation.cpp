// Section 4.1's dynamic claim, quantified: "Fair competition is what
// allows new and innovative CSPs ... to gain a foothold in the market,
// which in turn ... can lead to increases in future social welfare."
// We draw a population of candidate services with heterogeneous quality
// and entry costs and count who actually enters under each regime; the
// welfare the fee regimes foreclose is the paper's innovation loss.
#include <iostream>

#include "econ/entry.hpp"
#include "util/csv_export.hpp"
#include "util/table.hpp"

using namespace poc;

int main() {
    std::cout << "=== Section 4.1: market entry and future social welfare ===\n\n";

    const std::vector<econ::LmpProfile> lmps = {
        {"Big (4M subs)", 4.0, 50.0, 0.0},
        {"Small (1M subs)", 1.0, 40.0, 0.0},
    };

    econ::EntryPopulationOptions popt;
    popt.candidates = 400;
    popt.seed = 2020;
    const auto population = econ::draw_entry_population(lmps, popt);
    std::cout << population.size() << " candidate services (exponential demand, "
                 "lognormal quality; entry cost 30%..110% of NN profit; entrant churn "
              << popt.entrant_churn << ")\n\n";

    util::Table table({"regime", "entrants", "entry rate", "entrant profit",
                       "realized SW", "foreclosed SW"});
    const auto reports = econ::evaluate_entry_all(population, lmps);
    for (const econ::EntryReport& r : reports) {
        table.add_row({econ::regime_name(r.regime), util::cell(r.entered),
                       util::cell_pct(static_cast<double>(r.entered) /
                                      static_cast<double>(r.candidates)),
                       util::cell(r.total_entrant_profit, 1),
                       util::cell(r.realized_social_welfare, 1),
                       util::cell(r.foreclosed_social_welfare, 1)});
    }
    std::cout << table.render();
    util::maybe_export_csv(table, "entry_innovation");

    const double lost_uni = reports[1].foreclosed_social_welfare;
    const double lost_bar = reports[2].foreclosed_social_welfare;
    std::cout << "\nReading: every service viable under NN that a fee regime prices\n"
                 "out is future welfare destroyed before it exists - "
              << util::cell(lost_uni, 1) << " $/month-mass under unilateral fees, "
              << util::cell(lost_bar, 1)
              << " under bargaining.\nThis is the paper's second criterion (fostering\n"
                 "competition -> future social welfare), on top of the static welfare\n"
                 "loss in table_ur_unilateral / table_nbs_bargaining.\n";
    return 0;
}
