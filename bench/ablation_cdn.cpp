// Ablation (section 2.4): edge caching vs public transit. The paper
// quotes Huston's "The Death of Transit?" - most content is served from
// CDN caches at the edge, shrinking what the public core must carry.
// Section 3.4 requires any such CDN service to be *open*. This bench
// sweeps open-CDN deployment size at every eyeball router and measures
// the transit matrix reduction and the resulting auction outlay: the
// quantitative version of "much of the action has left the public
// Internet".
#include <iostream>

#include "core/cdn.hpp"
#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "topo/traffic.hpp"
#include "util/table.hpp"

using namespace poc;
using util::operator""_usd;

int main() {
    std::cout << "=== Ablation: open edge-CDN deployment vs transit demand ===\n\n";

    topo::BpGeneratorOptions bopt;
    bopt.bp_count = 10;
    bopt.min_cities = 8;
    bopt.max_cities = 20;
    bopt.seed = 3;
    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    auto topology = topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
    market::VirtualLinkOptions vopt;
    vopt.attach_count = 3;
    const market::OfferPool pool = market::make_offer_pool(topology, {}, vopt);

    topo::GravityOptions gopt;
    gopt.total_gbps = 1500.0;
    const auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 35);
    const double cacheable = 0.70;  // video-dominated mix

    core::CdnOffer offer;
    offer.fee_per_unit = 2500_usd;
    offer.open_to_all = true;
    std::cout << "CDN offer audit: " << core::verdict_name(core::audit_offer(offer))
              << " (open, posted price - the section 3.4 requirement)\n";
    std::cout << "Cacheable share of traffic: " << util::cell_pct(cacheable) << ", "
              << topology.router_city.size() << " routers, " << net::total_demand(tm)
              << " Gbps offered\n\n";

    util::Table table({"cache units/router", "offload", "transit Gbps", "auction outlay",
                       "CDN fees", "outlay+fees"});
    for (const double units : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        std::vector<core::CdnDeployment> deployments;
        if (units > 0.0) {
            for (std::size_t r = 0; r < topology.router_city.size(); ++r) {
                deployments.push_back(core::CdnDeployment{net::NodeId{r}, units});
            }
        }
        const core::CdnEffect effect = core::apply_cdn(tm, deployments, offer, cacheable);

        market::OracleOptions oopt;
        oopt.fidelity = market::OracleFidelity::kFast;
        const market::AcceptabilityOracle oracle(pool.graph(), effect.reduced,
                                                 market::ConstraintKind::kLoad, oopt);
        const auto auction = market::run_auction(pool, oracle);
        const util::Money outlay = auction ? auction->total_outlay : util::Money{};
        table.add_row({util::cell(units, 0), util::cell_pct(effect.offload_fraction),
                       util::cell(net::total_demand(effect.reduced), 0),
                       auction ? outlay.str() : "INFEASIBLE", effect.monthly_fees.str(),
                       (outlay + effect.monthly_fees).str()});
    }
    std::cout << table.render();
    std::cout << "\nReading: cache deployment monotonically drains the transit matrix\n"
                 "(the section 2.4 dynamic) and with it the POC's leasing outlay; the\n"
                 "concave hit curve gives diminishing returns, so total cost\n"
                 "(outlay + CDN fees) has an interior optimum - the provisioning\n"
                 "trade-off an open CDN market would discover by itself.\n";
    return 0;
}
