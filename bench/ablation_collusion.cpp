// Ablation (DESIGN.md A-COLL): the paper's collusion analysis. "If the
// BPs can guess in advance what the set SL is, they can decide to not
// offer any links not in this set ... possibly changing [the payoff] of
// others", bounded by the external-ISP virtual links. We run the joint
// link-withholding scenario on a generated market, with and without the
// virtual-link fallback, and report the payment inflation.
#include <iostream>

#include "market/manipulation.hpp"
#include "market/pricing.hpp"
#include "topo/traffic.hpp"
#include "util/table.hpp"

using namespace poc;

namespace {

struct Setup {
    topo::PocTopology topology;
    net::TrafficMatrix tm;

    Setup() {
        topo::BpGeneratorOptions bopt;
        bopt.bp_count = 8;
        bopt.min_cities = 8;
        bopt.max_cities = 16;
        bopt.seed = 11;
        topo::PocTopologyOptions popt;
        popt.min_colocated_bps = 3;
        topology = topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
        topo::GravityOptions gopt;
        gopt.total_gbps = 900.0;
        tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 25);
    }
};

void run_case(const std::string& label, const market::OfferPool& pool,
              const net::TrafficMatrix& tm) {
    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    const market::AcceptabilityOracle oracle(pool.graph(), tm,
                                             market::ConstraintKind::kLoad, oopt);
    const auto analysis = market::analyze_joint_withholding(pool, oracle);
    std::cout << "-- " << label << " --\n";
    if (!analysis) {
        std::cout << "   collusion scenario infeasible (withholding broke provisioning)\n\n";
        return;
    }
    util::Table table({"BP", "baseline payment", "colluding payment", "delta",
                       "pivot defined"});
    for (std::size_t b = 0; b < pool.bids().size(); ++b) {
        const auto& base = analysis->baseline.outcomes[b];
        const auto& coll = analysis->withheld.outcomes[b];
        if (base.selected_links.empty() && coll.selected_links.empty()) continue;
        table.add_row({base.name, base.payment.str(), coll.payment.str(),
                       analysis->payment_delta[b].str(), coll.pivot_defined ? "yes" : "NO"});
    }
    std::cout << table.render();
    std::cout << "   total outlay: " << analysis->baseline.total_outlay << " -> "
              << analysis->withheld.total_outlay << " (delta "
              << analysis->outlay_delta << ", "
              << util::cell_pct(util::ratio(analysis->outlay_delta,
                                            analysis->baseline.total_outlay))
              << ")\n\n";
}

}  // namespace

int main() {
    std::cout << "=== Ablation: joint link-withholding (collusion) ===\n\n";

    // Case A: with the external-ISP virtual links (the paper's bound).
    {
        Setup s;
        market::VirtualLinkOptions vopt;
        vopt.attach_count = 4;
        const market::OfferPool pool = market::make_offer_pool(s.topology, {}, vopt);
        run_case("with virtual-link fallback (paper's configuration)", pool, s.tm);
    }

    // Case B: no virtual links - nothing bounds the colluders.
    {
        Setup s;
        const auto bids = market::make_bp_bids(s.topology);
        const market::OfferPool pool(bids, {}, s.topology.graph);
        run_case("without virtual links (fallback removed)", pool, s.tm);
    }

    std::cout << "Reading: with the fallback, withholding inflates payments only up to\n"
                 "the virtual-link contract prices ('the presence of the connections to\n"
                 "external ISPs sets an upper bound on the costs of alternate paths',\n"
                 "section 3.3). Without it, removing a BP can leave no alternative at\n"
                 "all: pivots become undefined and the mechanism's guarantees lapse.\n";
    return 0;
}
