// Perf baseline for the data-plane fast path and the sharded
// shared-nothing flow engine (DESIGN.md §6, §9). Two sections:
//
//  1. Fast path: sweeps graph size × demand count × routing mode
//     (serial per-demand SSSP / batched per-source fast path / fast
//     path + tree cache / fast path + parallel fan-out), times
//     primary-path resolution for the whole traffic matrix, and
//     verifies every mode produces bit-identical paths.
//
//  2. Shard scaling: a synthetic continental instance (10^4 routers,
//     10^5 demands in the full run) through sharded_primary_flow at
//     shards {1, 2, 4, 8}, verifying the results are bit-identical
//     for every shard count before reporting any timing.
//
// The fastpath headline win is algorithmic, not parallel: a matrix
// with D demands but S << D distinct sources needs S SSSP runs, not D,
// and the reusable workspace drops the per-run tree allocation. Those
// two effects hold on one core. Rows whose point is parallel speedup
// (fastpath+parallel, multi-shard timings) need
// std::thread::hardware_concurrency() > 1; on a 1-thread machine they
// are SKIPPED with a note instead of reporting a dishonest x1 — the
// bit-identity checks still run (they are schedule-independent by
// construction, so one core proves the same property).
//
// Usage: micro_net [--smoke] [OUT.json]
//   --smoke: small instances, 1 rep — the CI tier-1 smoke mode.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/path_cache.hpp"
#include "net/shard.hpp"
#include "net/sssp.hpp"
#include "topo/synthetic.hpp"
#include "util/rng.hpp"

using namespace poc;

namespace {

struct Instance {
    std::string label;
    std::size_t nodes = 0;
    std::size_t demand_count = 0;
    net::Graph g;
    net::TrafficMatrix tm;
    std::size_t distinct_sources = 0;
};

/// Random connected graph with n nodes and ~3n links, plus `demands`
/// random positive demands. Sources draw uniformly from all n nodes,
/// so distinct_sources saturates near min(n, demands) — the realistic
/// shape where grouping pays (demands >> sources).
Instance make_instance(std::size_t n, std::size_t demands, std::uint64_t seed) {
    util::Rng rng(seed);
    Instance inst;
    inst.nodes = n;
    inst.demand_count = demands;
    inst.g.add_nodes(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        inst.g.add_link(net::NodeId{i}, net::NodeId{i + 1}, rng.uniform(50.0, 400.0),
                        rng.uniform(100.0, 2000.0));
    }
    for (std::size_t e = 0; e < 2 * n; ++e) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto b = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (a == b) b = (b + 1) % n;
        inst.g.add_link(net::NodeId{a}, net::NodeId{b}, rng.uniform(50.0, 400.0),
                        rng.uniform(100.0, 2000.0));
    }
    for (std::size_t d = 0; d < demands; ++d) {
        const auto s = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto t = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (s == t) t = (t + 1) % n;
        inst.tm.push_back({net::NodeId{s}, net::NodeId{t}, rng.uniform(0.5, 5.0)});
    }
    inst.distinct_sources = net::distinct_sources(inst.tm).size();
    std::ostringstream label;
    label << "n" << n << "-d" << demands;
    inst.label = label.str();
    return inst;
}

/// The serial reference: one full Dijkstra per demand through the
/// tree-allocating convenience API — exactly what the routing call
/// sites did before the fast path existed.
std::vector<std::vector<net::LinkId>> serial_primary_paths(const net::Subgraph& sg,
                                                           const net::TrafficMatrix& tm) {
    const net::LinkWeight w = net::weight_by_length(sg.graph());
    std::vector<std::vector<net::LinkId>> out(tm.size());
    for (std::size_t j = 0; j < tm.size(); ++j) {
        if (tm[j].gbps <= 0.0) continue;
        if (auto wp = net::shortest_path(sg, tm[j].src, tm[j].dst, w)) {
            out[j] = std::move(wp->links);
        }
    }
    return out;
}

struct Mode {
    const char* name;
    std::size_t threads;
    bool cache;
};

struct Row {
    std::string instance;
    std::size_t nodes = 0;
    std::size_t links = 0;
    std::size_t demands = 0;
    std::size_t distinct_sources = 0;
    std::string mode;
    std::size_t threads = 1;
    bool cache = false;
    double ms = 0.0;
    double speedup_vs_serial = 1.0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    /// True when the row's timing was not taken (1 hardware thread
    /// makes a parallel timing dishonest); `note` says why.
    bool skipped = false;
    std::string note;
};

/// One shard-scaling row: sharded_primary_flow at a fixed shard count.
struct ShardRow {
    std::string instance;
    std::size_t nodes = 0;
    std::size_t links = 0;
    std::size_t demands = 0;
    std::size_t distinct_sources = 0;
    std::size_t shards = 1;
    std::size_t threads = 1;
    double ms = 0.0;
    double speedup_vs_shards1 = 1.0;
    bool identical_to_shards1 = false;
    bool skipped = false;
    std::string note;
};

bool results_identical(const net::ShardFlowResult& a, const net::ShardFlowResult& b) {
    return a.routed_gbps == b.routed_gbps && a.weighted_km == b.weighted_km &&
           a.total_gbps_km == b.total_gbps_km && a.virtual_gbps_km == b.virtual_gbps_km &&
           a.admitted == b.admitted && a.unrouted == b.unrouted &&
           a.link_load_gbps == b.link_load_gbps;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_net.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            out_path = argv[i];
        }
    }
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t par = std::max<std::size_t>(2, hw);
    const Mode modes[] = {
        {"serial", 1, false},
        {"fastpath", 1, false},
        {"fastpath+cache", 1, true},
        {"fastpath+parallel", par, false},
    };
    const int reps = smoke ? 1 : 3;

    std::vector<Instance> instances;
    instances.push_back(make_instance(10, 100, 8101));
    instances.push_back(make_instance(50, 500, 8102));
    if (!smoke) {
        instances.push_back(make_instance(200, 2000, 8103));
        instances.push_back(make_instance(500, 10000, 8104));
    }

    std::vector<Row> rows;
    bool all_identical = true;

    for (const Instance& inst : instances) {
        const net::Subgraph sg(inst.g);
        std::vector<std::vector<net::LinkId>> reference;
        double serial_ms = 0.0;
        for (const Mode& mode : modes) {
            // A parallel timing on a 1-thread machine would report a
            // meaningless x1: skip the row honestly instead.
            if (mode.threads > 1 && hw == 1) {
                Row row;
                row.instance = inst.label;
                row.nodes = inst.nodes;
                row.links = inst.g.link_count();
                row.demands = inst.demand_count;
                row.distinct_sources = inst.distinct_sources;
                row.mode = mode.name;
                row.threads = mode.threads;
                row.skipped = true;
                row.note = "timing skipped: 1 hardware thread";
                rows.push_back(row);
                std::cout << inst.label << "  " << mode.name << "  SKIPPED (" << row.note
                          << ")\n";
                continue;
            }
            // One cache per (instance, mode) row, kept warm across
            // reps: the best-of-reps time for the cached row measures
            // the steady state a scenario epoch loop sees, where the
            // previous epoch already populated the trees.
            net::PathCache cache;
            net::SsspBatchOptions bopt;
            bopt.metric = net::SsspMetric::kLength;
            bopt.threads = mode.threads;
            bopt.cache = mode.cache ? &cache : nullptr;
            const bool is_serial = std::strcmp(mode.name, "serial") == 0;

            double best_ms = 0.0;
            std::vector<std::vector<net::LinkId>> paths;
            for (int rep = 0; rep < reps; ++rep) {
                const auto t0 = std::chrono::steady_clock::now();
                paths = is_serial ? serial_primary_paths(sg, inst.tm)
                                  : net::batched_primary_paths(sg, inst.tm, bopt);
                const auto t1 = std::chrono::steady_clock::now();
                const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
                if (rep == 0 || ms < best_ms) best_ms = ms;
            }
            if (is_serial) {
                reference = paths;
                serial_ms = best_ms;
            } else if (paths != reference) {
                std::cerr << inst.label << "/" << mode.name << ": paths differ from serial\n";
                all_identical = false;
            }

            Row row;
            row.instance = inst.label;
            row.nodes = inst.nodes;
            row.links = inst.g.link_count();
            row.demands = inst.demand_count;
            row.distinct_sources = inst.distinct_sources;
            row.mode = mode.name;
            row.threads = mode.threads;
            row.cache = mode.cache;
            row.ms = best_ms;
            row.speedup_vs_serial = best_ms > 0.0 ? serial_ms / best_ms : 1.0;
            row.cache_hits = cache.stats().hits;
            row.cache_misses = cache.stats().misses;
            rows.push_back(row);

            std::cout << inst.label << "  links=" << row.links << "  sources="
                      << row.distinct_sources << "  " << mode.name << "  " << best_ms
                      << " ms  x" << row.speedup_vs_serial;
            if (mode.cache) {
                std::cout << "  hits=" << row.cache_hits << "  misses=" << row.cache_misses;
            }
            std::cout << "\n";
        }
    }

    // --- Section 2: shard scaling on a synthetic continental instance
    // (DESIGN.md §9). Bit-identity across shard counts is asserted
    // before any timing is reported. ---
    topo::SyntheticTopologyOptions topt;
    topt.nodes = smoke ? 1000 : 10000;
    topt.regions = smoke ? 16 : 64;
    topt.seed = 8105;
    const topo::SyntheticTopology topo_inst = topo::build_synthetic_topology(topt);
    topo::ContinentalTrafficOptions copt;
    copt.demands = smoke ? 2000 : 100000;
    copt.max_sources = smoke ? 64 : 512;
    copt.seed = 8106;
    const net::TrafficMatrix shard_tm = topo::continental_traffic(topo_inst, copt);
    const net::TrafficMatrixSoA shard_soa(shard_tm);
    const net::Subgraph shard_sg(topo_inst.graph);
    const std::string shard_label =
        "continental-n" + std::to_string(topt.nodes) + "-d" + std::to_string(copt.demands);

    std::vector<ShardRow> shard_rows;
    bool shards_identical = true;
    {
        net::ShardWorkspace ws;
        net::ShardFlowResult shard_reference;
        double shards1_ms = 0.0;
        for (const std::size_t shards :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
            ShardRow row;
            row.instance = shard_label;
            row.nodes = topt.nodes;
            row.links = topo_inst.graph.link_count();
            row.demands = copt.demands;
            row.distinct_sources = shard_soa.sources().size();
            row.shards = shards;
            row.threads = std::min(shards, hw);

            net::ShardOptions sopt;
            sopt.shards = shards;
            sopt.threads = row.threads;
            net::ShardFlowResult result;
            // Identity first (schedule-independent, so one run at any
            // thread count proves it), timing second.
            net::sharded_primary_flow(shard_sg, shard_soa, sopt, ws, result);
            if (shards == 1) {
                shard_reference = result;
                row.identical_to_shards1 = true;
            } else {
                row.identical_to_shards1 = results_identical(shard_reference, result);
                if (!row.identical_to_shards1) {
                    std::cerr << shard_label << "/shards=" << shards
                              << ": result differs from shards=1\n";
                    shards_identical = false;
                }
            }

            if (shards > 1 && hw == 1) {
                row.skipped = true;
                row.note = "timing skipped: 1 hardware thread; identity still verified";
                std::cout << shard_label << "  shards=" << shards << "  SKIPPED ("
                          << row.note << ")  identical="
                          << (row.identical_to_shards1 ? "true" : "false") << "\n";
            } else {
                double best_ms = 0.0;
                for (int rep = 0; rep < reps; ++rep) {
                    const auto t0 = std::chrono::steady_clock::now();
                    net::sharded_primary_flow(shard_sg, shard_soa, sopt, ws, result);
                    const auto t1 = std::chrono::steady_clock::now();
                    const double ms =
                        std::chrono::duration<double, std::milli>(t1 - t0).count();
                    if (rep == 0 || ms < best_ms) best_ms = ms;
                }
                row.ms = best_ms;
                if (shards == 1) shards1_ms = best_ms;
                row.speedup_vs_shards1 = best_ms > 0.0 ? shards1_ms / best_ms : 1.0;
                std::cout << shard_label << "  shards=" << shards << "  threads="
                          << row.threads << "  " << best_ms << " ms  x"
                          << row.speedup_vs_shards1 << "  identical="
                          << (row.identical_to_shards1 ? "true" : "false") << "\n";
            }
            shard_rows.push_back(row);
        }
    }
    if (!all_identical || !shards_identical) return 1;

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"micro_net\",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"parallel_threads\": " << par << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"all_modes_identical_to_serial\": " << (all_identical ? "true" : "false") << ",\n"
        << "  \"bit_identical_across_shards\": " << (shards_identical ? "true" : "false") << ",\n"
        << "  \"note\": \"ms is best of reps, resolving one primary path per demand; fastpath "
           "speedup comes from one SSSP per distinct source (machine-independent), parallel "
           "and multi-shard rows additionally need hardware_threads > 1 and are skipped with "
           "a note on a 1-thread machine (identity checks still run)\",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"instance\": \"" << r.instance << "\", \"nodes\": " << r.nodes
            << ", \"links\": " << r.links << ", \"demands\": " << r.demands
            << ", \"distinct_sources\": " << r.distinct_sources << ", \"mode\": \"" << r.mode
            << "\", \"threads\": " << r.threads << ", \"cache\": " << (r.cache ? "true" : "false")
            << ", \"ms\": " << r.ms << ", \"speedup_vs_serial\": " << r.speedup_vs_serial
            << ", \"cache_hits\": " << r.cache_hits << ", \"cache_misses\": " << r.cache_misses
            << ", \"skipped\": " << (r.skipped ? "true" : "false");
        if (!r.note.empty()) out << ", \"note\": \"" << r.note << "\"";
        out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"shard_rows\": [\n";
    for (std::size_t i = 0; i < shard_rows.size(); ++i) {
        const ShardRow& r = shard_rows[i];
        out << "    {\"instance\": \"" << r.instance << "\", \"nodes\": " << r.nodes
            << ", \"links\": " << r.links << ", \"demands\": " << r.demands
            << ", \"distinct_sources\": " << r.distinct_sources << ", \"shards\": " << r.shards
            << ", \"threads\": " << r.threads << ", \"ms\": " << r.ms
            << ", \"speedup_vs_shards1\": " << r.speedup_vs_shards1
            << ", \"identical_to_shards1\": " << (r.identical_to_shards1 ? "true" : "false")
            << ", \"skipped\": " << (r.skipped ? "true" : "false");
        if (!r.note.empty()) out << ", \"note\": \"" << r.note << "\"";
        out << "}" << (i + 1 < shard_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
