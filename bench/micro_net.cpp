// Microbenchmarks for the network substrate: the primitives the
// acceptability oracle A(OL) calls in its inner loop.
#include <benchmark/benchmark.h>

#include "net/failure.hpp"
#include "net/ksp.hpp"
#include "net/maxflow.hpp"
#include "net/mcf.hpp"
#include "net/shortest_path.hpp"
#include "util/rng.hpp"

using namespace poc;

namespace {

/// Random connected graph with n nodes and ~3n links.
net::Graph make_graph(std::size_t n, std::uint64_t seed = 9) {
    util::Rng rng(seed);
    net::Graph g;
    g.add_nodes(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        g.add_link(net::NodeId{i}, net::NodeId{i + 1}, rng.uniform(50.0, 400.0),
                   rng.uniform(100.0, 2000.0));
    }
    for (std::size_t e = 0; e < 2 * n; ++e) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto b = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (a == b) b = (b + 1) % n;
        g.add_link(net::NodeId{a}, net::NodeId{b}, rng.uniform(50.0, 400.0),
                   rng.uniform(100.0, 2000.0));
    }
    return g;
}

net::TrafficMatrix make_tm(std::size_t n, std::size_t demands, std::uint64_t seed = 33) {
    util::Rng rng(seed);
    net::TrafficMatrix tm;
    for (std::size_t d = 0; d < demands; ++d) {
        const auto s = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto t = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (s == t) t = (t + 1) % n;
        tm.push_back({net::NodeId{s}, net::NodeId{t}, rng.uniform(5.0, 40.0)});
    }
    return tm;
}

void BM_Dijkstra(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const net::Graph g = make_graph(n);
    const net::Subgraph sg(g);
    const auto w = net::weight_by_length(g);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::dijkstra(sg, net::NodeId{0u}, w));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->Arg(50)->Arg(200)->Arg(800)->Complexity();

void BM_YenKsp(benchmark::State& state) {
    const net::Graph g = make_graph(120);
    const net::Subgraph sg(g);
    const auto w = net::weight_by_length(g);
    const auto k = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            net::yen_k_shortest(sg, net::NodeId{0u}, net::NodeId{60u}, w, k));
    }
}
BENCHMARK(BM_YenKsp)->Arg(2)->Arg(4)->Arg(8);

void BM_MaxFlow(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const net::Graph g = make_graph(n);
    const net::Subgraph sg(g);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::max_flow(sg, net::NodeId{0u}, net::NodeId{n - 1}));
    }
}
BENCHMARK(BM_MaxFlow)->Arg(50)->Arg(200);

void BM_GreedyRouting(benchmark::State& state) {
    const std::size_t n = 80;
    const net::Graph g = make_graph(n);
    const net::Subgraph sg(g);
    const auto tm = make_tm(n, static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::greedy_path_routing(sg, tm));
    }
}
BENCHMARK(BM_GreedyRouting)->Arg(10)->Arg(40)->Arg(120);

void BM_ConcurrentFlowFptas(benchmark::State& state) {
    const std::size_t n = 60;
    const net::Graph g = make_graph(n);
    const net::Subgraph sg(g);
    const auto tm = make_tm(n, 15);
    const double eps = static_cast<double>(state.range(0)) / 100.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::max_concurrent_flow(sg, tm, eps));
    }
}
BENCHMARK(BM_ConcurrentFlowFptas)->Arg(30)->Arg(15);

void BM_SingleFailureCheck(benchmark::State& state) {
    const std::size_t n = 40;
    const net::Graph g = make_graph(n);
    const net::Subgraph sg(g);
    const auto tm = make_tm(n, 10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::satisfies_single_failure(sg, tm));
    }
}
BENCHMARK(BM_SingleFailureCheck);

}  // namespace
