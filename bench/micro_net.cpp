// Perf baseline for the data-plane fast path (DESIGN.md §6): sweeps
// graph size × demand count × routing mode (serial per-demand SSSP /
// batched per-source fast path / fast path + tree cache / fast path +
// parallel fan-out), times primary-path resolution for the whole
// traffic matrix, verifies every mode produces bit-identical paths,
// and emits BENCH_net.json for regression tracking.
//
// The headline win is algorithmic, not parallel: a matrix with D
// demands but S << D distinct sources needs S SSSP runs, not D, and
// the reusable workspace drops the per-run tree allocation. Those two
// effects hold on one core, so the fastpath rows beat serial even on a
// single-thread CI runner; the parallel rows additionally need
// std::thread::hardware_concurrency() > 1 to stretch further. The JSON
// records the machine's thread count so 1-core results read honestly.
//
// Usage: micro_net [--smoke] [OUT.json]
//   --smoke: small instances, 1 rep — the CI tier-1 smoke mode.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/path_cache.hpp"
#include "net/sssp.hpp"
#include "util/rng.hpp"

using namespace poc;

namespace {

struct Instance {
    std::string label;
    std::size_t nodes = 0;
    std::size_t demand_count = 0;
    net::Graph g;
    net::TrafficMatrix tm;
    std::size_t distinct_sources = 0;
};

/// Random connected graph with n nodes and ~3n links, plus `demands`
/// random positive demands. Sources draw uniformly from all n nodes,
/// so distinct_sources saturates near min(n, demands) — the realistic
/// shape where grouping pays (demands >> sources).
Instance make_instance(std::size_t n, std::size_t demands, std::uint64_t seed) {
    util::Rng rng(seed);
    Instance inst;
    inst.nodes = n;
    inst.demand_count = demands;
    inst.g.add_nodes(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        inst.g.add_link(net::NodeId{i}, net::NodeId{i + 1}, rng.uniform(50.0, 400.0),
                        rng.uniform(100.0, 2000.0));
    }
    for (std::size_t e = 0; e < 2 * n; ++e) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto b = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (a == b) b = (b + 1) % n;
        inst.g.add_link(net::NodeId{a}, net::NodeId{b}, rng.uniform(50.0, 400.0),
                        rng.uniform(100.0, 2000.0));
    }
    for (std::size_t d = 0; d < demands; ++d) {
        const auto s = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto t = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (s == t) t = (t + 1) % n;
        inst.tm.push_back({net::NodeId{s}, net::NodeId{t}, rng.uniform(0.5, 5.0)});
    }
    inst.distinct_sources = net::distinct_sources(inst.tm).size();
    std::ostringstream label;
    label << "n" << n << "-d" << demands;
    inst.label = label.str();
    return inst;
}

/// The serial reference: one full Dijkstra per demand through the
/// tree-allocating convenience API — exactly what the routing call
/// sites did before the fast path existed.
std::vector<std::vector<net::LinkId>> serial_primary_paths(const net::Subgraph& sg,
                                                           const net::TrafficMatrix& tm) {
    const net::LinkWeight w = net::weight_by_length(sg.graph());
    std::vector<std::vector<net::LinkId>> out(tm.size());
    for (std::size_t j = 0; j < tm.size(); ++j) {
        if (tm[j].gbps <= 0.0) continue;
        if (auto wp = net::shortest_path(sg, tm[j].src, tm[j].dst, w)) {
            out[j] = std::move(wp->links);
        }
    }
    return out;
}

struct Mode {
    const char* name;
    std::size_t threads;
    bool cache;
};

struct Row {
    std::string instance;
    std::size_t nodes = 0;
    std::size_t links = 0;
    std::size_t demands = 0;
    std::size_t distinct_sources = 0;
    std::string mode;
    std::size_t threads = 1;
    bool cache = false;
    double ms = 0.0;
    double speedup_vs_serial = 1.0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
};

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_net.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            out_path = argv[i];
        }
    }
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t par = std::max<std::size_t>(2, hw);
    const Mode modes[] = {
        {"serial", 1, false},
        {"fastpath", 1, false},
        {"fastpath+cache", 1, true},
        {"fastpath+parallel", par, false},
    };
    const int reps = smoke ? 1 : 3;

    std::vector<Instance> instances;
    instances.push_back(make_instance(10, 100, 8101));
    instances.push_back(make_instance(50, 500, 8102));
    if (!smoke) {
        instances.push_back(make_instance(200, 2000, 8103));
        instances.push_back(make_instance(500, 10000, 8104));
    }

    std::vector<Row> rows;
    bool all_identical = true;

    for (const Instance& inst : instances) {
        const net::Subgraph sg(inst.g);
        std::vector<std::vector<net::LinkId>> reference;
        double serial_ms = 0.0;
        for (const Mode& mode : modes) {
            // One cache per (instance, mode) row, kept warm across
            // reps: the best-of-reps time for the cached row measures
            // the steady state a scenario epoch loop sees, where the
            // previous epoch already populated the trees.
            net::PathCache cache;
            net::SsspBatchOptions bopt;
            bopt.metric = net::SsspMetric::kLength;
            bopt.threads = mode.threads;
            bopt.cache = mode.cache ? &cache : nullptr;
            const bool is_serial = std::strcmp(mode.name, "serial") == 0;

            double best_ms = 0.0;
            std::vector<std::vector<net::LinkId>> paths;
            for (int rep = 0; rep < reps; ++rep) {
                const auto t0 = std::chrono::steady_clock::now();
                paths = is_serial ? serial_primary_paths(sg, inst.tm)
                                  : net::batched_primary_paths(sg, inst.tm, bopt);
                const auto t1 = std::chrono::steady_clock::now();
                const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
                if (rep == 0 || ms < best_ms) best_ms = ms;
            }
            if (is_serial) {
                reference = paths;
                serial_ms = best_ms;
            } else if (paths != reference) {
                std::cerr << inst.label << "/" << mode.name << ": paths differ from serial\n";
                all_identical = false;
            }

            Row row;
            row.instance = inst.label;
            row.nodes = inst.nodes;
            row.links = inst.g.link_count();
            row.demands = inst.demand_count;
            row.distinct_sources = inst.distinct_sources;
            row.mode = mode.name;
            row.threads = mode.threads;
            row.cache = mode.cache;
            row.ms = best_ms;
            row.speedup_vs_serial = best_ms > 0.0 ? serial_ms / best_ms : 1.0;
            row.cache_hits = cache.stats().hits;
            row.cache_misses = cache.stats().misses;
            rows.push_back(row);

            std::cout << inst.label << "  links=" << row.links << "  sources="
                      << row.distinct_sources << "  " << mode.name << "  " << best_ms
                      << " ms  x" << row.speedup_vs_serial;
            if (mode.cache) {
                std::cout << "  hits=" << row.cache_hits << "  misses=" << row.cache_misses;
            }
            std::cout << "\n";
        }
    }
    if (!all_identical) return 1;

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"micro_net\",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"parallel_threads\": " << par << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"all_modes_identical_to_serial\": " << (all_identical ? "true" : "false") << ",\n"
        << "  \"note\": \"ms is best of reps, resolving one primary path per demand; fastpath "
           "speedup comes from one SSSP per distinct source (machine-independent), parallel "
           "rows additionally need hardware_threads > 1\",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"instance\": \"" << r.instance << "\", \"nodes\": " << r.nodes
            << ", \"links\": " << r.links << ", \"demands\": " << r.demands
            << ", \"distinct_sources\": " << r.distinct_sources << ", \"mode\": \"" << r.mode
            << "\", \"threads\": " << r.threads << ", \"cache\": " << (r.cache ? "true" : "false")
            << ", \"ms\": " << r.ms << ", \"speedup_vs_serial\": " << r.speedup_vs_serial
            << ", \"cache_hits\": " << r.cache_hits << ", \"cache_misses\": " << r.cache_misses
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
