// Serving-plane baseline for the always-on market daemon (DESIGN.md
// §8): query throughput and tail latency versus reader threads x
// rollover rate x admission control.
//
// Setup: one journaled 8-epoch run over a moderate random instance,
// with a ServeEngine attached, gives the daemon real epochs to serve.
// Each sweep config then pins `readers` threads on a query mix (price
// quote / path lookup / SLA status, round-robin) against the engine
// while a writer thread replays the run's committed epochs every
// `rollover_period_ms` (0 = no rollovers) under a synthetic,
// monotonically advancing completed-epochs counter (the hub's epoch
// guard rejects anything older, so a rotating counter would publish
// nothing) — the RCU swap the readers must never observe torn.
// Latency is sampled per query; the JSON reports q/s and
// p50/p99/p999/max microseconds, plus the rollover count and swap
// cost.
//
// A second sweep benches the replicated read tier (DESIGN.md §8.6):
// a follower bootstraps from the newest snapshot and tails the
// journal while the leader is still writing, across snapshot interval
// x epoch pacing. Reported per config: catch-up latency (cold start
// to fully caught up), mean/max observed lag in epochs, polls, and
// re-bootstraps (snapshot interval 0 = no snapshots, the follower
// replays the whole journal).
//
// Admission modes per config:
//   off      - metering without rejection (observe-only);
//   generous - admission on, quota far above the storm (0 rejects
//              expected: the control plane costs but never trips);
//   tight    - admission on, per-account quota sized to trip mid-run:
//              the reject fraction demonstrates over-quota accounts
//              being refused with structured errors while other
//              accounts keep being served.
//
// Usage: micro_serve [--smoke] [OUT.json]
//   --smoke: 1 config tier, 100 ms per config — the CI smoke mode.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/follower.hpp"
#include "sim/runtime.hpp"
#include "util/rng.hpp"

using namespace poc;

namespace {

struct Instance {
    net::Graph g;
    net::TrafficMatrix tm;
    std::vector<market::BpBid> bids;
    market::VirtualLinkContract contract;

    market::OfferPool pool() const { return market::OfferPool(bids, contract, g); }
};

/// Random connected multigraph (chain + extras) with every link
/// offered across 4 BPs — same family as micro_delta's instances.
Instance make_instance(std::size_t n, std::size_t demands, std::uint64_t seed) {
    util::Rng rng(seed);
    Instance inst;
    inst.g.add_nodes(n);
    for (std::size_t b = 0; b < 4; ++b) {
        inst.bids.emplace_back(market::BpId{b}, "BP" + std::to_string(b + 1));
    }
    const auto offer = [&](net::LinkId l) {
        const auto owner = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{4}));
        inst.bids[owner].offer(l, util::Money::from_dollars(rng.uniform(50.0, 500.0)));
    };
    for (std::size_t i = 0; i + 1 < n; ++i) {
        offer(inst.g.add_link(net::NodeId{i}, net::NodeId{i + 1}, rng.uniform(50.0, 400.0),
                              rng.uniform(100.0, 2000.0)));
    }
    for (std::size_t e = 0; e < 2 * n; ++e) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto b = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (a == b) b = (b + 1) % n;
        offer(inst.g.add_link(net::NodeId{a}, net::NodeId{b}, rng.uniform(50.0, 400.0),
                              rng.uniform(100.0, 2000.0)));
    }
    for (std::size_t d = 0; d < demands; ++d) {
        const auto s = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto t = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (s == t) t = (t + 1) % n;
        inst.tm.push_back({net::NodeId{s}, net::NodeId{t}, rng.uniform(0.05, 0.3)});
    }
    return inst;
}

struct Row {
    std::size_t readers = 0;
    double rollover_period_ms = 0.0;
    std::string admission;
    double duration_ms = 0.0;
    std::uint64_t queries = 0;
    double qps = 0.0;
    std::uint64_t rejects = 0;
    double reject_fraction = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
    double max_us = 0.0;
    std::uint64_t rollovers = 0;
    double mean_swap_ms = 0.0;
    double max_swap_ms = 0.0;
};

double percentile(std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

serve::MeterOptions meter_for(const std::string& admission) {
    serve::MeterOptions meter;
    meter.half_life_epochs = 8.0;
    if (admission == "off") {
        meter.admission_enabled = false;
        meter.quota_units = 1.0;  // irrelevant when disabled
    } else if (admission == "generous") {
        meter.quota_units = 1e12;
    } else {  // tight: trips after ~2000 units of recent usage
        meter.quota_units = 2000.0;
    }
    return meter;
}

Row run_config(const market::OfferPool& pool, const net::TrafficMatrix& tm,
               const sim::RuntimeOptions& ropt, const sim::RuntimeOutcome& out,
               std::size_t readers, double rollover_period_ms, const std::string& admission,
               double duration_ms) {
    Row row;
    row.readers = readers;
    row.rollover_period_ms = rollover_period_ms;
    row.admission = admission;
    row.duration_ms = duration_ms;

    serve::ServeOptions sopt;
    sopt.workers = 1;  // queries run on the bench's reader threads
    sopt.meter = meter_for(admission);
    serve::ServeEngine engine(pool, tm, ropt, sopt);

    // Seed the hub with the run's final epoch, as a live daemon would
    // hold after its last commit.
    const auto commit_at = [&](std::size_t e) {
        return sim::EpochCommit{out.epochs[e].epoch, e + 1, false, out.epochs[e],
                                out.auctions[e], out.ledger};
    };
    engine.publish(commit_at(out.epochs.size() - 1));

    std::atomic<bool> stop{false};
    std::vector<double> swap_ms;
    std::thread writer;
    if (rollover_period_ms > 0.0) {
        writer = std::thread([&] {
            // Replay the run's epochs under a synthetic advancing
            // counter: the hub's monotonic epoch guard would reject a
            // rotating completed_epochs as stale.
            std::size_t e = 0;
            std::size_t seq = out.epochs.size();
            while (!stop.load(std::memory_order_acquire)) {
                ++seq;
                const sim::EpochCommit commit{seq - 1, seq, false, out.epochs[e],
                                              out.auctions[e], out.ledger};
                const auto t0 = std::chrono::steady_clock::now();
                engine.publish(commit);
                swap_ms.push_back(std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() - t0)
                                      .count());
                e = (e + 1) % out.epochs.size();
                std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                    rollover_period_ms));
            }
        });
    }

    const std::size_t node_count = pool.graph().node_count();
    std::vector<std::vector<double>> lat_us(readers);
    std::vector<std::uint64_t> ok_counts(readers, 0);
    std::vector<std::thread> threads;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double, std::milli>(duration_ms);
    for (std::size_t t = 0; t < readers; ++t) {
        threads.emplace_back([&, t] {
            const std::string account = "reader-" + std::to_string(t);
            util::Rng rng(1000 + t);
            std::vector<double>& lat = lat_us[t];
            lat.reserve(1 << 16);
            std::uint64_t i = 0;
            while (std::chrono::steady_clock::now() < deadline) {
                const auto src = net::NodeId{static_cast<std::size_t>(
                    rng.uniform_int(static_cast<std::uint64_t>(node_count)))};
                const auto dst = net::NodeId{static_cast<std::size_t>(
                    rng.uniform_int(static_cast<std::uint64_t>(node_count)))};
                const auto q0 = std::chrono::steady_clock::now();
                serve::ServeError code = serve::ServeError::kOk;
                switch (i % 3) {
                    case 0: code = engine.quote(account, "BP1").code; break;
                    case 1: code = engine.path(account, src, dst).code; break;
                    default: code = engine.sla(account).code; break;
                }
                lat.push_back(std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - q0)
                                  .count());
                if (code != serve::ServeError::kOverQuota &&
                    code != serve::ServeError::kBillingRefused) {
                    ++ok_counts[t];
                }
                ++i;
            }
        });
    }
    for (std::thread& th : threads) th.join();
    stop.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();

    std::vector<double> all;
    for (const auto& lat : lat_us) all.insert(all.end(), lat.begin(), lat.end());
    std::sort(all.begin(), all.end());
    row.queries = all.size();
    row.qps = duration_ms > 0.0 ? static_cast<double>(all.size()) / (duration_ms / 1000.0)
                                : 0.0;
    row.rejects = engine.meter().rejected();
    row.reject_fraction =
        row.queries > 0 ? static_cast<double>(row.rejects) / static_cast<double>(row.queries)
                        : 0.0;
    row.p50_us = percentile(all, 0.50);
    row.p99_us = percentile(all, 0.99);
    row.p999_us = percentile(all, 0.999);
    row.max_us = all.empty() ? 0.0 : all.back();
    row.rollovers = engine.rollovers();
    for (const double s : swap_ms) {
        row.mean_swap_ms += s;
        row.max_swap_ms = std::max(row.max_swap_ms, s);
    }
    if (!swap_ms.empty()) row.mean_swap_ms /= static_cast<double>(swap_ms.size());
    return row;
}

struct FollowerRow {
    std::size_t snapshot_interval = 0;
    double epoch_period_ms = 0.0;
    std::size_t epochs = 0;
    double writer_ms = 0.0;
    double catchup_ms = 0.0;
    double mean_lag_epochs = 0.0;
    std::uint64_t max_lag_epochs = 0;
    std::uint64_t polls = 0;
    std::uint64_t rebootstraps = 0;
    std::uint64_t records_applied = 0;
};

/// One live-tail config: the leader runs `epochs` epochs (paced at
/// `epoch_period_ms` per epoch via its commit hook; 0 = flat out)
/// while a follower started at the same instant bootstraps and tails
/// to convergence. Lag is sampled after every poll.
FollowerRow run_follower_config(const market::OfferPool& pool, const net::TrafficMatrix& tm,
                                std::size_t epochs, std::size_t snapshot_interval,
                                double epoch_period_ms, const std::filesystem::path& dir) {
    FollowerRow row;
    row.snapshot_interval = snapshot_interval;
    row.epoch_period_ms = epoch_period_ms;
    row.epochs = epochs;

    const auto sub = dir / ("follower-" + std::to_string(snapshot_interval) + "-" +
                            std::to_string(static_cast<int>(epoch_period_ms * 1000)));
    std::filesystem::remove_all(sub);
    std::filesystem::create_directories(sub);

    sim::RuntimeOptions ropt;
    ropt.epochs = epochs;
    ropt.seed = 11;
    ropt.demand_jitter = 0.05;
    ropt.journal_path = (sub / "leader.wal").string();
    ropt.snapshot_interval = snapshot_interval;
    sim::RuntimeOptions leader_opt = ropt;  // the hook stays leader-side
    if (epoch_period_ms > 0.0) {
        leader_opt.on_epoch_commit = [epoch_period_ms](const sim::EpochCommit&) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(epoch_period_ms));
        };
    }

    std::atomic<double> writer_ms{0.0};
    std::thread writer([&] {
        const auto w0 = std::chrono::steady_clock::now();
        sim::EpochRuntime(pool, tm, leader_opt).run();
        writer_ms.store(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - w0)
                            .count());
    });

    serve::FollowerOptions fopt;
    fopt.runtime = ropt;
    serve::Follower follower(pool, tm, fopt);
    std::uint64_t lag_sum = 0;
    std::uint64_t lag_samples = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (follower.applied_epochs() < epochs) {
        const serve::FollowerPoll p = follower.poll();
        const std::uint64_t lag = follower.lag_epochs();
        lag_sum += lag;
        row.max_lag_epochs = std::max(row.max_lag_epochs, lag);
        ++lag_samples;
        if (!p.progressed) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }
    row.catchup_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    writer.join();
    row.writer_ms = writer_ms.load();
    row.mean_lag_epochs =
        lag_samples > 0 ? static_cast<double>(lag_sum) / static_cast<double>(lag_samples)
                        : 0.0;
    const serve::FollowerStats stats = follower.stats();
    row.polls = stats.polls;
    row.rebootstraps = stats.rebootstraps;
    row.records_applied = stats.records_applied;
    return row;
}

void print_follower_row(const FollowerRow& r) {
    std::cout << "follower: snapshot_interval=" << r.snapshot_interval << "  epoch_period="
              << r.epoch_period_ms << "ms  epochs=" << r.epochs << "  catchup="
              << r.catchup_ms << "ms  mean_lag=" << r.mean_lag_epochs << "  max_lag="
              << r.max_lag_epochs << "  polls=" << r.polls << "  rebootstraps="
              << r.rebootstraps << "\n";
}

void print_row(const Row& r) {
    std::cout << "readers=" << r.readers << "  rollover=" << r.rollover_period_ms
              << "ms  admission=" << r.admission << "  qps=" << r.qps
              << "  p50=" << r.p50_us << "us  p99=" << r.p99_us << "us  p999=" << r.p999_us
              << "us  rejects=" << r.rejects << " (" << r.reject_fraction * 100.0
              << "%)  rollovers=" << r.rollovers << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            out_path = argv[i];
        }
    }
    const double duration_ms = smoke ? 100.0 : 500.0;

    const Instance inst = make_instance(smoke ? 20 : 40, smoke ? 60 : 200, 9401);
    const market::OfferPool pool = inst.pool();

    const auto dir = std::filesystem::temp_directory_path() / "poc_micro_serve";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    sim::RuntimeOptions ropt;
    ropt.epochs = 8;
    ropt.seed = 11;
    ropt.demand_jitter = 0.05;
    ropt.journal_path = (dir / "serve.wal").string();
    const sim::RuntimeOutcome out = sim::EpochRuntime(pool, inst.tm, ropt).run();
    if (out.epochs.size() != ropt.epochs) {
        std::cerr << "runtime produced " << out.epochs.size() << " epochs, want "
                  << ropt.epochs << "\n";
        return 1;
    }

    const std::vector<std::size_t> reader_counts =
        smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 4, 8};
    const std::vector<double> rollover_periods =
        smoke ? std::vector<double>{2.0} : std::vector<double>{0.0, 10.0, 2.0};
    const std::vector<std::string> admissions = {"off", "generous", "tight"};

    std::vector<Row> rows;
    for (const std::size_t readers : reader_counts) {
        for (const double period : rollover_periods) {
            for (const std::string& admission : admissions) {
                rows.push_back(run_config(pool, inst.tm, ropt, out, readers, period,
                                          admission, duration_ms));
                print_row(rows.back());
            }
        }
    }
    // Replicated read tier: catch-up and lag across snapshot interval
    // x leader pacing, each against a genuinely live writer.
    const std::vector<std::size_t> snapshot_intervals =
        smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{0, 2, 4};
    const std::vector<double> epoch_periods =
        smoke ? std::vector<double>{1.0} : std::vector<double>{0.0, 2.0};
    const std::size_t follower_epochs = smoke ? 8 : 16;
    std::vector<FollowerRow> follower_rows;
    for (const std::size_t interval : snapshot_intervals) {
        for (const double period : epoch_periods) {
            follower_rows.push_back(run_follower_config(pool, inst.tm, follower_epochs,
                                                        interval, period, dir));
            print_follower_row(follower_rows.back());
        }
    }
    std::filesystem::remove_all(dir);

    // The tight tier must demonstrate admission actually rejecting,
    // and the others must stay reject-free: both are correctness
    // claims, not just timings.
    bool tight_rejected = false;
    bool clean_elsewhere = true;
    for (const Row& r : rows) {
        if (r.admission == "tight" && r.rejects > 0) tight_rejected = true;
        if (r.admission != "tight" && r.rejects > 0) clean_elsewhere = false;
    }
    if (!tight_rejected || !clean_elsewhere) {
        std::cerr << "admission sweep inconsistent: tight_rejected=" << tight_rejected
                  << " clean_elsewhere=" << clean_elsewhere << "\n";
        return 1;
    }

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"micro_serve\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"epochs_served\": " << out.epochs.size() << ",\n"
         << "  \"note\": \"reader threads on a quote/path/sla query mix against the RCU "
            "epoch hub while a writer republishes epochs every rollover_period_ms (0 = "
            "static); latency sampled per query; admission off = metering only, generous = "
            "quota never trips, tight = per-account quota trips mid-run (rejects are "
            "structured kOverQuota refusals, other accounts unaffected)\",\n"
         << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        json << "    {\"readers\": " << r.readers << ", \"rollover_period_ms\": "
             << r.rollover_period_ms << ", \"admission\": \"" << r.admission
             << "\", \"duration_ms\": " << r.duration_ms << ", \"queries\": " << r.queries
             << ", \"qps\": " << r.qps << ", \"rejects\": " << r.rejects
             << ", \"reject_fraction\": " << r.reject_fraction << ", \"p50_us\": " << r.p50_us
             << ", \"p99_us\": " << r.p99_us << ", \"p999_us\": " << r.p999_us
             << ", \"max_us\": " << r.max_us << ", \"rollovers\": " << r.rollovers
             << ", \"mean_swap_ms\": " << r.mean_swap_ms << ", \"max_swap_ms\": "
             << r.max_swap_ms << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"follower_note\": \"a read-only follower bootstraps from the newest "
            "snapshot and tails the live leader's journal to convergence; catchup_ms is "
            "cold start to fully caught up, lag sampled per poll in epochs "
            "(snapshot_interval 0 = no snapshots: full-journal replay)\",\n"
         << "  \"follower_rows\": [\n";
    for (std::size_t i = 0; i < follower_rows.size(); ++i) {
        const FollowerRow& r = follower_rows[i];
        json << "    {\"snapshot_interval\": " << r.snapshot_interval
             << ", \"epoch_period_ms\": " << r.epoch_period_ms << ", \"epochs\": " << r.epochs
             << ", \"writer_ms\": " << r.writer_ms << ", \"catchup_ms\": " << r.catchup_ms
             << ", \"mean_lag_epochs\": " << r.mean_lag_epochs << ", \"max_lag_epochs\": "
             << r.max_lag_epochs << ", \"polls\": " << r.polls << ", \"rebootstraps\": "
             << r.rebootstraps << ", \"records_applied\": " << r.records_applied << "}"
             << (i + 1 < follower_rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
