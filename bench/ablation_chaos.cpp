// Chaos ablation: degradation curves under correlated faults, sweeping
// failure intensity x auction resilience constraint (#1/#2/#3).
//
// The paper's implicit operational claim (sections 3.2-3.3) is that
// stricter acceptability constraints buy measurably better behavior
// under failure: the auction pre-provisions backup capacity, and the
// external-ISP virtual links bound the damage as fallback of last
// resort. This bench makes that claim quantitative. For each intensity
// we draw ONE correlated fault trace (shared-risk conduit cuts, router
// outages, BP-wide withdrawals, brownouts) and replay it against
// backbones provisioned under each constraint, reporting delivered
// fraction, downtime, off-cycle re-auctions, time-to-restore, and
// recovery cost.
//
// Environment knobs: POC_CHAOS_FULL=1 runs the fig2-scale instance;
// POC_CHAOS_SEED overrides the topology/fault seed; POC_CHAOS_EPOCHS
// overrides the horizon (default 6).
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "market/pricing.hpp"
#include "obs/snapshot.hpp"
#include "sim/chaos.hpp"
#include "topo/traffic.hpp"
#include "util/csv_export.hpp"
#include "util/table.hpp"

using namespace poc;

namespace {

struct Config {
    bool full = false;
    std::uint64_t seed = 42;
    std::size_t epochs = 6;
};

Config read_config() {
    Config cfg;
    if (const char* f = std::getenv("POC_CHAOS_FULL"); f != nullptr && f[0] == '1') {
        cfg.full = true;
    }
    if (const char* s = std::getenv("POC_CHAOS_SEED"); s != nullptr) {
        cfg.seed = static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
    }
    if (const char* e = std::getenv("POC_CHAOS_EPOCHS"); e != nullptr) {
        cfg.epochs = static_cast<std::size_t>(std::strtoull(e, nullptr, 10));
    }
    return cfg;
}

}  // namespace

int main() {
    const Config cfg = read_config();

    topo::BpGeneratorOptions bopt;
    bopt.seed = cfg.seed;
    topo::PocTopologyOptions popt;
    topo::GravityOptions gopt;
    std::size_t top_n = 30;
    if (cfg.full) {
        gopt.total_gbps = 5000.0;
        top_n = 60;
    } else {
        bopt.bp_count = 8;
        bopt.min_cities = 8;
        bopt.max_cities = 18;
        popt.min_colocated_bps = 3;
        gopt.total_gbps = 800.0;
    }

    auto bps = topo::generate_bp_networks(bopt);
    auto topology = topo::build_poc_topology(bps, popt);
    const auto srlgs = sim::shared_risk_groups(topology);
    const market::OfferPool pool = market::make_offer_pool(topology);
    const auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), top_n);

    std::cout << "=== Chaos ablation: failure intensity x resilience constraint ===\n";
    std::cout << "POC network: " << topology.router_city.size() << " routers, "
              << topology.graph.link_count() << " offered links, " << topology.bp_count
              << " BPs, " << srlgs.size() << " shared-risk groups\n";
    std::cout << "Traffic: " << tm.size() << " demands, " << net::total_demand(tm)
              << " Gbps; horizon " << cfg.epochs << " epochs\n\n";

    const double intensities[] = {0.5, 1.0, 2.0, 4.0};
    const market::ConstraintKind kinds[] = {market::ConstraintKind::kLoad,
                                            market::ConstraintKind::kSingleFailure,
                                            market::ConstraintKind::kPerPairFailure};

    util::Table table({"constraint", "intensity", "faults", "mean-deliv", "min-deliv",
                       "undeliv(gbps-ep)", "reauctions", "restore(ep)", "recovery-cost",
                       "baseline-outlay", "time(s)"});

    // Per-epoch rows sourced from the obs metrics layer: each epoch's
    // ChaosOptions::on_epoch callback captures a registry snapshot and
    // diffs it against the previous epoch's, so SLA violations, degraded
    // epochs, and recovery re-auction latency come from the same
    // counters/histograms production monitoring would read — not from
    // the SlaRecord the simulator hands back. A re-auction scheduled by
    // epoch e runs before epoch e+1's measurement, so its latency lands
    // in epoch e+1's delta (see ChaosOptions::on_epoch).
    util::Table obs_table({"constraint", "intensity", "epoch", "sla-violation", "degraded",
                           "faults-active", "reauctions", "reauction-ms",
                           "emergency-virtual", "delivered"});

    for (const double intensity : intensities) {
        sim::FaultInjectorOptions iopt;
        iopt.epochs = cfg.epochs;
        iopt.intensity = intensity;
        iopt.seed = cfg.seed;
        // One trace per intensity, replayed against every constraint:
        // the comparison is apples-to-apples by construction.
        const auto trace = sim::draw_fault_trace(pool, srlgs, iopt);

        for (const market::ConstraintKind kind : kinds) {
            sim::ChaosOptions copt;
            copt.epochs = cfg.epochs;
            copt.request.constraint = kind;
            copt.request.oracle.fidelity = market::OracleFidelity::kFast;
#if POC_OBS_ENABLED
            obs::Snapshot prev = obs::Snapshot::capture();
            copt.on_epoch = [&](const sim::SlaRecord& rec) {
                obs::Snapshot snap = obs::Snapshot::capture();
                const obs::Snapshot d = snap.delta_since(prev);
                prev = std::move(snap);
                const obs::HistogramSample* rh = d.histogram("sim.chaos.reauction_ms");
                const bool reauctioned = rh != nullptr && rh->total > 0;
                obs_table.add_row(
                    {market::constraint_name(kind), util::cell(intensity, 1),
                     util::cell(rec.epoch), util::cell(d.counter_or("sim.chaos.sla_violations")),
                     util::cell(d.counter_or("sim.chaos.degraded_epochs")),
                     util::cell(rec.faults_active),
                     util::cell(d.counter_or("sim.chaos.reauctions") +
                                d.counter_or("sim.chaos.failed_reauctions")),
                     reauctioned
                         ? util::cell(rh->sum / static_cast<double>(rh->total), 2)
                         : "-",
                     util::Money::from_micros(static_cast<std::int64_t>(
                                                  d.counter_or("sim.chaos.emergency_virtual_microusd")))
                         .str(),
                     util::cell(rec.delivered_fraction, 4)});
            };
#endif

            const auto t0 = std::chrono::steady_clock::now();
            const sim::ChaosOutcome r = sim::run_chaos(pool, tm, trace, copt);
            const double seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

            std::vector<std::string> cells{market::constraint_name(kind),
                                           util::cell(intensity, 1),
                                           util::cell(trace.size())};
            if (!r.provisioned) {
                cells.insert(cells.end(),
                             {"INFEASIBLE", "-", "-", "-", "-", "-", "-",
                              util::cell(seconds, 1)});
            } else {
                cells.push_back(util::cell(r.mean_delivered_fraction, 4));
                cells.push_back(util::cell(r.min_delivered_fraction, 4));
                cells.push_back(util::cell(r.total_undelivered_gbps, 1));
                cells.push_back(util::cell(r.reauction_count) +
                                (r.failed_reauctions > 0
                                     ? "(+" + std::to_string(r.failed_reauctions) + " failed)"
                                     : ""));
                cells.push_back(util::cell(r.epochs_to_restore));
                cells.push_back(r.total_recovery_cost.str());
                cells.push_back(r.baseline_outlay.str());
                cells.push_back(util::cell(seconds, 1));
            }
            table.add_row(std::move(cells));
        }
    }

    std::cout << table.render();
    util::maybe_export_csv(table, "ablation_chaos");
#if POC_OBS_ENABLED
    std::cout << "\n=== Per-epoch SLA/recovery telemetry (obs snapshot deltas) ===\n";
    std::cout << obs_table.render();
    util::maybe_export_csv(obs_table, "ablation_chaos_obs");
#else
    std::cout << "\n(per-epoch obs telemetry unavailable: built with POC_OBS_DISABLED)\n";
#endif
    std::cout << "\nReading: at fixed intensity, the delivered-fraction columns should\n"
                 "improve monotonically from constraint #1 to #3 (the auction's\n"
                 "pre-provisioned backup capacity absorbing the same fault trace),\n"
                 "while baseline outlay rises: resilience is bought, not free.\n";
    return 0;
}
