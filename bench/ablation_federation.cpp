// Ablation (section 1.2): "there could be several coexisting (and
// interconnected) POCs, run by different entities but adopting the same
// basic principles". This bench splits the continental market into
// regional POCs by longitude, provisions each against its regional
// traffic plus gateway-hauled cross traffic, prices the inter-POC
// circuits at contract rates, and compares against the single global
// POC - quantifying what market fragmentation costs.
#include <algorithm>
#include <iostream>

#include "core/federation.hpp"
#include "market/pricing.hpp"
#include "topo/traffic.hpp"
#include "util/table.hpp"

using namespace poc;

namespace {

/// Region assignment by longitude quantiles.
std::vector<std::uint32_t> longitude_regions(const topo::PocTopology& topology,
                                             std::uint32_t regions) {
    const auto& cities = topo::world_cities();
    std::vector<double> lons;
    for (const std::size_t ci : topology.router_city) {
        lons.push_back(cities[ci].location.lon_deg);
    }
    std::vector<double> sorted = lons;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::uint32_t> assignment(lons.size(), 0);
    for (std::size_t i = 0; i < lons.size(); ++i) {
        for (std::uint32_t r = 1; r < regions; ++r) {
            const double cut = sorted[sorted.size() * r / regions];
            if (lons[i] >= cut) assignment[i] = r;
        }
    }
    return assignment;
}

}  // namespace

int main() {
    std::cout << "=== Ablation: one global POC vs a federation of regional POCs ===\n\n";

    topo::BpGeneratorOptions bopt;
    bopt.bp_count = 12;
    bopt.min_cities = 10;
    bopt.max_cities = 24;
    bopt.seed = 21;
    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    auto topology = topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
    const market::OfferPool pool(market::make_bp_bids(topology), {}, topology.graph);

    // A long-haul-heavy matrix (weak distance decay): with the default
    // gravity decay almost all top demands are intra-region and the
    // federation question is moot; global CDNs/content flows are what
    // cross-region transit actually carries.
    topo::GravityOptions gopt;
    gopt.total_gbps = 1200.0;
    gopt.distance_gamma = 0.2;
    const auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 40);

    std::cout << topology.router_city.size() << " routers, " << pool.offered_links().size()
              << " offered links, " << net::total_demand(tm) << " Gbps\n\n";

    util::Table table({"POCs", "cross-region Gbps", "interconnect", "regional outlays",
                       "federated total", "vs single POC"});
    std::optional<util::Money> single;
    for (const std::uint32_t regions : {2u, 3u, 4u}) {
        core::FederationOptions fopt;
        market::OracleOptions oopt;
        oopt.fidelity = market::OracleFidelity::kFast;
        fopt.oracle = oopt;
        const auto result = core::compare_federation(
            pool, tm, longitude_regions(topology, regions), regions, fopt);
        if (!single) single = result.single_poc_outlay;
        util::Money regional{};
        for (const auto& r : result.regions) regional += r.outlay;
        std::string vs = "-";
        if (single && !single->is_zero() && result.all_provisioned) {
            vs = util::cell_pct(util::ratio(result.federated_outlay, *single));
        } else if (!result.all_provisioned) {
            vs = "region infeasible";
        }
        table.add_row({util::cell(std::size_t{regions}), util::cell(result.cross_region_gbps, 0),
                       result.interconnect_cost.str(), regional.str(),
                       result.federated_outlay.str(), vs});
    }
    std::cout << "Single global POC outlay: " << (single ? single->str() : "INFEASIBLE")
              << "\n\n";
    std::cout << table.render();
    std::cout << "\nReading: federation pays for cross-region traffic twice (gateway\n"
                 "hauling inside each region plus interconnect circuits), and that\n"
                 "overhead grows with the number of POCs. When traffic is strongly\n"
                 "regional the split is nearly free - consistent with the paper's\n"
                 "claim that several coexisting POCs 'adopting the same basic\n"
                 "principles' are viable; a long-haul-heavy matrix is where the\n"
                 "single global POC's pooled competition wins.\n";
    return 0;
}
