// Microbenchmarks for the economics layer: the optimizers the regime
// evaluations call thousands of times in parameter sweeps.
#include <benchmark/benchmark.h>

#include "econ/market_model.hpp"

using namespace poc;

namespace {

void BM_MonopolyPrice(benchmark::State& state) {
    const econ::LinearDemand d(100.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(econ::monopoly_price(d));
    }
}
BENCHMARK(BM_MonopolyPrice);

void BM_CspPriceGivenFee(benchmark::State& state) {
    const econ::ExponentialDemand d(40.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(econ::csp_price_given_fee(d, 20.0));
    }
}
BENCHMARK(BM_CspPriceGivenFee);

void BM_LmpOptimalFee(benchmark::State& state) {
    const econ::LinearDemand d(100.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(econ::lmp_optimal_fee(d));
    }
}
BENCHMARK(BM_LmpOptimalFee)->Unit(benchmark::kMillisecond);

void BM_BargainingEquilibrium(benchmark::State& state) {
    const econ::LinearDemand d(100.0);
    const std::vector<econ::LmpProfile> lmps{{"a", 3.0, 50.0, 0.1}, {"b", 1.0, 40.0, 0.3}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(econ::bargaining_equilibrium(d, lmps));
    }
}
BENCHMARK(BM_BargainingEquilibrium)->Unit(benchmark::kMillisecond);

void BM_WelfareIntegralAnalytic(benchmark::State& state) {
    const econ::IsoelasticDemand d(10.0, 2.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(econ::social_welfare(d, 25.0));
    }
}
BENCHMARK(BM_WelfareIntegralAnalytic);

void BM_WelfareIntegralQuadrature(benchmark::State& state) {
    // Empirical demand exercises the generic adaptive-Simpson path in
    // DemandCurve::demand_integral? No: EmpiricalDemand is exact too.
    // Use a custom curve without an analytic override instead.
    class Wiggly final : public econ::DemandCurve {
    public:
        double demand(double p) const override {
            return 1.0 / (1.0 + p / 20.0 + 0.01 * p * p / 40.0);
        }
        double upper_support() const override { return 400.0; }
        std::string name() const override { return "wiggly"; }
    };
    const Wiggly d;
    for (auto _ : state) {
        benchmark::DoNotOptimize(econ::consumer_welfare(d, 10.0));
    }
}
BENCHMARK(BM_WelfareIntegralQuadrature);

void BM_FullRegimeEvaluation(benchmark::State& state) {
    econ::Market market;
    market.lmps = {{"a", 3.0, 50.0, 0.0}, {"b", 1.0, 40.0, 0.0}};
    for (int s = 0; s < 4; ++s) {
        econ::CspProfile csp;
        csp.name = "csp" + std::to_string(s);
        csp.demand = std::make_shared<econ::LinearDemand>(20.0 + 5.0 * s);
        csp.churn_by_lmp = {0.05 + 0.02 * s, 0.2 + 0.05 * s};
        market.csps.push_back(std::move(csp));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(econ::evaluate_all(market));
    }
}
BENCHMARK(BM_FullRegimeEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace
