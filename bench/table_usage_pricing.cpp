// Section 3.2/3.4 retail-pricing discussion, quantified: "LMPs might
// charge home users a flat price, or a strictly usage-based charge, or
// some form of tiered service ... a tension between giving users some
// predictability in costs, while also charging based on usage". We
// price a heavy-tailed usage population at exact break-even under all
// three schemes and measure the cross-subsidy each one creates.
#include <iostream>

#include "econ/usage_pricing.hpp"
#include "util/csv_export.hpp"
#include "util/table.hpp"

using namespace poc;

int main() {
    std::cout << "=== Section 3.2/3.4: LMP retail pricing schemes ===\n\n";

    econ::UsagePopulationOptions popt;
    popt.users = 50'000;
    const auto usage = econ::draw_usage_population(popt);
    double total = 0.0;
    double max_gb = 0.0;
    for (const double gb : usage) {
        total += gb;
        max_gb = std::max(max_gb, gb);
    }
    const econ::LmpCostModel cost{20.0, 0.05};
    std::cout << popt.users << " subscribers, mean usage "
              << util::cell(total / static_cast<double>(popt.users), 1) << " GB/month (max "
              << util::cell(max_gb, 0) << "); LMP cost = $" << cost.fixed_per_user
              << "/user + $" << cost.per_gb << "/GB\n\n";

    econ::TieredParams tiered;
    tiered.allowance_gb = 200.0;
    tiered.overage_markup = 1.5;

    util::Table table({"scheme", "break-even parameter", "mean bill", "min bill", "max bill",
                       "cross-subsidy"});
    for (const econ::PricingOutcome& o : econ::price_population_all(usage, cost, tiered)) {
        std::string param;
        switch (o.scheme) {
            case econ::PricingScheme::kFlat:
                param = "$" + util::cell(o.price_parameter, 2) + "/mo";
                break;
            case econ::PricingScheme::kUsage:
                param = "$" + util::cell(o.price_parameter, 4) + "/GB";
                break;
            case econ::PricingScheme::kTiered:
                param = "$" + util::cell(o.price_parameter, 2) + "/mo + 1.5x cost overage";
                break;
        }
        table.add_row({econ::scheme_name(o.scheme), param, util::cell(o.mean_bill, 2),
                       util::cell(o.min_bill, 2), util::cell(o.max_bill, 2),
                       util::cell_pct(o.cross_subsidy_index)});
    }
    std::cout << table.render();
    util::maybe_export_csv(table, "usage_pricing");

    std::cout << "\nReading: every scheme recovers cost exactly (the break-even\n"
                 "discipline of section 3.2), but they distribute it differently. Flat\n"
                 "pricing makes light users fund the heavy tail's volume; pure usage\n"
                 "pricing swings the other way - heavy users end up funding everyone's\n"
                 "*fixed* costs. The tiered scheme is a two-part tariff and tracks\n"
                 "cost causation best (lowest cross-subsidy): exactly the 'practical\n"
                 "solution' to the predictability/usage tension the paper expects the\n"
                 "market to find. Termination fees are not needed for any of them.\n";
    return 0;
}
