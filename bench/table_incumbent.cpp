// Section 4.5, incumbent advantage: "well-established LMPs can extract
// more in termination fees than smaller ones" and "a significant
// competitive advantage to CSPs with large market share, because they
// can pay less in termination fees". This bench sweeps churn rates on
// both sides and prints the negotiated-fee asymmetry.
#include <iostream>
#include <memory>

#include "econ/market_model.hpp"
#include "util/csv_export.hpp"
#include "util/table.hpp"

using namespace poc;

int main() {
    std::cout << "=== Section 4.5: incumbent advantage under termination fees ===\n\n";

    const auto demand = std::make_shared<econ::LinearDemand>(20.0);

    // --- LMP side: fee extracted vs how entrenched the LMP is. -------
    // r_l^s is the share of customers the LMP loses if it blocks s:
    // small for entrenched incumbents, large for fragile entrants.
    std::cout << "LMP side - equilibrium fee earned per subscriber of one CSP,\n"
                 "as a function of the LMP's fragility (churn if the CSP is lost):\n";
    util::Table lmp_side({"LMP churn r", "equilibrium fee", "vs most entrenched"});
    double fee_at_low_churn = 0.0;
    for (const double churn : {0.02, 0.05, 0.10, 0.20, 0.40, 0.60}) {
        const std::vector<econ::LmpProfile> lmps{{"L", 1.0, 20.0, churn}};
        const auto eq = econ::bargaining_equilibrium(*demand, lmps);
        if (churn == 0.02) fee_at_low_churn = eq.avg_fee;
        lmp_side.add_row({util::cell(churn, 2), util::cell(eq.avg_fee, 3),
                          fee_at_low_churn > 0.0
                              ? util::cell_pct(eq.avg_fee / fee_at_low_churn)
                              : "-"});
    }
    std::cout << lmp_side.render();
    util::maybe_export_csv(lmp_side, "incumbent_lmp_side");

    // --- CSP side: fee paid vs how must-have the CSP is. -------------
    std::cout << "\nCSP side - two CSPs with *identical* demand, different stickiness\n"
                 "(the LMP loses more customers when blocking the incumbent CSP):\n";
    util::Table csp_side({"CSP", "churn if blocked", "avg fee paid", "posted price",
                          "CSP profit"});
    econ::Market market;
    market.lmps = {{"LMP", 1.0, 20.0, 0.0}};
    for (const auto& [name, churn] : std::vector<std::pair<std::string, double>>{
             {"IncumbentCSP", 0.50}, {"MidCSP", 0.20}, {"EntrantCSP", 0.02}}) {
        econ::CspProfile csp;
        csp.name = name;
        csp.demand = demand;
        csp.churn_by_lmp = {churn};
        market.csps = {csp};
        const auto report = econ::evaluate(market, econ::Regime::kBargainedFees);
        const econ::CspOutcome& o = report.csp_outcomes[0];
        csp_side.add_row({name, util::cell(churn, 2), util::cell(o.avg_fee, 3),
                          util::cell(o.posted_price, 3), util::cell(o.csp_profit, 3)});
    }
    std::cout << csp_side.render();
    util::maybe_export_csv(csp_side, "incumbent_csp_side");

    std::cout << "\nShape check vs paper: fees are monotone *decreasing* in the LMP's\n"
                 "own fragility (entrenched LMPs extract more) and monotone decreasing\n"
                 "in the CSP's stickiness (incumbent CSPs pay less and keep higher\n"
                 "profit). Both asymmetries 'systematically favor established\n"
                 "incumbents in both the LMP and CSP markets' (section 4.5) - the\n"
                 "reason the POC's terms of service ban termination fees.\n";
    return 0;
}
