// Overhead budget for the src/obs observability layer (DESIGN.md §5a).
//
// Two sections:
//
//  1. Op costs: ns per counter add / gauge add / histogram record /
//     span, uncontended (one thread) and contended (4 threads hammering
//     the *same* metric names — the sharded-counter worst case).
//  2. Auction overhead: wall time of an instrumented
//     `market::run_auction` on a mid-size topology instance. Run the
//     POC_OBS_DISABLED build of this binary first, then pass its
//     auction ms as argv[2] to the instrumented build; the JSON then
//     records the instrumented-vs-disabled delta that the acceptance
//     budget (<= 5%) is judged against.
//
// Usage: micro_obs [out.json] [baseline_auction_ms]
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "topo/traffic.hpp"

using namespace poc;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/// Time `ops` iterations of `body` and return ns/op (best of reps).
template <typename Fn>
double time_op(std::size_t ops, int reps, Fn&& body) {
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < ops; ++i) body(i);
        const auto t1 = Clock::now();
        const double ns = elapsed_ns(t0, t1) / static_cast<double>(ops);
        if (rep == 0 || ns < best) best = ns;
    }
    return best;
}

/// Same body run from `threads` threads concurrently against shared
/// metric state; returns aggregate ns per op (wall time * threads /
/// total ops, i.e. cost as seen by one op when everyone contends).
template <typename Fn>
double time_op_contended(std::size_t threads, std::size_t ops_per_thread, Fn&& body) {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const auto t0 = Clock::now();
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&body, ops_per_thread] {
            for (std::size_t i = 0; i < ops_per_thread; ++i) body(i);
        });
    }
    for (auto& th : pool) th.join();
    const auto t1 = Clock::now();
    return elapsed_ns(t0, t1) * static_cast<double>(threads) /
           static_cast<double>(threads * ops_per_thread);
}

struct OpRow {
    std::string op;
    double uncontended_ns = 0.0;
    double contended_ns = 0.0;
};

/// Mid-size auction instance (micro_auction's topology shape).
struct Instance {
    market::OfferPool pool;
    net::TrafficMatrix tm;
    market::OracleOptions oopt;
};

Instance auction_instance() {
    topo::BpGeneratorOptions bopt;
    bopt.bp_count = 8;
    bopt.min_cities = 6;
    bopt.max_cities = 12;
    bopt.seed = 7002;
    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    static std::deque<topo::PocTopology> topologies;
    topologies.push_back(topo::build_poc_topology(topo::generate_bp_networks(bopt), popt));
    topo::PocTopology& topology = topologies.back();
    market::VirtualLinkOptions vopt;
    vopt.attach_count = std::min<std::size_t>(3, topology.router_city.size());
    auto pool = market::make_offer_pool(topology, {}, vopt);
    topo::GravityOptions gopt;
    gopt.total_gbps = 300.0;
    auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 20);
    Instance inst{std::move(pool), std::move(tm), {}};
    inst.oopt.fidelity = market::OracleFidelity::kFast;
    return inst;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
    const double baseline_ms = argc > 2 ? std::atof(argv[2]) : 0.0;

    constexpr std::size_t kOps = 2'000'000;
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kOpsPerThread = 500'000;
    constexpr int kReps = 3;

    std::vector<OpRow> ops;

    // Counter add: the hot-path primitive every instrumented layer uses.
    {
        OpRow row{"counter_add", 0.0, 0.0};
        row.uncontended_ns =
            time_op(kOps, kReps, [](std::size_t) { POC_OBS_INC("bench.obs.counter"); });
        row.contended_ns = time_op_contended(
            kThreads, kOpsPerThread, [](std::size_t) { POC_OBS_INC("bench.obs.counter_c"); });
        ops.push_back(row);
    }
    // Gauge add (queue-depth style).
    {
        OpRow row{"gauge_add", 0.0, 0.0};
        row.uncontended_ns =
            time_op(kOps, kReps, [](std::size_t) { POC_OBS_GAUGE_ADD("bench.obs.gauge", 1); });
        row.contended_ns = time_op_contended(
            kThreads, kOpsPerThread, [](std::size_t) { POC_OBS_GAUGE_ADD("bench.obs.gauge_c", 1); });
        ops.push_back(row);
    }
    // Histogram record (latency-sample style).
    {
        OpRow row{"histogram_record", 0.0, 0.0};
        row.uncontended_ns = time_op(kOps, kReps, [](std::size_t i) {
            POC_OBS_HISTOGRAM("bench.obs.hist", 0.0, 100.0, 50,
                              static_cast<double>(i % 100));
        });
        row.contended_ns = time_op_contended(kThreads, kOpsPerThread, [](std::size_t i) {
            POC_OBS_HISTOGRAM("bench.obs.hist_c", 0.0, 100.0, 50,
                              static_cast<double>(i % 100));
        });
        ops.push_back(row);
    }
    // Span: two clock reads plus a ring-buffer write on destruction.
    // Fewer ops: each one buffers a record (ring overwrites keep memory
    // bounded, but the per-op cost includes the ring mutex).
    {
        constexpr std::size_t kSpanOps = 200'000;
        constexpr std::size_t kSpanOpsPerThread = 50'000;
        OpRow row{"span", 0.0, 0.0};
        row.uncontended_ns =
            time_op(kSpanOps, kReps, [](std::size_t) { POC_OBS_SPAN("bench.obs.span"); });
        row.contended_ns = time_op_contended(kThreads, kSpanOpsPerThread,
                                             [](std::size_t) { POC_OBS_SPAN("bench.obs.span_c"); });
        ops.push_back(row);
#if POC_OBS_ENABLED
        obs::traces().drain();  // discard bench spans
#endif
    }

    for (const OpRow& r : ops) {
        std::cout << r.op << "  uncontended=" << r.uncontended_ns
                  << " ns/op  contended(" << kThreads << "t)=" << r.contended_ns << " ns/op\n";
    }

    // Auction overhead section.
    Instance inst = auction_instance();
    market::AuctionOptions aopt;
    double auction_ms = 0.0;
    constexpr int kAuctionReps = 5;
    for (int rep = 0; rep < kAuctionReps; ++rep) {
        const market::AcceptabilityOracle oracle(inst.pool.graph(), inst.tm,
                                                 market::ConstraintKind::kLoad, inst.oopt);
        const auto t0 = Clock::now();
        const auto result = market::run_auction(inst.pool, oracle, aopt);
        const auto t1 = Clock::now();
        if (!result) {
            std::cerr << "auction instance infeasible\n";
            return 1;
        }
        const double ms = elapsed_ns(t0, t1) / 1e6;
        if (rep == 0 || ms < auction_ms) auction_ms = ms;
    }
    const double overhead_pct =
        baseline_ms > 0.0 ? (auction_ms - baseline_ms) / baseline_ms * 100.0 : 0.0;

    std::cout << "auction (obs " << (POC_OBS_ENABLED ? "enabled" : "disabled")
              << "): " << auction_ms << " ms";
    if (baseline_ms > 0.0) {
        std::cout << "  baseline=" << baseline_ms << " ms  overhead=" << overhead_pct << "%";
    }
    std::cout << "\n";

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"micro_obs\",\n"
        << "  \"obs_enabled\": " << (POC_OBS_ENABLED ? "true" : "false") << ",\n"
        << "  \"hardware_threads\": "
        << std::max<unsigned>(1, std::thread::hardware_concurrency()) << ",\n"
        << "  \"contended_threads\": " << kThreads << ",\n"
        << "  \"reps\": " << kReps << ",\n"
        << "  \"note\": \"ns/op best of reps; contended = 4 threads on the same metric; "
           "auction overhead compares this build to the POC_OBS_DISABLED baseline passed "
           "as argv[2]\",\n"
        << "  \"ops\": [\n";
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const OpRow& r = ops[i];
        out << "    {\"op\": \"" << r.op << "\", \"uncontended_ns\": " << r.uncontended_ns
            << ", \"contended_ns\": " << r.contended_ns << "}"
            << (i + 1 < ops.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"auction\": {\"instance\": \"topo-8bp\", \"reps\": " << kAuctionReps
        << ", \"ms\": " << auction_ms << ", \"baseline_disabled_ms\": " << baseline_ms
        << ", \"overhead_pct\": " << overhead_pct << "}\n"
        << "}\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
