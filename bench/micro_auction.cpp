// Perf baseline for the auction engine (DESIGN.md §5): sweeps BP count
// × link count × engine mode (serial / parallel / cached /
// parallel+cached, plus the exact solver on a small instance), times
// `market::run_auction`, verifies every mode produces the bit-identical
// AuctionResult, and emits BENCH_auction.json for regression tracking.
//
// Speedups are hardware-dependent: the parallel rows only beat serial
// when std::thread::hardware_concurrency() > 1. The JSON records the
// actual thread count of the machine that produced it, so a 1-core CI
// runner's ~1.0x rows are honest rather than wrong.
#include <chrono>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "topo/traffic.hpp"
#include "util/rng.hpp"

using namespace poc;

namespace {

struct Instance {
    std::string label;
    std::size_t bp_count = 0;
    market::OfferPool pool;
    net::TrafficMatrix tm;
    market::OracleOptions oopt;
    bool exact = false;
};

/// Generated-topology instance (the Figure-2 pipeline shape at bench
/// scale), fast oracle, heuristic solver.
Instance topology_instance(std::size_t bp_count, std::size_t max_cities, std::uint64_t seed) {
    topo::BpGeneratorOptions bopt;
    bopt.bp_count = bp_count;
    bopt.min_cities = 6;
    bopt.max_cities = max_cities;
    bopt.seed = seed;
    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    // The OfferPool references the topology's graph, so the topology
    // must outlive the Instance: park it at a stable address.
    static std::deque<topo::PocTopology> topologies;
    topologies.push_back(topo::build_poc_topology(topo::generate_bp_networks(bopt), popt));
    topo::PocTopology& topology = topologies.back();
    market::VirtualLinkOptions vopt;
    vopt.attach_count = std::min<std::size_t>(3, topology.router_city.size());
    auto pool = market::make_offer_pool(topology, {}, vopt);
    topo::GravityOptions gopt;
    gopt.total_gbps = 300.0;
    auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 20);

    Instance inst{"topology", bp_count, std::move(pool), std::move(tm), {}, false};
    inst.oopt.fidelity = market::OracleFidelity::kFast;
    std::ostringstream label;
    label << "topo-" << bp_count << "bp";
    inst.label = label.str();
    return inst;
}

/// Small random parallel/serial instance where the exact branch-and-bound
/// solver is feasible; its pivot searches revisit many link subsets, so
/// this is where the solve/verdict memo pays even on one core.
Instance exact_instance(std::size_t links, std::uint64_t seed) {
    util::Rng rng(seed);
    net::Graph graph;
    graph.add_nodes(3);
    std::vector<market::BpBid> bids;
    for (std::size_t b = 0; b < 3; ++b) {
        bids.emplace_back(market::BpId{b}, "BP" + std::to_string(b + 1));
    }
    for (std::size_t i = 0; i < links; ++i) {
        const auto u = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{3}));
        const std::size_t v =
            (u + 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{2}))) % 3;
        const net::LinkId l = graph.add_link(net::NodeId{u}, net::NodeId{v},
                                             rng.uniform(5.0, 15.0), rng.uniform(1.0, 4.0));
        bids[static_cast<std::size_t>(rng.uniform_int(std::uint64_t{3}))].offer(
            l, util::Money::from_dollars(rng.uniform(50.0, 500.0)));
    }
    net::TrafficMatrix tm{{net::NodeId{0u}, net::NodeId{1u}, rng.uniform(2.0, 6.0)},
                          {net::NodeId{1u}, net::NodeId{2u}, rng.uniform(2.0, 6.0)}};
    // The graph must outlive the OfferPool, which holds a reference to
    // it; park it in a function-static deque (stable addresses).
    static std::deque<net::Graph> graphs;
    graphs.push_back(std::move(graph));
    Instance inst{"exact-" + std::to_string(links) + "l", 3,
                  market::OfferPool(bids, {}, graphs.back()), std::move(tm), {}, true};
    return inst;
}

bool same_result(const market::AuctionResult& a, const market::AuctionResult& b) {
    if (a.selection.links != b.selection.links || a.selection.cost != b.selection.cost ||
        a.virtual_cost != b.virtual_cost || a.total_outlay != b.total_outlay ||
        a.outcomes.size() != b.outcomes.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        const auto& x = a.outcomes[i];
        const auto& y = b.outcomes[i];
        if (x.bp != y.bp || x.selected_links != y.selected_links || x.bid_cost != y.bid_cost ||
            x.cost_without != y.cost_without || x.payment != y.payment ||
            x.pivot_defined != y.pivot_defined || x.pob != y.pob) {
            return false;
        }
    }
    return true;
}

struct Mode {
    const char* name;
    std::size_t threads;
    bool cache;
};

struct Row {
    std::string instance;
    std::size_t bp_count = 0;
    std::size_t offered_links = 0;
    std::string mode;
    std::size_t threads = 1;
    bool cache = false;
    double ms = 0.0;
    double speedup_vs_serial = 1.0;
    std::size_t oracle_queries = 0;
    std::size_t oracle_cache_hits = 0;
    std::size_t solve_cache_hits = 0;
};

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_auction.json";
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t par = std::max<std::size_t>(2, hw);
    const Mode modes[] = {
        {"serial", 1, false},
        {"parallel", par, false},
        {"cached", 1, true},
        {"parallel+cached", par, true},
    };

    std::vector<Instance> instances;
    instances.push_back(topology_instance(6, 10, 7001));
    instances.push_back(topology_instance(8, 12, 7002));
    instances.push_back(topology_instance(10, 14, 7003));
    instances.push_back(exact_instance(10, 7101));
    instances.push_back(exact_instance(12, 7102));

    std::vector<Row> rows;
    bool all_identical = true;
    constexpr int kReps = 3;

    for (const Instance& inst : instances) {
        std::optional<market::AuctionResult> reference;
        double serial_ms = 0.0;
        for (const Mode& mode : modes) {
            market::AuctionOptions opt;
            opt.exact = inst.exact;
            opt.threads = mode.threads;
            opt.cache = mode.cache;

            double best_ms = 0.0;
            std::optional<market::AuctionResult> result;
            for (int rep = 0; rep < kReps; ++rep) {
                // Fresh oracle per run: lifetime query counts comparable.
                const market::AcceptabilityOracle oracle(inst.pool.graph(), inst.tm,
                                                         market::ConstraintKind::kLoad, inst.oopt);
                const auto t0 = std::chrono::steady_clock::now();
                result = market::run_auction(inst.pool, oracle, opt);
                const auto t1 = std::chrono::steady_clock::now();
                const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
                if (rep == 0 || ms < best_ms) best_ms = ms;
            }
            if (!result) {
                std::cerr << inst.label << "/" << mode.name << ": infeasible instance\n";
                return 1;
            }
            if (mode.threads == 1 && !mode.cache) {
                reference = result;
                serial_ms = best_ms;
            } else if (!same_result(*reference, *result)) {
                std::cerr << inst.label << "/" << mode.name << ": result differs from serial\n";
                all_identical = false;
            }

            Row row;
            row.instance = inst.label;
            row.bp_count = inst.bp_count;
            row.offered_links = inst.pool.offered_links().size();
            row.mode = mode.name;
            row.threads = mode.threads;
            row.cache = mode.cache;
            row.ms = best_ms;
            row.speedup_vs_serial = best_ms > 0.0 ? serial_ms / best_ms : 1.0;
            row.oracle_queries = result->oracle_queries;
            row.oracle_cache_hits = result->oracle_cache_hits;
            row.solve_cache_hits = result->solve_cache_hits;
            rows.push_back(row);

            std::cout << inst.label << "  links=" << row.offered_links << "  " << mode.name
                      << "  " << best_ms << " ms  x" << row.speedup_vs_serial
                      << "  queries=" << row.oracle_queries
                      << "  verdict_hits=" << row.oracle_cache_hits
                      << "  solve_hits=" << row.solve_cache_hits << "\n";
        }
    }
    if (!all_identical) return 1;

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"micro_auction\",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"parallel_threads\": " << par << ",\n"
        << "  \"reps\": " << kReps << ",\n"
        << "  \"all_modes_identical_to_serial\": " << (all_identical ? "true" : "false") << ",\n"
        << "  \"note\": \"ms is best of reps; speedup_vs_serial needs hardware_threads > 1 "
           "to exceed 1.0 on parallel rows\",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"instance\": \"" << r.instance << "\", \"bp_count\": " << r.bp_count
            << ", \"offered_links\": " << r.offered_links << ", \"mode\": \"" << r.mode
            << "\", \"threads\": " << r.threads << ", \"cache\": " << (r.cache ? "true" : "false")
            << ", \"ms\": " << r.ms << ", \"speedup_vs_serial\": " << r.speedup_vs_serial
            << ", \"oracle_queries\": " << r.oracle_queries
            << ", \"oracle_cache_hits\": " << r.oracle_cache_hits
            << ", \"solve_cache_hits\": " << r.solve_cache_hits << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
