// Durability budget for the epoch runtime (DESIGN.md §4b): times the
// per-epoch pipeline with the write-ahead journal off vs on, replays a
// completed journal to measure recovery latency, verifies that the
// journaled run and the replayed run are bit-identical to the plain
// run, and emits BENCH_recovery.json (+ a CSV of the rows) for
// regression tracking.
//
// The acceptance budget is journal overhead <= 5% of epoch wall time:
// clearing dominates an epoch by orders of magnitude, so the handful
// of checksummed appends per epoch should be noise.
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "market/pricing.hpp"
#include "sim/runtime.hpp"
#include "topo/traffic.hpp"
#include "util/journal.hpp"

using namespace poc;

namespace {

struct Instance {
    std::string label;
    std::size_t bp_count = 0;
    market::OfferPool pool;
    net::TrafficMatrix tm;
};

/// Generated-topology instance (the Figure-2 pipeline shape at bench
/// scale), fast oracle, heuristic solver — same recipe as
/// micro_auction so the two benches are comparable.
Instance topology_instance(std::size_t bp_count, std::size_t max_cities, std::uint64_t seed) {
    topo::BpGeneratorOptions bopt;
    bopt.bp_count = bp_count;
    bopt.min_cities = 6;
    bopt.max_cities = max_cities;
    bopt.seed = seed;
    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    // The OfferPool references the topology's graph, so the topology
    // must outlive the Instance: park it at a stable address.
    static std::deque<topo::PocTopology> topologies;
    topologies.push_back(topo::build_poc_topology(topo::generate_bp_networks(bopt), popt));
    topo::PocTopology& topology = topologies.back();
    market::VirtualLinkOptions vopt;
    vopt.attach_count = std::min<std::size_t>(3, topology.router_city.size());
    auto pool = market::make_offer_pool(topology, {}, vopt);
    topo::GravityOptions gopt;
    gopt.total_gbps = 300.0;
    auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 20);

    std::ostringstream label;
    label << "topo-" << bp_count << "bp";
    return Instance{label.str(), bp_count, std::move(pool), std::move(tm)};
}

/// Bit-identity key: epoch records + ledger + RNG position + every
/// auction's economic bytes (work-accounting diagnostics scrubbed, as
/// in tests/sim/test_runtime.cpp).
std::string outcome_key(const sim::RuntimeOutcome& out) {
    util::BinaryWriter w;
    w.u64(out.epochs.size());
    for (const sim::EpochRecord& r : out.epochs) {
        w.u64(r.epoch);
        w.boolean(r.provisioned);
        w.boolean(r.degraded_mode);
        w.f64(r.demand_factor);
        w.f64(r.delivered_fraction);
        w.f64(r.max_utilization);
        w.i64(r.outlay.micros());
        w.u64(r.retry_attempts);
    }
    out.ledger.serialize(w);
    for (const std::uint64_t word : out.final_rng.s) w.u64(word);
    for (const auto& a : out.auctions) {
        w.boolean(a.has_value());
        if (a) {
            market::AuctionResult scrubbed = *a;
            scrubbed.oracle_queries = 0;
            scrubbed.oracle_cache_hits = 0;
            scrubbed.solve_cache_hits = 0;
            market::write_auction_result(w, scrubbed);
        }
    }
    return w.bytes();
}

struct Row {
    std::string instance;
    std::size_t bp_count = 0;
    std::size_t offered_links = 0;
    std::size_t epochs = 0;
    double plain_ms = 0.0;      // journal off
    double journaled_ms = 0.0;  // journal on, fresh journal
    double overhead_pct = 0.0;
    double replay_wall_ms = 0.0;  // full run() over a completed journal
    double replay_ms = 0.0;       // runtime's own replay timer
    std::size_t journal_bytes = 0;
    std::size_t replayed_records = 0;
    bool identical = false;
};

/// One restart-cost measurement (DESIGN.md §4c): crash at the last
/// epoch of an L-epoch run, then time the restart. Journal-only
/// replay cost grows with L; snapshot-grounded cost is pinned to the
/// snapshot interval.
struct RestartRow {
    std::size_t epochs = 0;
    std::string mode;  // "journal" | "snapshot"
    double resume_wall_ms = 0.0;
    double replay_ms = 0.0;
    std::size_t replayed_records = 0;
    std::size_t journal_bytes = 0;  // on disk at crash time
    bool resumed_from_snapshot = false;
    bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_recovery.json";
    const std::string csv_path = argc > 2 ? argv[2] : "BENCH_recovery.csv";
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "poc_micro_recovery";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    constexpr int kReps = 5;
    constexpr std::size_t kEpochs = 6;

    // Instances where an epoch does paper-scale clearing work (tens of
    // offered links); sub-millisecond toy epochs would measure stream
    // flush latency, not the journal's share of a real epoch.
    std::vector<Instance> instances;
    instances.push_back(topology_instance(8, 12, 7002));
    instances.push_back(topology_instance(10, 14, 7003));
    instances.push_back(topology_instance(12, 16, 7004));

    std::vector<Row> rows;
    bool all_identical = true;
    bool within_budget = true;

    for (const Instance& inst : instances) {
        sim::RuntimeOptions opt;
        opt.epochs = kEpochs;
        opt.seed = 2020;
        opt.request.constraint = market::ConstraintKind::kLoad;
        opt.request.oracle.fidelity = market::OracleFidelity::kFast;

        const auto one_run = [&](const sim::RuntimeOptions& o) {
            if (!o.journal_path.empty()) std::filesystem::remove(o.journal_path);
            const auto t0 = std::chrono::steady_clock::now();
            sim::RuntimeOutcome out = sim::EpochRuntime(inst.pool, inst.tm, o).run();
            const auto t1 = std::chrono::steady_clock::now();
            return std::pair<sim::RuntimeOutcome, double>(
                std::move(out), std::chrono::duration<double, std::milli>(t1 - t0).count());
        };

        Row row;
        row.instance = inst.label;
        row.bp_count = inst.bp_count;
        row.offered_links = inst.pool.offered_links().size();
        row.epochs = kEpochs;

        sim::RuntimeOptions jopt = opt;
        jopt.journal_path = (dir / (inst.label + ".wal")).string();

        // One untimed warmup (allocator + oracle caches), then
        // interleaved plain/journaled reps so clock drift and cache
        // state hit both modes equally; keep best-of for each.
        (void)one_run(opt);
        std::optional<sim::RuntimeOutcome> plain_out;
        std::optional<sim::RuntimeOutcome> journaled_out;
        for (int rep = 0; rep < kReps; ++rep) {
            auto [p, p_ms] = one_run(opt);
            if (rep == 0 || p_ms < row.plain_ms) row.plain_ms = p_ms;
            plain_out = std::move(p);
            auto [j, j_ms] = one_run(jopt);
            if (rep == 0 || j_ms < row.journaled_ms) row.journaled_ms = j_ms;
            journaled_out = std::move(j);
        }
        const sim::RuntimeOutcome& plain = *plain_out;
        const sim::RuntimeOutcome& journaled = *journaled_out;
        row.overhead_pct =
            row.plain_ms > 0.0 ? 100.0 * (row.journaled_ms - row.plain_ms) / row.plain_ms : 0.0;
        row.journal_bytes =
            static_cast<std::size_t>(std::filesystem::file_size(jopt.journal_path));

        // Recovery latency: re-running over the completed journal is
        // pure replay — no clearing, no flow sim, just record decode.
        const auto t0 = std::chrono::steady_clock::now();
        const sim::RuntimeOutcome replayed = sim::EpochRuntime(inst.pool, inst.tm, jopt).run();
        const auto t1 = std::chrono::steady_clock::now();
        row.replay_wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        row.replay_ms = replayed.replay_ms;
        row.replayed_records = replayed.replayed_records;

        const std::string want = outcome_key(plain);
        row.identical = outcome_key(journaled) == want && outcome_key(replayed) == want &&
                        replayed.replayed_epochs == kEpochs && replayed.retry.calls == 0;
        all_identical = all_identical && row.identical;
        // Negative overhead is timing noise; only a positive overrun
        // can bust the budget.
        within_budget = within_budget && row.overhead_pct <= 5.0;
        rows.push_back(row);

        std::cout << row.instance << "  links=" << row.offered_links << "  plain "
                  << row.plain_ms << " ms  journaled " << row.journaled_ms << " ms  ("
                  << row.overhead_pct << "% overhead)  replay " << row.replay_wall_ms
                  << " ms  wal=" << row.journal_bytes << " B  "
                  << (row.identical ? "bit-identical" : "MISMATCH") << "\n";
    }

    // Restart cost vs history length: crash at the final epoch of an
    // L-epoch run and time the restart, journal-only vs snapshots
    // (interval 4) + compaction. The run length grows 10x; the
    // snapshot-grounded restart must stay O(interval).
    constexpr std::size_t kSnapshotInterval = 4;
    const std::size_t lengths[] = {8, 16, 32, 80};
    std::vector<RestartRow> restart_rows;
    bool restart_cost_flat = true;
    {
        const Instance& inst = instances.front();
        for (const std::size_t epochs : lengths) {
            sim::RuntimeOptions opt;
            opt.epochs = epochs;
            opt.seed = 2020;
            opt.request.constraint = market::ConstraintKind::kLoad;
            opt.request.oracle.fidelity = market::OracleFidelity::kFast;
            const std::string want =
                outcome_key(sim::EpochRuntime(inst.pool, inst.tm, opt).run());

            for (const bool snapshots : {false, true}) {
                RestartRow row;
                row.epochs = epochs;
                row.mode = snapshots ? "snapshot" : "journal";
                sim::RuntimeOptions jopt = opt;
                jopt.journal_path =
                    (dir / (row.mode + std::to_string(epochs) + ".wal")).string();
                if (snapshots) jopt.snapshot_interval = kSnapshotInterval;

                bool fired = false;
                jopt.stage_hook = [&fired, epochs](std::size_t epoch, sim::Stage stage,
                                                   sim::HookPoint p) {
                    if (!fired && epoch == epochs - 1 && stage == sim::Stage::kFlowSim &&
                        p == sim::HookPoint::kMid) {
                        fired = true;
                        throw sim::CrashInjected(epoch, stage, p);
                    }
                };
                try {
                    (void)sim::EpochRuntime(inst.pool, inst.tm, jopt).run();
                } catch (const sim::CrashInjected&) {
                }
                row.journal_bytes =
                    static_cast<std::size_t>(std::filesystem::file_size(jopt.journal_path));

                jopt.stage_hook = nullptr;
                const auto t0 = std::chrono::steady_clock::now();
                const sim::RuntimeOutcome resumed =
                    sim::EpochRuntime(inst.pool, inst.tm, jopt).run();
                const auto t1 = std::chrono::steady_clock::now();
                row.resume_wall_ms =
                    std::chrono::duration<double, std::milli>(t1 - t0).count();
                row.replay_ms = resumed.replay_ms;
                row.replayed_records = resumed.replayed_records;
                row.resumed_from_snapshot = resumed.resumed_from_snapshot;
                row.identical = outcome_key(resumed) == want;
                all_identical = all_identical && row.identical;
                // Flat = the snapshot-grounded restart never replays
                // more than one interval's worth of records (6 per
                // epoch + the crashed epoch's partial stage records),
                // no matter how long the run had been going.
                if (snapshots) {
                    restart_cost_flat = restart_cost_flat &&
                                        row.replayed_records <= (kSnapshotInterval + 1) * 6;
                }
                restart_rows.push_back(row);

                std::cout << "restart " << row.mode << " L=" << row.epochs << "  resume "
                          << row.resume_wall_ms << " ms  records=" << row.replayed_records
                          << "  wal=" << row.journal_bytes << " B  "
                          << (row.identical ? "bit-identical" : "MISMATCH") << "\n";
            }
        }
    }

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"micro_recovery\",\n"
        << "  \"reps\": " << kReps << ",\n"
        << "  \"epochs_per_run\": " << kEpochs << ",\n"
        << "  \"all_runs_bit_identical\": " << (all_identical ? "true" : "false") << ",\n"
        << "  \"journal_overhead_within_5pct\": " << (within_budget ? "true" : "false")
        << ",\n"
        << "  \"note\": \"ms is best of reps; overhead_pct compares a journaled run against "
           "the same run with durability off; replay_* re-runs over the completed journal "
           "(no re-clearing)\",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"instance\": \"" << r.instance << "\", \"bp_count\": " << r.bp_count
            << ", \"offered_links\": " << r.offered_links << ", \"epochs\": " << r.epochs
            << ", \"plain_ms\": " << r.plain_ms << ", \"journaled_ms\": " << r.journaled_ms
            << ", \"overhead_pct\": " << r.overhead_pct
            << ", \"replay_wall_ms\": " << r.replay_wall_ms << ", \"replay_ms\": " << r.replay_ms
            << ", \"journal_bytes\": " << r.journal_bytes
            << ", \"replayed_records\": " << r.replayed_records
            << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"snapshot_interval\": " << kSnapshotInterval << ",\n"
        << "  \"restart_cost_flat\": " << (restart_cost_flat ? "true" : "false") << ",\n"
        << "  \"restart_note\": \"crash at the last epoch of an L-epoch run, then time the "
           "restart; journal mode replays the whole history, snapshot mode grounds on the "
           "newest snapshot and replays at most one interval\",\n"
        << "  \"restart_cost\": [\n";
    for (std::size_t i = 0; i < restart_rows.size(); ++i) {
        const RestartRow& r = restart_rows[i];
        out << "    {\"epochs\": " << r.epochs << ", \"mode\": \"" << r.mode
            << "\", \"resume_wall_ms\": " << r.resume_wall_ms
            << ", \"replay_ms\": " << r.replay_ms
            << ", \"replayed_records\": " << r.replayed_records
            << ", \"journal_bytes\": " << r.journal_bytes
            << ", \"resumed_from_snapshot\": " << (r.resumed_from_snapshot ? "true" : "false")
            << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
            << (i + 1 < restart_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";

    std::ofstream csv(csv_path);
    csv << "instance,bp_count,offered_links,epochs,plain_ms,journaled_ms,overhead_pct,"
           "replay_wall_ms,replay_ms,journal_bytes,replayed_records,identical\n";
    for (const Row& r : rows) {
        csv << r.instance << ',' << r.bp_count << ',' << r.offered_links << ',' << r.epochs
            << ',' << r.plain_ms << ',' << r.journaled_ms << ',' << r.overhead_pct << ','
            << r.replay_wall_ms << ',' << r.replay_ms << ',' << r.journal_bytes << ','
            << r.replayed_records << ',' << (r.identical ? "true" : "false") << "\n";
    }
    csv << "\nepochs,mode,resume_wall_ms,replay_ms,replayed_records,journal_bytes,"
           "resumed_from_snapshot,identical\n";
    for (const RestartRow& r : restart_rows) {
        csv << r.epochs << ',' << r.mode << ',' << r.resume_wall_ms << ',' << r.replay_ms
            << ',' << r.replayed_records << ',' << r.journal_bytes << ','
            << (r.resumed_from_snapshot ? "true" : "false") << ','
            << (r.identical ? "true" : "false") << "\n";
    }

    std::filesystem::remove_all(dir);
    std::cout << "\nwrote " << out_path << " and " << csv_path << "\n";
    return all_identical ? 0 : 1;
}
