// Perf baseline for incremental re-clearing (DESIGN.md §7): warm
// versus cold epoch re-clears after small offer-set deltas, at both
// layers the tentpole touches, every pair bit-compared.
//
//  * auction rows - an 8-epoch fault/repair walk (cut f links, hold,
//    restore, hold, cut a different f, hold, restore) re-cleared by a
//    full run_auction each epoch. The warm engine carries one
//    market::DeltaReclearState plus a repair-budgeted net::PathCache
//    across the walk: epochs whose pool matches an earlier clearing
//    replay verdicts and whole pivot solves from the memo, and
//    genuinely-new pools still patch their oracle SSSPs. The cold
//    engine recomputes every epoch from scratch — exactly what each
//    epoch cost before the incremental path existed. ms totals cover
//    epochs 1..7 (epoch 0 is the untimed prime on both sides).
//  * paths rows - the data-plane half alone: re-resolving the primary
//    path of every demand after f link flips, warm (cached trees
//    patched via net/sssp_repair.hpp) versus cold (fresh Dijkstra per
//    distinct source). This is the per-epoch work the acceptability
//    oracle and the flow simulator repeat at n=500 / d=10^4 scale.
//
// Runs on one core (threads=1); the speedups are algorithmic.
//
// Usage: micro_delta [--smoke] [OUT.json]
//   --smoke: small instances, 1 rep — the CI tier-1 smoke mode.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "market/constraints.hpp"
#include "market/delta_reclear.hpp"
#include "market/vcg.hpp"
#include "net/failure.hpp"
#include "net/path_cache.hpp"
#include "net/sssp.hpp"
#include "util/rng.hpp"

using namespace poc;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// Scrubbed byte image of an auction result (work-accounting counters
/// zeroed; bit-identity covers the economic outcome).
std::string auction_bytes(const std::optional<market::AuctionResult>& a) {
    util::BinaryWriter w;
    w.boolean(a.has_value());
    if (a) {
        market::AuctionResult scrubbed = *a;
        scrubbed.oracle_queries = 0;
        scrubbed.oracle_cache_hits = 0;
        scrubbed.solve_cache_hits = 0;
        market::write_auction_result(w, scrubbed);
    }
    return w.bytes();
}

struct Instance {
    std::string label;
    std::size_t nodes = 0;
    std::size_t demand_count = 0;
    net::Graph g;
    net::TrafficMatrix tm;
    std::vector<market::BpBid> bids;     // every link offered, 4 BPs
    market::VirtualLinkContract contract;
    std::vector<net::LinkId> flippable;  // non-bridge links, shuffled
    std::size_t distinct_sources = 0;
};

/// Random connected graph (spanning chain + ~2n extra links) with
/// `demands` light demands, all links offered across 4 BPs. Only the
/// extra links are flip candidates: cutting a chain link could
/// disconnect the graph and turn the bench into a feasibility test.
Instance make_instance(std::size_t n, std::size_t demands, std::uint64_t seed) {
    util::Rng rng(seed);
    Instance inst;
    inst.nodes = n;
    inst.demand_count = demands;
    inst.g.add_nodes(n);
    for (std::size_t b = 0; b < 4; ++b) {
        inst.bids.emplace_back(market::BpId{b}, "BP" + std::to_string(b + 1));
    }
    const auto offer = [&](net::LinkId l) {
        const auto owner = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{4}));
        inst.bids[owner].offer(l, util::Money::from_dollars(rng.uniform(50.0, 500.0)));
    };
    for (std::size_t i = 0; i + 1 < n; ++i) {
        offer(inst.g.add_link(net::NodeId{i}, net::NodeId{i + 1}, rng.uniform(50.0, 400.0),
                              rng.uniform(100.0, 2000.0)));
    }
    for (std::size_t e = 0; e < 2 * n; ++e) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto b = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (a == b) b = (b + 1) % n;
        const net::LinkId l = inst.g.add_link(net::NodeId{a}, net::NodeId{b},
                                              rng.uniform(50.0, 400.0),
                                              rng.uniform(100.0, 2000.0));
        offer(l);
        inst.flippable.push_back(l);
    }
    rng.shuffle(inst.flippable);
    for (std::size_t d = 0; d < demands; ++d) {
        const auto s = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto t = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (s == t) t = (t + 1) % n;
        inst.tm.push_back({net::NodeId{s}, net::NodeId{t}, rng.uniform(0.05, 0.3)});
    }
    inst.distinct_sources = net::distinct_sources(inst.tm).size();
    std::ostringstream label;
    label << "n" << n << "-d" << demands;
    inst.label = label.str();
    return inst;
}

/// Pool with flippable links [first, first+count) withdrawn.
market::OfferPool make_pool(const Instance& inst, std::size_t first, std::size_t count) {
    std::vector<market::BpBid> bids;
    for (std::size_t b = 0; b < 4; ++b) {
        bids.emplace_back(market::BpId{b}, "BP" + std::to_string(b + 1));
    }
    const auto lo = inst.flippable.begin() + static_cast<std::ptrdiff_t>(first);
    const auto hi = lo + static_cast<std::ptrdiff_t>(count);
    for (const market::BpBid& bid : inst.bids) {
        for (const net::LinkId l : bid.offered_links()) {
            if (std::find(lo, hi, l) != hi) continue;  // withdrawn this epoch
            bids[bid.bp().index()].offer(l, bid.base_price(l));
        }
    }
    return market::OfferPool(bids, inst.contract, inst.g);
}

market::AcceptabilityOracle make_oracle(const Instance& inst, net::PathCache* cache) {
    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    oopt.path_cache = cache;
    return market::AcceptabilityOracle(inst.g, inst.tm,
                                       market::ConstraintKind::kPerPairFailure, oopt);
}

struct Row {
    std::string kind;  // "auction" | "paths"
    std::string instance;
    std::size_t nodes = 0;
    std::size_t links = 0;
    std::size_t demands = 0;
    std::size_t distinct_sources = 0;
    std::size_t flips = 0;
    std::size_t epochs = 0;  // auction rows: timed epochs in the walk
    double warm_ms = 0.0;
    double cold_ms = 0.0;
    double speedup = 1.0;
    std::uint64_t warm_runs = 0;  // auction rows: DeltaReclearState warm count
    std::uint64_t tree_repairs = 0;
    bool identical = false;
};

/// The 8-epoch fault/repair walk: pool index per epoch, where 0 = all
/// offered, 1 = batch A withdrawn, 2 = batch B withdrawn. Consecutive
/// deltas are f links (cut / restore) or 0 links (fault held).
constexpr std::size_t kWalk[] = {0, 1, 1, 0, 0, 2, 2, 0};
constexpr std::size_t kWalkEpochs = sizeof(kWalk) / sizeof(kWalk[0]);

Row bench_auction_walk(const Instance& inst, std::size_t flips) {
    Row row;
    row.kind = "auction";
    row.instance = inst.label;
    row.nodes = inst.nodes;
    row.links = inst.g.link_count();
    row.demands = inst.demand_count;
    row.distinct_sources = inst.distinct_sources;
    row.flips = flips;
    row.epochs = kWalkEpochs - 1;
    row.identical = true;

    const market::OfferPool pools[] = {make_pool(inst, 0, 0), make_pool(inst, 0, flips),
                                       make_pool(inst, flips, flips)};

    net::PathCache cache(/*max_age=*/1, /*repair_budget=*/8);
    market::DeltaReclearState state;
    const market::AcceptabilityOracle warm_oracle = make_oracle(inst, &cache);
    market::AuctionOptions warm_opt;
    warm_opt.delta = &state;
    const market::AcceptabilityOracle cold_oracle = make_oracle(inst, nullptr);

    for (std::size_t e = 0; e < kWalkEpochs; ++e) {
        const market::OfferPool& pool = pools[kWalk[e]];

        cache.advance_epoch();
        const auto w0 = std::chrono::steady_clock::now();
        const auto warm = market::run_auction(pool, warm_oracle, warm_opt);
        if (e > 0) row.warm_ms += ms_since(w0);

        const auto c0 = std::chrono::steady_clock::now();
        const auto cold = market::run_auction(pool, cold_oracle, {});
        if (e > 0) row.cold_ms += ms_since(c0);

        if (auction_bytes(warm) != auction_bytes(cold)) {
            std::cerr << inst.label << " flips=" << flips << " epoch " << e
                      << ": warm result differs from cold\n";
            row.identical = false;
        }
    }
    row.warm_runs = state.stats().warm;
    row.tree_repairs = cache.stats().repairs;
    row.speedup = row.warm_ms > 0.0 ? row.cold_ms / row.warm_ms : 1.0;
    return row;
}

Row bench_path_reclear(const Instance& inst, std::size_t flips, int reps) {
    Row row;
    row.kind = "paths";
    row.instance = inst.label;
    row.nodes = inst.nodes;
    row.links = inst.g.link_count();
    row.demands = inst.demand_count;
    row.distinct_sources = inst.distinct_sources;
    row.flips = flips;
    row.identical = true;

    for (int rep = 0; rep < reps; ++rep) {
        // Previous epoch: every source tree cached at the base mask.
        net::PathCache cache(/*max_age=*/1, /*repair_budget=*/8);
        const net::Subgraph base(inst.g);
        (void)net::primary_paths(base, inst.tm, &cache);
        cache.advance_epoch();

        net::Subgraph degraded(inst.g);
        for (std::size_t i = 0; i < flips; ++i) {
            degraded.set_active(inst.flippable[i], false);
        }

        const auto w0 = std::chrono::steady_clock::now();
        const auto warm = net::primary_paths(degraded, inst.tm, &cache);
        const double warm_ms = ms_since(w0);
        if (rep == 0 || warm_ms < row.warm_ms) row.warm_ms = warm_ms;
        row.tree_repairs = cache.stats().repairs;

        const auto c0 = std::chrono::steady_clock::now();
        const auto cold = net::primary_paths(degraded, inst.tm, nullptr);
        const double cold_ms = ms_since(c0);
        if (rep == 0 || cold_ms < row.cold_ms) row.cold_ms = cold_ms;

        if (warm != cold) {
            std::cerr << inst.label << " flips=" << flips << ": repaired paths differ\n";
            row.identical = false;
        }
    }
    row.speedup = row.warm_ms > 0.0 ? row.cold_ms / row.warm_ms : 1.0;
    return row;
}

void print_row(const Row& r) {
    std::cout << r.kind << "  " << r.instance << "  links=" << r.links
              << "  flips=" << r.flips << "  warm=" << r.warm_ms << " ms  cold=" << r.cold_ms
              << " ms  x" << r.speedup << "  repairs=" << r.tree_repairs
              << (r.identical ? "" : "  MISMATCH") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_delta.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            out_path = argv[i];
        }
    }
    const int path_reps = smoke ? 1 : 3;

    std::vector<Row> rows;
    bool all_identical = true;

    // Market-layer walks: full auctions are the expensive unit, so the
    // instances stay moderate and the walk supplies the epoch count.
    {
        std::vector<Instance> instances;
        instances.push_back(make_instance(30, 200, 9301));
        if (!smoke) instances.push_back(make_instance(60, 600, 9302));
        const std::vector<std::size_t> flip_counts =
            smoke ? std::vector<std::size_t>{1} : std::vector<std::size_t>{1, 3, 8};
        for (const Instance& inst : instances) {
            for (const std::size_t flips : flip_counts) {
                rows.push_back(bench_auction_walk(inst, flips));
                all_identical = all_identical && rows.back().identical;
                print_row(rows.back());
            }
        }
    }

    // Data-plane path re-clears up to the paper-scale matrix.
    {
        std::vector<Instance> instances;
        instances.push_back(make_instance(50, 500, 9311));
        if (!smoke) {
            instances.push_back(make_instance(200, 2000, 9312));
            instances.push_back(make_instance(500, 10000, 9313));
        }
        const std::size_t flip_counts[] = {1, 2, 3, 5, 8};
        for (const Instance& inst : instances) {
            for (const std::size_t flips : flip_counts) {
                rows.push_back(bench_path_reclear(inst, flips, path_reps));
                all_identical = all_identical && rows.back().identical;
                print_row(rows.back());
            }
        }
    }
    if (!all_identical) return 1;

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"micro_delta\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"threads\": 1,\n"
        << "  \"all_warm_identical_to_cold\": " << (all_identical ? "true" : "false") << ",\n"
        << "  \"note\": \"auction rows: total ms for epochs 1..7 of a cut/hold/restore walk "
           "(f-link deltas), warm carrying DeltaReclearState + repair-budgeted PathCache vs "
           "cold recomputing each epoch; paths rows: best-of-reps ms to re-resolve every "
           "demand's primary path after f link flips, warm (tree repair) vs cold (fresh "
           "Dijkstra per source); every pair bit-compared\",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"kind\": \"" << r.kind << "\", \"instance\": \"" << r.instance
            << "\", \"nodes\": " << r.nodes << ", \"links\": " << r.links
            << ", \"demands\": " << r.demands << ", \"distinct_sources\": "
            << r.distinct_sources << ", \"flips\": " << r.flips << ", \"epochs\": " << r.epochs
            << ", \"warm_ms\": " << r.warm_ms << ", \"cold_ms\": " << r.cold_ms
            << ", \"speedup_warm_over_cold\": " << r.speedup << ", \"warm_runs\": "
            << r.warm_runs << ", \"tree_repairs\": " << r.tree_repairs
            << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
