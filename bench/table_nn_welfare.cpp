// Section 4.3 (network neutrality regime): monopoly prices and social
// welfare for a market of independent CSPs. The paper derives
// p*_s = argmax p D_s(p) and SW = sum_s integral_{p*_s}^inf v dF_s(v);
// this bench evaluates both for a representative CSP portfolio and
// verifies the analytic decomposition SW = CS + revenue numerically.
#include <iostream>
#include <memory>

#include "econ/market_model.hpp"
#include "util/csv_export.hpp"
#include "util/table.hpp"

using namespace poc;

int main() {
    std::cout << "=== Section 4.3: CSP pricing and welfare under network neutrality ===\n\n";

    struct Entry {
        std::string name;
        std::shared_ptr<const econ::DemandCurve> demand;
    };
    const std::vector<Entry> portfolio = {
        {"MassVideo (broad linear WTP)", std::make_shared<econ::LinearDemand>(20.0)},
        {"SocialNet (thin exponential tail)", std::make_shared<econ::ExponentialDemand>(6.0)},
        {"ProTools (price-insensitive pros)",
         std::make_shared<econ::IsoelasticDemand>(15.0, 2.2)},
        {"CasualGames (logistic midmarket)",
         std::make_shared<econ::LogisticDemand>(9.0, 2.5)},
    };

    util::Table table({"CSP", "p* ($)", "D(p*)", "revenue", "consumer welfare",
                       "social welfare", "SW at p=0", "efficiency"});
    double total_sw = 0.0;
    for (const Entry& e : portfolio) {
        const double p = econ::monopoly_price(*e.demand).x;
        const double served = e.demand->demand(p);
        const double rev = econ::csp_revenue(*e.demand, p);
        const double cs = econ::consumer_welfare(*e.demand, p);
        const double sw = econ::social_welfare(*e.demand, p);
        const double sw0 = econ::social_welfare(*e.demand, 0.0);
        total_sw += sw;
        table.add_row({e.name, util::cell(p, 2), util::cell(served, 3), util::cell(rev, 2),
                       util::cell(cs, 2), util::cell(sw, 2), util::cell(sw0, 2),
                       util::cell_pct(sw / sw0)});
    }
    std::cout << table.render();
    util::maybe_export_csv(table, "nn_welfare");
    std::cout << "\nTotal NN social welfare (per unit consumer mass): "
              << util::cell(total_sw, 2) << " $/month\n";
    std::cout << "Checks: SW decomposes as consumer welfare + revenue (payments are\n"
                 "transfers, section 4.1); monopoly pricing already destroys some\n"
                 "surplus relative to free provision - the 'efficiency' column - and\n"
                 "every subsequent regime (tables UR/NBS) only lowers it further.\n";
    return 0;
}
