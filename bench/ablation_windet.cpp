// Ablation (DESIGN.md A-WD): winner-determination algorithm quality and
// cost. The exact branch-and-bound is the incentive gold standard but
// exponential; the batched reverse-deletion heuristic is what Figure 2
// runs at scale. This bench measures the optimality gap on small
// instances (where exact is feasible) and the oracle-query/time scaling
// of the heuristic on growing instances.
#include <chrono>
#include <iostream>

#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "topo/traffic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace poc;

namespace {

/// Random parallel/serial instance over 3 routers (same generator family
/// as the unit tests, scaled by link count).
struct SmallInstance {
    net::Graph graph;
    std::vector<market::BpBid> bids;
    net::TrafficMatrix tm;

    SmallInstance(std::uint64_t seed, std::size_t links) {
        util::Rng rng(seed);
        graph.add_nodes(3);
        for (std::size_t b = 0; b < 3; ++b) {
            bids.emplace_back(market::BpId{b}, "BP" + std::to_string(b + 1));
        }
        for (std::size_t i = 0; i < links; ++i) {
            const auto u = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{3}));
            const std::size_t v =
                (u + 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{2}))) % 3;
            const net::LinkId l = graph.add_link(net::NodeId{u}, net::NodeId{v},
                                                 rng.uniform(5.0, 15.0), rng.uniform(1.0, 4.0));
            bids[static_cast<std::size_t>(rng.uniform_int(std::uint64_t{3}))].offer(
                l, util::Money::from_dollars(rng.uniform(50.0, 500.0)));
        }
        tm = {{net::NodeId{0u}, net::NodeId{1u}, rng.uniform(2.0, 6.0)},
              {net::NodeId{1u}, net::NodeId{2u}, rng.uniform(2.0, 6.0)}};
    }

    market::OfferPool pool() const { return market::OfferPool(bids, {}, graph); }
};

}  // namespace

int main() {
    std::cout << "=== Ablation: winner-determination exact vs heuristic ===\n\n";

    // Part 1: optimality gap on exact-solvable instances.
    std::cout << "Optimality gap, 40 random instances per size:\n";
    util::Table gap_table({"links", "feasible", "optimal hits", "mean gap", "max gap"});
    for (const std::size_t links : {8u, 10u, 12u, 14u}) {
        std::size_t feasible = 0;
        std::size_t hits = 0;
        util::Accumulator gap;
        double max_gap = 0.0;
        for (std::uint64_t seed = 1; seed <= 40; ++seed) {
            const SmallInstance inst(seed * 131 + links, links);
            const market::OfferPool pool = inst.pool();
            const market::AcceptabilityOracle oracle(inst.graph, inst.tm,
                                                     market::ConstraintKind::kLoad);
            const auto exact = market::select_links_exact(pool, oracle, pool.offered_links());
            const auto heur = market::select_links(pool, oracle, pool.offered_links());
            if (!exact || !heur) continue;
            ++feasible;
            const double g = util::ratio(heur->cost - exact->cost, exact->cost);
            gap.add(g);
            max_gap = std::max(max_gap, g);
            if (heur->cost == exact->cost) ++hits;
        }
        gap_table.add_row({util::cell(links), util::cell(feasible), util::cell(hits),
                           gap.empty() ? "-" : util::cell_pct(gap.mean()),
                           util::cell_pct(max_gap)});
    }
    std::cout << gap_table.render();

    // Part 2: heuristic scaling on generated topologies.
    std::cout << "\nHeuristic scaling on generated POC topologies (constraint #1, kFast):\n";
    util::Table scale({"BPs", "offered links", "selected", "oracle queries", "time (s)"});
    for (const std::size_t bp_count : {6u, 10u, 14u}) {
        topo::BpGeneratorOptions bopt;
        bopt.bp_count = bp_count;
        bopt.min_cities = 8;
        bopt.max_cities = 20;
        bopt.seed = 5;
        topo::PocTopologyOptions popt;
        popt.min_colocated_bps = 3;
        auto topology = topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
        const market::OfferPool pool = market::make_offer_pool(topology);
        topo::GravityOptions gopt;
        gopt.total_gbps = 1000.0;
        const auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 30);
        market::OracleOptions oopt;
        oopt.fidelity = market::OracleFidelity::kFast;
        const market::AcceptabilityOracle oracle(pool.graph(), tm,
                                                 market::ConstraintKind::kLoad, oopt);
        const auto t0 = std::chrono::steady_clock::now();
        const auto sel = market::select_links(pool, oracle, pool.offered_links());
        const auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
        scale.add_row({util::cell(bp_count), util::cell(pool.offered_links().size()),
                       sel ? util::cell(sel->links.size()) : "-",
                       util::cell(oracle.query_count()), util::cell(dt.count(), 2)});
    }
    std::cout << scale.render();
    std::cout << "\nReading: the heuristic hits the optimum on most small instances with\n"
                 "a small worst-case gap, and scales near-linearly in offered links -\n"
                 "the trade that makes the Figure 2 run (thousands of links x 21 VCG\n"
                 "re-solves) practical.\n";
    return 0;
}
