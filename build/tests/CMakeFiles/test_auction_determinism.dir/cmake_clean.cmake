file(REMOVE_RECURSE
  "CMakeFiles/test_auction_determinism.dir/market/test_auction_determinism.cpp.o"
  "CMakeFiles/test_auction_determinism.dir/market/test_auction_determinism.cpp.o.d"
  "test_auction_determinism"
  "test_auction_determinism.pdb"
  "test_auction_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auction_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
