file(REMOVE_RECURSE
  "CMakeFiles/test_vcg.dir/market/test_vcg.cpp.o"
  "CMakeFiles/test_vcg.dir/market/test_vcg.cpp.o.d"
  "test_vcg"
  "test_vcg.pdb"
  "test_vcg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
