# Empty dependencies file for test_vcg.
# This may be replaced when dependencies are built.
