file(REMOVE_RECURSE
  "CMakeFiles/test_tos.dir/core/test_tos.cpp.o"
  "CMakeFiles/test_tos.dir/core/test_tos.cpp.o.d"
  "test_tos"
  "test_tos.pdb"
  "test_tos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
