# Empty compiler generated dependencies file for test_tos.
# This may be replaced when dependencies are built.
