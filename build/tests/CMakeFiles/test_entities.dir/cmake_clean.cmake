file(REMOVE_RECURSE
  "CMakeFiles/test_entities.dir/core/test_entities.cpp.o"
  "CMakeFiles/test_entities.dir/core/test_entities.cpp.o.d"
  "test_entities"
  "test_entities.pdb"
  "test_entities[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
