# Empty dependencies file for test_entities.
# This may be replaced when dependencies are built.
