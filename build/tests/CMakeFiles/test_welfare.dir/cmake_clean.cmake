file(REMOVE_RECURSE
  "CMakeFiles/test_welfare.dir/econ/test_welfare.cpp.o"
  "CMakeFiles/test_welfare.dir/econ/test_welfare.cpp.o.d"
  "test_welfare"
  "test_welfare.pdb"
  "test_welfare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_welfare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
