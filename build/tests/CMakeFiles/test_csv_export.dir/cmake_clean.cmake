file(REMOVE_RECURSE
  "CMakeFiles/test_csv_export.dir/util/test_csv_export.cpp.o"
  "CMakeFiles/test_csv_export.dir/util/test_csv_export.cpp.o.d"
  "test_csv_export"
  "test_csv_export.pdb"
  "test_csv_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
