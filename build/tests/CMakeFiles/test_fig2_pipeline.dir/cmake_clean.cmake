file(REMOVE_RECURSE
  "CMakeFiles/test_fig2_pipeline.dir/integration/test_fig2_pipeline.cpp.o"
  "CMakeFiles/test_fig2_pipeline.dir/integration/test_fig2_pipeline.cpp.o.d"
  "test_fig2_pipeline"
  "test_fig2_pipeline.pdb"
  "test_fig2_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig2_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
