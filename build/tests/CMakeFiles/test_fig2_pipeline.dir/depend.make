# Empty dependencies file for test_fig2_pipeline.
# This may be replaced when dependencies are built.
