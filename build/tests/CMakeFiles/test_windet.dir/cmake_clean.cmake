file(REMOVE_RECURSE
  "CMakeFiles/test_windet.dir/market/test_windet.cpp.o"
  "CMakeFiles/test_windet.dir/market/test_windet.cpp.o.d"
  "test_windet"
  "test_windet.pdb"
  "test_windet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_windet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
