# Empty dependencies file for test_windet.
# This may be replaced when dependencies are built.
