file(REMOVE_RECURSE
  "CMakeFiles/test_bp_network.dir/topo/test_bp_network.cpp.o"
  "CMakeFiles/test_bp_network.dir/topo/test_bp_network.cpp.o.d"
  "test_bp_network"
  "test_bp_network.pdb"
  "test_bp_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bp_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
