# Empty compiler generated dependencies file for test_bp_network.
# This may be replaced when dependencies are built.
