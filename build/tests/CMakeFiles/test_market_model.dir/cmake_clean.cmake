file(REMOVE_RECURSE
  "CMakeFiles/test_market_model.dir/econ/test_market_model.cpp.o"
  "CMakeFiles/test_market_model.dir/econ/test_market_model.cpp.o.d"
  "test_market_model"
  "test_market_model.pdb"
  "test_market_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_market_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
