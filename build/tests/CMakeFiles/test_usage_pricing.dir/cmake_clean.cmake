file(REMOVE_RECURSE
  "CMakeFiles/test_usage_pricing.dir/econ/test_usage_pricing.cpp.o"
  "CMakeFiles/test_usage_pricing.dir/econ/test_usage_pricing.cpp.o.d"
  "test_usage_pricing"
  "test_usage_pricing.pdb"
  "test_usage_pricing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usage_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
