# Empty compiler generated dependencies file for test_usage_pricing.
# This may be replaced when dependencies are built.
