# Empty compiler generated dependencies file for test_pricing_models.
# This may be replaced when dependencies are built.
