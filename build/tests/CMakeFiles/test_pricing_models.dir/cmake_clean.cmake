file(REMOVE_RECURSE
  "CMakeFiles/test_pricing_models.dir/econ/test_pricing_models.cpp.o"
  "CMakeFiles/test_pricing_models.dir/econ/test_pricing_models.cpp.o.d"
  "test_pricing_models"
  "test_pricing_models.pdb"
  "test_pricing_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pricing_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
