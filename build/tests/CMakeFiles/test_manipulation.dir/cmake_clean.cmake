file(REMOVE_RECURSE
  "CMakeFiles/test_manipulation.dir/market/test_manipulation.cpp.o"
  "CMakeFiles/test_manipulation.dir/market/test_manipulation.cpp.o.d"
  "test_manipulation"
  "test_manipulation.pdb"
  "test_manipulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manipulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
