# Empty dependencies file for test_manipulation.
# This may be replaced when dependencies are built.
