# Empty dependencies file for test_money.
# This may be replaced when dependencies are built.
