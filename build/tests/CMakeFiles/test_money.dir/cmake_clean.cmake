file(REMOVE_RECURSE
  "CMakeFiles/test_money.dir/util/test_money.cpp.o"
  "CMakeFiles/test_money.dir/util/test_money.cpp.o.d"
  "test_money"
  "test_money.pdb"
  "test_money[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_money.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
