file(REMOVE_RECURSE
  "CMakeFiles/test_net_properties.dir/net/test_net_properties.cpp.o"
  "CMakeFiles/test_net_properties.dir/net/test_net_properties.cpp.o.d"
  "test_net_properties"
  "test_net_properties.pdb"
  "test_net_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
