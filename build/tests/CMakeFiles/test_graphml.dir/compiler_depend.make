# Empty compiler generated dependencies file for test_graphml.
# This may be replaced when dependencies are built.
