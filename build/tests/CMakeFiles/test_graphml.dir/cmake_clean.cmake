file(REMOVE_RECURSE
  "CMakeFiles/test_graphml.dir/topo/test_graphml.cpp.o"
  "CMakeFiles/test_graphml.dir/topo/test_graphml.cpp.o.d"
  "test_graphml"
  "test_graphml.pdb"
  "test_graphml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
