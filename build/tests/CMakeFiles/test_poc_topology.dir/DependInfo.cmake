
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topo/test_poc_topology.cpp" "tests/CMakeFiles/test_poc_topology.dir/topo/test_poc_topology.cpp.o" "gcc" "tests/CMakeFiles/test_poc_topology.dir/topo/test_poc_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/poc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/poc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
