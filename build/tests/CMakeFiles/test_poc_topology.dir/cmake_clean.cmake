file(REMOVE_RECURSE
  "CMakeFiles/test_poc_topology.dir/topo/test_poc_topology.cpp.o"
  "CMakeFiles/test_poc_topology.dir/topo/test_poc_topology.cpp.o.d"
  "test_poc_topology"
  "test_poc_topology.pdb"
  "test_poc_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poc_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
