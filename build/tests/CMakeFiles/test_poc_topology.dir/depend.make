# Empty dependencies file for test_poc_topology.
# This may be replaced when dependencies are built.
