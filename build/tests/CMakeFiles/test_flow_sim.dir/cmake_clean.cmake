file(REMOVE_RECURSE
  "CMakeFiles/test_flow_sim.dir/core/test_flow_sim.cpp.o"
  "CMakeFiles/test_flow_sim.dir/core/test_flow_sim.cpp.o.d"
  "test_flow_sim"
  "test_flow_sim.pdb"
  "test_flow_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
