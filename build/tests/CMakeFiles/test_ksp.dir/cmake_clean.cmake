file(REMOVE_RECURSE
  "CMakeFiles/test_ksp.dir/net/test_ksp.cpp.o"
  "CMakeFiles/test_ksp.dir/net/test_ksp.cpp.o.d"
  "test_ksp"
  "test_ksp.pdb"
  "test_ksp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ksp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
