file(REMOVE_RECURSE
  "CMakeFiles/test_bid.dir/market/test_bid.cpp.o"
  "CMakeFiles/test_bid.dir/market/test_bid.cpp.o.d"
  "test_bid"
  "test_bid.pdb"
  "test_bid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
