# Empty compiler generated dependencies file for test_bid.
# This may be replaced when dependencies are built.
