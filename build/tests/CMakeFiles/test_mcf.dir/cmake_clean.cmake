file(REMOVE_RECURSE
  "CMakeFiles/test_mcf.dir/net/test_mcf.cpp.o"
  "CMakeFiles/test_mcf.dir/net/test_mcf.cpp.o.d"
  "test_mcf"
  "test_mcf.pdb"
  "test_mcf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
