file(REMOVE_RECURSE
  "CMakeFiles/test_vcg_property.dir/market/test_vcg_property.cpp.o"
  "CMakeFiles/test_vcg_property.dir/market/test_vcg_property.cpp.o.d"
  "test_vcg_property"
  "test_vcg_property.pdb"
  "test_vcg_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcg_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
