# Empty dependencies file for test_vcg_property.
# This may be replaced when dependencies are built.
