file(REMOVE_RECURSE
  "CMakeFiles/test_entry.dir/econ/test_entry.cpp.o"
  "CMakeFiles/test_entry.dir/econ/test_entry.cpp.o.d"
  "test_entry"
  "test_entry.pdb"
  "test_entry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
