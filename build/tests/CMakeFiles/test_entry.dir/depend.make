# Empty dependencies file for test_entry.
# This may be replaced when dependencies are built.
