file(REMOVE_RECURSE
  "CMakeFiles/test_mincostflow.dir/net/test_mincostflow.cpp.o"
  "CMakeFiles/test_mincostflow.dir/net/test_mincostflow.cpp.o.d"
  "test_mincostflow"
  "test_mincostflow.pdb"
  "test_mincostflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mincostflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
