# Empty compiler generated dependencies file for test_bargaining.
# This may be replaced when dependencies are built.
