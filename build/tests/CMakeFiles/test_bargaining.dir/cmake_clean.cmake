file(REMOVE_RECURSE
  "CMakeFiles/test_bargaining.dir/econ/test_bargaining.cpp.o"
  "CMakeFiles/test_bargaining.dir/econ/test_bargaining.cpp.o.d"
  "test_bargaining"
  "test_bargaining.pdb"
  "test_bargaining[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bargaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
