# Empty compiler generated dependencies file for bandwidth_market.
# This may be replaced when dependencies are built.
