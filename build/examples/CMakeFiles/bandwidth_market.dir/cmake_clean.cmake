file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_market.dir/bandwidth_market.cpp.o"
  "CMakeFiles/bandwidth_market.dir/bandwidth_market.cpp.o.d"
  "bandwidth_market"
  "bandwidth_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
