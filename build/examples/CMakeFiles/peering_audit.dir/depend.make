# Empty dependencies file for peering_audit.
# This may be replaced when dependencies are built.
