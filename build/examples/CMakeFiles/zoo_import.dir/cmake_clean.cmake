file(REMOVE_RECURSE
  "CMakeFiles/zoo_import.dir/zoo_import.cpp.o"
  "CMakeFiles/zoo_import.dir/zoo_import.cpp.o.d"
  "zoo_import"
  "zoo_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
