# Empty dependencies file for zoo_import.
# This may be replaced when dependencies are built.
