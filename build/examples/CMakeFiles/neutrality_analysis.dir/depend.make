# Empty dependencies file for neutrality_analysis.
# This may be replaced when dependencies are built.
