file(REMOVE_RECURSE
  "CMakeFiles/neutrality_analysis.dir/neutrality_analysis.cpp.o"
  "CMakeFiles/neutrality_analysis.dir/neutrality_analysis.cpp.o.d"
  "neutrality_analysis"
  "neutrality_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neutrality_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
