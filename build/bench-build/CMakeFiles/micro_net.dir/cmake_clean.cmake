file(REMOVE_RECURSE
  "../bench/micro_net"
  "../bench/micro_net.pdb"
  "CMakeFiles/micro_net.dir/micro_net.cpp.o"
  "CMakeFiles/micro_net.dir/micro_net.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
