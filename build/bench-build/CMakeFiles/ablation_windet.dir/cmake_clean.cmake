file(REMOVE_RECURSE
  "../bench/ablation_windet"
  "../bench/ablation_windet.pdb"
  "CMakeFiles/ablation_windet.dir/ablation_windet.cpp.o"
  "CMakeFiles/ablation_windet.dir/ablation_windet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_windet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
