# Empty dependencies file for ablation_windet.
# This may be replaced when dependencies are built.
