file(REMOVE_RECURSE
  "../bench/table_ur_unilateral"
  "../bench/table_ur_unilateral.pdb"
  "CMakeFiles/table_ur_unilateral.dir/table_ur_unilateral.cpp.o"
  "CMakeFiles/table_ur_unilateral.dir/table_ur_unilateral.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_ur_unilateral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
