# Empty dependencies file for table_ur_unilateral.
# This may be replaced when dependencies are built.
