file(REMOVE_RECURSE
  "../bench/table_entry_innovation"
  "../bench/table_entry_innovation.pdb"
  "CMakeFiles/table_entry_innovation.dir/table_entry_innovation.cpp.o"
  "CMakeFiles/table_entry_innovation.dir/table_entry_innovation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_entry_innovation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
