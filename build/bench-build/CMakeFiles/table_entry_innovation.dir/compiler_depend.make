# Empty compiler generated dependencies file for table_entry_innovation.
# This may be replaced when dependencies are built.
