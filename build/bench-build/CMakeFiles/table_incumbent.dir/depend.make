# Empty dependencies file for table_incumbent.
# This may be replaced when dependencies are built.
