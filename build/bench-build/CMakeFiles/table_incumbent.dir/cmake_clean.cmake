file(REMOVE_RECURSE
  "../bench/table_incumbent"
  "../bench/table_incumbent.pdb"
  "CMakeFiles/table_incumbent.dir/table_incumbent.cpp.o"
  "CMakeFiles/table_incumbent.dir/table_incumbent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_incumbent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
