file(REMOVE_RECURSE
  "../bench/ablation_collusion"
  "../bench/ablation_collusion.pdb"
  "CMakeFiles/ablation_collusion.dir/ablation_collusion.cpp.o"
  "CMakeFiles/ablation_collusion.dir/ablation_collusion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
