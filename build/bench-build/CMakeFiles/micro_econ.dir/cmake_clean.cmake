file(REMOVE_RECURSE
  "../bench/micro_econ"
  "../bench/micro_econ.pdb"
  "CMakeFiles/micro_econ.dir/micro_econ.cpp.o"
  "CMakeFiles/micro_econ.dir/micro_econ.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
