# Empty compiler generated dependencies file for micro_econ.
# This may be replaced when dependencies are built.
