file(REMOVE_RECURSE
  "../bench/table_usage_pricing"
  "../bench/table_usage_pricing.pdb"
  "CMakeFiles/table_usage_pricing.dir/table_usage_pricing.cpp.o"
  "CMakeFiles/table_usage_pricing.dir/table_usage_pricing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_usage_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
