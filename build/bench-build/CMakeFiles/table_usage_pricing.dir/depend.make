# Empty dependencies file for table_usage_pricing.
# This may be replaced when dependencies are built.
