# Empty dependencies file for fig2_auction.
# This may be replaced when dependencies are built.
