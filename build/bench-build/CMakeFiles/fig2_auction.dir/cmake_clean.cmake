file(REMOVE_RECURSE
  "../bench/fig2_auction"
  "../bench/fig2_auction.pdb"
  "CMakeFiles/fig2_auction.dir/fig2_auction.cpp.o"
  "CMakeFiles/fig2_auction.dir/fig2_auction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
