# Empty compiler generated dependencies file for fig1_endtoend.
# This may be replaced when dependencies are built.
