file(REMOVE_RECURSE
  "../bench/fig1_endtoend"
  "../bench/fig1_endtoend.pdb"
  "CMakeFiles/fig1_endtoend.dir/fig1_endtoend.cpp.o"
  "CMakeFiles/fig1_endtoend.dir/fig1_endtoend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
