file(REMOVE_RECURSE
  "../bench/ablation_cdn"
  "../bench/ablation_cdn.pdb"
  "CMakeFiles/ablation_cdn.dir/ablation_cdn.cpp.o"
  "CMakeFiles/ablation_cdn.dir/ablation_cdn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
