# Empty dependencies file for ablation_cdn.
# This may be replaced when dependencies are built.
