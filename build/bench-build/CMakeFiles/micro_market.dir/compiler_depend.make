# Empty compiler generated dependencies file for micro_market.
# This may be replaced when dependencies are built.
