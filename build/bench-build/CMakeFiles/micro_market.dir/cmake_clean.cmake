file(REMOVE_RECURSE
  "../bench/micro_market"
  "../bench/micro_market.pdb"
  "CMakeFiles/micro_market.dir/micro_market.cpp.o"
  "CMakeFiles/micro_market.dir/micro_market.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
