# Empty compiler generated dependencies file for table_nbs_bargaining.
# This may be replaced when dependencies are built.
