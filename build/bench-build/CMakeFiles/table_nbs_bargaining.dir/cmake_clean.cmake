file(REMOVE_RECURSE
  "../bench/table_nbs_bargaining"
  "../bench/table_nbs_bargaining.pdb"
  "CMakeFiles/table_nbs_bargaining.dir/table_nbs_bargaining.cpp.o"
  "CMakeFiles/table_nbs_bargaining.dir/table_nbs_bargaining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_nbs_bargaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
