file(REMOVE_RECURSE
  "../bench/ablation_federation"
  "../bench/ablation_federation.pdb"
  "CMakeFiles/ablation_federation.dir/ablation_federation.cpp.o"
  "CMakeFiles/ablation_federation.dir/ablation_federation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
