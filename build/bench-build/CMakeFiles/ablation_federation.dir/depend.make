# Empty dependencies file for ablation_federation.
# This may be replaced when dependencies are built.
