# Empty compiler generated dependencies file for table_nn_welfare.
# This may be replaced when dependencies are built.
