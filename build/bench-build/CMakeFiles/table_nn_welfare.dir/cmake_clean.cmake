file(REMOVE_RECURSE
  "../bench/table_nn_welfare"
  "../bench/table_nn_welfare.pdb"
  "CMakeFiles/table_nn_welfare.dir/table_nn_welfare.cpp.o"
  "CMakeFiles/table_nn_welfare.dir/table_nn_welfare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_nn_welfare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
